package circus

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestParseSpecAndSolve(t *testing.T) {
	spec, err := ParseSpec(`troupe(x, y) where x.fast and y.fast`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Degree() != 2 {
		t.Fatalf("degree = %d", spec.Degree())
	}
	universe := []Machine{
		{Name: "a", Attrs: map[string]Value{"fast": true}},
		{Name: "b", Attrs: map[string]Value{"fast": false}},
		{Name: "c", Attrs: map[string]Value{"fast": true}},
	}
	got, err := SolveSpec(spec, universe)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{got[0].Name: true, got[1].Name: true}
	if !names["a"] || !names["c"] {
		t.Fatalf("solved %v", names)
	}
	ext, err := ExtendTroupe(spec, universe, []Machine{universe[2]})
	if err != nil {
		t.Fatal(err)
	}
	keep := false
	for _, m := range ext {
		if m.Name == "c" {
			keep = true
		}
	}
	if !keep {
		t.Fatal("extension displaced the survivor")
	}
}

// spawnerOnSim exports fresh counter modules on per-machine nodes.
type spawnerOnSim struct {
	nodes map[string]*Node
}

func (s *spawnerOnSim) Spawn(m Machine, name string) (ModuleAddr, error) {
	n, ok := s.nodes[m.Name]
	if !ok {
		return ModuleAddr{}, fmt.Errorf("no node for %s", m.Name)
	}
	return n.ExportLocal(name, &counter{}), nil
}

func (s *spawnerOnSim) Stop(addr ModuleAddr) error { return nil }

func TestConfigManagerFacade(t *testing.T) {
	w := newWorld(t, 23)
	sp := &spawnerOnSim{nodes: map[string]*Node{}}
	var universe []Machine
	for _, name := range []string{"m1", "m2", "m3"} {
		sp.nodes[name] = w.node()
		universe = append(universe, Machine{Name: name, Attrs: map[string]Value{"up": true}})
	}
	home := w.node()
	mgr := NewConfigManager(sp, home, universe)
	tr, err := mgr.Configure(context.Background(), "svc",
		`troupe(x, y) where x.up and y.up`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 2 {
		t.Fatalf("degree = %d", tr.Degree())
	}
	stub, err := home.Import(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Call(context.Background(), 1, []byte("cfg")); err != nil {
		t.Fatalf("call through configured troupe: %v", err)
	}
}

func TestAvailabilityFacade(t *testing.T) {
	if a := Availability(3, 1, 9); math.Abs(a-0.999) > 1e-9 {
		t.Fatalf("Availability = %v", a)
	}
	if r := RequiredRepairTime(3, 1, 0.999); math.Abs(r-1.0/9) > 1e-9 {
		t.Fatalf("RequiredRepairTime = %v", r)
	}
	if a := SimulateAvailability(2, 1, 9, 50000, 1); math.Abs(a-Availability(2, 1, 9)) > 0.01 {
		t.Fatalf("SimulateAvailability = %v", a)
	}
}

// TestExplicitReplicationFacade replays the thermostat scenario as a
// test: a sensor client troupe with divergent arguments collated by an
// averaging server (§7.4, Figure 7.7).
func TestExplicitReplicationFacade(t *testing.T) {
	w := newWorld(t, 24)

	ctrlNode := w.node()
	avg := ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
		var sum float64
		var n int
		for _, a := range call.Args() {
			var v float64
			if err := Unmarshal(a, &v); err != nil {
				return nil, err
			}
			sum += v
			n++
		}
		return Marshal(sum / float64(n))
	})
	if _, err := ctrlNode.Export("ctrl", avg, WithDivergentArgs()); err != nil {
		t.Fatal(err)
	}

	var sensors []*Node
	var addrs []ModuleAddr
	for i := 0; i < 3; i++ {
		n := w.node()
		sensors = append(sensors, n)
		addrs = append(addrs, n.ExportLocal("sensor", &counter{}))
	}
	id, err := sensors[0].Binder().Register(context.Background(), "sensors", addrs)
	if err != nil {
		t.Fatal(err)
	}

	readings := []float64{10, 20, 60}
	results := make([]float64, 3)
	var wg sync.WaitGroup
	for i, n := range sensors {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			stub, err := n.Import(context.Background(), "ctrl")
			if err != nil {
				t.Errorf("import: %v", err)
				return
			}
			arg, _ := Marshal(readings[i])
			res, err := stub.Call(context.Background(), 1, arg,
				AsTroupe(id), WithThread(ReplicaThread(42, 7)))
			if err != nil {
				t.Errorf("sensor %d: %v", i, err)
				return
			}
			Unmarshal(res, &results[i])
		}()
	}
	wg.Wait()
	for i, r := range results {
		if r != 30 {
			t.Fatalf("sensor %d got %v, want 30", i, r)
		}
	}
}

func TestNodeContextThreads(t *testing.T) {
	sim := NewSimNetwork(25)
	n, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	t1 := n.NewThread()
	t2 := n.NewThread()
	if t1.ID() == t2.ID() {
		t.Fatal("two root threads share an ID")
	}
}

func TestPartitionFacade(t *testing.T) {
	w := newWorld(t, 26)
	server := w.node()
	if _, err := server.Export("p", &counter{}); err != nil {
		t.Fatal(err)
	}
	client := w.node()
	stub, err := client.Import(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	// Separate client from server (binder stays with the server so the
	// import above keeps working for the other side).
	w.sim.Partition([]*Node{client}, []*Node{server})
	_, err = stub.Call(context.Background(), 1, nil, WithTimeout(time.Second))
	if err == nil {
		t.Fatal("call crossed a partition")
	}
	w.sim.Heal()
	if _, err := stub.Call(context.Background(), 1, nil); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}
