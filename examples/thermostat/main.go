// Thermostat: explicit replication (§7.4). Three replicated
// temperature sensors — a client troupe whose members legitimately
// send different readings — call one controller, which collates the
// arguments itself by averaging (Figure 7.7). Then three divergent
// clock servers are read with an application-specific median collator
// (Figure 7.10's pattern, the basis of approximate agreement for clock
// synchronization).
//
//	go run ./examples/thermostat
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"circus"
)

// controller averages the set_temperature arguments of all members of
// the calling troupe — the server of Figure 7.7. It is exported with
// divergent arguments allowed, explicitly surrendering the
// transparency of unanimous argument checking (§7.4).
type controller struct {
	mu      sync.Mutex
	setting float64
}

func (c *controller) Dispatch(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case 1: // set_temperature(temperature)
		// The argument generator of Figure 7.7: one reading per
		// client troupe member.
		var sum float64
		var n int
		for _, a := range call.Args() {
			var t float64
			if err := circus.Unmarshal(a, &t); err != nil {
				return nil, err
			}
			sum += t
			n++
		}
		avg := sum / float64(n)
		c.mu.Lock()
		c.setting = avg
		c.mu.Unlock()
		return circus.Marshal(avg)
	default:
		return nil, circus.ErrNoSuchProc
	}
}

// clock is a server whose replicas return deliberately divergent
// values, standing in for unsynchronized hardware clocks.
type clock struct{ skew float64 }

func (c clock) Dispatch(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
	return circus.Marshal(1000.0 + c.skew)
}

func main() {
	sim := circus.NewSimNetwork(11)
	binderNode, err := sim.NewNode()
	if err != nil {
		log.Fatal(err)
	}
	binderAddr, err := binderNode.ServeRingmaster()
	if err != nil {
		log.Fatal(err)
	}
	boot := []circus.ModuleAddr{binderAddr}

	// --- Part 1: server-side collation of a replicated client ------

	ctrlNode, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	ctrl := &controller{}
	if _, err := ctrlNode.Export("controller", ctrl, circus.WithDivergentArgs()); err != nil {
		log.Fatal(err)
	}

	// Three sensor processes form a client troupe: they register
	// themselves with the binding agent so the controller can learn
	// how many call messages to expect (§4.3.2).
	var sensors []*circus.Node
	var sensorAddrs []circus.ModuleAddr
	for i := 0; i < 3; i++ {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			log.Fatal(err)
		}
		sensors = append(sensors, n)
		// Each sensor is itself a module (troupe members are module
		// instances); registration hands these addresses to the
		// binding agent so servers can count the troupe (§4.3.2).
		addr := n.ExportLocal("sensor", circus.ModuleFunc(
			func(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
				return nil, circus.ErrNoSuchProc
			}))
		sensorAddrs = append(sensorAddrs, addr)
	}
	sensorTroupeID, err := sensors[0].Binder().Register(context.Background(), "sensors", sensorAddrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor troupe registered: %v (3 members)\n", sensorTroupeID)

	// Each sensor reads its own thermometer and makes the same
	// logical call; the controller collates all three readings and
	// every sensor receives the same average back.
	readings := []float64{19.0, 21.0, 23.0}
	var wg sync.WaitGroup
	results := make([]float64, 3)
	for i, n := range sensors {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			stub, err := n.Import(context.Background(), "controller")
			if err != nil {
				log.Fatal(err)
			}
			arg, _ := circus.Marshal(readings[i])
			res, err := stub.Call(context.Background(), 1, arg,
				circus.AsTroupe(sensorTroupeID),
				circus.WithThread(circus.ReplicaThread(900, 1)))
			if err != nil {
				log.Fatal(err)
			}
			circus.Unmarshal(res, &results[i])
		}()
	}
	wg.Wait()
	fmt.Printf("sensor readings %v -> controller executed once, set to %.1f°\n", readings, results[0])
	for i, r := range results {
		fmt.Printf("  sensor %d received %.1f°\n", i, r)
	}

	// --- Part 2: client-side collation of divergent replies --------

	for i, skew := range []float64{-3, 0.5, 2} {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := n.Export("clock", clock{skew: skew}); err != nil {
			log.Fatal(err)
		}
		_ = i
	}
	reader, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	stub, err := reader.Import(context.Background(), "clock")
	if err != nil {
		log.Fatal(err)
	}

	// The unanimous default would (rightly) report disagreement;
	// instead collate with the median, the application-specific
	// collator of Figure 7.10.
	median := func(n int) circus.Collator {
		return circus.NewCollator(n, func(items []circus.Reply) ([]byte, error) {
			var vals []float64
			for _, it := range items {
				if it.Err != nil {
					continue
				}
				var v float64
				if err := circus.Unmarshal(it.Data, &v); err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			mid := vals[0]
			if len(vals) > 1 {
				// simple selection of the middle element
				for i := range vals {
					less, greater := 0, 0
					for j := range vals {
						if vals[j] < vals[i] {
							less++
						}
						if vals[j] > vals[i] {
							greater++
						}
					}
					if less <= len(vals)/2 && greater <= len(vals)/2 {
						mid = vals[i]
						break
					}
				}
			}
			return circus.Marshal(mid)
		})
	}
	res, err := stub.Call(context.Background(), 1, nil, circus.WithCollator(median))
	if err != nil {
		log.Fatal(err)
	}
	var t float64
	circus.Unmarshal(res, &t)
	fmt.Printf("three skewed clocks collated by median: %.1f\n", t)

	// The same read with the unanimous collator detects the skew.
	if _, err := stub.Call(context.Background(), 1, nil); err != nil {
		fmt.Println("unanimous collator correctly detected divergence:", err)
	}
}
