// N-version programming (§2.1.3): a troupe whose members are
// *independently implemented* versions of the same module
// specification, so that majority collation masks software faults as
// well as hardware crashes. The paper notes this technique "can be
// used in conjunction with the replicated modules proposed in the
// present work by using independently implemented modules instead of
// exact replicas."
//
// Here three implementations of integer square root serve one troupe;
// one of them carries a bug. The unanimous collator detects the
// disagreement, and the majority collator masks it.
//
//	go run ./examples/nversion
package main

import (
	"context"
	"fmt"
	"log"

	"circus"
)

// isqrt is the module interface: proc 1 = isqrt(n uint32) -> uint32.
type isqrtFunc func(uint32) uint32

func module(f isqrtFunc) circus.Module {
	return circus.ModuleFunc(func(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
		var n uint32
		if err := circus.Unmarshal(args, &n); err != nil {
			return nil, err
		}
		return circus.Marshal(f(n))
	})
}

// Version 1: Newton's method.
func newtonSqrt(n uint32) uint32 {
	if n < 2 {
		return n
	}
	x := uint64(n)
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + uint64(n)/x) / 2
	}
	return uint32(x)
}

// Version 2: binary search.
func binarySqrt(n uint32) uint32 {
	lo, hi := uint64(0), uint64(n)+1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if mid*mid <= uint64(n) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// Version 3: digit-by-digit — with a deliberate off-by-one fault for
// perfect squares above 100 (a "software fault" in one version).
func buggySqrt(n uint32) uint32 {
	r := binarySqrt(n)
	if n > 100 && r*r == n {
		return r - 1 // the bug
	}
	return r
}

func main() {
	sim := circus.NewSimNetwork(5)
	binderNode, err := sim.NewNode()
	if err != nil {
		log.Fatal(err)
	}
	baddr, err := binderNode.ServeRingmaster()
	if err != nil {
		log.Fatal(err)
	}
	boot := []circus.ModuleAddr{baddr}

	versions := []struct {
		name string
		impl isqrtFunc
	}{
		{"newton", newtonSqrt},
		{"binary-search", binarySqrt},
		{"digit (buggy)", buggySqrt},
	}
	for _, v := range versions {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := n.Export("isqrt", module(v.impl)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported version %q\n", v.name)
	}

	client, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	stub, err := client.Import(context.Background(), "isqrt")
	if err != nil {
		log.Fatal(err)
	}

	query := func(n uint32, opts ...circus.CallOption) (uint32, error) {
		args, _ := circus.Marshal(n)
		res, err := stub.Call(context.Background(), 1, args, opts...)
		if err != nil {
			return 0, err
		}
		var r uint32
		err = circus.Unmarshal(res, &r)
		return r, err
	}

	// A non-square input: all three versions agree; unanimity passes.
	r, err := query(1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isqrt(1000) unanimous across 3 versions = %d\n", r)

	// A perfect square trips the bug: unanimity detects it ...
	if _, err := query(10000); err != nil {
		fmt.Println("isqrt(10000): unanimous collator detected the faulty version:", err)
	}

	// ... and majority voting masks it (§2.1.3's triple-modular
	// redundancy, in software).
	r, err = query(10000, circus.WithMajority())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isqrt(10000) by majority = %d (fault masked)\n", r)

	// The watchdog variant (§4.3.4): proceed with the first answer,
	// get told about the inconsistency asynchronously.
	args, _ := circus.Marshal(uint32(40000))
	first, verdict, err := stub.CallWatchdog(context.Background(), 1, args)
	if err != nil {
		log.Fatal(err)
	}
	var fr uint32
	circus.Unmarshal(first, &fr)
	fmt.Printf("isqrt(40000) first answer = %d; watchdog verdict: %v\n", fr, <-verdict)
}
