// Quickstart: a troupe of three echo servers behind the Ringmaster
// binding agent, called through one replicated procedure call with
// exactly-once execution at every member — the minimal replicated
// distributed program (§1.1, §4.1).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"circus"
)

// echo is an ordinary module: it has no idea it will be replicated
// (replication transparency, §3.5). The execution counter exists only
// so this demo can prove exactly-once execution.
type echo struct {
	id    int
	execs atomic.Int64
}

func (e *echo) Dispatch(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case 1:
		e.execs.Add(1)
		return args, nil
	default:
		return nil, circus.ErrNoSuchProc
	}
}

func main() {
	// A simulated internet; every node is its own machine with an
	// independent failure mode (§3.5.1).
	sim := circus.NewSimNetwork(2024)

	// The binding agent (§6.3).
	binderNode, err := sim.NewNode()
	if err != nil {
		log.Fatal(err)
	}
	binderAddr, err := binderNode.ServeRingmaster()
	if err != nil {
		log.Fatal(err)
	}
	boot := []circus.ModuleAddr{binderAddr}

	// Three machines each export the echo module under one name; the
	// Ringmaster assembles them into a troupe (§6.2).
	var members []*echo
	for i := 0; i < 3; i++ {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			log.Fatal(err)
		}
		m := &echo{id: i}
		if _, err := n.Export("echo", m); err != nil {
			log.Fatal(err)
		}
		members = append(members, m)
		fmt.Printf("exported echo replica %d on %v\n", i, n.Addr())
	}

	// A client imports the troupe by name and calls it; the one
	// replicated call executes at all three members and the unanimous
	// collator checks their answers agree bit for bit (§4.3.4).
	client, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	stub, err := client.Import(context.Background(), "echo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported troupe %v with %d members\n", stub.Troupe().ID, stub.Troupe().Degree())

	reply, err := stub.Call(context.Background(), 1, []byte("hello, troupe"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply: %q\n", reply)
	for _, m := range members {
		fmt.Printf("replica %d executed %d time(s)\n", m.id, m.execs.Load())
	}

	// Crash one machine: the call still succeeds — the partial
	// failure is masked (§1.1).
	sim.CrashAddr(stub.Troupe().Members[0].Addr)
	reply, err = stub.Call(context.Background(), 1, []byte("still here"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crashing one member: %q\n", reply)
}
