// Reconfiguration: the programming-in-the-large workflow of Chapters 6
// and 7.5. A configuration manager instantiates a troupe from a
// specification in the troupe configuration language, a machine
// crashes, the troupe is reconfigured onto a replacement machine (with
// state transfer), and the availability analysis of §6.4.2 says how
// quickly such replacements must happen.
//
//	go run ./examples/reconfig
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"circus"
)

// register is a simple stateful module: an append-only log with state
// transfer for troupe extension. Like every module, it is written with
// no knowledge of replication.
type register struct {
	mu  sync.Mutex
	log []string
}

func (r *register) Dispatch(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch proc {
	case 1: // append(entry) -> length
		var s string
		if err := circus.Unmarshal(args, &s); err != nil {
			return nil, err
		}
		r.log = append(r.log, s)
		return circus.Marshal(uint32(len(r.log)))
	case 2: // read() -> entries
		return circus.Marshal(r.log)
	default:
		return nil, circus.ErrNoSuchProc
	}
}

func (r *register) GetState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return circus.Marshal(r.log)
}

func (r *register) SetState(b []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = nil
	return circus.Unmarshal(b, &r.log)
}

// simSpawner implements the configuration manager's Spawner over the
// simulated internet: one pre-created node per machine. Spawning
// exports a fresh module instance there, initialized by state transfer
// from the running troupe when one exists (§6.4.1); registration of
// the assembled troupe is the manager's job.
type simSpawner struct {
	nodes map[string]*circus.Node
}

func (s *simSpawner) Spawn(m circus.Machine, moduleName string) (circus.ModuleAddr, error) {
	n, ok := s.nodes[m.Name]
	if !ok {
		return circus.ModuleAddr{}, fmt.Errorf("no node for machine %s", m.Name)
	}
	mod := &register{}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if state, err := n.FetchState(ctx, moduleName); err == nil {
		if err := mod.SetState(state); err != nil {
			return circus.ModuleAddr{}, err
		}
	}
	return n.ExportLocal(moduleName, mod), nil
}

func (s *simSpawner) Stop(addr circus.ModuleAddr) error { return nil }

func main() {
	sim := circus.NewSimNetwork(33)
	binderNode, err := sim.NewNode()
	if err != nil {
		log.Fatal(err)
	}
	binderAddr, err := binderNode.ServeRingmaster()
	if err != nil {
		log.Fatal(err)
	}
	boot := []circus.ModuleAddr{binderAddr}

	// The machine universe: five machines with attributes (§7.5.2);
	// each backed by a simulated node.
	specs := []struct {
		name string
		mem  float64
		fpu  bool
	}{
		{"UCB-Monet", 10, true},
		{"UCB-Degas", 4, false},
		{"UCB-Renoir", 16, true},
		{"UCB-Seurat", 8, true},
		{"UCB-Matisse", 12, true},
	}
	spawner := &simSpawner{nodes: map[string]*circus.Node{}}
	var universe []circus.Machine
	crashed := map[string]bool{}
	for _, s := range specs {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			log.Fatal(err)
		}
		spawner.nodes[s.name] = n
		universe = append(universe, circus.Machine{
			Name: s.name,
			Attrs: map[string]circus.Value{
				"memory":             s.mem,
				"has-floating-point": s.fpu,
			},
		})
	}

	// A client node doubles as the manager's home.
	home, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	mgr := circus.NewConfigManager(spawner, home, universe)

	// Instantiate the troupe from a specification: three members, all
	// with floating point and at least 8 MB.
	const spec = `troupe(x, y, z) where x.has-floating-point and x.memory >= 8
	                           and y.has-floating-point and y.memory >= 8
	                           and z.has-floating-point and z.memory >= 8`
	troupe, err := mgr.Configure(context.Background(), "register", spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured troupe of %d on machines %v\n", troupe.Degree(), mgr.Placements("register"))

	// Use the service.
	stub, err := home.Import(context.Background(), "register")
	if err != nil {
		log.Fatal(err)
	}
	ctx := home.Context(context.Background())
	for _, entry := range []string{"genesis", "alpha", "beta"} {
		arg, _ := circus.Marshal(entry)
		if _, err := stub.Call(ctx, 1, arg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("appended 3 log entries")

	// A machine crashes.
	victim := mgr.Placements("register")[0]
	sim.Crash(spawner.nodes[victim])
	crashed[victim] = true
	fmt.Printf("machine %s crashed\n", victim)

	// The diminished troupe still serves (partial failure masked),
	// but it is more vulnerable (§6.4); reconfigure onto a healthy
	// replacement, with state transfer.
	if _, err := mgr.Reconfigure(context.Background(), "register", func(m circus.Machine) bool {
		return !crashed[m.Name]
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfigured onto %v\n", mgr.Placements("register"))

	// The log survives: read through a fresh import; the unanimous
	// collator verifies the replacement's transferred state agrees
	// with the survivors'.
	stub2, err := home.Import(context.Background(), "register")
	if err != nil {
		log.Fatal(err)
	}
	res, err := stub2.Call(home.Context(context.Background()), 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	var entries []string
	circus.Unmarshal(res, &entries)
	fmt.Printf("log after reconfiguration (unanimous across new troupe): %v\n", entries)

	// When must failed members be replaced? The analysis of §6.4.2.
	fmt.Println()
	fmt.Println("replacement-time analysis (Eq 6.2), member lifetime 1h, target 99.9%:")
	for _, n := range []int{2, 3, 5} {
		rt := circus.RequiredRepairTime(n, 1.0, 0.999)
		fmt.Printf("  troupe of %d: replace within %.1f minutes\n", n, rt*60)
	}
	a := circus.Availability(3, 1, 9)
	fmt.Printf("analytic availability of 3 members (λ=1/h, μ=9/h): %.5f\n", a)
	fmt.Printf("simulated availability (birth–death model):        %.5f\n",
		circus.SimulateAvailability(3, 1, 9, 100000, 1))
}
