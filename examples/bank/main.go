// A replicated bank: the motivating workload for per-operation
// reliability (§2.1.3 — "applications where each operation must be
// highly reliable"). The Bank interface is specified in bank.courier
// and its stubs are produced by the stub compiler (cmd/stubgen, §7.1);
// the implementation in bankimpl is an ordinary, unreplicated bank.
// Replication is added here, entirely at the programming-in-the-large
// level: three machines export the same module.
//
//	go run ./examples/bank
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"circus"
	"circus/examples/bank/bankimpl"
	"circus/examples/bank/bankrpc"
)

func main() {
	sim := circus.NewSimNetwork(7)
	binderNode, err := sim.NewNode()
	if err != nil {
		log.Fatal(err)
	}
	binderAddr, err := binderNode.ServeRingmaster()
	if err != nil {
		log.Fatal(err)
	}
	boot := []circus.ModuleAddr{binderAddr}

	// A bank troupe of three.
	var bankNodes []*circus.Node
	for i := 0; i < 3; i++ {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := bankrpc.Export(n, bankimpl.New()); err != nil {
			log.Fatal(err)
		}
		bankNodes = append(bankNodes, n)
	}
	fmt.Println("bank troupe of 3 exported")

	clientNode, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	bank, err := bankrpc.Import(context.Background(), clientNode)
	if err != nil {
		log.Fatal(err)
	}
	ctx := clientNode.Context(context.Background())

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(bank.Open(ctx, "alice", 100))
	must(bank.Open(ctx, "bob", 50))
	fmt.Println("opened alice=100, bob=50")

	bal, err := bank.Deposit(ctx, "alice", 25)
	must(err)
	fmt.Printf("deposit 25 to alice -> %d\n", bal)

	must(bank.Transfer(ctx, "alice", "bob", 75))
	fmt.Println("transferred 75 alice -> bob")

	// A declared Courier ERROR crosses the wire as a typed Go error.
	if _, err := bank.Withdraw(ctx, "bob", 10000); errors.Is(err, bankrpc.ErrInsufficientFunds) {
		fmt.Println("overdraft correctly refused:", err)
	}

	// Crash a member mid-session: the bank stays available and every
	// surviving replica still agrees on the books (the unanimous
	// collator on Audit would report any divergence, §4.3.4).
	sim.Crash(bankNodes[2])
	fmt.Println("crashed one bank replica")

	bal, err = bank.Deposit(ctx, "bob", 1)
	must(err)
	fmt.Printf("deposit 1 to bob after crash -> %d\n", bal)

	st, err := bank.Audit(ctx)
	must(err)
	fmt.Println("audited statement (replicas unanimous):")
	for _, e := range st {
		fmt.Printf("  %-6s %6d\n", e.Account, e.Balance)
	}

	// A replacement member joins with state transfer (§6.4.1).
	joinNode, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := joinNode.JoinTroupe(context.Background(), bankrpc.ProgramName,
		bankrpc.NewModule(bankimpl.New())); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replacement member joined with state transfer")

	st, err = bank.Audit(ctx)
	must(err)
	fmt.Printf("audit after rejoin (troupe of %d, still unanimous): %v\n",
		bank.Stub.Troupe().Degree(), st)
}
