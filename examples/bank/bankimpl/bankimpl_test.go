package bankimpl

import (
	"context"
	"errors"
	"testing"

	"circus"
	"circus/examples/bank/bankrpc"
)

// newBankWorld starts a binder, a bank troupe of the given degree, and
// returns a connected generated client.
func newBankWorld(t *testing.T, seed int64, degree int) (*circus.SimNetwork, *bankrpc.Client, []*circus.Node) {
	sim, client, servers, _ := newBankWorldBoot(t, seed, degree)
	return sim, client, servers
}

func newBankWorldBoot(t *testing.T, seed int64, degree int) (*circus.SimNetwork, *bankrpc.Client, []*circus.Node, []circus.ModuleAddr) {
	t.Helper()
	sim := circus.NewSimNetwork(seed)
	binderNode, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { binderNode.Close() })
	baddr, err := binderNode.ServeRingmaster()
	if err != nil {
		t.Fatal(err)
	}
	boot := []circus.ModuleAddr{baddr}

	var servers []*circus.Node
	for i := 0; i < degree; i++ {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		if _, err := bankrpc.Export(n, New()); err != nil {
			t.Fatalf("Export: %v", err)
		}
		servers = append(servers, n)
	}

	clientNode, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clientNode.Close() })
	client, err := bankrpc.Import(context.Background(), clientNode)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	return sim, client, servers, boot
}

// TestGeneratedStubsEndToEnd drives the generated client stubs against
// a replicated bank: typed calls, typed results, and Courier ERRORs
// crossing the wire.
func TestGeneratedStubsEndToEnd(t *testing.T) {
	_, client, _ := newBankWorld(t, 1, 3)
	ctx := context.Background()

	if err := client.Open(ctx, "alice", 100); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := client.Open(ctx, "bob", 50); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := client.Open(ctx, "alice", 1); !errors.Is(err, bankrpc.ErrAccountExists) {
		t.Fatalf("duplicate Open err = %v, want ErrAccountExists", err)
	}

	bal, err := client.Deposit(ctx, "alice", 25)
	if err != nil || bal != 125 {
		t.Fatalf("Deposit: %d, %v", bal, err)
	}
	bal, err = client.Withdraw(ctx, "bob", 20)
	if err != nil || bal != 30 {
		t.Fatalf("Withdraw: %d, %v", bal, err)
	}
	if _, err := client.Withdraw(ctx, "bob", 1000); !errors.Is(err, bankrpc.ErrInsufficientFunds) {
		t.Fatalf("overdraft err = %v", err)
	}
	if _, err := client.Balance(ctx, "carol"); !errors.Is(err, bankrpc.ErrNoSuchAccount) {
		t.Fatalf("missing account err = %v", err)
	}
	if err := client.Transfer(ctx, "alice", "bob", 25); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	st, err := client.Audit(ctx)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	want := bankrpc.Statement{{Account: "alice", Balance: 100}, {Account: "bob", Balance: 55}}
	if len(st) != 2 || st[0] != want[0] || st[1] != want[1] {
		t.Fatalf("Audit = %v, want %v", st, want)
	}
}

// TestBankSurvivesMemberCrash: a member crash must be masked; the
// typed client keeps working and balances stay correct.
func TestBankSurvivesMemberCrash(t *testing.T) {
	sim, client, servers := newBankWorld(t, 2, 3)
	ctx := context.Background()
	if err := client.Open(ctx, "alice", 100); err != nil {
		t.Fatal(err)
	}
	sim.Crash(servers[0])
	bal, err := client.Deposit(ctx, "alice", 1)
	if err != nil || bal != 101 {
		t.Fatalf("after crash: %d, %v", bal, err)
	}
}

// TestBankConsistencyAcrossReplicas: after a sequence of operations
// every member must externalize the same state (troupe consistency,
// §3.5.2).
func TestBankConsistencyAcrossReplicas(t *testing.T) {
	_, client, _ := newBankWorld(t, 3, 3)
	ctx := context.Background()
	client.Open(ctx, "a", 10)
	client.Open(ctx, "b", 20)
	client.Transfer(ctx, "b", "a", 5)
	client.Deposit(ctx, "a", 7)

	st, err := client.Audit(ctx) // unanimous: replicas must agree bit-for-bit
	if err != nil {
		t.Fatalf("Audit (unanimous over 3 replicas): %v", err)
	}
	if st[0].Balance != 22 || st[1].Balance != 15 {
		t.Fatalf("statement: %v", st)
	}
}

// TestBankStateTransferJoin: a new bank member joins the running
// troupe with get_state (§6.4.1) and then serves typed calls
// consistently with the others.
func TestBankStateTransferJoin(t *testing.T) {
	sim, client, _, boot := newBankWorldBoot(t, 4, 2)
	ctx := context.Background()
	if err := client.Open(ctx, "alice", 500); err != nil {
		t.Fatal(err)
	}

	joinNode, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joinNode.Close() })
	joined := New()
	if _, err := joinNode.JoinTroupe(ctx, bankrpc.ProgramName, bankrpc.NewModule(joined)); err != nil {
		t.Fatalf("JoinTroupe: %v", err)
	}
	if bal, err := joined.Balance(nil, "alice"); err != nil || bal != 500 {
		t.Fatalf("transferred balance: %d, %v", bal, err)
	}
	// The extended troupe of three answers unanimously.
	client2, err := bankrpc.Import(ctx, joinNode)
	if err != nil {
		t.Fatal(err)
	}
	if bal, err := client2.Balance(ctx, "alice"); err != nil || bal != 500 {
		t.Fatalf("balance from extended troupe: %d, %v", bal, err)
	}
}

func TestFirstComeTypedCall(t *testing.T) {
	_, client, _ := newBankWorld(t, 5, 3)
	ctx := context.Background()
	client.Open(ctx, "x", 1)
	bal, err := client.Balance(ctx, "x", circus.WithFirstCome())
	if err != nil || bal != 1 {
		t.Fatalf("first-come Balance: %d, %v", bal, err)
	}
}
