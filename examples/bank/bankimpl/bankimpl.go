// Package bankimpl is a deterministic in-memory bank implementing the
// generated bankrpc.Service interface. It is the module that gets
// replicated in the bank example: written exactly as an unreplicated
// bank would be, with no knowledge of troupes — replication
// transparency at the programming-in-the-small level (§3.5).
//
// Determinism notes (§3.3.2): all state transitions are pure functions
// of the call sequence; iteration for Audit is over sorted account
// names so replicas externalize identical statements.
package bankimpl

import (
	"sort"
	"sync"

	"circus"
	"circus/examples/bank/bankrpc"
)

// Bank is an in-memory bank. It implements bankrpc.Service and
// circus.StateProvider (so new troupe members can join with state
// transfer, §6.4.1).
type Bank struct {
	mu       sync.Mutex
	balances map[string]int32
}

// New returns an empty bank.
func New() *Bank {
	return &Bank{balances: make(map[string]int32)}
}

var _ bankrpc.Service = (*Bank)(nil)
var _ circus.StateProvider = (*Bank)(nil)

// Open creates an account with an initial balance.
func (b *Bank) Open(call *circus.ServerCall, account bankrpc.Account, initial bankrpc.Amount) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.balances[account]; ok {
		return bankrpc.ErrAccountExists
	}
	b.balances[account] = initial
	return nil
}

// Deposit adds to an account and returns the new balance.
func (b *Bank) Deposit(call *circus.ServerCall, account bankrpc.Account, amount bankrpc.Amount) (bankrpc.Amount, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bal, ok := b.balances[account]
	if !ok {
		return 0, bankrpc.ErrNoSuchAccount
	}
	bal += amount
	b.balances[account] = bal
	return bal, nil
}

// Withdraw removes from an account and returns the new balance.
func (b *Bank) Withdraw(call *circus.ServerCall, account bankrpc.Account, amount bankrpc.Amount) (bankrpc.Amount, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bal, ok := b.balances[account]
	if !ok {
		return 0, bankrpc.ErrNoSuchAccount
	}
	if bal < amount {
		return 0, bankrpc.ErrInsufficientFunds
	}
	bal -= amount
	b.balances[account] = bal
	return bal, nil
}

// Balance reads an account.
func (b *Bank) Balance(call *circus.ServerCall, account bankrpc.Account) (bankrpc.Amount, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bal, ok := b.balances[account]
	if !ok {
		return 0, bankrpc.ErrNoSuchAccount
	}
	return bal, nil
}

// Transfer moves money between two accounts atomically with respect to
// other procedures of this module (the module executes one replicated
// call at a time per thread; cross-thread synchronization is the
// subject of Chapter 5 and the transactions example).
func (b *Bank) Transfer(call *circus.ServerCall, from, to bankrpc.Account, amount bankrpc.Amount) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	fromBal, ok := b.balances[from]
	if !ok {
		return bankrpc.ErrNoSuchAccount
	}
	if _, ok := b.balances[to]; !ok {
		return bankrpc.ErrNoSuchAccount
	}
	if fromBal < amount {
		return bankrpc.ErrInsufficientFunds
	}
	b.balances[from] -= amount
	b.balances[to] += amount
	return nil
}

// Audit returns every account and balance, sorted by account name so
// that replicas answer identically.
func (b *Bank) Audit(call *circus.ServerCall) (bankrpc.Statement, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.balances))
	for a := range b.balances {
		names = append(names, a)
	}
	sort.Strings(names)
	st := make(bankrpc.Statement, 0, len(names))
	for _, a := range names {
		st = append(st, bankrpc.Entry{Account: a, Balance: b.balances[a]})
	}
	return st, nil
}

// GetState externalizes the bank for state transfer (§6.4.1).
func (b *Bank) GetState() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return circus.Marshal(b.balances)
}

// SetState internalizes a transferred state.
func (b *Bank) SetState(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.balances = make(map[string]int32)
	return circus.Unmarshal(data, &b.balances)
}
