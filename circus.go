// Package circus is the public face of a Go implementation of
// troupes and replicated procedure call, after Eric C. Cooper,
// "Replicated Distributed Programs" (UC Berkeley, 1985) and the Circus
// system it describes.
//
// A replicated distributed program is built from troupes: sets of
// replicas of a module executing on machines with independent failure
// modes. Troupe members do not communicate among themselves and are
// unaware of one another's existence; clients reach a troupe through
// replicated procedure calls whose semantics are exactly-once
// execution at all members. Replication is therefore transparent at
// the programming-in-the-small level: a module is written once, as if
// unreplicated, and its degree of replication is chosen — and changed
// at run time — as a programming-in-the-large decision.
//
// The package wraps the building blocks implemented under internal/:
// a simulated internet with fault injection (or real UDP), the paired
// message protocol of §4.2, the replicated call runtime of §4.3, the
// Ringmaster binding agent of §6.3, collators (§4.3.6), and
// replicated lightweight transactions (§5).
//
// A minimal replicated service:
//
//	sim := circus.NewSimNetwork(1)
//	binder, _ := sim.NewNode()             // host the binding agent
//	binder.ServeRingmaster()
//	boot := binder.BinderAddrs()
//
//	for i := 0; i < 3; i++ {               // a troupe of three echoes
//		n, _ := sim.NewNode(circus.WithBinder(boot))
//		n.Export("echo", circus.ModuleFunc(
//			func(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
//				return args, nil
//			}))
//	}
//
//	client, _ := sim.NewNode(circus.WithBinder(boot))
//	stub, _ := client.Import(context.Background(), "echo")
//	reply, _ := stub.Call(context.Background(), 1, []byte("hi"))
package circus

import (
	"time"

	"circus/internal/collate"
	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/trace"
	"circus/internal/transport"
	"circus/internal/wire"
)

// Re-exported core types. These aliases are the public names of the
// runtime's types; user code never imports internal packages.
type (
	// Troupe is a set of replicas of a module together with its
	// troupe ID (§3.5.1).
	Troupe = core.Troupe
	// TroupeID uniquely identifies a troupe incarnation (§6.2).
	TroupeID = core.TroupeID
	// ModuleAddr identifies one instance of a module.
	ModuleAddr = core.ModuleAddr
	// Addr is an internet-style process address.
	Addr = transport.Addr
	// Module is the server side of an exported interface.
	Module = core.Module
	// ModuleFunc adapts a function to Module.
	ModuleFunc = core.ModuleFunc
	// ServerCall is the context of one procedure execution.
	ServerCall = core.ServerCall
	// StateProvider is implemented by modules supporting state
	// transfer to new troupe members (§6.4.1).
	StateProvider = core.StateProvider
	// AppError is an application-level error raised by a remote
	// procedure.
	AppError = core.AppError
	// StaleBindingError reports an obsolete cached binding (§6.2).
	StaleBindingError = core.StaleBindingError
	// ResilientOptions configures a self-healing stub's retry budget,
	// backoff, suspicion, and rebinding.
	ResilientOptions = core.ResilientOptions
	// Backoff shapes retry delays: exponential growth with jitter.
	Backoff = core.Backoff
	// Suspicion tracks members recently presumed crashed; shared
	// trackers let one caller's evidence benefit others.
	Suspicion = core.Suspicion
	// ResilientStats counts a resilient stub's recovery actions.
	ResilientStats = core.ResilientStats
	// Reply is one troupe member's response in a generator stream
	// (§7.4).
	Reply = collate.Item
	// Collator reduces the set of messages from a troupe to a single
	// result (§4.3.6).
	Collator = collate.Collator
	// TraceEvent is one structured protocol event (see WithTrace).
	TraceEvent = trace.Event
	// TraceKind discriminates trace events.
	TraceKind = trace.Kind
	// TraceSink consumes trace events; implementations must not call
	// back into the emitting node.
	TraceSink = trace.Sink
	// TraceRecorder is an in-memory sink with predicate waits, for
	// tests and the chaos checker.
	TraceRecorder = trace.Recorder
	// Metrics aggregates per-kind, per-peer, and per-troupe counters
	// plus a call-latency histogram (see WithMetrics).
	Metrics = trace.Metrics
	// MetricsSnapshot is a point-in-time copy of a node's metrics.
	MetricsSnapshot = trace.Snapshot
)

// NewTraceRecorder returns an empty in-memory trace recorder, to be
// attached with WithTrace.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Re-exported errors.
var (
	ErrNoSuchProc   = core.ErrNoSuchProc
	ErrNoSuchModule = core.ErrNoSuchModule
	ErrMemberDown   = core.ErrMemberDown
	ErrTroupeDown   = core.ErrTroupeDown
	ErrDisagreement = collate.ErrDisagreement
	ErrNoMajority   = collate.ErrNoMajority
	ErrAllFailed    = collate.ErrAllFailed
)

// Collator constructors (§4.3.6): Unanimous is the error-detecting
// default; FirstCome trades detection for latency; Majority masks a
// minority of diverging members; Quorum generalizes to k-of-n;
// NewCollator wraps an application-specific collating function (§7.4).
var (
	Unanimous = collate.Unanimous
	FirstCome = collate.FirstCome
	Majority  = collate.Majority
	Quorum    = collate.Quorum
)

// NewCollator wraps an application-specific collating function.
func NewCollator(n int, f func(items []Reply) ([]byte, error)) Collator {
	return collate.New(n, f)
}

// Marshal externalizes a value into the standard external
// representation (§7.1); generated stubs and hand-written modules use
// it for parameters and results.
func Marshal(v any) ([]byte, error) { return wire.Marshal(v) }

// Unmarshal internalizes data produced by Marshal.
func Unmarshal(data []byte, out any) error { return wire.Unmarshal(data, out) }

// LinkConfig configures simulated datagram delivery: loss and
// duplication probabilities, propagation delay bounds, and an optional
// bandwidth (bits per second) adding per-datagram serialization delay
// — 10_000_000 models the paper's 10 Mb/s Ethernet.
type LinkConfig struct {
	LossRate      float64
	DupRate       float64
	MinDelay      time.Duration
	MaxDelay      time.Duration
	BitsPerSecond int64
}

// SimNetwork is an in-memory simulated internet on which nodes
// (simulated machines running one Circus process each) are created. It
// supports the fault injection the paper's model assumes: lost,
// delayed and duplicated datagrams, fail-stop machine crashes, and
// network partitions.
type SimNetwork struct {
	net *netsim.Network
}

// NewSimNetwork creates a simulated internet whose fault injection is
// driven deterministically by seed.
func NewSimNetwork(seed int64) *SimNetwork {
	return &SimNetwork{net: netsim.New(seed)}
}

// SetLink sets the default link behaviour between all machines.
func (s *SimNetwork) SetLink(cfg LinkConfig) {
	s.net.SetLink(netsim.LinkConfig(cfg))
}

// Crash fail-stops the machine hosting the node (§2.1.1).
func (s *SimNetwork) Crash(n *Node) { s.net.Crash(n.rt.Addr().Host) }

// CrashAddr fail-stops the machine hosting the given address.
func (s *SimNetwork) CrashAddr(a Addr) { s.net.Crash(a.Host) }

// Restart clears a machine's crashed state.
func (s *SimNetwork) Restart(n *Node) { s.net.Restart(n.rt.Addr().Host) }

// Partition splits the simulated machines into isolated groups; nodes
// in different groups cannot communicate (§4.3.5).
func (s *SimNetwork) Partition(groups ...[]*Node) {
	hostGroups := make([][]uint32, len(groups))
	for i, g := range groups {
		for _, n := range g {
			hostGroups[i] = append(hostGroups[i], n.rt.Addr().Host)
		}
	}
	s.net.Partition(hostGroups...)
}

// Heal removes any partition.
func (s *SimNetwork) Heal() { s.net.Heal() }

// Stats reports datagram-level counters.
func (s *SimNetwork) Stats() (sendOps, datagrams, delivered, dropped int64) {
	st := s.net.Stats()
	return st.SendOps, st.Datagrams, st.Delivered, st.Dropped
}
