//go:build race

package circus

const raceEnabled = true
