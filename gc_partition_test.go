package circus

import (
	"context"
	"testing"
	"time"
)

// TestGarbageCollectPartitionedMemberRejoinsAfterHeal: the binding
// agent cannot tell a partitioned member from a crashed one (§4.3.5),
// so GarbageCollect removes it — and that must be a recoverable
// reconfiguration, not an amputation: after the partition heals, the
// member is re-added cleanly and participates in calls again.
func TestGarbageCollectPartitionedMemberRejoinsAfterHeal(t *testing.T) {
	w := newWorld(t, 12)
	ctx := context.Background()

	nodes := make([]*Node, 3)
	mods := make([]*counter, 3)
	addrs := make([]ModuleAddr, 3)
	for i := range nodes {
		nodes[i] = w.node()
		mods[i] = &counter{}
		addr, err := nodes[i].Export("pkv", mods[i])
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}

	// Isolate member 2. The binder and the other members stay in the
	// default group (an empty groups[0] puts every unnamed host there).
	w.sim.Partition(nil, []*Node{nodes[2]})

	sweeper := w.node()
	removed, err := sweeper.GarbageCollect(ctx, 300*time.Millisecond)
	if err != nil {
		t.Fatalf("GarbageCollect: %v", err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1 (the partitioned member)", removed)
	}

	// The reconfigured troupe serves calls from the majority side.
	stub, err := sweeper.Import(ctx, "pkv")
	if err != nil {
		t.Fatal(err)
	}
	if got := stub.Troupe().Degree(); got != 2 {
		t.Fatalf("degree after GC = %d, want 2", got)
	}
	if _, err := stub.Call(ctx, 1, []byte("during"), WithTimeout(2*time.Second)); err != nil {
		t.Fatalf("call during partition: %v", err)
	}

	// Heal and re-add: the member must come back under a fresh troupe
	// ID with no residue from its removal.
	w.sim.Heal()
	if _, err := sweeper.Binder().AddMember(ctx, "pkv", addrs[2]); err != nil {
		t.Fatalf("re-adding healed member: %v", err)
	}

	client := w.node()
	stub2, err := client.Import(ctx, "pkv")
	if err != nil {
		t.Fatal(err)
	}
	if got := stub2.Troupe().Degree(); got != 3 {
		t.Fatalf("degree after re-add = %d, want 3", got)
	}
	before := make([]int64, 3)
	for i, m := range mods {
		before[i] = m.execs.Load()
	}
	if _, err := stub2.Call(ctx, 1, []byte("after"), WithTimeout(2*time.Second)); err != nil {
		t.Fatalf("call after re-add: %v", err)
	}
	for i, m := range mods {
		if m.execs.Load() != before[i]+1 {
			t.Fatalf("member %d executed %d times, want %d (rejoined member must participate)",
				i, m.execs.Load(), before[i]+1)
		}
	}
}
