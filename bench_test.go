package circus

// One testing.B benchmark per table and figure of the dissertation's
// evaluation (see DESIGN.md's experiment index). The formatted
// paper-vs-measured tables are produced by `go run ./cmd/experiments`
// and recorded in EXPERIMENTS.md; the benchmarks here measure the
// underlying operations so `go test -bench` tracks them over time.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"circus/internal/avail"
	"circus/internal/bench"
	"circus/internal/collate"
	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/pairedmsg"
	"circus/internal/probmodel"
	"circus/internal/txn"
	"circus/internal/vaxsim"
	"circus/internal/wire"
)

// BenchmarkTable41 regenerates Table 4.1 (performance of UDP, TCP and
// Circus in the 1985 cost model) once per iteration.
func BenchmarkTable41(b *testing.B) {
	m := vaxsim.Default1985()
	for i := 0; i < b.N; i++ {
		rows := m.Table41()
		if len(rows) != 7 {
			b.Fatal("table shape")
		}
	}
}

// BenchmarkTable42 exercises the cost-model constants lookup behind
// Table 4.2.
func BenchmarkTable42(b *testing.B) {
	m := vaxsim.Default1985()
	var sum float64
	for i := 0; i < b.N; i++ {
		for _, n := range vaxsim.SyscallNames() {
			sum += m.Cost[n]
		}
	}
	_ = sum
}

// BenchmarkTable43 regenerates the Table 4.3 execution profile.
func BenchmarkTable43(b *testing.B) {
	m := vaxsim.Default1985()
	for i := 0; i < b.N; i++ {
		rows := m.Table43()
		if rows[0].Percent[vaxsim.Sendmsg] <= 0 {
			b.Fatal("profile shape")
		}
	}
}

// BenchmarkFigure48 sweeps the Figure 4.8 series (call time vs degree
// of replication, unicast model).
func BenchmarkFigure48(b *testing.B) {
	m := vaxsim.Default1985()
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 8; n++ {
			m.CircusCall(n)
		}
	}
}

// BenchmarkMulticastAnalysis samples the §4.4.2 multicast model
// (max of n exponential round trips, Theorem 4.3).
func BenchmarkMulticastAnalysis(b *testing.B) {
	m := vaxsim.Default1985()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		m.CircusCallMulticast(5, rng)
	}
}

// BenchmarkTroupeCommitDeadlock samples Eq 5.1 rounds (k=3
// conflicting transactions, troupe of 3).
func BenchmarkTroupeCommitDeadlock(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dead := 0
	for i := 0; i < b.N; i++ {
		if txn.SimulateCommitRound(3, 3, rng) {
			dead++
		}
	}
	if b.N > 10000 {
		got := float64(dead) / float64(b.N)
		want := probmodel.DeadlockProbability(3, 3)
		if got < want-0.05 || got > want+0.05 {
			b.Fatalf("deadlock rate %.3f, analytic %.3f", got, want)
		}
	}
}

// BenchmarkOrderedBroadcast measures the Figure 5.1 protocol at the
// queue level: one propose/accept round per iteration.
func BenchmarkOrderedBroadcast(b *testing.B) {
	delivered := 0
	q := txn.NewQueue(func(string, []byte) { delivered++ })
	msg := []byte("payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := string(rune('a'+i%26)) + "-" + itoa(i)
		t := q.Propose(id, msg)
		q.Accept(id, t)
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAvailability runs the Figure 6.3 birth–death Monte-Carlo
// model.
func BenchmarkAvailability(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		res := avail.Simulate(3, 1, 9, 1000, rng)
		if res.Availability <= 0 {
			b.Fatal("simulation shape")
		}
	}
}

// BenchmarkNativeReplicatedCall measures this implementation's
// replicated echo call end to end over the in-memory network, per
// degree of replication — the native analogue of Figure 4.8.
func BenchmarkNativeReplicatedCall(b *testing.B) {
	for _, n := range []int{1, 2, 3, 5} {
		b.Run("degree="+itoa(n), func(b *testing.B) {
			c, err := bench.NewCluster(int64(n), n, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := []byte("0123456789abcdef")
			if err := c.Call(payload); err != nil {
				b.Fatal(err)
			}
			c.Net.ResetStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Call(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Net.Stats().Datagrams)/float64(b.N), "datagrams/op")
		})
	}
}

// BenchmarkNativeMulticastCall measures the multicast implementation
// of the one-to-many call (§4.3.3) on the same workload.
func BenchmarkNativeMulticastCall(b *testing.B) {
	for _, n := range []int{2, 3, 5} {
		b.Run("degree="+itoa(n), func(b *testing.B) {
			c, err := bench.NewClusterMode(int64(n)+400, n, 0, true)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := []byte("0123456789abcdef")
			if err := c.Call(payload); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Call(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNativeFirstComeCall measures the first-come collator on the
// same workload (ablation, §4.3.4).
func BenchmarkNativeFirstComeCall(b *testing.B) {
	c, err := bench.NewCluster(77, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := []byte("x")
	opts := core.CallOptions{Collator: collate.FirstCome}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Client.Call(context.Background(), c.Troupe, 1, payload, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairedMessageExchange measures one reliable call/return
// message exchange at the paired message layer (§4.2) — the modern
// equivalent of the UDP echo row of Table 4.1.
func BenchmarkPairedMessageExchange(b *testing.B) {
	net := netsim.New(1)
	epA, err := net.Listen(net.NewHost(), 0)
	if err != nil {
		b.Fatal(err)
	}
	epB, err := net.Listen(net.NewHost(), 0)
	if err != nil {
		b.Fatal(err)
	}
	opts := pairedmsg.Options{RetransmitInterval: 50 * time.Millisecond}
	ca, cb := pairedmsg.New(epA, opts), pairedmsg.New(epB, opts)
	defer ca.Close()
	defer cb.Close()

	go func() {
		for m := range cb.Incoming() {
			if m.Type == pairedmsg.Call {
				cb.StartSend(m.From, pairedmsg.Return, m.CallNum, m.Data)
			}
		}
	}()

	payload := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cn := ca.NextCallNum(epB.Addr())
		if err := ca.Send(context.Background(), epB.Addr(), pairedmsg.Call, cn, payload); err != nil {
			b.Fatal(err)
		}
		m := <-ca.Incoming()
		if m.CallNum != cn {
			// Multiple returns can interleave only if the benchmark
			// pipelines, which it does not.
			b.Fatal("mismatched return")
		}
	}
}

// BenchmarkMarshal measures externalization of a typical record
// (§7.1's stub-compiler hot path).
func BenchmarkMarshal(b *testing.B) {
	type rec struct {
		Name  string
		Count uint32
		Tags  []string
		Data  []byte
	}
	// Box the record once: the steady-state call path holds its header
	// in a long-lived variable, so per-iteration interface conversion
	// would measure the benchmark harness, not the codec.
	var v any = rec{Name: "troupe", Count: 3, Tags: []string{"a", "b"}, Data: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshal measures internalization of the same record.
func BenchmarkUnmarshal(b *testing.B) {
	type rec struct {
		Name  string
		Count uint32
		Tags  []string
		Data  []byte
	}
	data, err := wire.Marshal(rec{Name: "troupe", Count: 3, Tags: []string{"a", "b"}, Data: make([]byte, 64)})
	if err != nil {
		b.Fatal(err)
	}
	// Reuse the target across iterations: the decoder keeps existing
	// backing store when capacity suffices, which is the steady state
	// for a long-lived reply buffer.
	var out rec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := wire.Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransactionCommit measures a read-modify-write lightweight
// transaction (§5.2).
func BenchmarkTransactionCommit(b *testing.B) {
	s := txn.NewStore(txn.DetectDeadlock)
	seed := s.Begin()
	seed.Set("k", []byte{0})
	seed.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.Begin()
		v, err := t.Get("k")
		if err != nil {
			b.Fatal(err)
		}
		t.Set("k", []byte{v[0] + 1})
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
