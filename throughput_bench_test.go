package circus

// BenchmarkThroughput measures concurrent-call scaling: closed-loop
// caller goroutines drive replicated echo calls through one client
// runtime against troupes of degree 1 and 3, over a 1 ms netsim wire
// (the NativeReplicatedCall experiment's link). A single caller is
// wire-latency-bound, so added callers should multiply calls/sec by
// overlapping round trips — the scaling curve BENCH_4.json records.

import (
	"testing"
	"time"

	"circus/internal/bench"
)

func BenchmarkThroughput(b *testing.B) {
	for _, degree := range []int{1, 3} {
		for _, callers := range []int{1, 4, 16, 64} {
			b.Run("callers="+itoa(callers)+"/degree="+itoa(degree), func(b *testing.B) {
				c, err := bench.NewCluster(int64(100*degree+callers), degree, time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if err := c.Call(bench.ThroughputPayload); err != nil {
					b.Fatal(err)
				}
				c.Net.ResetStats()
				b.ReportAllocs()
				b.ResetTimer()
				if err := c.ConcurrentCalls(callers, b.N); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
				b.ReportMetric(float64(c.Net.Stats().Datagrams)/float64(b.N), "datagrams/op")
			})
		}
	}
}

// BenchmarkThroughputDurable measures the durable member's hot path: a
// degree-3 troupe whose members append-fsync every call to a WAL on an
// in-memory disk with a 50 µs fsync. The fsyncs/op metric is the group
// commit at work — one closed-loop caller pays one fsync per member
// per call (≈3), while concurrent callers share fsync rounds and the
// ratio falls well below the troupe degree.
func BenchmarkThroughputDurable(b *testing.B) {
	const degree = 3
	for _, callers := range []int{1, 16, 64} {
		b.Run("callers="+itoa(callers)+"/degree="+itoa(degree), func(b *testing.B) {
			c, err := bench.NewDurableCluster(int64(200+callers), degree, time.Millisecond, 50*time.Microsecond)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Call(bench.ThroughputPayload); err != nil {
				b.Fatal(err)
			}
			c.Net.ResetStats()
			base := c.Fsyncs()
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.ConcurrentCalls(callers, b.N); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
			b.ReportMetric(float64(c.Fsyncs()-base)/float64(b.N), "fsyncs/op")
		})
	}
}
