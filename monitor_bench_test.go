package circus

// Monitor overhead benchmarks: the online runtime monitor attached to
// the native benchmark clusters in its three configurations — off (a
// nil sink, the disabled fast path), 1-in-64 identity sampling, and
// full observation. The monitor verifies the live stream while the
// benchmark runs; any violation fails the benchmark, so these double
// as always-on conformance runs. The companion test pins the
// contract that the disabled configuration adds exactly nothing.

import (
	"runtime"
	"testing"
	"time"

	"circus/internal/bench"
	"circus/internal/trace"
	"circus/internal/trace/monitor"
)

// monitorModes are the three configurations the overhead sweep runs.
var monitorModes = []struct {
	name string
	mon  func() *monitor.Monitor
}{
	{"off", func() *monitor.Monitor { return nil }},
	{"sampled64", func() *monitor.Monitor { return monitor.New(monitor.Options{SampleRate: 64}) }},
	{"full", func() *monitor.Monitor { return monitor.New(monitor.Options{}) }},
}

// monitorSink narrows a monitor to the kinds its rules read, or
// composes to the nil (disabled) sink when the monitor is off.
func monitorSink(m *monitor.Monitor) trace.Sink {
	if m == nil {
		return nil
	}
	return trace.FilterKinds(m, m.TraceKinds())
}

// finishMonitored fails the benchmark if the live monitor caught a
// protocol violation, and reports what it watched.
func finishMonitored(b *testing.B, m *monitor.Monitor) {
	if m == nil {
		return
	}
	st := m.Stats()
	if st.Violations != 0 {
		b.Fatalf("monitor caught %d violations during the benchmark: %v",
			st.Violations, m.Violations())
	}
	b.ReportMetric(float64(st.Sampled)/float64(b.N), "monitored-events/op")
}

// BenchmarkNativeReplicatedCallMonitored is BenchmarkNativeReplicatedCall
// (degree 3) with the monitor watching the call's full event stream.
func BenchmarkNativeReplicatedCallMonitored(b *testing.B) {
	for _, mode := range monitorModes {
		b.Run("monitor="+mode.name, func(b *testing.B) {
			m := mode.mon()
			c, err := bench.NewClusterSink(3, 3, 0, monitorSink(m))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := []byte("0123456789abcdef")
			if err := c.Call(payload); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Call(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			finishMonitored(b, m)
		})
	}
}

// BenchmarkThroughputMonitored is the 16-caller degree-3 row of
// BenchmarkThroughput under the three monitor configurations — the
// sampled column is the always-on production shape.
func BenchmarkThroughputMonitored(b *testing.B) {
	const degree, callers = 3, 16
	for _, mode := range monitorModes {
		b.Run("monitor="+mode.name, func(b *testing.B) {
			m := mode.mon()
			c, err := bench.NewClusterSink(int64(100*degree+callers), degree, time.Millisecond, monitorSink(m))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Call(bench.ThroughputPayload); err != nil {
				b.Fatal(err)
			}
			c.Net.ResetStats()
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.ConcurrentCalls(callers, b.N); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
			b.ReportMetric(float64(c.Net.Stats().Datagrams)/float64(b.N), "datagrams/op")
			finishMonitored(b, m)
		})
	}
}

// TestMonitorDisabledAddsNoAllocs pins the zero-cost-when-off
// contract: the off configuration composes to the nil sink, so every
// emitter's EnabledFor guard short-circuits and a replicated call
// allocates exactly what it does with no tracing at all.
func TestMonitorDisabledAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	if s := monitorSink(nil); s != nil {
		t.Fatal("disabled monitor must compose to the nil sink")
	}
	if s := trace.Multi(nil, monitorSink(nil)); s != nil {
		t.Fatal("sink fan-out over a disabled monitor must stay nil")
	}
	// callAllocs is the steady-state allocation cost of one call: the
	// minimum per-call malloc delta over a batch. The minimum — not
	// the AllocsPerRun mean — because periodic maintenance (completed-
	// record expiry sweeps, pool refills) spikes a few calls per
	// hundred, and integer-dividing those spikes into a mean flips it
	// between adjacent integers run to run. The cheapest call is exact.
	callAllocs := func(sink trace.Sink) uint64 {
		c, err := bench.NewClusterSink(31, 3, 0, sink)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		payload := []byte("0123456789abcdef")
		if err := c.Call(payload); err != nil {
			t.Fatal(err)
		}
		min := ^uint64(0)
		var before, after runtime.MemStats
		for i := 0; i < 100; i++ {
			runtime.ReadMemStats(&before)
			if err := c.Call(payload); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&after)
			if d := after.Mallocs - before.Mallocs; d < min {
				min = d
			}
		}
		return min
	}
	base := callAllocs(nil)
	off := callAllocs(monitorSink(nil))
	if off != base {
		t.Fatalf("disabled monitor changed allocations: %d allocs/op vs %d baseline", off, base)
	}
}
