package circus

import (
	"errors"

	"circus/internal/trace"
	"circus/internal/wal"
)

// Write-ahead durability, re-exported. A durable troupe member logs
// its acked state changes to disk before replying, snapshots
// periodically, and on restart recovers snapshot-plus-tail locally —
// so even a whole-troupe power failure, which replication alone
// cannot mask, loses no acknowledged update.
type (
	// WAL is a member's segmented write-ahead log.
	WAL = wal.Log
	// WALRecovered is what opening a log salvaged from the disk.
	WALRecovered = wal.Recovered
	// WALStats counts a log's appends, fsyncs, and snapshots.
	WALStats = wal.Stats
	// DurableFS is the injectable filesystem logs live on.
	DurableFS = wal.FS
)

// Durability configures the disk backing a node's durable modules.
// Each log opened on the node lives in its own namespace of the disk.
type Durability struct {
	// Dir roots the logs in a real directory. Ignored when FS is set.
	Dir string
	// FS overrides the disk — an in-memory filesystem with fault
	// injection for tests and the chaos harness, or any custom FS.
	FS DurableFS
	// SegmentBytes rotates a log's active segment once it exceeds
	// this size; 0 means 1 MiB.
	SegmentBytes int
	// SnapshotEvery snapshots a durable module once this many records
	// have accumulated past the last snapshot; 0 means 1024.
	SnapshotEvery int
}

// WithDurability gives the node a disk: modules created through the
// durable constructors (e.g. NewDurableTransactionalStore) write-ahead
// log their state there and recover it on restart. Nodes without this
// option keep every module in memory, as before.
func WithDurability(d Durability) Option {
	return func(c *nodeConfig) { c.durable = &d }
}

// OpenWAL opens (or recovers) the named write-ahead log on the node's
// configured disk. Each name is an independent namespace, so one node
// can host several durable modules. The returned recovery image holds
// whatever a previous incarnation made durable; a fresh log recovers
// empty. Fails unless the node was created with WithDurability.
func (n *Node) OpenWAL(name string) (*WAL, *WALRecovered, error) {
	if n.durable == nil {
		return nil, nil, errors.New("circus: node has no disk (create it with WithDurability)")
	}
	fs := n.durable.FS
	if fs == nil {
		if n.durable.Dir == "" {
			return nil, nil, errors.New("circus: Durability needs Dir or FS")
		}
		fs = wal.DirFS(n.durable.Dir)
	}
	snapEvery := n.durable.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 1024
	}
	var sink trace.Sink
	if tr := n.rt.Tracer(); tr.Enabled() {
		sink = tr
	}
	return wal.Open(wal.Options{
		FS:            fs.Sub(name),
		SegmentBytes:  n.durable.SegmentBytes,
		SnapshotEvery: snapEvery,
		Trace:         sink,
		Name:          name,
	})
}

// DiskDir returns a directory-backed disk for Durability.FS, should a
// caller want to share one disk across nodes or inspect it directly.
func DiskDir(dir string) DurableFS { return wal.DirFS(dir) }
