package circus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"circus/internal/collate"
	"circus/internal/core"
	"circus/internal/pairedmsg"
	"circus/internal/ringmaster"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/trace/monitor"
	"circus/internal/transport"
	"circus/internal/udptrans"
)

// Option configures a Node.
type Option func(*nodeConfig)

type nodeConfig struct {
	binder    []ModuleAddr
	msg       pairedmsg.Options
	m2oWait   time.Duration
	retention time.Duration
	multicast bool
	trace     []trace.Sink
	metrics   bool
	monitor   *monitor.Options
	durable   *Durability
}

// WithMulticast enables the multicast implementation of one-to-many
// calls (§4.3.3) when the transport supports it (the simulated network
// does; plain UDP does not): call messages reach the whole server
// troupe in one send operation.
func WithMulticast() Option {
	return func(c *nodeConfig) { c.multicast = true }
}

// WithBinder points the node at a Ringmaster troupe, given the module
// addresses of its members (the degenerate bootstrap binding of §6.3).
func WithBinder(members []ModuleAddr) Option {
	return func(c *nodeConfig) { c.binder = append([]ModuleAddr(nil), members...) }
}

// WithTrace attaches a structured event sink to the node: the paired
// message layer, the call layers, and any Ringmaster service hosted on
// this node emit trace events into it. Multiple WithTrace options
// compose. A nil sink is ignored; with no sink the tracing hot paths
// compile to a single nil check.
func WithTrace(sink trace.Sink) Option {
	return func(c *nodeConfig) {
		if sink != nil {
			c.trace = append(c.trace, sink)
		}
	}
}

// WithMetrics attaches an in-process metrics aggregator — per-kind
// event counters, per-peer message counters, per-troupe call counters,
// and a call-latency histogram — queryable via Node.Metrics().
func WithMetrics() Option {
	return func(c *nodeConfig) { c.metrics = true }
}

// WithMonitor attaches the online protocol monitor as a trace sink:
// invariant breaches (duplicate execution, ack-before-send, …) surface
// the moment they happen, queryable via Node.Monitor(). When combined
// with WithMetrics, every breach is also counted per invariant in the
// node's metrics snapshot, unless opts.Metrics already routes the
// counts elsewhere.
func WithMonitor(opts monitor.Options) Option {
	return func(c *nodeConfig) { c.monitor = &opts }
}

// WithTimers overrides the paired message protocol timers: the
// retransmission interval and the probe interval; retry bounds scale
// accordingly (§4.2.3).
func WithTimers(retransmit, probe time.Duration) Option {
	return func(c *nodeConfig) {
		c.msg.RetransmitInterval = retransmit
		c.msg.ProbeInterval = probe
	}
}

// WithAdaptiveRetransmit switches the paired message layer from the
// fixed retransmission interval to per-peer RTT estimation with
// exponential backoff between passes (§4.2.4); crash detection
// latency is unchanged.
func WithAdaptiveRetransmit() Option {
	return func(c *nodeConfig) { c.msg.Adaptive = true }
}

// WithManyToOneWait overrides how long a server waits for the
// remaining call messages of a replicated call after the first arrives
// (§4.3.2).
func WithManyToOneWait(d time.Duration) Option {
	return func(c *nodeConfig) { c.m2oWait = d }
}

// fastSimTimers are brisk defaults appropriate to an in-memory
// network.
func fastSimTimers() pairedmsg.Options {
	return pairedmsg.Options{
		RetransmitInterval: 20 * time.Millisecond,
		MaxRetries:         20,
		ProbeInterval:      40 * time.Millisecond,
		ProbeMissLimit:     5,
	}
}

// Node is one Circus process: a runtime bound to a network endpoint,
// optionally attached to a binding agent. On a SimNetwork each node is
// also its own simulated machine.
type Node struct {
	rt      *core.Runtime
	binder  *ringmaster.Client
	metrics *trace.Metrics   // nil unless WithMetrics
	monitor *monitor.Monitor // nil unless WithMonitor
	durable *Durability      // nil unless WithDurability

	// suspicion is shared by every resilient stub of this node, so one
	// stub's crash evidence spares the others a timeout.
	suspicion *core.Suspicion

	mu        sync.Mutex
	exports   map[string]uint16 // name -> module number
	ringSvc   *ringmaster.Service
	ringAddrs []ModuleAddr
}

// NewNode creates a node on a fresh simulated machine.
func (s *SimNetwork) NewNode(opts ...Option) (*Node, error) {
	ep, err := s.net.Listen(s.net.NewHost(), 0)
	if err != nil {
		return nil, err
	}
	return newNode(ep, fastSimTimers(), opts...)
}

// NewNodeOnHost creates an additional node (process) on the machine of
// an existing node, sharing its failure mode.
func (s *SimNetwork) NewNodeOnHost(peer *Node, opts ...Option) (*Node, error) {
	ep, err := s.net.Listen(peer.rt.Addr().Host, 0)
	if err != nil {
		return nil, err
	}
	return newNode(ep, fastSimTimers(), opts...)
}

// ListenUDP creates a node on a real UDP loopback socket (port 0
// selects a free port), the multi-process deployment of §4.2.
func ListenUDP(port uint16, opts ...Option) (*Node, error) {
	ep, err := udptrans.Listen(port)
	if err != nil {
		return nil, err
	}
	return newNode(ep, pairedmsg.Options{}, opts...)
}

// ListenUDPSharded creates a node on a sharded UDP endpoint: shards
// SO_REUSEPORT sockets with per-shard drain loops (and, when the
// kernel grants it, io_uring batch sends) behind one address. The
// kernel-transport deployment for multi-core machines; shards of 1 is
// equivalent to ListenUDP with the pooled receive path.
func ListenUDPSharded(port uint16, shards int, opts ...Option) (*Node, error) {
	ep, err := udptrans.ListenSharded(port, shards)
	if err != nil {
		return nil, err
	}
	return newNode(ep, pairedmsg.Options{}, opts...)
}

func newNode(ep transport.Endpoint, msg pairedmsg.Options, opts ...Option) (*Node, error) {
	cfg := nodeConfig{msg: msg}
	for _, o := range opts {
		o(&cfg)
	}
	var metrics *trace.Metrics
	if cfg.metrics {
		metrics = trace.NewMetrics()
		cfg.trace = append(cfg.trace, metrics)
	}
	var mon *monitor.Monitor
	if cfg.monitor != nil {
		if cfg.monitor.Metrics == nil {
			cfg.monitor.Metrics = metrics // nil when metrics are off: monitor counts alone
		}
		mon = monitor.New(*cfg.monitor)
		cfg.trace = append(cfg.trace, mon)
	}
	rt := core.NewRuntime(ep, core.Options{
		Message:          cfg.msg,
		ManyToOneTimeout: cfg.m2oWait,
		CallRetention:    cfg.retention,
		Multicast:        cfg.multicast,
		Trace:            trace.Multi(cfg.trace...),
	})
	n := &Node{rt: rt, metrics: metrics, monitor: mon, durable: cfg.durable, suspicion: core.NewSuspicion(), exports: make(map[string]uint16)}
	if len(cfg.binder) > 0 {
		n.binder = ringmaster.NewClient(rt, Troupe{Members: cfg.binder})
		rt.SetResolver(n.binder)
	}
	return n, nil
}

// Addr returns the node's process address.
func (n *Node) Addr() Addr { return n.rt.Addr() }

// Runtime exposes the underlying runtime for advanced use (the
// experiment harness and tests).
func (n *Node) Runtime() *core.Runtime { return n.rt }

// Metrics returns the node's metrics aggregator, or nil unless the
// node was created with WithMetrics.
func (n *Node) Metrics() *trace.Metrics { return n.metrics }

// Monitor returns the node's online protocol monitor, or nil unless
// the node was created with WithMonitor.
func (n *Node) Monitor() *monitor.Monitor { return n.monitor }

// Close shuts the node down.
func (n *Node) Close() error { return n.rt.Close() }

// Context returns a context carrying a fresh distributed thread rooted
// at this node (§3.4.1). Calls made with contexts derived from it
// propagate the thread ID.
func (n *Node) Context(parent context.Context) context.Context {
	return thread.NewContext(parent, n.rt.NewThread())
}

// ExportOption configures an export.
type ExportOption func(*core.ExportOptions)

// WithArgFirstCome makes the module execute a replicated call as soon
// as the first client member's call message arrives (§4.3.4).
func WithArgFirstCome() ExportOption {
	return func(o *core.ExportOptions) { o.Policy = core.ArgFirstCome }
}

// WithArgMajority makes the module wait for call messages from a
// majority of the client troupe (§4.3.5).
func WithArgMajority() ExportOption {
	return func(o *core.ExportOptions) { o.Policy = core.ArgMajority }
}

// WithDivergentArgs permits client troupe members to send different
// argument messages, for modules using explicit replication that
// collate arguments themselves via ServerCall.Args (§7.4).
func WithDivergentArgs() ExportOption {
	return func(o *core.ExportOptions) { o.AllowDivergentArgs = true }
}

// Export makes the module available under the given interface name:
// the module is exported on this node and, when a binder is
// configured, added as a member of the troupe registered under name
// (§6.3: if no troupe is associated with the name, a new one is
// created with this module as its only member).
func (n *Node) Export(name string, m Module, opts ...ExportOption) (ModuleAddr, error) {
	var eo core.ExportOptions
	for _, o := range opts {
		o(&eo)
	}
	addr := n.rt.Export(m, eo)
	n.mu.Lock()
	n.exports[name] = addr.Module
	n.mu.Unlock()
	if n.binder != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := n.binder.AddMember(ctx, name, addr); err != nil {
			n.rt.Unexport(addr.Module)
			return ModuleAddr{}, fmt.Errorf("circus: registering %q: %w", name, err)
		}
	}
	return addr, nil
}

// ExportLocal exports a module on this node without registering it
// with the binding agent; a third party — typically the configuration
// manager (§7.5.3) — registers the assembled troupe afterwards.
func (n *Node) ExportLocal(name string, m Module, opts ...ExportOption) ModuleAddr {
	var eo core.ExportOptions
	for _, o := range opts {
		o(&eo)
	}
	addr := n.rt.Export(m, eo)
	n.mu.Lock()
	n.exports[name] = addr.Module
	n.mu.Unlock()
	return addr
}

// FetchState retrieves the externalized module state of the troupe
// registered under name via its get_state procedure (§6.4.1), for
// initializing a fresh replica.
func (n *Node) FetchState(ctx context.Context, name string) ([]byte, error) {
	if n.binder == nil {
		return nil, errors.New("circus: FetchState requires a binder")
	}
	existing, err := n.binder.LookupByName(ctx, name)
	if err != nil {
		return nil, err
	}
	return n.rt.Call(ctx, existing, core.ProcGetState, nil, core.CallOptions{})
}

// JoinTroupe adds this node as a new member of an existing troupe,
// first bringing the module into a state consistent with the other
// members by calling their get_state procedure (§6.4.1), then
// registering with the binding agent. The module must implement
// StateProvider if the troupe already exists.
func (n *Node) JoinTroupe(ctx context.Context, name string, m Module, opts ...ExportOption) (ModuleAddr, error) {
	if n.binder == nil {
		return ModuleAddr{}, errors.New("circus: JoinTroupe requires a binder")
	}
	existing, err := n.binder.LookupByName(ctx, name)
	if err == nil && existing.Degree() > 0 {
		sp, ok := m.(StateProvider)
		if !ok {
			return ModuleAddr{}, fmt.Errorf("circus: module %q does not support state transfer", name)
		}
		// The states of the existing members are consistent and
		// get_state is side-effect free, so an unreplicated call to
		// any member would suffice (§6.4.1); calling the whole troupe
		// with the unanimous collator additionally verifies troupe
		// consistency at no algorithmic cost.
		state, err := n.rt.Call(ctx, existing, core.ProcGetState, nil, core.CallOptions{})
		if err != nil {
			return ModuleAddr{}, fmt.Errorf("circus: get_state from %q: %w", name, err)
		}
		if err := sp.SetState(state); err != nil {
			return ModuleAddr{}, fmt.Errorf("circus: internalizing state: %w", err)
		}
	}
	return n.Export(name, m, opts...)
}

// ServeRingmaster starts a Ringmaster binding agent member on this
// node (§6.3). Returns its module address, to be handed to other nodes
// via WithBinder.
func (n *Node) ServeRingmaster() (ModuleAddr, error) {
	n.mu.Lock()
	if n.ringSvc == nil {
		n.ringSvc = ringmaster.NewService()
		n.ringSvc.Tracer = n.rt.Tracer()
	}
	svc := n.ringSvc
	n.mu.Unlock()
	addr := n.rt.Export(svc, core.ExportOptions{})
	n.mu.Lock()
	n.ringAddrs = append(n.ringAddrs, addr)
	n.mu.Unlock()
	// The Ringmaster resolves client troupe IDs from its own registry:
	// it is its own resolver.
	n.rt.SetResolver(resolverFunc(func(id TroupeID) ([]ModuleAddr, error) {
		res, err := svc.Dispatch(nil, ringmaster.ProcLookupByID, mustMarshal(uint64(id)))
		if err != nil {
			return nil, err
		}
		var rep struct {
			ID      uint64
			Members []struct {
				Host   uint32
				Port   uint16
				Module uint16
			}
		}
		if err := Unmarshal(res, &rep); err != nil {
			return nil, err
		}
		var members []ModuleAddr
		for _, w := range rep.Members {
			members = append(members, ModuleAddr{
				Addr:   Addr{Host: w.Host, Port: w.Port},
				Module: w.Module,
			})
		}
		return members, nil
	}))
	return addr, nil
}

type resolverFunc func(TroupeID) ([]ModuleAddr, error)

func (f resolverFunc) LookupByID(id TroupeID) ([]ModuleAddr, error) { return f(id) }

func mustMarshal(v any) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Binder returns the node's Ringmaster client, or nil.
func (n *Node) Binder() *ringmaster.Client { return n.binder }

// BinderAddrs returns the binding-agent member addresses this node
// serves (after ServeRingmaster), suitable for WithBinder on other
// nodes.
func (n *Node) BinderAddrs() []ModuleAddr {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]ModuleAddr(nil), n.ringAddrs...)
}

// Import binds to the troupe registered under name and returns a stub
// for calling it. The binding is cached; stale bindings are detected
// via troupe IDs and refreshed transparently (§6.1–6.2).
func (n *Node) Import(ctx context.Context, name string) (*Stub, error) {
	if n.binder == nil {
		return nil, errors.New("circus: Import requires a binder")
	}
	t, err := n.binder.LookupByName(ctx, name)
	if err != nil {
		return nil, err
	}
	return &Stub{node: n, name: name, troupe: t}, nil
}

// StubFor returns a stub for an explicitly supplied troupe, bypassing
// the binding agent (used with static configurations and the
// configuration manager).
func (n *Node) StubFor(t Troupe) *Stub {
	return &Stub{node: n, troupe: t}
}

// ImportResilient binds to the troupe registered under name and
// returns a self-healing stub: calls through it retry member crashes
// and transient partitions with exponential backoff, rebind on stale
// bindings, and skip members recently presumed crashed instead of
// timing out against them anew (suspicion is shared node-wide). See
// ResilientOptions for retry safety: a retried call may re-execute
// the procedure, so operations should be idempotent.
func (n *Node) ImportResilient(ctx context.Context, name string, opts ResilientOptions) (*ResilientStub, error) {
	if n.binder == nil {
		return nil, errors.New("circus: ImportResilient requires a binder")
	}
	if opts.Suspicion == nil {
		opts.Suspicion = n.suspicion
	}
	rc, err := n.binder.NewResilientCaller(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	return &ResilientStub{rc: rc}, nil
}

// ResilientStub is a self-healing client-side handle on a troupe,
// produced by ImportResilient.
type ResilientStub struct {
	rc *core.ResilientCaller
}

// Call performs a replicated procedure call, transparently riding out
// member crashes, partitions, and binder-driven reconfigurations
// within the retry budget.
func (s *ResilientStub) Call(ctx context.Context, proc uint16, args []byte, opts ...CallOption) ([]byte, error) {
	var co core.CallOptions
	for _, o := range opts {
		o(&co)
	}
	return s.rc.Call(ctx, proc, args, co)
}

// Troupe returns the stub's current binding.
func (s *ResilientStub) Troupe() Troupe { return s.rc.Troupe() }

// Stats reports the stub's recovery counters.
func (s *ResilientStub) Stats() ResilientStats { return s.rc.Stats() }

// GarbageCollect probes every registered troupe member and removes
// those that do not answer (§6.1).
func (n *Node) GarbageCollect(ctx context.Context, probeTimeout time.Duration) (int, error) {
	if n.binder == nil {
		return 0, errors.New("circus: GarbageCollect requires a binder")
	}
	return n.binder.GarbageCollect(ctx, probeTimeout)
}

// CallOption tunes one replicated call.
type CallOption func(*core.CallOptions)

// WithCollator selects the collator applied to the return messages.
func WithCollator(mk func(n int) Collator) CallOption {
	return func(o *core.CallOptions) {
		o.Collator = func(n int) collate.Collator { return mk(n) }
	}
}

// WithFirstCome is shorthand for the first-come collator (§4.3.4).
func WithFirstCome() CallOption { return WithCollator(FirstCome) }

// WithMajority is shorthand for the majority collator.
func WithMajority() CallOption { return WithCollator(Majority) }

// WithTimeout bounds the call.
func WithTimeout(d time.Duration) CallOption {
	return func(o *core.CallOptions) { o.Timeout = d }
}

// AsTroupe marks the caller as a member of the given troupe so the
// callee collates the calls of all its members (§4.3.2); used with
// explicit replication.
func AsTroupe(id TroupeID) CallOption {
	return func(o *core.CallOptions) { o.AsTroupe = id }
}

// Stub is a client-side handle on a troupe. It performs replicated
// procedure calls with exactly-once execution at all members and
// transparently rebinds when the cached troupe membership proves stale
// (§6.1).
type Stub struct {
	node *Node
	name string

	mu     sync.Mutex
	troupe Troupe
}

// Troupe returns the stub's current binding.
func (s *Stub) Troupe() Troupe {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.troupe
}

// Call performs a replicated procedure call: proc is the procedure
// number within the module interface, args the externalized
// parameters. On a stale binding the stub rebinds via the binding
// agent and retries (§6.1).
func (s *Stub) Call(ctx context.Context, proc uint16, args []byte, opts ...CallOption) ([]byte, error) {
	var co core.CallOptions
	for _, o := range opts {
		o(&co)
	}
	const rebindAttempts = 3
	for attempt := 0; ; attempt++ {
		res, err := s.node.rt.Call(ctx, s.Troupe(), proc, args, co)
		var stale *StaleBindingError
		if err == nil || !errors.As(err, &stale) || attempt >= rebindAttempts ||
			s.node.binder == nil || s.name == "" {
			return res, err
		}
		fresh, rerr := s.node.binder.Rebind(ctx, s.name, s.Troupe())
		if rerr != nil {
			return nil, fmt.Errorf("circus: rebinding %q: %w", s.name, rerr)
		}
		if tr := s.node.rt.Tracer(); tr.Enabled() {
			tr.Emit(trace.Event{Kind: trace.KindRebind,
				Troupe: uint64(fresh.ID), N: fresh.Degree(), Detail: s.name})
		}
		s.mu.Lock()
		s.troupe = fresh
		s.mu.Unlock()
	}
}

// CallEach performs the one-to-many call and returns the raw generator
// of member replies, for explicit replication (§7.4): the caller
// collates them itself, may stop early, and every member still
// executes exactly once.
func (s *Stub) CallEach(ctx context.Context, proc uint16, args []byte, opts ...CallOption) (<-chan Reply, int) {
	var co core.CallOptions
	for _, o := range opts {
		o(&co)
	}
	t := s.Troupe()
	return s.node.rt.CallEach(ctx, t, proc, args, co), t.Degree()
}

// Ping runs the null procedure at every member (§6.1).
func (s *Stub) Ping(ctx context.Context, opts ...CallOption) error {
	_, err := s.Call(ctx, core.ProcPing, nil, opts...)
	return err
}

// CallWatchdog implements the watchdog scheme of §4.3.4: computation
// proceeds with the first reply, while a watchdog keeps collecting the
// remaining replies and compares them with the first. The returned
// channel yields exactly one value once all members have answered:
// nil if they agreed, ErrDisagreement (or the member errors) if not —
// the signal to abort the surrounding transaction. Exactly-once
// execution at all members is unaffected.
func (s *Stub) CallWatchdog(ctx context.Context, proc uint16, args []byte, opts ...CallOption) ([]byte, <-chan error, error) {
	items, n := s.CallEach(ctx, proc, args, opts...)
	verdict := make(chan error, 1)

	var first Reply
	got := false
	consumed := 0
	for consumed < n {
		it := <-items
		consumed++
		if it.Err == nil {
			first = it
			got = true
			break
		}
		first = it
	}
	if !got {
		verdict <- first.Err
		close(verdict)
		return nil, verdict, first.Err
	}

	go func() {
		defer close(verdict)
		var bad error
		for i := consumed; i < n; i++ {
			it := <-items
			switch {
			case it.Err != nil:
				// A crashed member is masked, not an inconsistency.
			case !bytes.Equal(it.Data, first.Data):
				bad = ErrDisagreement
			}
		}
		verdict <- bad
	}()
	return first.Data, verdict, nil
}
