package bench

import (
	"time"

	"circus/internal/core"
	"circus/internal/wal"
)

// walMod is the durable counterpart of echoMod: every call is appended
// to the member's write-ahead log and fsynced before the reply, the
// redo-log-then-ack discipline of a durable troupe member. Concurrent
// calls share fsyncs through the log's group commit, which is exactly
// what the fsyncs/op metric of the durable throughput benchmark
// measures.
type walMod struct {
	log *wal.Log
}

func (m walMod) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	if _, err := m.log.AppendSync(args); err != nil {
		return nil, err
	}
	return nil, nil
}

// DurableCluster is a Cluster whose members append-fsync every call to
// a write-ahead log on an injected in-memory disk.
type DurableCluster struct {
	*Cluster
	Logs []*wal.Log
}

// NewDurableCluster builds an n-member durable troupe over a simulated
// network: each member owns an in-memory disk whose fsyncs take
// syncDelay — the realistic cost that makes group commit worth
// measuring.
func NewDurableCluster(seed int64, n int, wireDelay, syncDelay time.Duration) (*DurableCluster, error) {
	d := &DurableCluster{}
	for i := 0; i < n; i++ {
		fs := wal.NewMemFS(seed + int64(i))
		fs.SetSyncDelay(syncDelay)
		log, _, err := wal.Open(wal.Options{FS: fs, SegmentBytes: 1 << 22})
		if err != nil {
			return nil, err
		}
		d.Logs = append(d.Logs, log)
	}
	c, err := newClusterWith(seed, n, wireDelay, false, Trace, func(i int) core.Module {
		return walMod{log: d.Logs[i]}
	})
	if err != nil {
		return nil, err
	}
	d.Cluster = c
	return d, nil
}

// Fsyncs sums the members' fsync counts.
func (d *DurableCluster) Fsyncs() uint64 {
	var n uint64
	for _, l := range d.Logs {
		n += l.Stats().Fsyncs
	}
	return n
}

// Close tears down the cluster and the logs.
func (d *DurableCluster) Close() {
	d.Cluster.Close()
	for _, l := range d.Logs {
		l.Close()
	}
}
