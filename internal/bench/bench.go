// Package bench is the experiment harness: for every table and figure
// in the dissertation's evaluation it regenerates the corresponding
// rows and prints them beside the paper's published numbers. It is
// driven by cmd/experiments and by the testing.B benchmarks in the
// repository root.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"circus/internal/avail"
	"circus/internal/probmodel"
	"circus/internal/txn"
	"circus/internal/vaxsim"
)

// Paper41 is Table 4.1 as printed: real, total CPU, user CPU, kernel
// CPU milliseconds per call.
var Paper41 = map[string][4]float64{
	"(UDP)": {26.5, 13.3, 0.8, 12.4},
	"(TCP)": {23.2, 8.3, 0.5, 7.8},
	"1":     {48.0, 24.1, 5.9, 18.2},
	"2":     {58.0, 45.2, 10.0, 35.2},
	"3":     {69.4, 66.8, 13.0, 53.8},
	"4":     {90.2, 87.2, 16.8, 70.4},
	"5":     {109.5, 107.2, 21.0, 86.1},
}

// Paper43Sendmsg is the sendmsg share (%) of Table 4.3 by degree.
var Paper43Sendmsg = map[int]float64{1: 27.2, 2: 28.8, 3: 32.5, 4: 32.9, 5: 33.0}

// Table41 regenerates Table 4.1 (performance of UDP, TCP, and Circus)
// from the cost model, paper numbers alongside.
func Table41() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4.1 — Performance of UDP, TCP, and Circus (ms per call)\n")
	fmt.Fprintf(&b, "%-8s | %31s | %31s\n", "degree", "model: real  cpu   user  kern", "paper: real  cpu   user  kern")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 78))
	m := vaxsim.Default1985()
	for _, r := range m.Table41() {
		p := Paper41[r.Label]
		fmt.Fprintf(&b, "%-8s | %7.1f %6.1f %6.1f %6.1f | %7.1f %6.1f %6.1f %6.1f\n",
			r.Label, r.Real, r.TotalCPU, r.UserCPU, r.KernelCPU, p[0], p[1], p[2], p[3])
	}
	b.WriteString("shape: TCP echo beats UDP echo; Circus(1) ≈ 2× UDP; every column grows\n")
	b.WriteString("linearly with the degree of replication (≈21 ms CPU per extra member).\n")
	return b.String()
}

// Table42 regenerates Table 4.2 (CPU time of the six Berkeley 4.2BSD
// system calls): the measured constants that drive the model.
func Table42() string {
	var b strings.Builder
	b.WriteString("Table 4.2 — CPU time for Berkeley 4.2BSD system calls used in Circus\n")
	fmt.Fprintf(&b, "%-14s %10s   %s\n", "system call", "ms/call", "role")
	desc := map[string]string{
		vaxsim.Sendmsg:      "send datagram (scatter/gather copy)",
		vaxsim.Recvmsg:      "receive datagram",
		vaxsim.Select:       "inquire if datagram has arrived",
		vaxsim.Setitimer:    "start interval timer for clock interrupt",
		vaxsim.Gettimeofday: "get time of day",
		vaxsim.Sigblock:     "mask software interrupts (critical region)",
	}
	m := vaxsim.Default1985()
	for _, name := range vaxsim.SyscallNames() {
		fmt.Fprintf(&b, "%-14s %10.1f   %s\n", name, m.Cost[name], desc[name])
	}
	return b.String()
}

// Table43 regenerates Table 4.3 (execution profile of Circus
// replicated procedure calls).
func Table43() string {
	var b strings.Builder
	b.WriteString("Table 4.3 — Execution profile: % of client CPU per system call\n")
	fmt.Fprintf(&b, "%-7s", "degree")
	for _, n := range vaxsim.SyscallNames() {
		fmt.Fprintf(&b, " %12s", n)
	}
	fmt.Fprintf(&b, " %10s %14s\n", "six total", "paper sendmsg")
	m := vaxsim.Default1985()
	for _, row := range m.Table43() {
		fmt.Fprintf(&b, "%-7d", row.Degree)
		for _, n := range vaxsim.SyscallNames() {
			fmt.Fprintf(&b, " %11.1f%%", row.Percent[n])
		}
		fmt.Fprintf(&b, " %9.1f%% %13.1f%%\n", row.SixCallTotal, Paper43Sendmsg[row.Degree])
	}
	b.WriteString("shape: sendmsg dominates and its share rises with the degree of\n")
	b.WriteString("replication; the six calls account for more than half the CPU time.\n")
	return b.String()
}

// Figure48 regenerates Figure 4.8 (performance of Circus replicated
// procedure calls vs troupe size) as a text series, with linear fits,
// plus the §4.4.2 multicast prediction for contrast.
func Figure48() string {
	var b strings.Builder
	b.WriteString("Figure 4.8 — Circus call time vs degree of replication\n")
	fmt.Fprintf(&b, "%-7s %10s %10s %10s %10s | %12s\n",
		"degree", "real ms", "cpu ms", "user ms", "kernel ms", "multicast E[T]")
	m := vaxsim.Default1985()
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	var reals, cpus []float64
	for _, n := range xs {
		r := m.CircusCall(n)
		reals = append(reals, r.Real)
		cpus = append(cpus, r.TotalCPU)
		fmt.Fprintf(&b, "%-7d %10.1f %10.1f %10.1f %10.1f | %12.1f\n",
			n, r.Real, r.TotalCPU, r.UserCPU, r.KernelCPU, m.ExpectedMulticastReal(n))
	}
	rs, ri := probmodel.LinearFit(xs, reals)
	cs, ci := probmodel.LinearFit(xs, cpus)
	fmt.Fprintf(&b, "linear fits: real ≈ %.1f·n + %.1f ms; cpu ≈ %.1f·n + %.1f ms\n", rs, ri, cs, ci)
	b.WriteString("shape: point-to-point sendmsg makes every component linear in troupe\n")
	b.WriteString("size; the multicast analysis of §4.4.2 grows only logarithmically.\n")
	return b.String()
}

// MulticastAnalysis validates Theorem 4.3 (E[max of n exponentials] =
// H_n·mean) by Monte-Carlo and shows the resulting latency scaling.
func MulticastAnalysis(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("§4.4.2 — Multicast replicated call latency: E[T] = H_n · r (Theorem 4.3)\n")
	fmt.Fprintf(&b, "%-7s %8s %14s %14s %10s\n", "n", "H_n", "analytic E[T]", "sampled E[T]", "error")
	const mean = 21.7 // round-trip mean r from the cost model, ms
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 32} {
		analytic := probmodel.ExpectedMaxExponential(n, mean)
		sampled := probmodel.MeanMaxExponential(n, mean, 20000, rng)
		fmt.Fprintf(&b, "%-7d %8.3f %14.1f %14.1f %9.1f%%\n",
			n, probmodel.HarmonicNumber(n), analytic, sampled,
			100*(sampled-analytic)/analytic)
	}
	b.WriteString("shape: time per call grows logarithmically with troupe size under\n")
	b.WriteString("multicast, versus linearly under repeated point-to-point sends.\n")
	return b.String()
}

// Eq51 regenerates the §5.3.1 analysis: P[deadlock] = 1 − (1/k!)^(n−1)
// under the troupe commit protocol, analytic vs sampled rounds.
func Eq51(seed int64, trials int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("Eq 5.1 — Troupe commit deadlock probability, analytic vs simulated\n")
	fmt.Fprintf(&b, "%-4s %-4s %12s %12s\n", "k", "n", "analytic", "simulated")
	for _, k := range []int{1, 2, 3, 4, 5} {
		for _, n := range []int{2, 3, 5} {
			dead := 0
			for i := 0; i < trials; i++ {
				if txn.SimulateCommitRound(k, n, rng) {
					dead++
				}
			}
			fmt.Fprintf(&b, "%-4d %-4d %12.4f %12.4f\n",
				k, n, probmodel.DeadlockProbability(k, n), float64(dead)/float64(trials))
		}
	}
	b.WriteString("shape: the optimistic protocol starves as conflicting transactions (k)\n")
	b.WriteString("or troupe size (n) grow — the paper's motivation for the ordered\n")
	b.WriteString("broadcast alternative (§5.4).\n")
	return b.String()
}

// Figure63 regenerates the §6.4.2 reliability analysis: availability
// vs degree and failure/repair ratio, analytic vs Monte-Carlo, plus
// the required-replacement-time table with the paper's worked
// examples.
func Figure63(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("Figure 6.3 / Eqs 6.1–6.2 — Birth–death model of troupe reliability\n")
	fmt.Fprintf(&b, "%-4s %-10s %14s %14s\n", "n", "λ/μ", "analytic A", "simulated A")
	for _, n := range []int{1, 2, 3, 5} {
		for _, ratio := range []float64{0.5, 0.111111} {
			lambda, mu := 1.0, 1.0/ratio
			analytic := avail.Availability(n, lambda, mu)
			sim := avail.Simulate(n, lambda, mu, 300000, rng)
			fmt.Fprintf(&b, "%-4d %-10.3f %14.6f %14.6f\n", n, ratio, analytic, sim.Availability)
		}
	}
	b.WriteString("\nEq 6.2 — required replacement time for 99.9% availability, lifetime 1h:\n")
	for _, n := range []int{2, 3, 5} {
		rt := avail.RequiredRepairTime(n, 1.0, 0.999)
		note := ""
		if n == 3 {
			note = "  (paper: 6 minutes 40 seconds)"
		}
		if n == 5 {
			note = "  (paper: 20 minutes)"
		}
		fmt.Fprintf(&b, "  n=%d: %6.1f minutes%s\n", n, rt*60, note)
	}
	return b.String()
}

// CollatorAblation compares the waiting policies of §4.3.4 in the cost
// model: expected completion time of unanimous (max of n) vs
// first-come (min of n) vs majority (order statistic) under
// exponential member response times.
func CollatorAblation(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("§4.3.4 ablation — waiting policy vs completion time (exponential\n")
	b.WriteString("member responses, mean 21.7 ms; 20000 trials per cell)\n")
	fmt.Fprintf(&b, "%-4s %12s %12s %12s\n", "n", "first-come", "majority", "unanimous")
	const mean = 21.7
	const trials = 20000
	for _, n := range []int{1, 3, 5, 7} {
		var first, maj, all float64
		k := n/2 + 1
		for t := 0; t < trials; t++ {
			times := make([]float64, n)
			for i := range times {
				times[i] = rng.ExpFloat64() * mean
			}
			sort.Float64s(times)
			first += times[0]
			maj += times[k-1]
			all += times[n-1]
		}
		fmt.Fprintf(&b, "%-4d %12.1f %12.1f %12.1f\n",
			n, first/trials, maj/trials, all/trials)
	}
	b.WriteString("shape: unanimous runs at the speed of the slowest member (H_n·r),\n")
	b.WriteString("first-come at the fastest (r/n); majority sits between.\n")
	return b.String()
}
