package bench

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"time"

	"circus/internal/collate"
	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/pairedmsg"
	"circus/internal/probmodel"
	"circus/internal/trace"
	"circus/internal/txn"
)

// Trace, when set before an experiment runs, receives the trace
// events of every runtime the native benchmarks construct (the
// cmd/experiments -trace flag points it at a JSONL exporter). It must
// be set before goroutines start; nil keeps tracing disabled.
var Trace trace.Sink

// benchOpts are protocol timers for benchmarking on the simulated
// network.
func benchOpts() core.Options {
	return core.Options{
		Message: pairedmsg.Options{
			RetransmitInterval: 50 * time.Millisecond,
			MaxRetries:         20,
			ProbeInterval:      100 * time.Millisecond,
			ProbeMissLimit:     5,
		},
		ManyToOneTimeout: time.Second,
		Trace:            Trace,
	}
}

// echoMod is the rpctest module of Figure 4.7: echo(buffer) = buffer.
type echoMod struct{}

func (echoMod) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	return args, nil
}

// Cluster is a reusable server troupe plus client for the native
// benchmarks.
type Cluster struct {
	Net     *netsim.Network
	Client  *core.Runtime
	Troupe  core.Troupe
	servers []*core.Runtime
}

// NewCluster builds an n-member echo troupe over a simulated network
// with the given one-way wire delay.
func NewCluster(seed int64, n int, wireDelay time.Duration) (*Cluster, error) {
	return NewClusterMode(seed, n, wireDelay, false)
}

// NewClusterMode additionally selects the multicast implementation of
// one-to-many calls (§4.3.3).
func NewClusterMode(seed int64, n int, wireDelay time.Duration, multicast bool) (*Cluster, error) {
	return newClusterWith(seed, n, wireDelay, multicast, Trace, func(int) core.Module { return echoMod{} })
}

// NewClusterSink builds the echo cluster with the given trace sink on
// every runtime instead of the package-level Trace — the monitored
// benchmarks attach an online monitor here without disturbing global
// state. A nil sink is the disabled fast path.
func NewClusterSink(seed int64, n int, wireDelay time.Duration, sink trace.Sink) (*Cluster, error) {
	return newClusterWith(seed, n, wireDelay, false, sink, func(int) core.Module { return echoMod{} })
}

// newClusterWith builds the troupe with one module per member from mkMod
// — the echo module for the latency benchmarks, a durable put module
// for the fsync benchmarks.
func newClusterWith(seed int64, n int, wireDelay time.Duration, multicast bool, sink trace.Sink, mkMod func(i int) core.Module) (*Cluster, error) {
	net := netsim.New(seed)
	if wireDelay > 0 {
		net.SetLink(netsim.LinkConfig{MinDelay: wireDelay, MaxDelay: wireDelay + wireDelay/4})
	}
	opts := benchOpts()
	opts.Multicast = multicast
	opts.Trace = sink
	c := &Cluster{Net: net, Troupe: core.Troupe{ID: 0xbec}}
	for i := 0; i < n; i++ {
		ep, err := net.Listen(net.NewHost(), 0)
		if err != nil {
			return nil, err
		}
		rt := core.NewRuntime(ep, opts)
		addr := rt.Export(mkMod(i), core.ExportOptions{})
		rt.SetTroupeID(addr.Module, c.Troupe.ID)
		c.Troupe.Members = append(c.Troupe.Members, addr)
		c.servers = append(c.servers, rt)
	}
	ep, err := net.Listen(net.NewHost(), 0)
	if err != nil {
		return nil, err
	}
	c.Client = core.NewRuntime(ep, opts)
	return c, nil
}

// MulticastAblation measures design choice 4 of DESIGN.md: repeated
// point-to-point sends versus one multicast per segment on the call
// leg (§4.3.3's m·n vs m+n messages, here with m = 1 client).
func MulticastAblation(seed int64, iters int) (string, error) {
	var b strings.Builder
	b.WriteString("§4.3.3 ablation (native) — unicast vs multicast call leg, netsim\n")
	fmt.Fprintf(&b, "%-7s %16s %16s %18s\n", "degree", "unicast sendops", "multicast sendops", "multicast ms/call")
	for _, n := range []int{2, 3, 5, 8} {
		var ops [2]float64
		var ms float64
		for mode := 0; mode < 2; mode++ {
			c, err := NewClusterMode(seed+int64(n), n, 0, mode == 1)
			if err != nil {
				return "", err
			}
			if err := c.Call([]byte("w")); err != nil {
				c.Close()
				return "", err
			}
			c.Net.ResetStats()
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := c.Call([]byte("x")); err != nil {
					c.Close()
					return "", err
				}
			}
			if mode == 1 {
				ms = float64(time.Since(start).Microseconds()) / 1000 / float64(iters)
			}
			st := c.Net.Stats()
			ops[mode] = float64(st.SendOps) / float64(iters)
			c.Close()
		}
		fmt.Fprintf(&b, "%-7d %16.1f %16.1f %18.2f\n", n, ops[0], ops[1], ms)
	}
	b.WriteString("shape: the call leg collapses from n send operations to 1; returns and\n")
	b.WriteString("acknowledgments remain per-member, as §4.3.3's m+n analysis counts.\n")
	return b.String(), nil
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	c.Client.Close()
	for _, s := range c.servers {
		s.Close()
	}
}

// Call performs one replicated echo call of the given payload size.
func (c *Cluster) Call(payload []byte) error {
	_, err := c.Client.Call(context.Background(), c.Troupe, 1, payload, core.CallOptions{})
	return err
}

// NativeReplicatedCall measures this repository's own implementation —
// the modern analogue of Table 4.1/Figure 4.8: latency and datagram
// counts per replicated call as the degree of replication grows, over
// the simulated network with a 1 ms wire.
func NativeReplicatedCall(seed int64, degrees []int, iters int) (string, error) {
	var b strings.Builder
	b.WriteString("Native (this implementation) — replicated call vs degree, netsim 1ms wire\n")
	fmt.Fprintf(&b, "%-7s %12s %14s %12s\n", "degree", "ms/call", "datagrams/call", "sendops/call")
	xs := make([]int, 0, len(degrees))
	var lat []float64
	for _, n := range degrees {
		c, err := NewCluster(seed+int64(n), n, time.Millisecond)
		if err != nil {
			return "", err
		}
		payload := []byte("0123456789abcdef")
		// Warm up one call (binding-free here, but first-call paths
		// differ).
		if err := c.Call(payload); err != nil {
			c.Close()
			return "", err
		}
		c.Net.ResetStats()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := c.Call(payload); err != nil {
				c.Close()
				return "", err
			}
		}
		elapsed := time.Since(start)
		st := c.Net.Stats()
		perCall := float64(elapsed.Microseconds()) / 1000 / float64(iters)
		fmt.Fprintf(&b, "%-7d %12.2f %14.1f %12.1f\n",
			n, perCall,
			float64(st.Datagrams)/float64(iters),
			float64(st.SendOps)/float64(iters))
		xs = append(xs, n)
		lat = append(lat, perCall)
		c.Close()
	}
	slope, intercept := probmodel.LinearFit(xs, lat)
	fmt.Fprintf(&b, "linear fit: ms/call ≈ %.2f·n + %.2f\n", slope, intercept)
	b.WriteString("shape: datagram count per call grows linearly in n (the m·n pattern of\n")
	b.WriteString("§4.3.3 with m=1); goroutine parallelism keeps the latency slope small,\n")
	b.WriteString("as the paper predicts for an implementation with cheap concurrency.\n")
	return b.String(), nil
}

// OrderedBroadcastNative runs the Figure 5.1 protocol end-to-end over
// the simulated network: several concurrent broadcasters, a member
// troupe, identical-delivery-order verification, and throughput.
func OrderedBroadcastNative(seed int64, clients, members, perClient int) (string, error) {
	net := netsim.New(seed)
	opts := benchOpts()
	resolver := core.StaticResolver{}
	opts.Resolver = resolver

	dest := core.Troupe{ID: 0x0b}
	var mus []*sync.Mutex
	orders := make([][]string, members)
	var rts []*core.Runtime
	defer func() {
		for _, rt := range rts {
			rt.Close()
		}
	}()
	for i := 0; i < members; i++ {
		i := i
		mu := &sync.Mutex{}
		mus = append(mus, mu)
		q := txn.NewQueue(func(id string, msg []byte) {
			mu.Lock()
			orders[i] = append(orders[i], id)
			mu.Unlock()
		})
		ep, err := net.Listen(net.NewHost(), 0)
		if err != nil {
			return "", err
		}
		rt := core.NewRuntime(ep, opts)
		rts = append(rts, rt)
		addr := rt.Export(&txn.Module{Queue: q}, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, dest.ID)
		dest.Members = append(dest.Members, addr)
	}
	resolver[dest.ID] = dest.Members

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		ep, err := net.Listen(net.NewHost(), 0)
		if err != nil {
			return "", err
		}
		rt := core.NewRuntime(ep, opts)
		rts = append(rts, rt)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				id := fmt.Sprintf("c%02d-%04d", c, k)
				if err := txn.Broadcast(context.Background(), rt, dest, id, []byte(id)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return "", err
	}
	elapsed := time.Since(start)

	// Wait for deliveries to drain.
	total := clients * perClient
	deadline := time.Now().Add(5 * time.Second)
	for {
		mus[0].Lock()
		n := len(orders[0])
		mus[0].Unlock()
		if n >= total || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	identical := true
	for i := 1; i < members; i++ {
		mus[0].Lock()
		a := append([]string(nil), orders[0]...)
		mus[0].Unlock()
		mus[i].Lock()
		bb := append([]string(nil), orders[i]...)
		mus[i].Unlock()
		if !reflect.DeepEqual(a, bb) {
			identical = false
		}
	}

	var b strings.Builder
	b.WriteString("Figure 5.1 — Ordered broadcast protocol, end to end over netsim\n")
	fmt.Fprintf(&b, "broadcasters: %d × %d messages; troupe of %d members\n", clients, perClient, members)
	fmt.Fprintf(&b, "delivered at member 0:        %d / %d (starvation-free: all make progress)\n", len(orders[0]), total)
	fmt.Fprintf(&b, "identical order at all members: %v (the §5.4 guarantee)\n", identical)
	fmt.Fprintf(&b, "throughput: %.0f broadcasts/s (two replicated calls each)\n",
		float64(total)/elapsed.Seconds())
	return b.String(), nil
}

// WaitPolicyNative measures the unanimous vs first-come collators of
// §4.3.4 against a troupe with one slow member — the native ablation
// for design choice 1 of DESIGN.md.
func WaitPolicyNative(seed int64, iters int) (string, error) {
	net := netsim.New(seed)
	opts := benchOpts()
	troupe := core.Troupe{ID: 0xfa}
	var rts []*core.Runtime
	defer func() {
		for _, rt := range rts {
			rt.Close()
		}
	}()
	for i := 0; i < 3; i++ {
		ep, err := net.Listen(net.NewHost(), 0)
		if err != nil {
			return "", err
		}
		rt := core.NewRuntime(ep, opts)
		rts = append(rts, rt)
		addr := rt.Export(echoMod{}, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, troupe.ID)
		troupe.Members = append(troupe.Members, addr)
	}
	// Slow down every link to the third member.
	slow := troupe.Members[2].Addr.Host
	for _, m := range troupe.Members[:2] {
		net.SetLinkBetween(slow, m.Addr.Host, netsim.LinkConfig{MinDelay: 20 * time.Millisecond, MaxDelay: 22 * time.Millisecond})
	}

	ep, err := net.Listen(net.NewHost(), 0)
	if err != nil {
		return "", err
	}
	client := core.NewRuntime(ep, opts)
	rts = append(rts, client)
	net.SetLinkBetween(slow, client.Addr().Host, netsim.LinkConfig{MinDelay: 20 * time.Millisecond, MaxDelay: 22 * time.Millisecond})

	measure := func(co core.CallOptions) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := client.Call(context.Background(), troupe, 1, []byte("x"), co); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Microseconds()) / 1000 / float64(iters), nil
	}
	unan, err := measure(core.CallOptions{})
	if err != nil {
		return "", err
	}
	fc, err := measure(core.CallOptions{Collator: collate.FirstCome})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("§4.3.4 ablation (native) — troupe of 3 with one slow member (20 ms wire)\n")
	fmt.Fprintf(&b, "unanimous wait:  %7.2f ms/call (paced by the slowest member)\n", unan)
	fmt.Fprintf(&b, "first-come wait: %7.2f ms/call (paced by the fastest member)\n", fc)
	fmt.Fprintf(&b, "speedup: %.1f× — the latency cost of error detection\n", unan/fc)
	return b.String(), nil
}

// RetransmitAblation measures design choice 3 of DESIGN.md: §4.2.4's
// two retransmission strategies for multi-segment messages under loss
// — resend only the first unacknowledged segment (Circus default,
// minimal traffic) versus resend all unacknowledged segments (faster
// recovery on lossy links, more duplicates).
func RetransmitAblation(seed int64, iters int) (string, error) {
	var b strings.Builder
	b.WriteString("§4.2.4 ablation (native) — retransmission strategy, 8-segment messages\n")
	fmt.Fprintf(&b, "%-10s %18s %18s %20s %20s\n", "loss", "first-only ms/msg", "all-unacked ms/msg",
		"first retrans/msg", "all retrans/msg")
	msg := make([]byte, 8*1400)
	for _, loss := range []float64{0.05, 0.2, 0.4} {
		var ms [2]float64
		var rt [2]float64
		for mode := 0; mode < 2; mode++ {
			net := netsim.New(seed + int64(loss*100))
			net.SetLink(netsim.LinkConfig{LossRate: loss})
			epA, err := net.Listen(net.NewHost(), 0)
			if err != nil {
				return "", err
			}
			epB, err := net.Listen(net.NewHost(), 0)
			if err != nil {
				return "", err
			}
			opts := pairedmsg.Options{
				RetransmitInterval: 15 * time.Millisecond,
				MaxRetries:         200,
				Trace:              Trace,
			}
			if mode == 1 {
				opts.Strategy = pairedmsg.RetransmitAll
			}
			sender, receiver := pairedmsg.New(epA, opts), pairedmsg.New(epB, opts)
			drain := make(chan struct{})
			go func() {
				for range receiver.Incoming() {
				}
				close(drain)
			}()
			start := time.Now()
			for i := 0; i < iters; i++ {
				cn := sender.NextCallNum(epB.Addr())
				if err := sender.Send(context.Background(), epB.Addr(), pairedmsg.Call, cn, msg); err != nil {
					sender.Close()
					receiver.Close()
					return "", fmt.Errorf("loss %.2f mode %d: %w", loss, mode, err)
				}
			}
			ms[mode] = float64(time.Since(start).Microseconds()) / 1000 / float64(iters)
			rt[mode] = float64(sender.Stats().Retransmits) / float64(iters)
			sender.Close()
			receiver.Close()
			<-drain
		}
		fmt.Fprintf(&b, "%-10.2f %18.1f %18.1f %20.1f %20.1f\n", loss, ms[0], ms[1], rt[0], rt[1])
	}
	b.WriteString("shape: at low loss the strategies tie; as loss grows, resending all\n")
	b.WriteString("unacknowledged segments recovers faster at the cost of extra traffic —\n")
	b.WriteString("§4.2.4's \"depending on the reliability characteristics of the network\".\n")
	return b.String(), nil
}
