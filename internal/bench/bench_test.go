package bench

import (
	"strings"
	"testing"
)

func TestTable41Report(t *testing.T) {
	out := Table41()
	for _, frag := range []string{"(UDP)", "(TCP)", "Table 4.1", "26.5", "109.5"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table41 missing %q\n%s", frag, out)
		}
	}
}

func TestTable42Report(t *testing.T) {
	out := Table42()
	for _, frag := range []string{"sendmsg", "8.1", "sigblock", "0.4"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table42 missing %q", frag)
		}
	}
}

func TestTable43Report(t *testing.T) {
	out := Table43()
	for _, frag := range []string{"sendmsg", "paper sendmsg", "27.2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table43 missing %q", frag)
		}
	}
}

func TestFigure48Report(t *testing.T) {
	out := Figure48()
	if !strings.Contains(out, "linear fits") || !strings.Contains(out, "multicast") {
		t.Errorf("Figure48 incomplete:\n%s", out)
	}
}

func TestMulticastAnalysisReport(t *testing.T) {
	out := MulticastAnalysis(1)
	if !strings.Contains(out, "H_n") || !strings.Contains(out, "32") {
		t.Errorf("MulticastAnalysis incomplete:\n%s", out)
	}
}

func TestEq51Report(t *testing.T) {
	out := Eq51(1, 2000)
	if !strings.Contains(out, "0.5") || !strings.Contains(out, "analytic") {
		t.Errorf("Eq51 incomplete:\n%s", out)
	}
}

func TestFigure63Report(t *testing.T) {
	out := Figure63(1)
	for _, frag := range []string{"Eq 6.2", "6 minutes 40 seconds", "20 minutes"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Figure63 missing %q", frag)
		}
	}
}

func TestCollatorAblationReport(t *testing.T) {
	out := CollatorAblation(1)
	if !strings.Contains(out, "first-come") || !strings.Contains(out, "unanimous") {
		t.Errorf("CollatorAblation incomplete:\n%s", out)
	}
}

func TestNativeReplicatedCallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := NativeReplicatedCall(1, []int{1, 2}, 5)
	if err != nil {
		t.Fatalf("NativeReplicatedCall: %v", err)
	}
	if !strings.Contains(out, "linear fit") {
		t.Errorf("native report incomplete:\n%s", out)
	}
}

func TestOrderedBroadcastNativeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := OrderedBroadcastNative(2, 2, 2, 3)
	if err != nil {
		t.Fatalf("OrderedBroadcastNative: %v", err)
	}
	if !strings.Contains(out, "identical order at all members: true") {
		t.Errorf("broadcast order not verified:\n%s", out)
	}
}

func TestWaitPolicyNativeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := WaitPolicyNative(3, 5)
	if err != nil {
		t.Fatalf("WaitPolicyNative: %v", err)
	}
	if !strings.Contains(out, "speedup") {
		t.Errorf("ablation incomplete:\n%s", out)
	}
}

func TestClusterEcho(t *testing.T) {
	c, err := NewCluster(9, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call([]byte("x")); err != nil {
		t.Fatalf("Call: %v", err)
	}
}

func TestMulticastAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := MulticastAblation(5, 4)
	if err != nil {
		t.Fatalf("MulticastAblation: %v", err)
	}
	if !strings.Contains(out, "multicast sendops") {
		t.Errorf("ablation incomplete:\n%s", out)
	}
}

func TestRetransmitAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := RetransmitAblation(6, 2)
	if err != nil {
		t.Fatalf("RetransmitAblation: %v", err)
	}
	if !strings.Contains(out, "all-unacked") {
		t.Errorf("ablation incomplete:\n%s", out)
	}
}
