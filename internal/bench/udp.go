package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"circus/internal/core"
	"circus/internal/pairedmsg"
	"circus/internal/udptrans"
)

// udpOpts are protocol timers for real loopback UDP: the wire is fast
// and effectively lossless, so retransmission exists only as a safety
// net and the probe machinery idles.
func udpOpts() core.Options {
	return core.Options{
		Message: pairedmsg.Options{
			RetransmitInterval: 100 * time.Millisecond,
			MaxRetries:         20,
			ProbeInterval:      500 * time.Millisecond,
			ProbeMissLimit:     10,
		},
		ManyToOneTimeout: 5 * time.Second,
		Trace:            Trace,
	}
}

// NewUDPCluster builds an n-member echo troupe over real loopback UDP,
// every member (and the client) listening on a Sharded endpoint with
// the given SO_REUSEPORT shard count. Unlike NewCluster there is no
// netsim underneath — c.Net is nil and delivery is the kernel's own.
// This is the cluster the transport-scaling experiment drives:
// datagrams flow through recvmmsg drain loops, pooled buffers, SPSC
// rings, and (when the kernel grants it) the io_uring batch sender.
// The second return reports whether any endpoint is using io_uring.
func NewUDPCluster(n, shards int) (*Cluster, bool, error) {
	opts := udpOpts()
	c := &Cluster{Troupe: core.Troupe{ID: 0xbed}}
	uring := false
	fail := func(err error) (*Cluster, bool, error) {
		for _, s := range c.servers {
			s.Close()
		}
		return nil, false, err
	}
	for i := 0; i < n; i++ {
		ep, err := udptrans.ListenSharded(0, shards)
		if err != nil {
			return fail(err)
		}
		uring = uring || ep.UsingIOUring()
		rt := core.NewRuntime(ep, opts)
		addr := rt.Export(echoMod{}, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, c.Troupe.ID)
		c.Troupe.Members = append(c.Troupe.Members, addr)
		c.servers = append(c.servers, rt)
	}
	ep, err := udptrans.ListenSharded(0, shards)
	if err != nil {
		return fail(err)
	}
	uring = uring || ep.UsingIOUring()
	c.Client = core.NewRuntime(ep, opts)
	return c, uring, nil
}

// UDPThroughput measures closed-loop calls/s for the given concurrent
// caller count against a degree-n echo troupe over sharded loopback
// UDP. The bool reports whether io_uring carried the sends.
func UDPThroughput(shards, callers, degree, total int) (float64, bool, error) {
	c, uring, err := NewUDPCluster(degree, shards)
	if err != nil {
		return 0, false, err
	}
	defer c.Close()
	if err := c.Call(ThroughputPayload); err != nil {
		return 0, uring, err
	}
	start := time.Now()
	if err := c.ConcurrentCalls(callers, total); err != nil {
		return 0, uring, err
	}
	return float64(total) / time.Since(start).Seconds(), uring, nil
}

// TransportShardCounts is the shard sweep the transport experiment
// measures — 1, 2, 4, and NumCPU — deduplicated and sorted, so a
// 4-core runner sweeps {1, 2, 4} and a 32-core one {1, 2, 4, 32}.
func TransportShardCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// TransportScaling sweeps calls/s at the given caller count and degree
// across SO_REUSEPORT shard counts — the calls/s-vs-shards table of
// the kernel transport tier. On a single-core box the widths tie (every
// drain loop serializes on one CPU); the sweep still verifies that
// sharded sockets deliver correctly at every width.
func TransportScaling(callers, degree, total int) (string, error) {
	var b strings.Builder
	b.WriteString("Kernel transport — closed-loop calls/s vs SO_REUSEPORT shard count\n")
	fmt.Fprintf(&b, "loopback UDP, echo troupe degree %d, %d concurrent callers, GOMAXPROCS=%d\n",
		degree, callers, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-7s %12s %9s %9s\n", "shards", "calls/sec", "scaling", "io_uring")
	var base float64
	for _, shards := range TransportShardCounts() {
		cps, uring, err := UDPThroughput(shards, callers, degree, total)
		if err != nil {
			return "", err
		}
		if base == 0 {
			base = cps
		}
		fmt.Fprintf(&b, "%-7d %12.0f %8.2fx %9v\n", shards, cps, cps/base, uring)
	}
	b.WriteString("shape: the kernel's 4-tuple hash spreads peers across per-shard drain\n")
	b.WriteString("loops, so on a multi-core runner calls/s climbs with shard count until\n")
	b.WriteString("dispatch saturates; one core collapses the sweep to a correctness check.\n")
	return b.String(), nil
}
