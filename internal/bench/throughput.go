package bench

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ThroughputPayload is the echo payload the throughput driver sends,
// matching the latency benchmarks' 16-byte argument.
var ThroughputPayload = []byte("0123456789abcdef")

// ConcurrentCalls drives total replicated echo calls through callers
// closed-loop worker goroutines: each goroutine issues its next call
// as soon as its previous one collates, claiming iterations from a
// shared counter. Every call runs on its own fresh thread context, so
// the calls are independent at the servers and exercise the parallel
// dispatch path. It returns the first error encountered, if any.
func (c *Cluster) ConcurrentCalls(callers, total int) error {
	if callers < 1 {
		callers = 1
	}
	var next atomic.Int64
	errc := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(total) {
				if err := c.Call(ThroughputPayload); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// Throughput measures closed-loop calls/sec on a fresh echo cluster of
// the given degree with the given concurrent caller count, over a
// netsim wire with the given one-way delay.
func Throughput(seed int64, callers, degree, iters int, wireDelay time.Duration) (float64, error) {
	c, err := NewCluster(seed, degree, wireDelay)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Call(ThroughputPayload); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := c.ConcurrentCalls(callers, iters); err != nil {
		return 0, err
	}
	return float64(iters) / time.Since(start).Seconds(), nil
}

// ThroughputTable sweeps concurrent caller counts against replication
// degrees on a 1 ms netsim wire — the experiments-binary face of
// BenchmarkThroughput. The scaling column is each row's calls/sec
// relative to the single-caller row of the same degree: closed-loop
// callers hide wire latency, so throughput should rise well past 1×
// until the machine (or the servers) saturate.
func ThroughputTable(seed int64, iters int) (string, error) {
	var b strings.Builder
	b.WriteString("Concurrent-call throughput — closed-loop callers, echo troupe, netsim 1ms wire\n")
	fmt.Fprintf(&b, "%-7s %8s %12s %9s\n", "degree", "callers", "calls/sec", "scaling")
	for _, degree := range []int{1, 3} {
		var base float64
		for _, callers := range []int{1, 4, 16, 64} {
			total := iters * callers
			cps, err := Throughput(seed+int64(100*degree+callers), callers, degree, total, time.Millisecond)
			if err != nil {
				return "", err
			}
			if callers == 1 {
				base = cps
			}
			fmt.Fprintf(&b, "%-7d %8d %12.0f %8.1fx\n", degree, callers, cps, cps/base)
		}
	}
	b.WriteString("shape: a single closed-loop caller is wire-latency-bound; concurrent\n")
	b.WriteString("callers overlap their round trips, so calls/sec scales until dispatch\n")
	b.WriteString("or the simulated link saturates.\n")
	return b.String(), nil
}
