// Package config implements the troupe configuration language and
// configuration manager of §7.5: the programming-in-the-large tools
// for specifying, instantiating, and reconfiguring replicated
// distributed programs.
//
// A troupe specification has the form
//
//	troupe(x1, ..., xn) where φ(x1, ..., xn)
//
// where φ is a formula of propositional logic whose variables range
// over the machines of the distributed system (Figure 7.12). Each
// machine has an extensible list of attributes — name/value pairs
// whose values are strings, numbers, or truth values; a Boolean
// attribute is called a property, which makes the constants true and
// false unnecessary. Example:
//
//	troupe(x, y) where x.memory >= 10 and x.has-floating-point
//	                  and not (y.name = "UCB-Monet")
//
// The troupe members are required to be distinct; the language
// compares attribute values only, never machines, and a troupe of
// variable size cannot be specified (§7.5.2).
package config

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Value is a machine attribute value: string, float64, or bool.
type Value any

// Machine is one machine of the distributed system together with its
// attributes. The machine's name is just another attribute (§7.5.2),
// but it is kept as a field for convenient identification; Attrs may
// also contain "name".
type Machine struct {
	Name  string
	Attrs map[string]Value
}

// Attr returns the machine's attribute, treating Name specially.
func (m Machine) Attr(name string) (Value, bool) {
	if v, ok := m.Attrs[name]; ok {
		return v, true
	}
	if name == "name" {
		return m.Name, true
	}
	return nil, false
}

// Spec is a parsed troupe specification.
type Spec struct {
	Vars    []string
	Formula Formula
}

// Degree returns the troupe size the specification demands.
func (s Spec) Degree() int { return len(s.Vars) }

// Formula is a node of the specification formula.
type Formula interface {
	// Eval evaluates the formula under a binding of variables to
	// machines.
	Eval(binding map[string]Machine) (bool, error)
	// Vars reports the variables the formula mentions, into set.
	vars(set map[string]bool)
	String() string
}

type andExpr struct{ l, r Formula }
type orExpr struct{ l, r Formula }
type notExpr struct{ f Formula }

// cmpExpr is var.attr OP literal; op "" means a bare property test.
type cmpExpr struct {
	v    string
	attr string
	op   string
	lit  Value
}

func (e andExpr) Eval(b map[string]Machine) (bool, error) {
	l, err := e.l.Eval(b)
	if err != nil {
		return false, err
	}
	if !l {
		return false, nil
	}
	return e.r.Eval(b)
}
func (e andExpr) vars(s map[string]bool) { e.l.vars(s); e.r.vars(s) }
func (e andExpr) String() string         { return "(" + e.l.String() + " and " + e.r.String() + ")" }

func (e orExpr) Eval(b map[string]Machine) (bool, error) {
	l, err := e.l.Eval(b)
	if err != nil {
		return false, err
	}
	if l {
		return true, nil
	}
	return e.r.Eval(b)
}
func (e orExpr) vars(s map[string]bool) { e.l.vars(s); e.r.vars(s) }
func (e orExpr) String() string         { return "(" + e.l.String() + " or " + e.r.String() + ")" }

func (e notExpr) Eval(b map[string]Machine) (bool, error) {
	v, err := e.f.Eval(b)
	return !v, err
}
func (e notExpr) vars(s map[string]bool) { e.f.vars(s) }
func (e notExpr) String() string         { return "not " + e.f.String() }

func (e cmpExpr) Eval(b map[string]Machine) (bool, error) {
	m, ok := b[e.v]
	if !ok {
		return false, fmt.Errorf("config: unbound variable %q", e.v)
	}
	val, ok := m.Attr(e.attr)
	if !ok {
		// A machine without the attribute simply fails the test; this
		// lets specifications mention attributes only some machines
		// possess.
		return false, nil
	}
	if e.op == "" {
		prop, isBool := val.(bool)
		if !isBool {
			return false, fmt.Errorf("config: attribute %s.%s is not a property", e.v, e.attr)
		}
		return prop, nil
	}
	switch lit := e.lit.(type) {
	case string:
		s, ok := val.(string)
		if !ok {
			return false, nil
		}
		return compareOrdered(strings.Compare(s, lit), e.op)
	case float64:
		n, ok := toFloat(val)
		if !ok {
			return false, nil
		}
		switch {
		case n < lit:
			return compareOrdered(-1, e.op)
		case n > lit:
			return compareOrdered(1, e.op)
		default:
			return compareOrdered(0, e.op)
		}
	default:
		return false, fmt.Errorf("config: unsupported literal %v", e.lit)
	}
}
func (e cmpExpr) vars(s map[string]bool) { s[e.v] = true }
func (e cmpExpr) String() string {
	if e.op == "" {
		return e.v + "." + e.attr
	}
	switch lit := e.lit.(type) {
	case string:
		return fmt.Sprintf("%s.%s %s %q", e.v, e.attr, e.op, lit)
	default:
		return fmt.Sprintf("%s.%s %s %v", e.v, e.attr, e.op, lit)
	}
}

func toFloat(v Value) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	default:
		return 0, false
	}
}

func compareOrdered(cmp int, op string) (bool, error) {
	switch op {
	case "=":
		return cmp == 0, nil
	case "!=":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("config: bad operator %q", op)
	}
}

// --- Lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // comparison operators
	tokPunct // ( ) , .
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '(' || c == ')' || c == ',' || c == '.':
			l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: l.pos})
			l.pos++
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '=':
			l.toks = append(l.toks, token{kind: tokOp, text: "=", pos: l.pos})
			l.pos++
		case c == '!' || c == '<' || c == '>':
			op := string(c)
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				op += "="
				l.pos++
			}
			if op == "!" {
				return nil, fmt.Errorf("config: stray '!' at %d", l.pos-1)
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: l.pos})
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("config: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("config: unterminated string at %d", start)
	}
	l.pos++ // closing quote
	l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
	return nil
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	n, err := strconv.ParseFloat(l.src[start:l.pos], 64)
	if err != nil {
		return fmt.Errorf("config: bad number at %d: %v", start, err)
	}
	l.toks = append(l.toks, token{kind: tokNumber, num: n, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

// --- Parser (recursive descent over the Figure 7.12 grammar) ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return fmt.Errorf("config: expected %q at %d, got %q", word, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectPunct(ch string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != ch {
		return fmt.Errorf("config: expected %q at %d, got %q", ch, t.pos, t.text)
	}
	return nil
}

// Parse parses a complete troupe specification.
func Parse(src string) (Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return Spec{}, err
	}
	p := &parser{toks: toks}
	if err := p.expectIdent("troupe"); err != nil {
		return Spec{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return Spec{}, err
	}
	var spec Spec
	seen := map[string]bool{}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return Spec{}, fmt.Errorf("config: expected variable at %d", t.pos)
		}
		if seen[t.text] {
			return Spec{}, fmt.Errorf("config: duplicate variable %q", t.text)
		}
		seen[t.text] = true
		spec.Vars = append(spec.Vars, t.text)
		sep := p.next()
		if sep.kind == tokPunct && sep.text == "," {
			continue
		}
		if sep.kind == tokPunct && sep.text == ")" {
			break
		}
		return Spec{}, fmt.Errorf("config: expected ',' or ')' at %d", sep.pos)
	}
	if err := p.expectIdent("where"); err != nil {
		return Spec{}, err
	}
	f, err := p.parseFormula()
	if err != nil {
		return Spec{}, err
	}
	if !p.atEOF() {
		return Spec{}, fmt.Errorf("config: trailing input at %d", p.peek().pos)
	}
	// Every variable mentioned must be declared.
	used := map[string]bool{}
	f.vars(used)
	for v := range used {
		if !seen[v] {
			return Spec{}, fmt.Errorf("config: formula mentions undeclared variable %q", v)
		}
	}
	spec.Formula = f
	return spec, nil
}

// ParseFormula parses a bare formula (used by tests and tools).
func ParseFormula(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("config: trailing input at %d", p.peek().pos)
	}
	return f, nil
}

func (p *parser) parseFormula() (Formula, error) { return p.parseOr() }

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Formula, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent && t.text == "not":
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{f}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Formula, error) {
	v := p.next()
	if v.kind != tokIdent {
		return nil, fmt.Errorf("config: expected variable at %d, got %q", v.pos, v.text)
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	attr := p.next()
	if attr.kind != tokIdent {
		return nil, fmt.Errorf("config: expected attribute at %d", attr.pos)
	}
	if p.peek().kind != tokOp {
		// A bare property (Boolean attribute).
		return cmpExpr{v: v.text, attr: attr.text}, nil
	}
	op := p.next().text
	lit := p.next()
	switch lit.kind {
	case tokString:
		return cmpExpr{v: v.text, attr: attr.text, op: op, lit: lit.text}, nil
	case tokNumber:
		return cmpExpr{v: v.text, attr: attr.text, op: op, lit: lit.num}, nil
	default:
		return nil, fmt.Errorf("config: expected literal at %d", lit.pos)
	}
}
