package config

import "testing"

// FuzzParse: the configuration language parser must never panic, and
// anything it accepts must evaluate without panicking.
func FuzzParse(f *testing.F) {
	f.Add(`troupe(x) where x.memory >= 8`)
	f.Add(`troupe(x, y) where x.has-fpu and not (y.name = "a") or y.mem < 3`)
	f.Add(`troupe( where`)
	f.Add(`troupe(x) where x.a = "unterminated`)
	f.Add(`troupe(x) where x.a = -1.5`)
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		m := Machine{Name: "m", Attrs: map[string]Value{"memory": 8.0, "has-fpu": true, "a": "s"}}
		binding := map[string]Machine{}
		for _, v := range spec.Vars {
			binding[v] = m
		}
		spec.Formula.Eval(binding) // must not panic; type errors are fine
		_ = spec.Formula.String()
	})
}
