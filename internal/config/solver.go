package config

import (
	"fmt"
	"sort"
)

// This file implements the troupe extension problem of §7.5.3: given a
// specification φ(x1..xn), a universe U of machines, and a particular
// set M ⊆ U, find M' ⊆ U that satisfies φ and is as close to M as
// possible — minimizing the symmetric set difference |M' ⊕ M|.
// Instantiation is the special case M = ∅.
//
// The search is exhaustive backtracking, as in the Lisp implementation
// the paper describes; its exponential worst case is acceptable given
// the small number of variables in most troupe specifications.

// ErrUnsatisfiable reports that no assignment of distinct machines
// satisfies the specification.
type ErrUnsatisfiable struct{ Spec Spec }

func (e *ErrUnsatisfiable) Error() string {
	return fmt.Sprintf("config: no troupe of %d distinct machines satisfies %s",
		e.Spec.Degree(), e.Spec.Formula)
}

// Solve finds an assignment of distinct machines satisfying the
// specification, ignoring closeness. It is ExtendTroupe with an empty
// old set.
func Solve(spec Spec, universe []Machine) ([]Machine, error) {
	return ExtendTroupe(spec, universe, nil)
}

// ExtendTroupe solves the troupe extension problem: the returned
// machines (one per specification variable, in variable order) satisfy
// the formula, are pairwise distinct, and minimize the symmetric
// difference from old.
func ExtendTroupe(spec Spec, universe []Machine, old []Machine) ([]Machine, error) {
	oldSet := make(map[string]bool, len(old))
	for _, m := range old {
		oldSet[m.Name] = true
	}

	// Order candidates so machines in the old set are tried first;
	// combined with branch-and-bound on the symmetric difference this
	// finds close extensions quickly.
	candidates := append([]Machine(nil), universe...)
	sort.SliceStable(candidates, func(i, j int) bool {
		return oldSet[candidates[i].Name] && !oldSet[candidates[j].Name]
	})

	n := spec.Degree()
	binding := make(map[string]Machine, n)
	used := make(map[string]bool, n)
	chosen := make([]Machine, 0, n)

	var best []Machine
	bestDiff := 1 << 30

	diffOf := func(sel []Machine) int {
		inSel := make(map[string]bool, len(sel))
		d := 0
		for _, m := range sel {
			inSel[m.Name] = true
			if !oldSet[m.Name] {
				d++ // added
			}
		}
		for name := range oldSet {
			if !inSel[name] {
				d++ // dropped
			}
		}
		return d
	}

	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			ok, err := spec.Formula.Eval(binding)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if d := diffOf(chosen); d < bestDiff {
				bestDiff = d
				best = append([]Machine(nil), chosen...)
			}
			return nil
		}
		for _, m := range candidates {
			if used[m.Name] {
				continue
			}
			used[m.Name] = true
			binding[spec.Vars[i]] = m
			chosen = append(chosen, m)

			// Branch and bound: additions so far already exceed the
			// best known difference.
			adds := 0
			for _, c := range chosen {
				if !oldSet[c.Name] {
					adds++
				}
			}
			if adds < bestDiff {
				if err := rec(i + 1); err != nil {
					return err
				}
			}

			chosen = chosen[:len(chosen)-1]
			delete(binding, spec.Vars[i])
			delete(used, m.Name)
			if bestDiff == 0 {
				return nil // cannot do better than unchanged
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, &ErrUnsatisfiable{Spec: spec}
	}
	return best, nil
}

// Satisfies reports whether the given machines (one per variable, in
// variable order) satisfy the specification and are distinct.
func Satisfies(spec Spec, machines []Machine) (bool, error) {
	if len(machines) != spec.Degree() {
		return false, nil
	}
	seen := map[string]bool{}
	binding := map[string]Machine{}
	for i, m := range machines {
		if seen[m.Name] {
			return false, nil
		}
		seen[m.Name] = true
		binding[spec.Vars[i]] = m
	}
	return spec.Formula.Eval(binding)
}
