package config

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"circus/internal/core"
	"circus/internal/transport"
)

func machines() []Machine {
	return []Machine{
		{Name: "UCB-Monet", Attrs: map[string]Value{
			"memory": 10.0, "has-floating-point": true, "arch": "vax"}},
		{Name: "UCB-Degas", Attrs: map[string]Value{
			"memory": 4.0, "has-floating-point": false, "arch": "vax"}},
		{Name: "UCB-Renoir", Attrs: map[string]Value{
			"memory": 16.0, "has-floating-point": true, "arch": "vax"}},
		{Name: "UCB-Ingres", Attrs: map[string]Value{
			"memory": 8.0, "has-floating-point": true, "arch": "sun"}},
	}
}

func mustParse(t *testing.T, src string) Spec {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseBasic(t *testing.T) {
	s := mustParse(t, `troupe(x, y) where x.memory >= 10 and y.arch = "vax"`)
	if len(s.Vars) != 2 || s.Vars[0] != "x" || s.Vars[1] != "y" {
		t.Fatalf("vars = %v", s.Vars)
	}
}

func TestParsePaperExample(t *testing.T) {
	// The example formula of §7.5.2.
	f, err := ParseFormula(`x.name = "UCB-Monet" and x.memory = 10 and x.has-floating-point`)
	if err != nil {
		t.Fatal(err)
	}
	m := machines()[0]
	ok, err := f.Eval(map[string]Machine{"x": m})
	if err != nil || !ok {
		t.Fatalf("paper machine does not satisfy paper formula: %v %v", ok, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`troupe() where x.a`,
		`troupe(x where x.a`,
		`troupe(x) x.a`,
		`troupe(x, x) where x.a`,
		`troupe(x) where y.a`,     // undeclared variable
		`troupe(x) where x.a = `,  // missing literal
		`troupe(x) where x.a ? 3`, // bad operator
		`troupe(x) where (x.a`,    // unbalanced paren
		`troupe(x) where x.a = "unterminated`,
		`troupe(x) where x.a and`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalOperators(t *testing.T) {
	m := Machine{Name: "m", Attrs: map[string]Value{"mem": 8.0, "os": "unix", "up": true}}
	cases := []struct {
		src  string
		want bool
	}{
		{`x.mem = 8`, true},
		{`x.mem != 8`, false},
		{`x.mem < 9`, true},
		{`x.mem <= 8`, true},
		{`x.mem > 8`, false},
		{`x.mem >= 8`, true},
		{`x.os = "unix"`, true},
		{`x.os != "vms"`, true},
		{`x.os < "vms"`, true},
		{`x.up`, true},
		{`not x.up`, false},
		{`x.mem = 8 and x.os = "unix"`, true},
		{`x.mem = 9 or x.os = "unix"`, true},
		{`x.mem = 9 or x.os = "vms"`, false},
		{`not (x.mem = 9) and x.up`, true},
		{`x.missing = 3`, false}, // absent attribute fails the test
		{`not x.missing = 3`, true},
		{`x.name = "m"`, true}, // name is an attribute (§7.5.2)
	}
	for _, c := range cases {
		f, err := ParseFormula(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		got, err := f.Eval(map[string]Machine{"x": m})
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalPropertyTypeError(t *testing.T) {
	f, err := ParseFormula(`x.mem`)
	if err != nil {
		t.Fatal(err)
	}
	m := Machine{Name: "m", Attrs: map[string]Value{"mem": 8.0}}
	if _, err := f.Eval(map[string]Machine{"x": m}); err == nil {
		t.Fatal("non-boolean property test succeeded")
	}
}

func TestPrecedenceAndBindsTighter(t *testing.T) {
	// a or b and c must parse as a or (b and c).
	f, err := ParseFormula(`x.a or x.b and x.c`)
	if err != nil {
		t.Fatal(err)
	}
	m := Machine{Name: "m", Attrs: map[string]Value{"a": true, "b": false, "c": false}}
	ok, err := f.Eval(map[string]Machine{"x": m})
	if err != nil || !ok {
		t.Fatalf("precedence wrong: %v %v", ok, err)
	}
}

func TestSolveSimple(t *testing.T) {
	spec := mustParse(t, `troupe(x) where x.memory >= 16`)
	got, err := Solve(spec, machines())
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Name != "UCB-Renoir" {
		t.Fatalf("chose %s", got[0].Name)
	}
}

func TestSolveDistinctness(t *testing.T) {
	// Two variables with the same constraint must get two different
	// machines (§7.5.2: members are required to be distinct).
	spec := mustParse(t, `troupe(x, y) where x.has-floating-point and y.has-floating-point`)
	got, err := Solve(spec, machines())
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Name == got[1].Name {
		t.Fatal("assigned the same machine twice")
	}
}

func TestSolveUnsatisfiable(t *testing.T) {
	spec := mustParse(t, `troupe(x, y) where x.memory >= 16 and y.memory >= 16`)
	_, err := Solve(spec, machines())
	var uns *ErrUnsatisfiable
	if !errors.As(err, &uns) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestSolveCrossVariableConstraint(t *testing.T) {
	spec := mustParse(t, `troupe(x, y) where x.arch = "vax" and y.arch = "sun"`)
	got, err := Solve(spec, machines())
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Name != "UCB-Ingres" {
		t.Fatalf("y = %s, want UCB-Ingres", got[1].Name)
	}
}

func TestExtendTroupePrefersOldMembers(t *testing.T) {
	spec := mustParse(t, `troupe(x, y) where x.has-floating-point and y.has-floating-point`)
	univ := machines()
	old := []Machine{univ[2], univ[3]} // Renoir, Ingres
	got, err := ExtendTroupe(spec, univ, old)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{got[0].Name: true, got[1].Name: true}
	if !names["UCB-Renoir"] || !names["UCB-Ingres"] {
		t.Fatalf("extension moved members unnecessarily: %v", names)
	}
}

func TestExtendTroupeReplacesOnlyFailed(t *testing.T) {
	spec := mustParse(t, `troupe(x, y) where x.has-floating-point and y.has-floating-point`)
	univ := machines()
	// Old troupe was Renoir + Monet; Monet is gone from the universe
	// (crashed): the solver must keep Renoir and add one machine.
	var usable []Machine
	for _, m := range univ {
		if m.Name != "UCB-Monet" {
			usable = append(usable, m)
		}
	}
	old := []Machine{univ[2], univ[0]}
	got, err := ExtendTroupe(spec, usable, old)
	if err != nil {
		t.Fatal(err)
	}
	keep := false
	for _, m := range got {
		if m.Name == "UCB-Renoir" {
			keep = true
		}
		if m.Name == "UCB-Monet" {
			t.Fatal("crashed machine chosen")
		}
	}
	if !keep {
		t.Fatal("surviving member displaced")
	}
}

func TestSatisfies(t *testing.T) {
	spec := mustParse(t, `troupe(x, y) where x.has-floating-point and y.has-floating-point`)
	univ := machines()
	ok, err := Satisfies(spec, []Machine{univ[0], univ[2]})
	if err != nil || !ok {
		t.Fatalf("Satisfies = %v, %v", ok, err)
	}
	if ok, _ := Satisfies(spec, []Machine{univ[0], univ[0]}); ok {
		t.Fatal("duplicate machines accepted")
	}
	if ok, _ := Satisfies(spec, []Machine{univ[0]}); ok {
		t.Fatal("wrong arity accepted")
	}
}

// fakeSpawner instantiates fake module addresses and records calls.
type fakeSpawner struct {
	nextPort uint16
	spawned  map[string]string // addr string -> machine
	stopped  []string
}

func (f *fakeSpawner) Spawn(m Machine, name string) (core.ModuleAddr, error) {
	f.nextPort++
	addr := core.ModuleAddr{Addr: transport.Addr{Host: 1, Port: f.nextPort}}
	if f.spawned == nil {
		f.spawned = map[string]string{}
	}
	f.spawned[addr.String()] = m.Name
	return addr, nil
}

func (f *fakeSpawner) Stop(addr core.ModuleAddr) error {
	f.stopped = append(f.stopped, addr.String())
	return nil
}

// fakeBinder records registrations.
type fakeBinder struct {
	nextID uint64
	regs   map[string][]core.ModuleAddr
}

func (b *fakeBinder) Register(ctx context.Context, name string, members []core.ModuleAddr) (core.TroupeID, error) {
	if b.regs == nil {
		b.regs = map[string][]core.ModuleAddr{}
	}
	b.nextID++
	b.regs[name] = members
	return core.TroupeID(b.nextID), nil
}

func (b *fakeBinder) LookupByName(ctx context.Context, name string) (core.Troupe, error) {
	ms, ok := b.regs[name]
	if !ok {
		return core.Troupe{}, fmt.Errorf("no %s", name)
	}
	return core.Troupe{ID: core.TroupeID(b.nextID), Members: ms}, nil
}

func TestManagerConfigure(t *testing.T) {
	sp := &fakeSpawner{}
	bd := &fakeBinder{}
	mgr := NewManager(sp, bd, machines())
	tr, err := mgr.Configure(context.Background(), "db",
		`troupe(x, y) where x.has-floating-point and y.has-floating-point`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 2 {
		t.Fatalf("degree = %d", tr.Degree())
	}
	if len(bd.regs["db"]) != 2 {
		t.Fatal("troupe not registered")
	}
	if len(mgr.Placements("db")) != 2 {
		t.Fatalf("placements = %v", mgr.Placements("db"))
	}
}

func TestManagerReconfigureAfterCrash(t *testing.T) {
	sp := &fakeSpawner{}
	bd := &fakeBinder{}
	mgr := NewManager(sp, bd, machines())
	if _, err := mgr.Configure(context.Background(), "db",
		`troupe(x, y) where x.has-floating-point and y.has-floating-point`); err != nil {
		t.Fatal(err)
	}
	before := mgr.Placements("db")

	crashed := before[0]
	tr, err := mgr.Reconfigure(context.Background(), "db", func(m Machine) bool {
		return m.Name != crashed
	})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if tr.Degree() != 2 {
		t.Fatalf("degree = %d", tr.Degree())
	}
	after := mgr.Placements("db")
	for _, name := range after {
		if name == crashed {
			t.Fatal("crashed machine still placed")
		}
	}
	// The survivor must be retained.
	survivor := before[1]
	found := false
	for _, name := range after {
		if name == survivor {
			found = true
		}
	}
	if !found {
		t.Fatalf("survivor %s displaced: %v", survivor, after)
	}
}

func TestManagerUnknownName(t *testing.T) {
	mgr := NewManager(&fakeSpawner{}, &fakeBinder{}, machines())
	if _, err := mgr.Reconfigure(context.Background(), "ghost", nil); err == nil {
		t.Fatal("reconfigure of unknown name succeeded")
	}
}

func TestFormulaString(t *testing.T) {
	f, err := ParseFormula(`not (x.a = 1 and x.b = "s") or x.c`)
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	for _, frag := range []string{"not", "and", "or", "x.a", `"s"`} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
