package config

import (
	"context"
	"fmt"
	"sync"

	"circus/internal/core"
)

// Spawner abstracts the per-machine server processes a full
// configuration manager relies on for module instantiation (§7.5.3 —
// under 4.2BSD the remote execution utilities play this role; in this
// repository the examples implement it over netsim).
type Spawner interface {
	// Spawn starts an instance of the named module on the given
	// machine and returns its module address.
	Spawn(machine Machine, moduleName string) (core.ModuleAddr, error)
	// Stop tears an instance down (used when reconfiguration moves a
	// member off a machine).
	Stop(addr core.ModuleAddr) error
}

// Binder is the slice of the binding agent the manager needs; it is
// implemented by ringmaster.Client.
type Binder interface {
	Register(ctx context.Context, name string, members []core.ModuleAddr) (core.TroupeID, error)
	LookupByName(ctx context.Context, name string) (core.Troupe, error)
}

// Manager is the troupe configuration manager of §7.5.3: it holds a
// troupe specification per module name, instantiates troupes, and
// reconfigures them after partial failures or specification changes,
// using ExtendTroupe to stay as close as possible to the running
// configuration.
type Manager struct {
	spawner Spawner
	binder  Binder

	mu       sync.Mutex
	universe []Machine
	specs    map[string]Spec
	placed   map[string][]placement // current placements per name
}

type placement struct {
	machine Machine
	addr    core.ModuleAddr
}

// NewManager returns a manager over the given machine universe.
func NewManager(spawner Spawner, binder Binder, universe []Machine) *Manager {
	return &Manager{
		spawner:  spawner,
		binder:   binder,
		universe: append([]Machine(nil), universe...),
		specs:    make(map[string]Spec),
		placed:   make(map[string][]placement),
	}
}

// SetUniverse replaces the machine attribute database.
func (m *Manager) SetUniverse(universe []Machine) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.universe = append([]Machine(nil), universe...)
}

// Configure records (or replaces) the specification for a module name
// and instantiates or reconfigures its troupe accordingly, registering
// the result with the binding agent. It returns the troupe.
func (m *Manager) Configure(ctx context.Context, name, specSrc string) (core.Troupe, error) {
	spec, err := Parse(specSrc)
	if err != nil {
		return core.Troupe{}, err
	}
	m.mu.Lock()
	m.specs[name] = spec
	m.mu.Unlock()
	return m.reconfigure(ctx, name, nil)
}

// Reconfigure re-solves the specification for name, keeping the
// placements in keep (machine names of members known to be healthy;
// nil keeps all current ones) and replacing the rest — the recovery
// path after a partial failure (§6.4).
func (m *Manager) Reconfigure(ctx context.Context, name string, healthy func(Machine) bool) (core.Troupe, error) {
	return m.reconfigure(ctx, name, healthy)
}

func (m *Manager) reconfigure(ctx context.Context, name string, healthy func(Machine) bool) (core.Troupe, error) {
	m.mu.Lock()
	spec, ok := m.specs[name]
	if !ok {
		m.mu.Unlock()
		return core.Troupe{}, fmt.Errorf("config: no specification for %q", name)
	}
	current := m.placed[name]
	universe := append([]Machine(nil), m.universe...)
	m.mu.Unlock()

	var old []Machine
	oldByName := map[string]placement{}
	for _, p := range current {
		if healthy == nil || healthy(p.machine) {
			old = append(old, p.machine)
			oldByName[p.machine.Name] = p
		}
	}

	// Restrict the universe to healthy machines.
	var usable []Machine
	for _, mc := range universe {
		if healthy == nil || healthy(mc) {
			usable = append(usable, mc)
		}
	}

	chosen, err := ExtendTroupe(spec, usable, old)
	if err != nil {
		return core.Troupe{}, err
	}

	// Spawn new members, reuse surviving ones, stop the displaced.
	var members []core.ModuleAddr
	var newPlaced []placement
	usedOld := map[string]bool{}
	for _, mc := range chosen {
		if p, ok := oldByName[mc.Name]; ok {
			members = append(members, p.addr)
			newPlaced = append(newPlaced, p)
			usedOld[mc.Name] = true
			continue
		}
		addr, err := m.spawner.Spawn(mc, name)
		if err != nil {
			return core.Troupe{}, fmt.Errorf("config: spawning %s on %s: %w", name, mc.Name, err)
		}
		members = append(members, addr)
		newPlaced = append(newPlaced, placement{machine: mc, addr: addr})
	}
	for _, p := range current {
		if !usedOld[p.machine.Name] {
			m.spawner.Stop(p.addr)
		}
	}

	id, err := m.binder.Register(ctx, name, members)
	if err != nil {
		return core.Troupe{}, err
	}
	m.mu.Lock()
	m.placed[name] = newPlaced
	m.mu.Unlock()
	return core.Troupe{ID: id, Members: members}, nil
}

// Placements reports the machines currently hosting the named troupe.
func (m *Manager) Placements(name string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for _, p := range m.placed[name] {
		names = append(names, p.machine.Name)
	}
	return names
}
