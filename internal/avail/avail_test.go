package avail

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAvailabilityFormula(t *testing.T) {
	// λ/(λ+μ) = 0.5 with λ=μ; A = 1 - 0.5^n.
	for n := 1; n <= 5; n++ {
		want := 1 - math.Pow(0.5, float64(n))
		if got := Availability(n, 1, 1); math.Abs(got-want) > 1e-12 {
			t.Errorf("A(n=%d) = %v, want %v", n, got, want)
		}
	}
}

func TestPaperWorkedExampleThreeMembers(t *testing.T) {
	// §6.4.2: three members, 99.9% availability, one-hour lifetime ⇒
	// replacement time at most 1/9 of the lifetime (6m40s).
	repair := RequiredRepairTime(3, 1.0, 0.999) // lifetime 1 hour
	want := 1.0 / 9
	if math.Abs(repair-want) > 1e-9 {
		t.Fatalf("repair = %v hours, want 1/9", repair)
	}
	// And the formula round-trips: with that repair time the troupe
	// achieves exactly 99.9%.
	if a := Availability(3, 1, 1/repair); math.Abs(a-0.999) > 1e-9 {
		t.Fatalf("availability with computed repair = %v", a)
	}
}

func TestPaperWorkedExampleFiveMembers(t *testing.T) {
	// §6.4.2: with five members the replacement time may be ~1/3 of
	// the lifetime (20 minutes for a one-hour lifetime).
	repair := RequiredRepairTime(5, 1.0, 0.999)
	if repair < 0.30 || repair > 0.36 {
		t.Fatalf("repair = %v hours, want ≈1/3", repair)
	}
}

func TestStateProbabilitiesSumToOne(t *testing.T) {
	for _, n := range []int{1, 3, 7} {
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += StateProbability(n, k, 2, 5)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("n=%d: Σp_k = %v", n, sum)
		}
	}
}

func TestStatePnMatchesAvailability(t *testing.T) {
	for n := 1; n <= 6; n++ {
		pn := StateProbability(n, n, 3, 11)
		if math.Abs((1-pn)-Availability(n, 3, 11)) > 1e-12 {
			t.Errorf("n=%d: 1-p_n != A", n)
		}
	}
}

func TestStateProbabilityOutOfRange(t *testing.T) {
	if StateProbability(3, -1, 1, 1) != 0 || StateProbability(3, 4, 1, 1) != 0 {
		t.Fatal("out-of-range k must have probability 0")
	}
}

func TestSimulationMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// λ = 1 failure/hour, μ = 9 repairs/hour, n = 2: A = 1 - 0.01 = 0.99.
	res := Simulate(2, 1, 9, 200000, rng)
	want := Availability(2, 1, 9)
	if math.Abs(res.Availability-want) > 0.002 {
		t.Fatalf("simulated A = %v, analytic %v", res.Availability, want)
	}
	// State distribution matches binomial.
	for k := 0; k <= 2; k++ {
		want := StateProbability(2, k, 1, 9)
		if math.Abs(res.StateTime[k]-want) > 0.01 {
			t.Errorf("p_%d simulated %v, analytic %v", k, res.StateTime[k], want)
		}
	}
}

func TestSimulationSeesTotalFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res := Simulate(2, 1, 1, 50000, rng)
	if res.TotalFailures == 0 {
		t.Fatal("no total failures with λ=μ over a long run — simulator broken")
	}
}

func TestQuickAvailabilityBounds(t *testing.T) {
	f := func(nRaw uint8, lRaw, mRaw uint16) bool {
		n := int(nRaw%8) + 1
		lambda := float64(lRaw%1000)/100 + 0.01
		mu := float64(mRaw%1000)/100 + 0.01
		a := Availability(n, lambda, mu)
		return a > 0 && a < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMoreReplicasMoreAvailable(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		return Availability(n+1, 1, 5) > Availability(n, 1, 5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRequiredRepairTimeConsistent(t *testing.T) {
	// Availability(n, 1/lifetime, 1/repair) must reproduce A.
	f := func(nRaw uint8, aRaw uint16) bool {
		n := int(nRaw%6) + 1
		a := 0.9 + float64(aRaw%999)/10000 // 0.9 .. 0.9999
		repair := RequiredRepairTime(n, 1.0, a)
		got := Availability(n, 1, 1/repair)
		return math.Abs(got-a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
