// Package avail implements the troupe reliability analysis of §6.4.2:
// a troupe whose members fail at rate λ and are replaced at rate μ is
// a birth–death process isomorphic to the M/M/n/n queue (Figure 6.3).
// The analytic results answer the question of when to replace defunct
// troupe members; a Monte-Carlo simulator validates them.
package avail

import (
	"math"
	"math/rand"
)

// StateProbability returns p_k, the equilibrium probability that
// exactly k of the n troupe members have failed, for failure rate
// lambda and repair rate mu (Kleinrock's M/M/n/n analysis, §6.4.2).
// Each member is independently failed with probability λ/(λ+μ), so p_k
// is binomial.
func StateProbability(n, k int, lambda, mu float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	p := lambda / (lambda + mu)
	return binomial(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r *= float64(n-k+i) / float64(i)
	}
	return r
}

// Availability returns Equation 6.1: the equilibrium probability that
// a troupe of n members is functioning (not all members failed),
//
//	A = 1 − (λ/(λ+μ))^n.
func Availability(n int, lambda, mu float64) float64 {
	return 1 - math.Pow(lambda/(lambda+mu), float64(n))
}

// RequiredRepairTime returns Equation 6.2: the largest mean replacement
// time 1/μ that still achieves availability A for a troupe of n
// members whose mean lifetime is 1/λ,
//
//	1/μ = (1/λ) · x/(1−x),  x = (1−A)^(1/n).
func RequiredRepairTime(n int, lifetime, a float64) float64 {
	x := math.Pow(1-a, 1/float64(n))
	return lifetime * x / (1 - x)
}

// SimResult is the outcome of a birth–death simulation.
type SimResult struct {
	// Availability is the fraction of simulated time with at least
	// one member functioning.
	Availability float64
	// StateTime[k] is the fraction of time exactly k members were
	// failed.
	StateTime []float64
	// TotalFailures counts transitions into the all-failed state.
	TotalFailures int
}

// Simulate runs a continuous-time Monte-Carlo simulation of the
// birth–death process of Figure 6.3 for the given simulated duration
// (in the same time unit as the rates) and returns the observed
// availability and state distribution.
//
// State k (number of failed members) rises at rate (n−k)λ and falls at
// rate kμ; sojourn times are exponential with the sum of the two
// rates, which is exactly the Markov process the analysis assumes.
func Simulate(n int, lambda, mu, duration float64, rng *rand.Rand) SimResult {
	res := SimResult{StateTime: make([]float64, n+1)}
	state := 0
	t := 0.0
	for t < duration {
		up := float64(n-state) * lambda // next failure
		down := float64(state) * mu     // next repair
		total := up + down
		dwell := rng.ExpFloat64() / total
		if t+dwell > duration {
			dwell = duration - t
		}
		res.StateTime[state] += dwell
		t += dwell
		if t >= duration {
			break
		}
		if rng.Float64() < up/total {
			state++
			if state == n {
				res.TotalFailures++
			}
		} else {
			state--
		}
	}
	for k := range res.StateTime {
		res.StateTime[k] /= duration
	}
	res.Availability = 1 - res.StateTime[n]
	return res
}
