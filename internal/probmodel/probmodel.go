// Package probmodel implements the probabilistic analyses of the
// dissertation: the harmonic-number bound on multicast replicated call
// latency (§4.4.2, Theorems 4.2–4.3), and the deadlock probability of
// the troupe commit protocol (§5.3.1, Equation 5.1), together with
// Monte-Carlo samplers used to validate them empirically.
package probmodel

import (
	"math"
	"math/rand"
)

// HarmonicNumber returns H_n = 1 + 1/2 + ... + 1/n (Definition 4.1).
func HarmonicNumber(n int) float64 {
	h := 0.0
	for k := 1; k <= n; k++ {
		h += 1.0 / float64(k)
	}
	return h
}

// ExpectedMaxExponential returns E[max(T_1..T_n)] for independent
// exponential round-trip times with the given mean: H_n times the mean
// (Theorem 4.3). This is the expected time for a multicast-based
// replicated procedure call to collect all n return messages, and it
// grows only logarithmically with troupe size (§4.4.2).
func ExpectedMaxExponential(n int, mean float64) float64 {
	return HarmonicNumber(n) * mean
}

// SampleMaxExponential draws one sample of max(T_1..T_n) with
// exponential T_i of the given mean.
func SampleMaxExponential(n int, mean float64, rng *rand.Rand) float64 {
	max := 0.0
	for i := 0; i < n; i++ {
		t := rng.ExpFloat64() * mean
		if t > max {
			max = t
		}
	}
	return max
}

// MeanMaxExponential estimates E[max of n exponentials] from trials
// samples, for checking Theorem 4.3 empirically.
func MeanMaxExponential(n int, mean float64, trials int, rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += SampleMaxExponential(n, mean, rng)
	}
	return sum / float64(trials)
}

// Factorial returns k! as a float64 (exact through k = 170).
func Factorial(k int) float64 {
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}

// DeadlockProbability returns Equation 5.1: the probability that the
// troupe commit protocol deadlocks when k conflicting transactions are
// serialized independently and uniformly at random by each of n troupe
// members,
//
//	P[deadlock] = 1 − (1/k!)^(n−1).
func DeadlockProbability(k, n int) float64 {
	if k <= 1 || n <= 1 {
		return 0
	}
	return 1 - math.Pow(1/Factorial(k), float64(n-1))
}

// LogarithmicFit reports the least-squares slope and intercept of y
// against ln(x), used by the benchmark harness to verify that
// multicast latency grows logarithmically (y ≈ a·ln x + b) while
// unicast latency grows linearly.
func LogarithmicFit(xs []int, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		lx := math.Log(float64(x))
		sx += lx
		sy += ys[i]
		sxx += lx * lx
		sxy += lx * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LinearFit reports the least-squares slope and intercept of y against
// x.
func LinearFit(xs []int, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		fx := float64(x)
		sx += fx
		sy += ys[i]
		sxx += fx * fx
		sxy += fx * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}
