package probmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonicNumbers(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{1, 1},
		{2, 1.5},
		{3, 1.5 + 1.0/3},
		{4, 1.5 + 1.0/3 + 0.25},
	}
	for _, c := range cases {
		if got := HarmonicNumber(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("H_%d = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHarmonicLogBound(t *testing.T) {
	// H_n = ln n + γ + O(1/n) (§4.4.2 cites Knuth).
	const gamma = 0.5772156649
	for _, n := range []int{10, 100, 1000} {
		got := HarmonicNumber(n)
		approx := math.Log(float64(n)) + gamma
		if math.Abs(got-approx) > 0.06 {
			t.Errorf("H_%d = %v, ln n + γ = %v", n, got, approx)
		}
	}
}

func TestTheorem43MonteCarlo(t *testing.T) {
	// E[max of n exponentials] must match H_n·mean within sampling
	// error.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 10} {
		analytic := ExpectedMaxExponential(n, 10)
		empirical := MeanMaxExponential(n, 10, 40000, rng)
		if math.Abs(analytic-empirical)/analytic > 0.03 {
			t.Errorf("n=%d: empirical %v vs analytic %v", n, empirical, analytic)
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120}
	for k, w := range want {
		if got := Factorial(k); got != w {
			t.Errorf("%d! = %v, want %v", k, got, w)
		}
	}
}

func TestDeadlockProbability(t *testing.T) {
	cases := []struct {
		k, n int
		want float64
	}{
		{1, 5, 0},
		{2, 1, 0},
		{2, 2, 0.5},
		{2, 3, 0.75},
		{3, 2, 1 - 1.0/6},
	}
	for _, c := range cases {
		if got := DeadlockProbability(c.k, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P[deadlock](k=%d,n=%d) = %v, want %v", c.k, c.n, got, c.want)
		}
	}
}

func TestDeadlockProbabilityApproachesOne(t *testing.T) {
	// §5.3.1: the probability rapidly approaches certainty when the
	// optimistic assumption fails.
	if p := DeadlockProbability(5, 5); p < 0.999 {
		t.Errorf("P[deadlock](5,5) = %v, want ≈1", p)
	}
}

func TestQuickDeadlockProbabilityBounds(t *testing.T) {
	f := func(kRaw, nRaw uint8) bool {
		k, n := int(kRaw%10)+1, int(nRaw%10)+1
		p := DeadlockProbability(k, n)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockProbabilityMonotonic(t *testing.T) {
	for k := 2; k <= 5; k++ {
		for n := 2; n <= 5; n++ {
			if DeadlockProbability(k, n) > DeadlockProbability(k+1, n) {
				t.Errorf("not monotonic in k at k=%d n=%d", k, n)
			}
			if DeadlockProbability(k, n) > DeadlockProbability(k, n+1) {
				t.Errorf("not monotonic in n at k=%d n=%d", k, n)
			}
		}
	}
}

func TestLinearFit(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	s, b := LinearFit(xs, ys)
	if math.Abs(s-2) > 1e-9 || math.Abs(b-3) > 1e-9 {
		t.Errorf("fit = %v, %v", s, b)
	}
}

func TestLogarithmicFit(t *testing.T) {
	xs := []int{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*math.Log(float64(x)) + 1
	}
	s, b := LogarithmicFit(xs, ys)
	if math.Abs(s-3) > 1e-9 || math.Abs(b-1) > 1e-9 {
		t.Errorf("fit = %v, %v", s, b)
	}
}

func TestFitDistinguishesGrowth(t *testing.T) {
	// The harness uses the two fits to classify growth: linear data
	// must fit a line better, logarithmic data a log curve better.
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	lin := make([]float64, len(xs))
	logs := make([]float64, len(xs))
	for i, x := range xs {
		lin[i] = 20 * float64(x)
		logs[i] = 20 * HarmonicNumber(x)
	}
	sLin, _ := LinearFit(xs, lin)
	if sLin < 19 || sLin > 21 {
		t.Errorf("linear slope = %v", sLin)
	}
	sLog, _ := LogarithmicFit(xs, logs)
	if sLog < 15 || sLog > 25 {
		t.Errorf("log slope = %v", sLog)
	}
}
