// Package chaos is a deterministic fault-campaign harness: it runs a
// replicated key-value troupe with concurrent clients on the
// simulated internet, drives a seeded schedule of machine crashes,
// restarts, partitions, heals, and loss bursts against it, and checks
// after quiescence that the troupe survived — replica states
// converged, every replicated call executed at most once per member,
// and no acknowledged update was lost.
//
// The harness exists to exercise the self-healing layer end to end:
// resilient stubs (retry, backoff, suspicion, automatic rebind), the
// binding agent's garbage collection and reconfiguration (§6.1–6.4),
// and the repair protocol that reinitializes recovered members from
// their peers' state (§6.4.1). In durable mode each member
// additionally write-ahead-logs its acked writes to an injectable
// disk, so the campaign can also kill the entire troupe — a failure
// replication alone cannot mask — and verify that no acknowledged
// write is lost across the full restart.
package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"circus"
	"circus/internal/wal"
)

// KV procedure numbers.
const (
	// ProcPut stores a key/value pair. Puts are idempotent per key —
	// the chaos workload writes each key once with an immutable value —
	// so the resilient caller's retries are safe.
	ProcPut uint16 = 1
	// ProcGet returns the value of a key, empty if absent.
	ProcGet uint16 = 2
	// ProcDump returns the whole map, for reconciliation and checking.
	ProcDump uint16 = 3
	// ProcMerge adds every entry of the argument map that is absent
	// locally: the repair half of state transfer (§6.4.1), safe to
	// apply in any order because keys are unique and values immutable.
	ProcMerge uint16 = 4
	// ProcPosition returns the member's absolute state position (apply-
	// order entries applied ever, compacted ones included) as 8 bytes
	// big-endian: the rejoin handshake the repairman uses to choose
	// delta over full state transfer.
	ProcPosition uint16 = 5
	// ProcDumpSince returns the apply-order suffix from the argument
	// position (8 bytes big-endian): the delta half of state transfer.
	ProcDumpSince uint16 = 6
	// ProcDel deletes a batch of keys (a marshaled []string). Deletes
	// append tombstone pairs to the apply-order log — so delta transfers
	// propagate them — and in durable mode are redo-logged and fsynced
	// like puts. The mesh migration coordinator uses it to drop a moved
	// key range from its old shard after the epoch flip.
	ProcDel uint16 = 7
)

type kvPair struct {
	Key, Val string
	// Del marks a tombstone: the pair records the deletion of Key, and
	// Val is empty. Tombstones live in the apply-order log (and its WAL
	// records) only until the next snapshot compacts them away.
	Del bool
}

// KV is the replicated module under test: a map plus the
// instrumentation the invariant checker needs. Executions are counted
// per replicated call, keyed by the thread ID and call path of the
// executing frame (§4.3.2): replicas executing the same replicated
// call observe equal keys, and a member that executes the same
// replicated call twice has violated exactly-once semantics.
//
// Besides the map the member keeps order, the apply-order log of its
// pairs. Its length is the member's position: a rejoining member
// reports its position and receives a peer's suffix instead of the
// whole map (repair.go). In durable mode every state change is also
// appended to the WAL and fsynced before the call returns, so an
// acked write survives even a whole-troupe power loss.
type KV struct {
	wal *wal.Log // nil = in-memory member

	// snapMu serializes snapshot compactions: the covered-prefix
	// truncation must see the same order log the image captured.
	snapMu sync.Mutex

	mu        sync.Mutex
	data      map[string]string
	order     []kvPair          // applied pairs since the last compaction
	base      int               // apply-order entries compacted away; position = base + len(order)
	gen       int               // bumped by Restart, so a stale compaction aborts
	keyPos    map[string]uint64 // key -> WAL position of its redo record
	execs     map[string]int
	conflicts []string // put/merge collisions with a different value
}

// NewKV returns an empty instrumented in-memory store.
func NewKV() *KV {
	return &KV{data: make(map[string]string), keyPos: make(map[string]uint64), execs: make(map[string]int)}
}

// NewDurableKV returns a store whose acked writes are redo-logged to
// log, first replaying what a previous incarnation left on disk.
func NewDurableKV(log *wal.Log, rec *wal.Recovered) (*KV, error) {
	s := NewKV()
	s.wal = log
	if rec != nil {
		s.mu.Lock()
		err := s.replayLocked(rec)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Restart simulates the member process dying and coming back with
// only its disk: the in-memory state is discarded and rebuilt from
// the WAL's snapshot and tail. In-flight appends fail with
// wal.ErrReopened, so a write racing the crash is never acked.
// Instrumentation (execs, conflicts) survives — it belongs to the
// checker, not the member. No-op for in-memory members.
func (s *KV) Restart() error {
	if s.wal == nil {
		return nil
	}
	rec, err := s.wal.Reopen()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]string)
	s.order = nil
	s.base = 0
	s.gen++
	s.keyPos = make(map[string]uint64)
	return s.replayLocked(rec)
}

// kvImage is the snapshot wire format: the live pairs plus the
// apply-order position they cover. Replaying an image costs O(live
// keys) no matter how many puts and deletes preceded it — tombstones
// and overwritten history are compacted away at snapshot time.
type kvImage struct {
	Position uint64
	Pairs    []kvPair
}

// replayLocked rebuilds data and order from a recovery image: the
// compacted snapshot (live pairs at a recorded apply position), then
// the redo records after it.
func (s *KV) replayLocked(rec *wal.Recovered) error {
	if rec.Snapshot != nil {
		var img kvImage
		if err := circus.Unmarshal(rec.Snapshot, &img); err != nil {
			return errors.New("chaos: garbled snapshot: " + err.Error())
		}
		for _, p := range img.Pairs {
			s.applyLocked(p)
		}
		// The image's pairs land at the start of the rebuilt order log;
		// base re-anchors the member's absolute position so that peers'
		// position comparisons stay meaningful across the restart.
		s.base = int(img.Position) - len(s.order)
	}
	for _, r := range rec.Records {
		pairs, err := decodePairs(r)
		if err != nil {
			return err
		}
		for _, p := range pairs {
			s.applyLocked(p)
		}
	}
	return nil
}

// applyLocked applies one pair, reporting whether it changed state
// and what it displaced. Replay and live puts share it, so replayed
// state is bit-identical to what memory held.
func (s *KV) applyLocked(p kvPair) (changed, hadOld bool, old string) {
	if p.Del {
		old, ok := s.data[p.Key]
		if !ok {
			return false, false, "" // idempotent: already gone
		}
		delete(s.data, p.Key)
		s.order = append(s.order, p)
		return true, true, old
	}
	if old, ok := s.data[p.Key]; ok {
		if old == p.Val {
			return false, true, old // idempotent duplicate
		}
		s.conflicts = append(s.conflicts, fmt.Sprintf("put %q: %q over %q", p.Key, p.Val, old))
		s.data[p.Key] = p.Val
		s.order = append(s.order, p)
		return true, true, old
	}
	s.data[p.Key] = p.Val
	s.order = append(s.order, p)
	return true, false, ""
}

// undoLocked reverses the applyLocked of p that just happened: its
// redo record could not be appended, so the change must not stay
// visible (it would be acked-by-retry yet unrecoverable).
func (s *KV) undoLocked(p kvPair, hadOld bool, old string) {
	if n := len(s.order); n > 0 && s.order[n-1] == p {
		s.order = s.order[:n-1]
	}
	if p.Del {
		if hadOld {
			s.data[p.Key] = old
		}
		return
	}
	if hadOld {
		s.data[p.Key] = old
	} else {
		delete(s.data, p.Key)
	}
}

// logLocked appends one redo record covering pairs and records their
// log position, so a future retry knows what durability to wait for.
// Called with s.mu held so the WAL order equals the apply order; the
// fsync is awaited by the caller outside the lock.
func (s *KV) logLocked(pairs []kvPair) (uint64, error) {
	b, err := circus.Marshal(pairs)
	if err != nil {
		return 0, err
	}
	pos, err := s.wal.Append(b)
	if err != nil {
		return 0, err
	}
	for _, p := range pairs {
		s.keyPos[p.Key] = pos
	}
	return pos, nil
}

// ackDurable awaits durability through log position target (group
// commit batches concurrent callers under one fsync) and snapshots
// when enough log has accumulated. Must be called before acking a
// state change; nil error means the change is on disk. target 0 means
// the state in question is already durable (snapshot or replay).
func (s *KV) ackDurable(target uint64) error {
	if s.wal == nil || target == 0 {
		return nil
	}
	if err := s.wal.SyncTo(target); err != nil {
		return err
	}
	if s.wal.NeedSnapshot() {
		s.snapshot()
	}
	return nil
}

// snapshot writes the live state as a compacted snapshot, truncating
// the WAL, then drops the covered apply-order prefix (tombstones
// included) from memory. Position and state are captured under s.mu —
// appends also happen under s.mu, so the position exactly covers the
// captured state. The image holds live pairs only: a delete-heavy
// history costs O(live keys) to replay, not O(operations ever).
func (s *KV) snapshot() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.Lock()
	gen := s.gen
	pos := s.wal.Pos()
	covered := len(s.order)
	img := kvImage{Position: uint64(s.base + covered)}
	img.Pairs = make([]kvPair, 0, len(s.data))
	for k, v := range s.data {
		img.Pairs = append(img.Pairs, kvPair{Key: k, Val: v})
	}
	s.mu.Unlock()
	sort.Slice(img.Pairs, func(i, j int) bool { return img.Pairs[i].Key < img.Pairs[j].Key })
	state, err := circus.Marshal(img)
	if err != nil {
		return
	}
	if s.wal.SnapshotAt(state, pos) != nil {
		return // failure just delays truncation and compaction
	}
	s.mu.Lock()
	if s.gen != gen {
		// The member restarted under us: replay already rebuilt (and
		// re-anchored) the order log, so the captured prefix is gone.
		s.mu.Unlock()
		return
	}
	// Appends that raced in since the capture stay in the suffix; only
	// the covered prefix is compacted. Retry-durability bookkeeping for
	// anything the snapshot covers is settled (the image is on disk), so
	// prune keyPos entries of keys that no longer exist.
	s.base += covered
	s.order = append([]kvPair(nil), s.order[covered:]...)
	for k, p := range s.keyPos {
		if p <= pos {
			if _, live := s.data[k]; !live {
				delete(s.keyPos, k)
			}
		}
	}
	s.mu.Unlock()
}

// Dispatch implements circus.Module.
func (s *KV) Dispatch(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcPut:
		var p kvPair
		if err := circus.Unmarshal(args, &p); err != nil {
			return nil, err
		}
		if err := s.put(p, call.Thread().Key()); err != nil {
			return nil, err
		}
		return []byte(p.Key), nil
	case ProcGet:
		s.mu.Lock()
		v := s.data[string(args)]
		s.mu.Unlock()
		return []byte(v), nil
	case ProcDump:
		return s.GetState()
	case ProcMerge:
		var dump []kvPair
		if err := circus.Unmarshal(args, &dump); err != nil {
			return nil, err
		}
		if err := s.merge(dump); err != nil {
			return nil, err
		}
		return nil, nil
	case ProcDel:
		var keys []string
		if err := circus.Unmarshal(args, &keys); err != nil {
			return nil, err
		}
		if err := s.del(keys, call.Thread().Key()); err != nil {
			return nil, err
		}
		return nil, nil
	case ProcPosition:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(s.Position()))
		return b[:], nil
	case ProcDumpSince:
		if len(args) != 8 {
			return nil, errors.New("chaos: dump-since wants an 8-byte position")
		}
		return s.DumpSince(int(binary.BigEndian.Uint64(args)))
	default:
		return nil, circus.ErrNoSuchProc
	}
}

// put applies one pair and, for durable members, awaits durability
// before acking. execKey identifies the replicated call frame for the
// exactly-once counter; the crash-consistency test drives put directly
// with an empty key. When the redo append itself fails the apply is
// undone — otherwise a retry would find the value present and ack a
// write the log cannot recover. When only the fsync fails the record
// stays appended and keyPos remembers it, so the retry waits for that
// exact record's durability instead of acking for free.
func (s *KV) put(p kvPair, execKey string) error {
	s.mu.Lock()
	if execKey != "" {
		s.execs[execKey]++
	}
	changed, hadOld, old := s.applyLocked(p)
	var target uint64
	if s.wal != nil {
		if changed {
			pos, err := s.logLocked([]kvPair{p})
			if err != nil {
				s.undoLocked(p, hadOld, old)
				s.mu.Unlock()
				return err
			}
			target = pos
		} else {
			// A retry of a write whose append succeeded but whose
			// fsync did not: wait for its original record.
			target = s.keyPos[p.Key]
		}
	}
	s.mu.Unlock()
	return s.ackDurable(target)
}

// del applies a batch of tombstones and, for durable members, awaits
// their durability before acking — the mirror of put. A retry of a
// delete whose key is already gone waits on the original tombstone
// record's durability (keyPos), exactly like a retried put whose fsync
// failed; if the tombstone was already compacted into a snapshot,
// keyPos is empty and the state is durable by construction.
func (s *KV) del(keys []string, execKey string) error {
	s.mu.Lock()
	if execKey != "" {
		s.execs[execKey]++
	}
	var applied []kvPair
	var olds []string
	var target uint64
	for _, k := range keys {
		p := kvPair{Key: k, Del: true}
		changed, _, old := s.applyLocked(p)
		if changed {
			applied = append(applied, p)
			olds = append(olds, old)
		} else if s.wal != nil {
			if pos := s.keyPos[k]; pos > target {
				target = pos
			}
		}
	}
	if s.wal != nil && len(applied) > 0 {
		pos, err := s.logLocked(applied)
		if err != nil {
			for i := len(applied) - 1; i >= 0; i-- {
				s.undoLocked(applied[i], true, olds[i])
			}
			s.mu.Unlock()
			return err
		}
		if pos > target {
			target = pos
		}
	}
	s.mu.Unlock()
	return s.ackDurable(target)
}

// merge folds a peer's pairs in — adds skipping those already present,
// tombstones deleting what is — and in durable mode redo-logs what it
// applied (one batch record) before returning.
func (s *KV) merge(dump []kvPair) error {
	s.mu.Lock()
	var added []kvPair
	var olds []string
	for _, p := range dump {
		if p.Del {
			old, ok := s.data[p.Key]
			if !ok {
				continue
			}
			delete(s.data, p.Key)
			s.order = append(s.order, p)
			added = append(added, p)
			olds = append(olds, old)
			continue
		}
		if old, ok := s.data[p.Key]; ok {
			if old != p.Val {
				s.conflicts = append(s.conflicts, fmt.Sprintf("merge %q: %q vs %q", p.Key, p.Val, old))
			}
			continue
		}
		s.data[p.Key] = p.Val
		s.order = append(s.order, p)
		added = append(added, p)
		olds = append(olds, "")
	}
	var target uint64
	if s.wal != nil && len(added) > 0 {
		pos, err := s.logLocked(added)
		if err != nil {
			for i := len(added) - 1; i >= 0; i-- {
				s.undoLocked(added[i], added[i].Del, olds[i])
			}
			s.mu.Unlock()
			return err
		}
		target = pos
	}
	s.mu.Unlock()
	return s.ackDurable(target)
}

// Position returns the member's absolute apply-order position — how
// much state it has, in its own ordering, counting entries already
// compacted into a snapshot.
func (s *KV) Position() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base + len(s.order)
}

// DumpSince externalizes the apply-order suffix from absolute position
// from — the delta a briefly-absent member needs. A position beyond
// the log yields an empty dump; a position inside the compacted prefix
// is an error, which sends the repairman down its full-transfer path.
func (s *KV) DumpSince(from int) ([]byte, error) {
	s.mu.Lock()
	if from < s.base {
		s.mu.Unlock()
		return nil, fmt.Errorf("chaos: suffix from %d compacted away (base %d)", from, s.base)
	}
	rel := from - s.base
	if rel > len(s.order) {
		rel = len(s.order)
	}
	dump := append([]kvPair(nil), s.order[rel:]...)
	s.mu.Unlock()
	return circus.Marshal(dump)
}

// GetState externalizes the map (§6.4.1), sorted for determinism.
func (s *KV) GetState() ([]byte, error) {
	s.mu.Lock()
	dump := make([]kvPair, 0, len(s.data))
	for k, v := range s.data {
		dump = append(dump, kvPair{Key: k, Val: v})
	}
	s.mu.Unlock()
	sort.Slice(dump, func(i, j int) bool { return dump[i].Key < dump[j].Key })
	return circus.Marshal(dump)
}

// SetState internalizes a peer's state by merging it (§6.4.1). Merge
// rather than replace: a rejoining member may already have accepted
// writes under the new binding while the transfer was in flight.
func (s *KV) SetState(data []byte) error {
	dump, err := decodePairs(data)
	if err != nil {
		return err
	}
	return s.merge(dump)
}

// Snapshot copies the current map.
func (s *KV) Snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Violations returns this member's local invariant breaches: multiply
// executed replicated calls and conflicting writes.
func (s *KV) Violations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for key, n := range s.execs {
		if n > 1 {
			out = append(out, fmt.Sprintf("replicated call %x executed %d times", key, n))
		}
	}
	out = append(out, s.conflicts...)
	return out
}

// WAL exposes the member's log (nil for in-memory members), for the
// runner's stats.
func (s *KV) WAL() *wal.Log { return s.wal }

// decodePairs is shared by the repairman.
func decodePairs(data []byte) ([]kvPair, error) {
	var dump []kvPair
	if err := circus.Unmarshal(data, &dump); err != nil {
		return nil, errors.New("chaos: garbled dump: " + err.Error())
	}
	return dump, nil
}
