// Package chaos is a deterministic fault-campaign harness: it runs a
// replicated key-value troupe with concurrent clients on the
// simulated internet, drives a seeded schedule of machine crashes,
// restarts, partitions, heals, and loss bursts against it, and checks
// after quiescence that the troupe survived — replica states
// converged, every replicated call executed at most once per member,
// and no acknowledged update was lost.
//
// The harness exists to exercise the self-healing layer end to end:
// resilient stubs (retry, backoff, suspicion, automatic rebind), the
// binding agent's garbage collection and reconfiguration (§6.1–6.4),
// and the repair protocol that reinitializes recovered members from
// their peers' state (§6.4.1).
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"circus"
)

// KV procedure numbers.
const (
	// ProcPut stores a key/value pair. Puts are idempotent per key —
	// the chaos workload writes each key once with an immutable value —
	// so the resilient caller's retries are safe.
	ProcPut uint16 = 1
	// ProcGet returns the value of a key, empty if absent.
	ProcGet uint16 = 2
	// ProcDump returns the whole map, for reconciliation and checking.
	ProcDump uint16 = 3
	// ProcMerge adds every entry of the argument map that is absent
	// locally: the repair half of state transfer (§6.4.1), safe to
	// apply in any order because keys are unique and values immutable.
	ProcMerge uint16 = 4
)

type kvPair struct {
	Key, Val string
}

// KV is the replicated module under test: a map plus the
// instrumentation the invariant checker needs. Executions are counted
// per replicated call, keyed by the thread ID and call path of the
// executing frame (§4.3.2): replicas executing the same replicated
// call observe equal keys, and a member that executes the same
// replicated call twice has violated exactly-once semantics.
type KV struct {
	mu        sync.Mutex
	data      map[string]string
	execs     map[string]int
	conflicts []string // put/merge collisions with a different value
}

// NewKV returns an empty instrumented store.
func NewKV() *KV {
	return &KV{data: make(map[string]string), execs: make(map[string]int)}
}

// Dispatch implements circus.Module.
func (s *KV) Dispatch(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcPut:
		var p kvPair
		if err := circus.Unmarshal(args, &p); err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.execs[call.Thread().Key()]++
		if old, ok := s.data[p.Key]; ok && old != p.Val {
			s.conflicts = append(s.conflicts, fmt.Sprintf("put %q: %q over %q", p.Key, p.Val, old))
		}
		s.data[p.Key] = p.Val
		s.mu.Unlock()
		return []byte(p.Key), nil
	case ProcGet:
		s.mu.Lock()
		v := s.data[string(args)]
		s.mu.Unlock()
		return []byte(v), nil
	case ProcDump:
		return s.GetState()
	case ProcMerge:
		var dump []kvPair
		if err := circus.Unmarshal(args, &dump); err != nil {
			return nil, err
		}
		s.merge(dump)
		return nil, nil
	default:
		return nil, circus.ErrNoSuchProc
	}
}

func (s *KV) merge(dump []kvPair) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range dump {
		if old, ok := s.data[p.Key]; ok {
			if old != p.Val {
				s.conflicts = append(s.conflicts, fmt.Sprintf("merge %q: %q vs %q", p.Key, p.Val, old))
			}
			continue
		}
		s.data[p.Key] = p.Val
	}
}

// GetState externalizes the map (§6.4.1), sorted for determinism.
func (s *KV) GetState() ([]byte, error) {
	s.mu.Lock()
	dump := make([]kvPair, 0, len(s.data))
	for k, v := range s.data {
		dump = append(dump, kvPair{Key: k, Val: v})
	}
	s.mu.Unlock()
	sort.Slice(dump, func(i, j int) bool { return dump[i].Key < dump[j].Key })
	return circus.Marshal(dump)
}

// SetState internalizes a peer's state by merging it (§6.4.1). Merge
// rather than replace: a rejoining member may already have accepted
// writes under the new binding while the transfer was in flight.
func (s *KV) SetState(data []byte) error {
	var dump []kvPair
	if err := circus.Unmarshal(data, &dump); err != nil {
		return err
	}
	s.merge(dump)
	return nil
}

// Snapshot copies the current map.
func (s *KV) Snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Violations returns this member's local invariant breaches: multiply
// executed replicated calls and conflicting writes.
func (s *KV) Violations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for key, n := range s.execs {
		if n > 1 {
			out = append(out, fmt.Sprintf("replicated call %x executed %d times", key, n))
		}
	}
	out = append(out, s.conflicts...)
	return out
}

// decodePairs is shared by the repairman.
func decodePairs(data []byte) ([]kvPair, error) {
	var dump []kvPair
	if err := circus.Unmarshal(data, &dump); err != nil {
		return nil, errors.New("chaos: garbled dump: " + err.Error())
	}
	return dump, nil
}
