package chaos

import (
	"testing"
)

func TestMeshScheduleShardFaults(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := GenerateWith(seed, 3, Faults{Durable: true, Shards: 2})
		have := make(map[Kind]int)
		for _, ev := range s.Events {
			have[ev.Kind]++
			switch ev.Kind {
			case KindShardKill, KindShardRestart, KindShardPartition:
				if ev.Shard < 0 || ev.Shard >= 2 {
					t.Fatalf("seed %d: shard victim out of range: %v", seed, ev)
				}
			case KindCrash, KindRestart, KindDiskFull, KindDiskSlow:
				if ev.Shard < 0 || ev.Shard >= 2 || ev.Server < 0 || ev.Server >= 3 {
					t.Fatalf("seed %d: member victim out of range: %v", seed, ev)
				}
			}
		}
		if have[KindShardPartition] == 0 || have[KindShardKill] == 0 {
			t.Fatalf("seed %d: durable mesh schedule lacks shard faults: %v", seed, s.Events)
		}
		if have[KindShardKill] != have[KindShardRestart] || have[KindShardPartition] != have[KindShardHeal] {
			t.Fatalf("seed %d: unbalanced shard faults: %v", seed, s.Events)
		}
	}
	// Single-troupe schedules must be unchanged by the mesh feature:
	// the shard draws are gated on Shards > 1.
	for seed := int64(1); seed <= 10; seed++ {
		for _, ev := range GenerateWith(seed, 3, Faults{Durable: true}).Events {
			switch ev.Kind {
			case KindShardKill, KindShardRestart, KindShardPartition, KindShardHeal:
				t.Fatalf("seed %d: single-troupe schedule drew a shard fault: %v", seed, ev)
			}
		}
	}
}

// TestMeshCampaignSmoke runs the partitioned-mesh fault campaign: two
// consistent-hash shards plus a live split onto a spare while a
// whole-shard partition (among other faults) plays out. Every shard
// must converge and no acknowledged write may be lost at its final
// owner.
func TestMeshCampaignSmoke(t *testing.T) {
	res, err := Run(Config{Seed: 21, Shards: 2, Ops: 10, Callers: 2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Acked == 0 {
		t.Fatal("no operation was acknowledged during the campaign")
	}
	t.Logf("seed %d: acked=%d failed=%d redirects=%d parks=%d refreshes=%d rollbacks=%d removed=%d rejoined=%d",
		res.Seed, res.Acked, res.Failed, res.Redirects, res.Parks, res.MapRefreshes,
		res.SplitRollbacks, res.Removed, res.Rejoined)
}

// TestMeshCampaignDurableLinearized is the full gauntlet: durable
// members (so the schedule includes a whole-shard power loss),
// quorum-disciplined writes, strict reads, and a per-key
// linearizability check spanning the live split's epoch flips.
func TestMeshCampaignDurableLinearized(t *testing.T) {
	res, err := Run(Config{Seed: 22, Shards: 2, Ops: 8, Callers: 2, Durable: true, Linearize: true, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Acked == 0 {
		t.Fatal("no operation was acknowledged during the campaign")
	}
	if res.LinearOps == 0 {
		t.Fatal("linearizability checker saw no operations")
	}
	t.Logf("seed %d: acked=%d failed=%d reads=%d linear ops=%d keys=%d recoveries=%d rollbacks=%d",
		res.Seed, res.Acked, res.Failed, res.Reads, res.LinearOps, res.LinearKeys,
		res.Recoveries, res.SplitRollbacks)
}

// TestMeshCampaignSpreadReads runs the mesh campaign with the
// spread-read workload: linearized reads routed to one member each
// under position tokens, Zipf-skewed keys exercising the hot-key
// widening, and every client registered for Ringmaster map pushes.
// The recorded history must stay per-key linearizable through the
// faults, the bounce/escalate ladder, and the live split — and no
// member may ever answer below a client's token.
func TestMeshCampaignSpreadReads(t *testing.T) {
	res, err := Run(Config{Seed: 31, Shards: 2, Ops: 8, Callers: 2,
		Linearize: true, SpreadReads: true, Zipf: 1.2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Acked == 0 {
		t.Fatal("no operation was acknowledged during the campaign")
	}
	if res.SpreadReads == 0 {
		t.Fatal("campaign recorded no spread reads")
	}
	if res.MapPushes == 0 {
		t.Fatal("no shard-map push reached a watching client")
	}
	if res.StaleServes != 0 {
		t.Fatalf("members answered %d spread reads below the token", res.StaleServes)
	}
	t.Logf("seed %d: acked=%d reads=%d spread=%d bounces=%d escalations=%d widened=%d pushes=%d linear ops=%d",
		res.Seed, res.Acked, res.Reads, res.SpreadReads, res.StaleBounces,
		res.Escalations, res.HotWidenings, res.MapPushes, res.LinearOps)
}
