package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"circus"
	"circus/internal/chaos/linear"
	"circus/internal/core"
	"circus/internal/mesh"
	"circus/internal/trace"
	"circus/internal/trace/check"
	"circus/internal/trace/monitor"
	"circus/internal/trace/rules"
	"circus/internal/wal"
)

// meshShard is one partition of the campaign's key space: a troupe of
// KV members behind ownership guards, with its own repairman.
type meshShard struct {
	name   string
	nodes  []*circus.Node
	kvs    []*KV
	guards []*mesh.Guard
	disks  []*wal.MemFS
	addrs  []circus.ModuleAddr
	repair *repairman
}

func shardName(i int) string { return fmt.Sprintf("kv/s%d", i) }

// meshWriteQuorum is writeQuorum adapted to routed calls: when no
// quorum forms because the members unanimously refused (the guard's
// wrong-shard or parked answer), it surfaces that refusal verbatim so
// the mesh client's routing layer can parse and absorb it. A mix of
// successes and refusals — the push of a new epoch racing the write —
// stays a retryable generic failure.
func meshWriteQuorum(need int) func(n int) circus.Collator {
	return func(n int) circus.Collator {
		return circus.NewCollator(n, func(items []circus.Reply) ([]byte, error) {
			counts := make(map[string]int)
			for _, it := range items {
				if it.Err != nil {
					continue
				}
				counts[string(it.Data)]++
			}
			for v, c := range counts {
				if c >= need {
					return []byte(v), nil
				}
			}
			var firstErr error
			agree := true
			for _, it := range items {
				if it.Err == nil {
					agree = false
					continue
				}
				if firstErr == nil {
					firstErr = it.Err
				} else if it.Err.Error() != firstErr.Error() {
					agree = false
				}
			}
			if firstErr != nil && agree {
				return nil, firstErr
			}
			return nil, fmt.Errorf("chaos: no write quorum (%d identical answers needed, view of %d)", need, n)
		})
	}
}

// runMesh executes the partitioned-mesh fault campaign: cfg.Shards
// consistent-hash shards of cfg.Servers members each (plus one spare),
// bootstrapped into a shard map, mesh clients routing a concurrent
// workload by key, per-shard repairmen sweeping, a live split
// migrating a range onto the spare mid-campaign, and a fault schedule
// that includes whole-shard kills and partitions. Afterwards the mesh
// must converge shard by shard with no acknowledged write lost at its
// final owner, the trace must pass the protocol conformance check,
// and (Linearize mode) the recorded history must be per-key
// linearizable across the epoch flips.
func runMesh(cfg Config) (*Result, error) {
	const service = "kv"
	if cfg.PlantStaleReadBug {
		mesh.PlantedStaleReadBug = true
		defer func() { mesh.PlantedStaleReadBug = false }()
	}
	res := &Result{Seed: cfg.Seed,
		Schedule: GenerateWith(cfg.Seed, cfg.Servers,
			Faults{Durable: cfg.Durable, RestartAll: cfg.RestartAll, Shards: cfg.Shards})}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	sim := circus.NewSimNetwork(cfg.Seed)
	baseline := circus.LinkConfig{
		LossRate: 0.02,
		DupRate:  0.02,
		MinDelay: 200 * time.Microsecond,
		MaxDelay: 2 * time.Millisecond,
	}
	sim.SetLink(baseline)

	rec := trace.NewRecorder()
	var mon *monitor.Monitor
	var monSink trace.Sink
	if cfg.Monitor {
		mon = monitor.New(monitor.Options{
			SampleRate: cfg.MonitorSample,
			OnViolation: func(v rules.Violation) {
				cfg.Log("seed %d: monitor: %s", cfg.Seed, v)
			},
		})
		monSink = trace.FilterKinds(mon, mon.TraceKinds())
	}
	sink := trace.Multi(rec, cfg.Trace, monSink)

	binderNode, err := sim.NewNode(circus.WithTrace(sink))
	if err != nil {
		return nil, err
	}
	defer binderNode.Close()
	if _, err := binderNode.ServeRingmaster(); err != nil {
		return nil, err
	}
	boot := binderNode.BinderAddrs()
	nodeOpts := []circus.Option{circus.WithBinder(boot),
		circus.WithAdaptiveRetransmit(), circus.WithTrace(sink)}

	// The shard troupes: cfg.Shards in the bootstrap map, plus one
	// spare the live split will carve a range onto. Every member is an
	// ownership guard wrapping a KV (durable when configured).
	total := cfg.Shards + 1
	shards := make([]*meshShard, total)
	resilient := func(seed int64) core.ResilientOptions {
		return core.ResilientOptions{
			MaxAttempts:  10,
			Backoff:      core.Backoff{Initial: 15 * time.Millisecond, Max: 250 * time.Millisecond},
			SuspicionTTL: 400 * time.Millisecond,
			Seed:         seed,
		}
	}
	for s := 0; s < total; s++ {
		sh := &meshShard{name: shardName(s)}
		for i := 0; i < cfg.Servers; i++ {
			n, err := sim.NewNode(nodeOpts...)
			if err != nil {
				return nil, err
			}
			defer n.Close()
			sh.nodes = append(sh.nodes, n)
			var kv *KV
			if cfg.Durable {
				disk := wal.NewMemFS(cfg.Seed ^ int64(0xd15c<<12|s<<8|i))
				log, recv, err := wal.Open(wal.Options{
					FS:            disk,
					SegmentBytes:  1 << 16,
					SnapshotEvery: cfg.SnapshotEvery,
					Trace:         sink,
					Name:          fmt.Sprintf("kv%d.%d", s, i),
				})
				if err != nil {
					return nil, err
				}
				kv, err = NewDurableKV(log, recv)
				if err != nil {
					return nil, err
				}
				sh.disks = append(sh.disks, disk)
			} else {
				kv = NewKV()
				sh.disks = append(sh.disks, nil)
			}
			guard := mesh.NewGuard(sh.name, kv, KVKeys)
			addr, err := n.Export(sh.name, guard)
			if err != nil {
				return nil, err
			}
			sh.kvs = append(sh.kvs, kv)
			sh.guards = append(sh.guards, guard)
			sh.addrs = append(sh.addrs, addr)
		}
		shards[s] = sh
	}

	// One administrative node runs the migration controller; each
	// shard gets its own repairman machine, as in the single-troupe
	// campaign.
	admin, err := sim.NewNode(nodeOpts...)
	if err != nil {
		return nil, err
	}
	defer admin.Close()
	ctl := mesh.NewController(admin.Runtime(), admin.Binder(), service, KVCodec{})
	ctl.Resilient = resilient(cfg.Seed ^ 0xc01)
	ctl.MinCopyDonors = cfg.Servers/2 + 1
	// A park only protects the migration once so many members hold it
	// that the remaining stragglers cannot form a write quorum.
	ctl.PushQuorum = cfg.Servers/2 + 1
	ctl.Log = func(format string, args ...any) { cfg.Log("seed %d: "+format, append([]any{cfg.Seed}, args...)...) }
	for _, sh := range shards {
		rn, err := sim.NewNode(nodeOpts...)
		if err != nil {
			return nil, err
		}
		defer rn.Close()
		sh.repair = &repairman{node: rn, name: sh.name, addrs: sh.addrs, log: cfg.Log}
	}

	initial := make([]string, cfg.Shards)
	for s := range initial {
		initial[s] = shardName(s)
	}
	bootMap, err := ctl.Bootstrap(ctx, initial, 0)
	if err != nil {
		return nil, err
	}
	// The spare learns the map too: until the split admits it, its
	// guard must refuse keyed traffic rather than serve it.
	pushMap := func(name string, m *mesh.ShardMap) error {
		data, err := m.Encode()
		if err != nil {
			return err
		}
		rc, err := admin.Binder().NewResilientCaller(ctx, name, ctl.Resilient)
		if err != nil {
			return err
		}
		_, err = rc.Call(ctx, mesh.ProcSetShardMap, data, core.CallOptions{})
		return err
	}
	spare := shardName(cfg.Shards)
	if err := pushMap(spare, bootMap); err != nil {
		return nil, err
	}

	// The clients, each on its own machine, routing by key through the
	// shard map.
	type client struct {
		node *circus.Node
		mc   *mesh.Client
	}
	clients := make([]client, cfg.Clients)
	for i := range clients {
		n, err := sim.NewNode(nodeOpts...)
		if err != nil {
			return nil, err
		}
		defer n.Close()
		mc, err := mesh.NewClient(ctx, n.Runtime(), n.Binder(), service,
			mesh.Options{Resilient: resilient(cfg.Seed<<8 | int64(i))})
		if err != nil {
			return nil, err
		}
		clients[i] = client{node: n, mc: mc}
	}
	if cfg.SpreadReads {
		// Spread-read campaigns also exercise the push half of the map
		// distribution: every client registers as a Ringmaster watcher,
		// so epoch flips arrive as pushes and steady-state traffic never
		// needs a refusal-driven refetch. The pull path stays as the
		// fallback for anything a push misses.
		for _, cl := range clients {
			if err := cl.mc.EnableWatch(ctx); err != nil {
				return nil, err
			}
		}
	}

	powerLoss := func(s, i int) {
		sh := shards[s]
		sim.Crash(sh.nodes[i])
		if cfg.Durable {
			sh.disks[i].Crash()
		}
	}
	powerOn := func(s, i int) {
		sh := shards[s]
		if cfg.Durable && sh.disks[i].Crashed() {
			sh.disks[i].Restart()
			if err := sh.kvs[i].Restart(); err != nil {
				cfg.Log("seed %d: s%d.%d recovery failed: %v", cfg.Seed, s, i, err)
			} else {
				res.Recoveries++
			}
		}
		sim.Restart(sh.nodes[i])
		// The member may have slept through epoch flips; the binder
		// holds the newest published map, and Install is forward-only,
		// so refetching is always safe.
		fctx, fcancel := context.WithTimeout(ctx, 500*time.Millisecond)
		if m, err := mesh.FetchShardMap(fctx, sh.nodes[i].Binder(), service); err == nil {
			sh.guards[i].Install(m)
		}
		fcancel()
	}

	// Launch the client workload (as in the single-troupe campaign:
	// unique keys, immutable values, so retries are idempotent and
	// cross-replica equality is meaningful).
	var (
		mu    sync.Mutex
		acked = make(map[string]string)
	)
	var failed, reads int
	var hist *linear.History
	majority := cfg.Servers/2 + 1
	if cfg.Linearize {
		hist = linear.NewHistory()
	}
	scheduleDone := make(chan struct{})
	var wg sync.WaitGroup
	for ci := range clients {
		for gi := 0; gi < cfg.Callers; gi++ {
			ci, gi := ci, gi
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed ^ int64(0x5eed<<16|ci<<8|gi)))
				for op := 0; ; op++ {
					if op >= cfg.Ops {
						select {
						case <-scheduleDone:
							return
						default:
						}
					}
					key := fmt.Sprintf("c%d.g%d.k%d", ci, gi, op)
					val := fmt.Sprintf("v%d.%s", cfg.Seed, key)
					args, _ := circus.Marshal(kvPair{Key: key, Val: val})
					// Every mesh write acks by quorum (unlike the
					// single-troupe campaign, where a one-member ack is
					// eventually spread by repair): the migration copy
					// draws dumps from a majority of members, and only
					// quorum intersection guarantees an acked record is
					// among them. A one-member ack on a straggler the
					// park never reached would be invisible to the copy
					// and lost at the epoch flip.
					copts := core.CallOptions{Timeout: 600 * time.Millisecond,
						Collator: meshWriteQuorum(majority)}
					var pend *linear.Pending
					if hist != nil {
						pend = hist.Invoke(ci*cfg.Callers+gi, linear.Write, key, val)
					}
					_, err := clients[ci].mc.Call(ctx, key, ProcPut, args, copts)
					if pend != nil {
						if err == nil {
							pend.Done("")
						} else {
							pend.Fail() // indeterminate
						}
					}
					mu.Lock()
					if err == nil {
						acked[key] = val
					} else {
						failed++
					}
					mu.Unlock()
					if hist != nil && rng.Float64() < cfg.ReadFrac {
						rkey := readKey(rng, cfg, op)
						if cfg.SpreadReads {
							// Spread read: one member, chosen by the client's
							// rotation, answering only at or past the client's
							// position token. The invoke is recorded before
							// the call — a late start would unsoundly narrow
							// the operation's window. Campaign keys are
							// write-once, so a present value is the value and
							// is recorded directly; an absent answer is only a
							// session-level fact (another client's acked write
							// may not have reached this member), so absence is
							// confirmed by the strict majority read before it
							// constrains the history, and dropped otherwise.
							rp := hist.Invoke(ci*cfg.Callers+gi, linear.Read, rkey, "")
							out, rerr := clients[ci].mc.SpreadRead(ctx, rkey, ProcGet, []byte(rkey),
								core.CallOptions{Timeout: 300 * time.Millisecond, Collator: strictRead})
							switch {
							case rerr == nil && len(out) > 0:
								rp.Done(string(out))
								mu.Lock()
								reads++
								mu.Unlock()
							case rerr == nil:
								if _, rc, err := clients[ci].mc.ShardCaller(ctx, rkey); err == nil {
									if tr := rc.Troupe(); tr.Degree() >= majority {
										out, rerr = clients[ci].node.StubFor(tr).
											Call(ctx, ProcGet, []byte(rkey), circus.WithTimeout(300*time.Millisecond),
												circus.WithCollator(strictRead))
										if rerr == nil {
											rp.Done(string(out))
											mu.Lock()
											reads++
											mu.Unlock()
										}
									}
								}
							}
						} else if _, rc, err := clients[ci].mc.ShardCaller(ctx, rkey); err == nil {
							// Strict read of a key some caller may have written,
							// routed to its owner shard but collated over the
							// full member view — every member of a
							// majority-sized view must answer identically, or
							// the read is dropped as unanswered (see the
							// single-troupe campaign for why). The guard's
							// refusals land as member errors, so a read against
							// a mid-migration or mis-routed shard simply drops.
							if tr := rc.Troupe(); tr.Degree() >= majority {
								rp := hist.Invoke(ci*cfg.Callers+gi, linear.Read, rkey, "")
								out, rerr := clients[ci].node.StubFor(tr).
									Call(ctx, ProcGet, []byte(rkey), circus.WithTimeout(300*time.Millisecond),
										circus.WithCollator(strictRead))
								if rerr == nil {
									rp.Done(string(out))
									mu.Lock()
									reads++
									mu.Unlock()
								}
							}
						}
					}
					time.Sleep(time.Duration(10+rng.Intn(20)) * time.Millisecond)
				}
			}()
		}
	}

	// Per-shard repairmen sweep concurrently with the faults.
	repairCtx, stopRepair := context.WithCancel(ctx)
	var repairWG sync.WaitGroup
	for _, sh := range shards {
		sh := sh
		repairWG.Add(1)
		go func() {
			defer repairWG.Done()
			for repairCtx.Err() == nil {
				sh.repair.sweep(repairCtx, false)
				select {
				case <-repairCtx.Done():
				case <-time.After(150 * time.Millisecond):
				}
			}
		}()
	}

	// The live split: mid-schedule, while faults fly and traffic
	// flows, migrate the spare's consistent-hash range onto it. A
	// migration that collides with a whole-shard fault rolls back (the
	// dump floor refuses partial copies) and is retried; the campaign
	// must end with the split committed.
	splitDone := make(chan error, 1)
	go func() {
		delay := res.Schedule.Span() * 2 / 5
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			splitDone <- ctx.Err()
			return
		}
		var serr error
		for attempt := 1; ; attempt++ {
			serr = ctl.Split(ctx, spare)
			if serr == nil || strings.Contains(serr.Error(), "already in the map") {
				serr = nil
				break
			}
			res.SplitRollbacks++
			cfg.Log("seed %d: live split attempt %d rolled back: %v", cfg.Seed, attempt, serr)
			if attempt >= 5 || ctx.Err() != nil {
				break
			}
			time.Sleep(400 * time.Millisecond)
		}
		splitDone <- serr
	}()

	// Apply the fault schedule.
	allNodes := func(except *meshShard, exceptMembers map[int]bool) []*circus.Node {
		var out []*circus.Node
		out = append(out, binderNode, admin)
		for _, sh := range shards {
			for i, n := range sh.nodes {
				if sh == except && (exceptMembers == nil || exceptMembers[i]) {
					continue
				}
				out = append(out, n)
			}
			out = append(out, sh.repair.node)
		}
		for _, c := range clients {
			out = append(out, c.node)
		}
		return out
	}
	start := time.Now()
	for _, ev := range res.Schedule.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		cfg.Log("seed %d: %v", cfg.Seed, ev)
		switch ev.Kind {
		case KindCrash:
			powerLoss(ev.Shard, ev.Server)
		case KindRestart:
			powerOn(ev.Shard, ev.Server)
		case KindKillAll:
			for s := range shards {
				for i := range shards[s].nodes {
					powerLoss(s, i)
				}
			}
		case KindRestartAll:
			for s := range shards {
				for i := range shards[s].nodes {
					powerOn(s, i)
				}
			}
		case KindShardKill:
			for i := range shards[ev.Shard].nodes {
				powerLoss(ev.Shard, i)
			}
		case KindShardRestart:
			for i := range shards[ev.Shard].nodes {
				powerOn(ev.Shard, i)
			}
		case KindShardPartition:
			sh := shards[ev.Shard]
			sim.Partition(allNodes(sh, nil), sh.nodes)
		case KindShardHeal, KindHeal:
			sim.Heal()
		case KindDiskFull:
			shards[ev.Shard].disks[ev.Server].FillDisk()
		case KindDiskSlow:
			shards[ev.Shard].disks[ev.Server].SetSyncDelay(2 * time.Millisecond)
		case KindDiskHeal:
			shards[ev.Shard].disks[ev.Server].SetQuota(0)
			shards[ev.Shard].disks[ev.Server].SetSyncDelay(0)
			shards[ev.Shard].disks[ev.Server].FailSyncs(false)
		case KindPartition:
			sh := shards[ev.Shard]
			isolated := make(map[int]bool)
			var minority []*circus.Node
			for _, mi := range ev.Minority {
				minority = append(minority, sh.nodes[mi])
				isolated[mi] = true
			}
			sim.Partition(allNodes(sh, isolated), minority)
		case KindLossBurst:
			burst := baseline
			burst.LossRate = ev.Loss
			sim.SetLink(burst)
		case KindLossEnd:
			sim.SetLink(baseline)
		}
	}

	// Quiesce: faults healed, every machine up, split settled.
	serr := <-splitDone
	close(scheduleDone)
	wg.Wait()
	sim.Heal()
	sim.SetLink(baseline)
	for s, sh := range shards {
		for i := range sh.nodes {
			if cfg.Durable {
				sh.disks[i].SetQuota(0)
				sh.disks[i].SetSyncDelay(0)
				sh.disks[i].FailSyncs(false)
			}
			powerOn(s, i)
		}
	}
	time.Sleep(300 * time.Millisecond)
	if serr != nil {
		// The schedule denied every mid-campaign attempt; the split
		// must still commit now that the field is calm — a live
		// rebalance that cannot complete after faults heal is a
		// failure in its own right.
		if serr = ctl.Split(ctx, spare); serr != nil &&
			!strings.Contains(serr.Error(), "already in the map") {
			res.Violations = append(res.Violations,
				fmt.Sprintf("live split never completed: %v", serr))
		}
	}
	stopRepair()
	repairWG.Wait()
	// Re-push the final map everywhere (a guard that slept through the
	// flip behind a partition would refuse its keys forever), then
	// force the per-shard union reconciliations.
	if m, err := mesh.FetchShardMap(ctx, admin.Binder(), service); err == nil {
		for _, sh := range shards {
			if err := pushMap(sh.name, m); err != nil {
				cfg.Log("seed %d: final map push to %s failed: %v", cfg.Seed, sh.name, err)
			}
		}
	}
	for _, sh := range shards {
		for i := 0; i < 4; i++ {
			if sh.repair.sweep(ctx, true) {
				break
			}
			time.Sleep(150 * time.Millisecond)
		}
	}
	time.Sleep(200 * time.Millisecond)

	// Harvest counters.
	res.Acked = len(acked)
	res.Failed = failed
	res.Reads = reads
	for _, c := range clients {
		st := c.mc.Stats()
		res.Redirects += st.Redirects
		res.Parks += st.Parks
		res.MapRefreshes += st.Refreshes
		res.SpreadReads += st.SpreadReads
		res.StaleBounces += st.StaleBounces
		res.Escalations += st.Escalations
		res.HotWidenings += st.HotWidenings
		res.MapPushes += st.MapPushes
		res.StaleServes += st.StaleServes
	}
	if res.StaleServes > 0 {
		// A member answered a spread read from below the demanded
		// position token. The clients discard such answers, so the
		// recorded history stays clean — but the guard is broken, and a
		// campaign that sees one must fail. This is how the planted
		// stale-read defect is caught.
		res.Violations = append(res.Violations,
			fmt.Sprintf("spread reads: %d answers below the client's position token (stale-read guard defect)",
				res.StaleServes))
	}
	for _, sh := range shards {
		res.Removed += sh.repair.removed
		res.Rejoined += sh.repair.rejoined
		res.DeltaTransfers += sh.repair.deltaTransfers
		res.DeltaBytes += sh.repair.deltaBytes
		res.FullTransfers += sh.repair.fullTransfers
		res.FullBytes += sh.repair.fullBytes
		if cfg.Durable {
			for _, kv := range sh.kvs {
				st := kv.WAL().Stats()
				res.Fsyncs += st.Fsyncs
				res.Snapshots += st.Snapshots
			}
		}
	}

	// Invariants: mesh-level application checks, then the recorded
	// trace through the protocol conformance checker.
	final, err := mesh.FetchShardMap(ctx, admin.Binder(), service)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("final shard map unavailable: %v", err))
	} else {
		res.Violations = append(res.Violations, meshCheck(shards, final, acked)...)
	}
	conf := check.Check(rec.Events(), check.Config{
		Adaptive: true,
		MinRTO:   2 * time.Millisecond,
		// The mesh campaign hosts several times the machines of the
		// single-troupe one in a single OS process, so a retransmit
		// timer can fire tens of milliseconds late and fold that skew
		// into the measured gap sequence. 0.3 absorbs the skew while
		// still flagging a genuine backoff reset, which collapses to
		// the 2 ms floor (a far smaller ratio).
		Tolerance: 0.3,
	})
	res.Violations = append(res.Violations, check.Strings(conf)...)
	if mon != nil {
		st := mon.Stats()
		res.MonitorEvents = st.Events
		res.MonitorSampled = st.Sampled
		for _, v := range mon.Violations() {
			res.Violations = append(res.Violations, "monitor: "+v.String())
		}
	}
	if hist != nil {
		lin := linear.Check(hist.Ops(), 0)
		res.LinearOps = lin.Ops
		res.LinearKeys = lin.Keys
		if !lin.Linearizable {
			res.Violations = append(res.Violations,
				fmt.Sprintf("linearizability: key %q: %s", lin.Key, lin.Explanation))
		}
		for _, k := range lin.Exhausted {
			cfg.Log("seed %d: linearizability search exhausted on key %q (inconclusive)", cfg.Seed, k)
		}
	}
	return res, nil
}

// meshCheck verifies the post-quiescence mesh invariants: per-member
// exactly-once execution, per-shard state convergence, and every
// acknowledged update present at its owner shard under the final map.
// Old owners may retain stale copies of migrated keys (cleanup is
// best-effort and repair may resurrect them); they are unreachable
// behind the wrong-shard check and are not a violation.
func meshCheck(shards []*meshShard, final *mesh.ShardMap, acked map[string]string) []string {
	var v []string
	snaps := make(map[string][]map[string]string, len(shards))
	for s, sh := range shards {
		for i, kv := range sh.kvs {
			for _, viol := range kv.Violations() {
				v = append(v, fmt.Sprintf("shard %d member %d: %s", s, i, viol))
			}
			snaps[sh.name] = append(snaps[sh.name], kv.Snapshot())
		}
		for i := 1; i < len(snaps[sh.name]); i++ {
			if diff := diffMaps(snaps[sh.name][0], snaps[sh.name][i]); diff != "" {
				v = append(v, fmt.Sprintf("shard %d members 0 and %d diverge: %s", s, i, diff))
			}
		}
	}
	ring := final.Ring()
	lost, corrupted := 0, 0
	for key, val := range acked {
		owner := ring.Owner(key)
		members, ok := snaps[owner]
		if !ok || len(members) == 0 {
			v = append(v, fmt.Sprintf("acknowledged update %q owned by unknown shard %q", key, owner))
			continue
		}
		got, ok := members[0][key]
		switch {
		case !ok:
			if lost++; lost <= 4 {
				v = append(v, fmt.Sprintf("acknowledged update %q lost (owner %s)", key, owner))
			}
		case got != val:
			if corrupted++; corrupted <= 4 {
				v = append(v, fmt.Sprintf("acknowledged update %q corrupted at %s: %q != %q", key, owner, got, val))
			}
		}
	}
	if lost > 4 {
		v = append(v, fmt.Sprintf("... and %d more lost updates", lost-4))
	}
	if corrupted > 4 {
		v = append(v, fmt.Sprintf("... and %d more corrupted updates", corrupted-4))
	}
	return v
}
