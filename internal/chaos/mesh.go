package chaos

import (
	"sort"

	"circus"
)

// This file adapts the KV module to the mesh layer: the routing-key
// extractor for the guard's ownership check and the state codec the
// migration controller moves key ranges with. Both are structural
// (mesh.KeyFunc and mesh.StateCodec), so the KV stays ignorant of the
// mesh and vice versa.

// KVKeys extracts the routing key from a KV call. Only the keyed data
// path (put, get) is guarded; dumps, merges, positions, and deletes
// are repair and migration traffic that addresses a shard on purpose.
func KVKeys(proc uint16, args []byte) (string, bool) {
	switch proc {
	case ProcPut:
		var p kvPair
		if circus.Unmarshal(args, &p) != nil {
			return "", false
		}
		return p.Key, true
	case ProcGet:
		return string(args), true
	}
	return "", false
}

// KVCodec implements mesh.StateCodec over the KV's repair procedures.
type KVCodec struct{}

// Procs returns the dump/merge/delete procedure numbers.
func (KVCodec) Procs() (dump, merge, del uint16) { return ProcDump, ProcMerge, ProcDel }

// Union folds several members' dumps into one sorted dump. Values are
// immutable per key, so union order cannot matter.
func (KVCodec) Union(dumps [][]byte) ([]byte, error) {
	u := make(map[string]string)
	for _, d := range dumps {
		pairs, err := decodePairs(d)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			if !p.Del {
				u[p.Key] = p.Val
			}
		}
	}
	out := make([]kvPair, 0, len(u))
	for k, v := range u {
		out = append(out, kvPair{Key: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return circus.Marshal(out)
}

// Filter returns the subset of a dump whose keys satisfy keep.
func (KVCodec) Filter(dump []byte, keep func(string) bool) ([]byte, []string, error) {
	pairs, err := decodePairs(dump)
	if err != nil {
		return nil, nil, err
	}
	var subset []kvPair
	var keys []string
	for _, p := range pairs {
		if !p.Del && keep(p.Key) {
			subset = append(subset, p)
			keys = append(keys, p.Key)
		}
	}
	data, err := circus.Marshal(subset)
	return data, keys, err
}

// EncodeKeys externalizes a key batch for ProcDel.
func (KVCodec) EncodeKeys(keys []string) ([]byte, error) { return circus.Marshal(keys) }

// PutArgs externalizes one put for callers routing through the mesh.
func PutArgs(key, val string) ([]byte, error) {
	return circus.Marshal(kvPair{Key: key, Val: val})
}
