package chaos

import (
	"context"
	"time"

	"circus"
)

// repairman is the recovery manager of the campaign, playing the
// configuration-manager role of §7.5.3: it garbage-collects
// unresponsive members out of the binding (§6.1), re-admits recovered
// ones, and reinitializes them from their peers' state (§6.4.1).
//
// The rejoin order matters: the member is re-added to the binding
// FIRST — bumping the troupe ID, so clients rebind and subsequent
// writes include the member — and its state is reconciled afterwards.
// The reverse order (state transfer, then re-add) would lose every
// write acknowledged between the transfer and the re-add. Merge-based
// reconciliation makes the order safe: the campaign workload's keys
// are unique and its values immutable, so merging is exact.
type repairman struct {
	node  *circus.Node
	name  string
	addrs []circus.ModuleAddr
	log   func(format string, args ...any)

	removed  int
	rejoined int
}

// sweep runs one repair pass and reports whether the system is whole:
// every known member bound and a full state reconciliation completed.
func (r *repairman) sweep(ctx context.Context) bool {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()

	// Drop members that do not answer the null procedure (§6.1). A
	// merely partitioned member is indistinguishable from a crashed
	// one and is removed too; it rejoins after the heal.
	if n, err := r.node.GarbageCollect(sctx, 150*time.Millisecond); err == nil && n > 0 {
		r.removed += n
		r.log("repair: removed %d unresponsive member(s)", n)
	}

	// A failed lookup means the binding emptied out entirely (every
	// member was garbage-collected); AddMember still works on an empty
	// troupe, so proceed with nothing marked present and re-admit.
	present := make(map[circus.ModuleAddr]bool, len(r.addrs))
	if t, err := r.node.Binder().LookupByName(sctx, r.name); err == nil {
		for _, m := range t.Members {
			present[m] = true
		}
	}

	whole := true
	for _, addr := range r.addrs {
		if present[addr] {
			continue
		}
		whole = false
		// Direct ping, bypassing the binding: is the member back?
		direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{addr}})
		if err := direct.Ping(sctx, circus.WithTimeout(150*time.Millisecond)); err != nil {
			continue // still unreachable; try again next sweep
		}
		if _, err := r.node.Binder().AddMember(sctx, r.name, addr); err != nil {
			continue
		}
		r.rejoined++
		r.log("repair: rejoined %v", addr)
	}
	if !r.reconcile(sctx) {
		whole = false
	}
	return whole
}

// reconcile fetches every bound member's state, forms the union, and
// merges it back into every member. It reports whether every member
// participated; a partial reconciliation is retried by a later sweep.
func (r *repairman) reconcile(ctx context.Context) bool {
	t, err := r.node.Binder().LookupByName(ctx, r.name)
	if err != nil || len(t.Members) < 2 {
		return err == nil
	}
	union := make(map[string]string)
	complete := true
	for _, m := range t.Members {
		direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{m}})
		data, err := direct.Call(ctx, ProcDump, nil, circus.WithTimeout(300*time.Millisecond))
		if err != nil {
			complete = false
			continue
		}
		pairs, err := decodePairs(data)
		if err != nil {
			complete = false
			continue
		}
		for _, p := range pairs {
			if _, ok := union[p.Key]; !ok {
				union[p.Key] = p.Val
			}
		}
	}
	dump := make([]kvPair, 0, len(union))
	for k, v := range union {
		dump = append(dump, kvPair{Key: k, Val: v})
	}
	args, err := circus.Marshal(dump)
	if err != nil {
		return false
	}
	for _, m := range t.Members {
		direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{m}})
		if _, err := direct.Call(ctx, ProcMerge, args, circus.WithTimeout(300*time.Millisecond)); err != nil {
			complete = false
		}
	}
	return complete
}
