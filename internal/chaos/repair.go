package chaos

import (
	"context"
	"encoding/binary"
	"time"

	"circus"
	"circus/internal/trace"
)

// rejoinSlack is how far before the rejoiner's reported position the
// delta transfer starts. Positions are per-member apply orders, so two
// members' logs can interleave differently; re-fetching a small window
// absorbs the reordering, and merging is idempotent so overlap is
// free. Divergence beyond the slack is caught by the reconcile pass.
const rejoinSlack = 64

// repairman is the recovery manager of the campaign, playing the
// configuration-manager role of §7.5.3: it garbage-collects
// unresponsive members out of the binding (§6.1), re-admits recovered
// ones, and reinitializes them from their peers' state (§6.4.1).
//
// The rejoin order matters: the member is re-added to the binding
// FIRST — bumping the troupe ID, so clients rebind and subsequent
// writes include the member — and its state is reconciled afterwards.
// The reverse order (state transfer, then re-add) would lose every
// write acknowledged between the transfer and the re-add. Merge-based
// reconciliation makes the order safe: the campaign workload's keys
// are unique and its values immutable, so merging is exact.
//
// Re-initialization is incremental when it can be: the rejoiner
// reports its state position (what it recovered from its own log, or
// kept in memory), and the repairman transfers a live peer's
// apply-order suffix from just before that position instead of the
// full state — O(delta) bytes for a briefly-dead member.
type repairman struct {
	node  *circus.Node
	name  string
	addrs []circus.ModuleAddr
	log   func(format string, args ...any)

	removed  int
	rejoined int

	// Transfer accounting, for the O(delta) assertion: bytes moved to
	// rejoining members by suffix transfers vs full-state fallbacks.
	deltaTransfers int
	deltaBytes     int64
	fullTransfers  int
	fullBytes      int64
}

// sweep runs one repair pass and reports whether the system is whole:
// every known member bound and a state reconciliation completed. When
// force is set the reconciliation always runs in full; otherwise
// members whose positions agree are presumed converged and the
// expensive union pass is skipped.
func (r *repairman) sweep(ctx context.Context, force bool) bool {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()

	// Drop members that do not answer the null procedure (§6.1). A
	// merely partitioned member is indistinguishable from a crashed
	// one and is removed too; it rejoins after the heal.
	if n, err := r.node.GarbageCollect(sctx, 150*time.Millisecond); err == nil && n > 0 {
		r.removed += n
		r.log("repair: removed %d unresponsive member(s)", n)
	}

	// A failed lookup means the binding emptied out entirely (every
	// member was garbage-collected); AddMember still works on an empty
	// troupe, so proceed with nothing marked present and re-admit.
	present := make(map[circus.ModuleAddr]bool, len(r.addrs))
	if t, err := r.node.Binder().LookupByName(sctx, r.name); err == nil {
		for _, m := range t.Members {
			present[m] = true
		}
	}
	var live []circus.ModuleAddr // bound before this sweep: delta donors
	for _, addr := range r.addrs {
		if present[addr] {
			live = append(live, addr)
		}
	}

	whole := true
	for _, addr := range r.addrs {
		if present[addr] {
			continue
		}
		whole = false
		// Direct ping, bypassing the binding: is the member back?
		direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{addr}})
		if err := direct.Ping(sctx, circus.WithTimeout(150*time.Millisecond)); err != nil {
			continue // still unreachable; try again next sweep
		}
		// The rejoin handshake: ask the member how much state it
		// already has before re-admitting it.
		pos := -1
		if b, err := direct.Call(sctx, ProcPosition, nil,
			circus.WithTimeout(150*time.Millisecond)); err == nil && len(b) == 8 {
			pos = int(binary.BigEndian.Uint64(b))
		}
		if _, err := r.node.Binder().AddMember(sctx, r.name, addr); err != nil {
			continue
		}
		r.rejoined++
		r.transfer(sctx, addr, pos, live)
	}
	if !r.reconcile(sctx, force) {
		whole = false
	}
	return whole
}

// transfer re-initializes a just-re-admitted member from a live peer:
// the apply-order suffix from just before the member's reported
// position when the handshake produced one, the full state otherwise.
func (r *repairman) transfer(ctx context.Context, addr circus.ModuleAddr, pos int, live []circus.ModuleAddr) {
	delta := pos >= 0 && len(live) > 0
	var dump []byte
	if delta {
		from := pos - rejoinSlack
		if from < 0 {
			from = 0
		}
		var args [8]byte
		binary.BigEndian.PutUint64(args[:], uint64(from))
		donor := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{live[0]}})
		b, err := donor.Call(ctx, ProcDumpSince, args[:], circus.WithTimeout(300*time.Millisecond))
		if err != nil {
			delta = false
		} else {
			dump = b
		}
	}
	if !delta {
		// No position, no live donor, or the donor call failed: full
		// state from the whole troupe (the rejoiner included — §6.4.1's
		// unanimous get_state doubles as a consistency check, but here
		// members may legitimately lag, so ask the first live one, or
		// fall back to the rejoiner's own dump being merged as a no-op).
		src := addr
		if len(live) > 0 {
			src = live[0]
		}
		donor := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{src}})
		b, err := donor.Call(ctx, ProcDump, nil, circus.WithTimeout(300*time.Millisecond))
		if err != nil {
			return // reconcile will finish the job
		}
		dump = b
	}
	direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{addr}})
	if _, err := direct.Call(ctx, ProcMerge, dump, circus.WithTimeout(300*time.Millisecond)); err != nil {
		return
	}
	if delta {
		r.deltaTransfers++
		r.deltaBytes += int64(len(dump))
		r.log("repair: rejoined %v via delta (%d bytes from position %d)", addr, len(dump), pos)
	} else {
		r.fullTransfers++
		r.fullBytes += int64(len(dump))
		r.log("repair: rejoined %v via full transfer (%d bytes)", addr, len(dump))
	}
	if tr := r.node.Runtime().Tracer(); tr.Enabled() {
		detail := "full"
		if delta {
			detail = "delta"
		}
		tr.Emit(trace.Event{Kind: trace.KindDeltaRejoin, N: len(dump), Detail: detail})
	}
}

// reconcile fetches every bound member's state, forms the union, and
// merges it back into every member. It reports whether every member
// participated; a partial reconciliation is retried by a later sweep.
// Unless force is set, a position gossip round runs first: when every
// member reports the same position the states are presumed converged
// and the O(state) union pass is skipped.
func (r *repairman) reconcile(ctx context.Context, force bool) bool {
	t, err := r.node.Binder().LookupByName(ctx, r.name)
	if err != nil || len(t.Members) < 2 {
		return err == nil
	}
	if !force && r.positionsAgree(ctx, t.Members) {
		return true
	}
	union := make(map[string]string)
	complete := true
	for _, m := range t.Members {
		direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{m}})
		data, err := direct.Call(ctx, ProcDump, nil, circus.WithTimeout(300*time.Millisecond))
		if err != nil {
			complete = false
			continue
		}
		pairs, err := decodePairs(data)
		if err != nil {
			complete = false
			continue
		}
		for _, p := range pairs {
			if _, ok := union[p.Key]; !ok {
				union[p.Key] = p.Val
			}
		}
	}
	dump := make([]kvPair, 0, len(union))
	for k, v := range union {
		dump = append(dump, kvPair{Key: k, Val: v})
	}
	args, err := circus.Marshal(dump)
	if err != nil {
		return false
	}
	for _, m := range t.Members {
		direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{m}})
		if _, err := direct.Call(ctx, ProcMerge, args, circus.WithTimeout(300*time.Millisecond)); err != nil {
			complete = false
		}
	}
	return complete
}

// positionsAgree polls every member's position and reports whether
// they all answered with the same value. Equal positions do not prove
// equal states (apply orders differ across members), but disagreement
// reliably accompanies divergence, so this is a cheap gossip filter in
// front of the O(state) union — never a substitute for the forced
// final reconciliation.
func (r *repairman) positionsAgree(ctx context.Context, members []circus.ModuleAddr) bool {
	first := int64(-1)
	for _, m := range members {
		direct := r.node.StubFor(circus.Troupe{Members: []circus.ModuleAddr{m}})
		b, err := direct.Call(ctx, ProcPosition, nil, circus.WithTimeout(150*time.Millisecond))
		if err != nil || len(b) != 8 {
			return false
		}
		pos := int64(binary.BigEndian.Uint64(b))
		if first == -1 {
			first = pos
		} else if pos != first {
			return false
		}
	}
	return first >= 0
}
