package chaos

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"circus"
	"circus/internal/wal"
)

func TestScheduleDurableFaults(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		f := Faults{Durable: true, RestartAll: true}
		a := GenerateWith(seed, 3, f)
		b := GenerateWith(seed, 3, f)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: durable schedules differ", seed)
		}
		have := make(map[Kind]int)
		killAt, restartAt := -1, -1
		for i, ev := range a.Events {
			have[ev.Kind]++
			switch ev.Kind {
			case KindKillAll:
				killAt = i
			case KindRestartAll:
				restartAt = i
			case KindDiskFull, KindDiskSlow, KindDiskHeal:
				if ev.Server < 0 || ev.Server >= 3 {
					t.Fatalf("seed %d: disk victim out of range: %v", seed, ev)
				}
			}
		}
		if have[KindKillAll] != 1 || have[KindRestartAll] != 1 {
			t.Fatalf("seed %d: want exactly one kill-all/restart-all pair: %v", seed, a.Events)
		}
		if killAt > restartAt {
			t.Fatalf("seed %d: restart-all precedes kill-all: %v", seed, a.Events)
		}
		if have[KindCrash] != have[KindRestart] {
			t.Fatalf("seed %d: unbalanced crash/restart: %v", seed, a.Events)
		}
		if have[KindDiskFull]+have[KindDiskSlow] != have[KindDiskHeal] {
			t.Fatalf("seed %d: unhealed disk fault: %v", seed, a.Events)
		}
	}
	// The classic generator must never draw from the durable pool: an
	// in-memory troupe cannot survive a whole-troupe power loss.
	for seed := int64(1); seed <= 10; seed++ {
		for _, ev := range Generate(seed, 3).Events {
			switch ev.Kind {
			case KindKillAll, KindRestartAll, KindDiskFull, KindDiskSlow, KindDiskHeal:
				t.Fatalf("seed %d: durable kind %v in classic schedule", seed, ev.Kind)
			}
		}
	}
}

// TestDurableCampaignSmoke runs a full durable campaign: every member
// write-ahead-logs its acked writes, crashes become power losses with
// torn log tails, and the schedule adds disk faults. Every invariant
// must hold, and the logs must actually be exercised.
func TestDurableCampaignSmoke(t *testing.T) {
	res, err := Run(Config{Seed: 7, Ops: 12, Durable: true, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Acked == 0 {
		t.Fatal("no operation was acknowledged during the campaign")
	}
	if res.Fsyncs == 0 {
		t.Fatal("durable campaign performed no fsyncs")
	}
	if res.Recoveries == 0 {
		t.Fatal("durable campaign recovered no member from its log")
	}
	t.Logf("seed %d: acked=%d failed=%d recoveries=%d fsyncs=%d snapshots=%d delta=%d/%dB full=%d/%dB",
		res.Seed, res.Acked, res.Failed, res.Recoveries, res.Fsyncs, res.Snapshots,
		res.DeltaTransfers, res.DeltaBytes, res.FullTransfers, res.FullBytes)
}

// TestDurableCampaignFullRestart is the acceptance scenario: the whole
// troupe is power-failed at once mid-traffic — the failure replication
// alone cannot mask — and every member must recover from its own log
// such that no acknowledged write is lost.
func TestDurableCampaignFullRestart(t *testing.T) {
	res, err := Run(Config{Seed: 5, Ops: 10, Durable: true, RestartAll: true,
		Monitor: true, Linearize: true, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations after whole-troupe restart: %v", res.Violations)
	}
	if res.Acked == 0 {
		t.Fatal("no operation was acknowledged during the campaign")
	}
	if res.Recoveries < 3 {
		t.Fatalf("Recoveries = %d after a whole-troupe power loss, want >= 3", res.Recoveries)
	}
	t.Logf("seed %d: acked=%d failed=%d recoveries=%d fsyncs=%d snapshots=%d delta=%d/%dB full=%d/%dB",
		res.Seed, res.Acked, res.Failed, res.Recoveries, res.Fsyncs, res.Snapshots,
		res.DeltaTransfers, res.DeltaBytes, res.FullTransfers, res.FullBytes)
}

// TestRestartAllRequiresDurable pins the config validation: killing
// every machine of an in-memory troupe would simply lose the state.
func TestRestartAllRequiresDurable(t *testing.T) {
	if _, err := Run(Config{Seed: 1, RestartAll: true}); err == nil {
		t.Fatal("RestartAll without Durable was accepted")
	}
}

// TestCrashBetweenAppendAndFsync power-fails a durable member in the
// window between a record's append and its fsync — the injected sync
// delay holds that window open — then restarts it and requires the
// recovered store to hold exactly the pre-crash acked writes: every
// acked key present with its value, nothing corrupted. Run with -race
// -count=20 to shake the interleavings.
func TestCrashBetweenAppendAndFsync(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		fs := wal.NewMemFS(seed)
		log, rec, err := wal.Open(wal.Options{FS: fs, SegmentBytes: 1 << 14, SnapshotEvery: 16})
		if err != nil {
			t.Fatal(err)
		}
		kv, err := NewDurableKV(log, rec)
		if err != nil {
			t.Fatal(err)
		}
		// Every fsync now dawdles, so there is always a moment where a
		// record is appended (and applied in memory) but not yet synced.
		fs.SetSyncDelay(200 * time.Microsecond)

		var (
			mu    sync.Mutex
			acked = make(map[string]string)
		)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for op := 0; ; op++ {
					select {
					case <-stop:
						return
					default:
					}
					key := fmt.Sprintf("g%d.k%d", g, op)
					p := kvPair{Key: key, Val: "v." + key}
					if err := kv.put(p, ""); err == nil {
						mu.Lock()
						acked[key] = p.Val
						mu.Unlock()
					}
				}
			}()
		}
		// Let some writes be acknowledged, then pull the plug while
		// others are mid-flight.
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := len(acked)
			mu.Unlock()
			if n >= 8 || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		fs.Crash()
		close(stop)
		wg.Wait()

		fs.Restart()
		fs.SetSyncDelay(0)
		if err := kv.Restart(); err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		got := kv.Snapshot()
		mu.Lock()
		if len(acked) == 0 {
			t.Fatalf("seed %d: nothing was acked before the crash", seed)
		}
		for k, v := range acked {
			if got[k] != v {
				t.Fatalf("seed %d: acked write %q lost or corrupted after crash: %q != %q",
					seed, k, got[k], v)
			}
		}
		mu.Unlock()
		// Unacked writes may or may not have survived (their fsync raced
		// the crash), but whatever is present must be uncorrupted.
		for k, v := range got {
			if want := "v." + k; v != want {
				t.Fatalf("seed %d: recovered %q = %q, want %q", seed, k, v, want)
			}
		}
		log.Close()
	}
}

// TestDeltaRejoinTransfersDelta pins the incremental state transfer:
// a durable member that was briefly down recovers its state from its
// own log and reports its position, so the repairman ships only a
// peer's apply-order suffix — O(delta) bytes, far less than the full
// state — and the member still converges exactly.
func TestDeltaRejoinTransfersDelta(t *testing.T) {
	sim := circus.NewSimNetwork(42)
	binder, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	defer binder.Close()
	if _, err := binder.ServeRingmaster(); err != nil {
		t.Fatal(err)
	}
	boot := binder.BinderAddrs()
	ctx := context.Background()

	const servers = 3
	var (
		nodes [servers]*circus.Node
		kvs   [servers]*KV
		disks [servers]*wal.MemFS
		addrs []circus.ModuleAddr
	)
	for i := 0; i < servers; i++ {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		disks[i] = wal.NewMemFS(int64(100 + i))
		log, rec, err := wal.Open(wal.Options{FS: disks[i], SegmentBytes: 1 << 16, SnapshotEvery: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		kvs[i], err = NewDurableKV(log, rec)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := n.Export("kv", kvs[i])
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}

	cn, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	stub, err := cn.ImportResilient(ctx, "kv", circus.ResilientOptions{
		Seed:         1,
		MaxAttempts:  10,
		Backoff:      circus.Backoff{Initial: 15 * time.Millisecond, Max: 250 * time.Millisecond},
		SuspicionTTL: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	put := func(i int) {
		t.Helper()
		args, _ := circus.Marshal(kvPair{Key: fmt.Sprintf("k%03d", i), Val: fmt.Sprintf("v%03d", i)})
		if _, err := stub.Call(ctx, ProcPut, args, circus.WithTimeout(2*time.Second)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Phase 1: the whole troupe absorbs the bulk of the state.
	const bulk = 200
	for i := 0; i < bulk; i++ {
		put(i)
	}

	// Member 2 loses power. The repairman garbage-collects it out of
	// the binding so the troupe keeps making progress without it.
	rn, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()
	repair := &repairman{node: rn, name: "kv", addrs: addrs, log: t.Logf}
	sim.Crash(nodes[2])
	disks[2].Crash()
	for i := 0; i < 40 && repair.removed == 0; i++ {
		repair.sweep(ctx, false)
		time.Sleep(50 * time.Millisecond)
	}
	if repair.removed == 0 {
		t.Fatal("repairman never garbage-collected the dead member")
	}

	// Phase 2: a small delta lands while member 2 is away.
	const delta = 30
	for i := bulk; i < bulk+delta; i++ {
		put(i)
	}

	// Power back on: the member recovers the bulk from its own log,
	// and the rejoin handshake should ship only the suffix.
	disks[2].Restart()
	if err := kvs[2].Restart(); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if pos := kvs[2].Position(); pos != bulk {
		t.Fatalf("recovered position = %d, want %d", pos, bulk)
	}
	sim.Restart(nodes[2])
	for i := 0; i < 40 && repair.rejoined == 0; i++ {
		repair.sweep(ctx, false)
		time.Sleep(50 * time.Millisecond)
	}
	if repair.rejoined == 0 {
		t.Fatal("repairman never re-admitted the recovered member")
	}
	if repair.deltaTransfers == 0 {
		t.Fatalf("rejoin used no delta transfer (full=%d): position handshake broken", repair.fullTransfers)
	}
	full, err := kvs[0].GetState()
	if err != nil {
		t.Fatal(err)
	}
	if repair.deltaBytes == 0 || repair.deltaBytes >= int64(len(full))/2 {
		t.Fatalf("delta transfer moved %d bytes, want (0, %d): not O(delta)",
			repair.deltaBytes, len(full)/2)
	}

	// And the member must still converge exactly.
	repair.sweep(ctx, true)
	got := kvs[2].Snapshot()
	if len(got) != bulk+delta {
		t.Fatalf("rejoined member has %d keys, want %d", len(got), bulk+delta)
	}
	for i := 0; i < bulk+delta; i++ {
		k := fmt.Sprintf("k%03d", i)
		if got[k] != fmt.Sprintf("v%03d", i) {
			t.Fatalf("rejoined member: %q = %q", k, got[k])
		}
	}
	t.Logf("delta rejoin: %d bytes vs %d full-state bytes", repair.deltaBytes, len(full))
}
