package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"circus"
	"circus/internal/chaos/linear"
	"circus/internal/trace"
	"circus/internal/trace/check"
	"circus/internal/trace/monitor"
	"circus/internal/trace/rules"
	"circus/internal/wal"
)

// Config parameterizes one campaign.
type Config struct {
	// Seed drives the network's fault injection, the schedule, the
	// clients' pacing, and the resilient stubs' jitter: two runs with
	// the same Config apply the same schedule.
	Seed int64
	// Servers is the KV troupe degree. Default 3.
	Servers int
	// Shards, when above one, runs the mesh campaign instead of the
	// single-troupe one: Shards consistent-hash partitions of the key
	// space, each its own troupe of Servers members behind an
	// ownership guard, clients routing through the shard map, and a
	// live split migrating a range onto a spare shard while the fault
	// schedule (including whole-shard kills and partitions) plays out.
	Shards int
	// Clients is the number of concurrent client processes. Default 3.
	Clients int
	// Ops is the number of put operations per client caller. Default 30.
	Ops int
	// Callers is the number of concurrent caller goroutines per client
	// process, all sharing that client's resilient stub — exercising
	// the sharded message layer and parallel dispatch under faults.
	// Default 1 (the historical serial client).
	Callers int
	// Durable gives every server an injectable in-memory disk and a
	// write-ahead log: acked writes are fsynced before the reply, a
	// crash becomes a power loss (page cache discarded, log tail
	// possibly torn), and the schedule may add disk faults.
	Durable bool
	// RestartAll additionally schedules a whole-troupe power loss —
	// the failure mode replication cannot mask, survivable only
	// because of the logs. Requires Durable.
	RestartAll bool
	// SnapshotEvery is the per-member snapshot cadence in log records
	// (durable mode). Default 64.
	SnapshotEvery int
	// Monitor runs the online runtime monitor live against the trace
	// stream for the whole campaign: protocol violations are reported
	// the moment the offending event is emitted, not at post-mortem.
	Monitor bool
	// MonitorSample is the monitor's 1-in-N identity sampling rate
	// (0 or 1 = observe everything). Sampling is per call path and per
	// conversation, so a sampled identity is always seen whole.
	MonitorSample int
	// Linearize interleaves reads into the put workload, records every
	// operation's invocation/response window, and checks the history
	// for per-key linearizability at the end of the campaign. The
	// linearized clients opt into quorum discipline — writes ack only
	// on a majority of the original degree, reads demand identical
	// answers from every member of a majority-sized view — because
	// that is the collation choice under which this system IS
	// linearizable: the default ack-from-whoever-answered collation
	// can ack a write on a member the repairman is concurrently
	// removing from the binding, and such a write is legitimately
	// invisible until the member rejoins and merges.
	Linearize bool
	// SpreadReads routes the linearized mesh clients' reads through the
	// spread-read path — one member per read, chosen by load-aware
	// rotation, carrying the client's position token — instead of the
	// strict replicated read. A value answer is recorded directly
	// (campaign keys are write-once, so a present value is always the
	// value); an absent answer is inconclusive under the token's session
	// guarantee and is confirmed by the strict majority read before it
	// is recorded. Requires Shards > 1 and Linearize.
	SpreadReads bool
	// ReadFrac is the probability each caller follows a write with a
	// read (Linearize mode). Default 0.5.
	ReadFrac float64
	// Zipf, when > 1, skews read-key popularity with a Zipfian
	// distribution of that exponent, so a handful of keys soak up most
	// reads — the workload the spread path's hot-key widening must
	// absorb. <= 1 keeps the uniform choice.
	Zipf float64
	// PlantStaleReadBug plants the guard-side defect that answers
	// spread reads from below the demanded position token. The clients'
	// reply-position audit must catch it: a campaign with the bug
	// planted must report a violation. Test-only; requires SpreadReads.
	PlantStaleReadBug bool
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
	// Trace, when set, additionally receives every node's trace events
	// (e.g. a JSONL exporter). The campaign always records events
	// internally for the protocol conformance checker regardless.
	Trace trace.Sink
}

func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.Ops == 0 {
		c.Ops = 30
	}
	if c.Callers == 0 {
		c.Callers = 1
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.5
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Result is the outcome of one campaign.
type Result struct {
	Seed     int64
	Schedule Schedule
	// Acked and Failed count client put operations: Acked operations
	// are covered by the no-lost-update invariant; Failed ones are
	// indeterminate (they may or may not have executed) but must still
	// be value-consistent wherever they surface.
	Acked  int
	Failed int
	// Rebinds, Retries, and Suspected aggregate the resilient stubs'
	// recovery counters.
	Rebinds   int64
	Retries   int64
	Suspected int64
	// Removed and Rejoined count binding-agent reconfigurations
	// performed by the repairman.
	Removed  int
	Rejoined int
	// DeltaTransfers/DeltaBytes and FullTransfers/FullBytes break down
	// how rejoining members were re-initialized: log-suffix transfers
	// vs full-state fallbacks.
	DeltaTransfers int
	DeltaBytes     int64
	FullTransfers  int
	FullBytes      int64
	// Recoveries, Fsyncs, and Snapshots aggregate the members' WAL
	// activity (durable mode).
	Recoveries int
	Fsyncs     uint64
	Snapshots  uint64
	// MonitorEvents/MonitorSampled count what the online monitor saw
	// and retained (Monitor mode); monitor violations land in
	// Violations like any other breach.
	MonitorEvents  uint64
	MonitorSampled uint64
	// Reads counts successful read operations; LinearOps and LinearKeys
	// count the checked history (Linearize mode).
	Reads      int
	LinearOps  int
	LinearKeys int
	// Redirects, Parks, and MapRefreshes aggregate the mesh clients'
	// routing recoveries; SplitRollbacks counts live-split attempts
	// the fault schedule forced into rollback before one stuck
	// (mesh campaigns).
	Redirects      int64
	Parks          int64
	MapRefreshes   int64
	SplitRollbacks int
	// SpreadReads through StaleServes aggregate the spread-read path
	// (mesh campaigns with SpreadReads): reads served by one member,
	// stale refusals bounced past, escalations to the strict replicated
	// read, hot-key widenings, shard maps installed from Ringmaster
	// pushes, and — always a violation — answers below the client's
	// position token.
	SpreadReads  int64
	StaleBounces int64
	Escalations  int64
	HotWidenings int64
	MapPushes    int64
	StaleServes  int64
	// Violations lists every invariant breach; empty means the troupe
	// survived the campaign.
	Violations []string
}

// writeQuorum collates a linearized put's replies: success requires
// `need` (a majority of the troupe's original degree) identical
// successful answers, regardless of how small the attempt's view is.
// With it, an acked write provably resides on a majority of the
// original members — the other half of the quorum-intersection
// argument that makes the recorded history linearizable. An attempt
// against a too-small or partly unreachable view simply fails and is
// recorded as indeterminate.
func writeQuorum(need int) func(n int) circus.Collator {
	return func(n int) circus.Collator {
		return circus.NewCollator(n, func(items []circus.Reply) ([]byte, error) {
			counts := make(map[string]int)
			for _, it := range items {
				if it.Err != nil {
					continue
				}
				counts[string(it.Data)]++
			}
			for v, c := range counts {
				if c >= need {
					return []byte(v), nil
				}
			}
			return nil, fmt.Errorf("chaos: no write quorum (%d identical answers needed, view of %d)", need, n)
		})
	}
}

// strictRead collates the linearizability probes' replies: every
// member of the view must answer, successfully and bit-identically.
// Unlike the default unanimous collator it does NOT exclude failed
// members — a reply assembled from a surviving subset could come from
// a single state-lagging member mid-repair, which is exactly the
// stale read the probe must treat as unanswered, not as an answer.
func strictRead(n int) circus.Collator {
	return circus.NewCollator(n, func(items []circus.Reply) ([]byte, error) {
		if len(items) < n {
			return nil, fmt.Errorf("chaos: %d of %d members answered", len(items), n)
		}
		for _, it := range items {
			if it.Err != nil {
				return nil, fmt.Errorf("chaos: member %d failed: %w", it.Member, it.Err)
			}
		}
		for _, it := range items[1:] {
			if !bytes.Equal(it.Data, items[0].Data) {
				return nil, circus.ErrDisagreement
			}
		}
		return items[0].Data, nil
	})
}

// readKey picks which caller's key a read probe targets — often
// another client's, so reads cross replicas the writer never talked
// to. With Zipf skew the flattened (client, caller, op) rank space is
// sampled Zipfian-ly, making rank 0 — c0.g0.k0 — soak up most reads:
// the hot-key workload the spread path's widening detector must
// absorb. Without skew every written key is equally likely.
func readKey(rng *rand.Rand, cfg Config, op int) string {
	nc, ng := cfg.Clients, cfg.Callers
	if cfg.Zipf > 1 {
		z := rand.NewZipf(rng, cfg.Zipf, 1, uint64(nc*ng*(op+1))-1)
		r := int(z.Uint64())
		return fmt.Sprintf("c%d.g%d.k%d", r%nc, (r/nc)%ng, r/(nc*ng))
	}
	return fmt.Sprintf("c%d.g%d.k%d", rng.Intn(nc), rng.Intn(ng), rng.Intn(op+1))
}

// Run executes one fault campaign: build a replicated KV troupe with
// a binding agent and a repairman, launch concurrent clients through
// resilient stubs, apply the seeded fault schedule, then quiesce,
// repair, and check the invariants.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.RestartAll && !cfg.Durable {
		return nil, fmt.Errorf("chaos: RestartAll requires Durable (a whole-troupe power loss without logs loses everything)")
	}
	if cfg.SpreadReads {
		if cfg.Shards <= 1 {
			return nil, fmt.Errorf("chaos: SpreadReads requires Shards > 1 (the spread path is the mesh client's read path)")
		}
		if !cfg.Linearize {
			return nil, fmt.Errorf("chaos: SpreadReads requires Linearize (the spread workload is the linearized read probe)")
		}
	}
	if cfg.PlantStaleReadBug && !cfg.SpreadReads {
		return nil, fmt.Errorf("chaos: PlantStaleReadBug requires SpreadReads (the defect lives on the spread-read path)")
	}
	if cfg.Shards > 1 {
		return runMesh(cfg)
	}
	res := &Result{Seed: cfg.Seed,
		Schedule: GenerateWith(cfg.Seed, cfg.Servers, Faults{Durable: cfg.Durable, RestartAll: cfg.RestartAll})}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sim := circus.NewSimNetwork(cfg.Seed)
	baseline := circus.LinkConfig{
		LossRate: 0.02,
		DupRate:  0.02,
		MinDelay: 200 * time.Microsecond,
		MaxDelay: 2 * time.Millisecond,
	}
	sim.SetLink(baseline)

	// Every node traces into the recorder so the protocol conformance
	// checker can replay the whole campaign. In Monitor mode the online
	// monitor joins the fan-out, narrowed to the kinds its rules read,
	// and watches the same stream live.
	rec := trace.NewRecorder()
	var mon *monitor.Monitor
	var monSink trace.Sink
	if cfg.Monitor {
		mon = monitor.New(monitor.Options{
			SampleRate: cfg.MonitorSample,
			OnViolation: func(v rules.Violation) {
				cfg.Log("seed %d: monitor: %s", cfg.Seed, v)
			},
		})
		monSink = trace.FilterKinds(mon, mon.TraceKinds())
	}
	sink := trace.Multi(rec, cfg.Trace, monSink)

	// The binding agent, on its own machine.
	binderNode, err := sim.NewNode(circus.WithTrace(sink))
	if err != nil {
		return nil, err
	}
	defer binderNode.Close()
	if _, err := binderNode.ServeRingmaster(); err != nil {
		return nil, err
	}
	boot := binderNode.BinderAddrs()
	nodeOpts := []circus.Option{circus.WithBinder(boot),
		circus.WithAdaptiveRetransmit(), circus.WithTrace(sink)}

	// The KV troupe. In durable mode every member gets its own
	// in-memory disk (seeded, so torn tails are reproducible) and
	// write-ahead log.
	const name = "kv"
	serverNodes := make([]*circus.Node, cfg.Servers)
	kvs := make([]*KV, cfg.Servers)
	disks := make([]*wal.MemFS, cfg.Servers)
	serverAddrs := make([]circus.ModuleAddr, cfg.Servers)
	for i := range serverNodes {
		n, err := sim.NewNode(nodeOpts...)
		if err != nil {
			return nil, err
		}
		defer n.Close()
		serverNodes[i] = n
		if cfg.Durable {
			disks[i] = wal.NewMemFS(cfg.Seed ^ int64(0xd15c<<8|i))
			log, recv, err := wal.Open(wal.Options{
				FS:            disks[i],
				SegmentBytes:  1 << 16,
				SnapshotEvery: cfg.SnapshotEvery,
				Trace:         sink,
				Name:          fmt.Sprintf("kv%d", i),
			})
			if err != nil {
				return nil, err
			}
			kvs[i], err = NewDurableKV(log, recv)
			if err != nil {
				return nil, err
			}
		} else {
			kvs[i] = NewKV()
		}
		addr, err := n.Export(name, kvs[i])
		if err != nil {
			return nil, err
		}
		serverAddrs[i] = addr
	}
	// powerLoss / powerOn simulate a machine losing (and later
	// recovering) its memory and page cache, on top of the network
	// crash/restart the simulator provides. The in-flight fsyncs fail,
	// the unsynced log tail is (mostly) torn away, and on power-on the
	// member rebuilds itself from what its disk kept.
	powerLoss := func(i int) {
		sim.Crash(serverNodes[i])
		if cfg.Durable {
			disks[i].Crash()
		}
	}
	powerOn := func(i int) {
		if cfg.Durable && disks[i].Crashed() {
			disks[i].Restart()
			if err := kvs[i].Restart(); err != nil {
				cfg.Log("seed %d: s%d recovery failed: %v", cfg.Seed, i, err)
			} else {
				res.Recoveries++
			}
		}
		sim.Restart(serverNodes[i])
	}

	// The repairman, on its own machine.
	repairNode, err := sim.NewNode(nodeOpts...)
	if err != nil {
		return nil, err
	}
	defer repairNode.Close()
	repair := &repairman{
		node:  repairNode,
		name:  name,
		addrs: serverAddrs,
		log:   cfg.Log,
	}

	// The clients, each on its own machine.
	type client struct {
		node *circus.Node
		stub *circus.ResilientStub
	}
	clients := make([]client, cfg.Clients)
	for i := range clients {
		n, err := sim.NewNode(nodeOpts...)
		if err != nil {
			return nil, err
		}
		defer n.Close()
		stub, err := n.ImportResilient(ctx, name, circus.ResilientOptions{
			MaxAttempts:  10,
			Backoff:      circus.Backoff{Initial: 15 * time.Millisecond, Max: 250 * time.Millisecond},
			SuspicionTTL: 400 * time.Millisecond,
			Seed:         cfg.Seed<<8 | int64(i),
		})
		if err != nil {
			return nil, err
		}
		clients[i] = client{node: n, stub: stub}
	}

	// Launch the client workload: unique keys, immutable values, so
	// retries are idempotent and cross-replica value equality is a
	// meaningful invariant. Clients perform at least cfg.Ops
	// operations each and keep operating until the fault schedule has
	// run its course, so every fault window sees live traffic.
	var (
		mu    sync.Mutex
		acked = make(map[string]string)
	)
	var failed, reads int
	var hist *linear.History
	majority := cfg.Servers/2 + 1
	if cfg.Linearize {
		hist = linear.NewHistory()
	}
	scheduleDone := make(chan struct{})
	var wg sync.WaitGroup
	for ci := range clients {
		for gi := 0; gi < cfg.Callers; gi++ {
			ci, gi := ci, gi
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed ^ int64(0x5eed<<16|ci<<8|gi)))
				for op := 0; ; op++ {
					if op >= cfg.Ops {
						select {
						case <-scheduleDone:
							return
						default:
						}
					}
					key := fmt.Sprintf("c%d.g%d.k%d", ci, gi, op)
					val := fmt.Sprintf("v%d.%s", cfg.Seed, key)
					args, _ := circus.Marshal(kvPair{Key: key, Val: val})
					putOpts := []circus.CallOption{circus.WithTimeout(600 * time.Millisecond)}
					var pend *linear.Pending
					if hist != nil {
						pend = hist.Invoke(ci*cfg.Callers+gi, linear.Write, key, val)
						// Quorum discipline: the write only acks if a
						// majority of the original degree answered
						// identically, so an acked write provably sits on
						// a majority — the default collation can ack from
						// a single reachable member that repair is busy
						// removing from the binding, leaving the write
						// legitimately invisible until it rejoins.
						putOpts = append(putOpts, circus.WithCollator(writeQuorum(majority)))
					}
					_, err := clients[ci].stub.Call(ctx, ProcPut, args, putOpts...)
					if pend != nil {
						if err == nil {
							pend.Done("")
						} else {
							pend.Fail() // indeterminate: may or may not have taken effect
						}
					}
					mu.Lock()
					if err == nil {
						acked[key] = val
					} else {
						failed++
					}
					mu.Unlock()
					if hist != nil && rng.Float64() < cfg.ReadFrac {
						// Read a key some caller may have written by now —
						// often another client's, so the read crosses
						// replicas the writer never talked to. The read
						// goes through a plain stub over the full bound
						// troupe with a strict collator: every member of a
						// majority-sized view must answer, successfully
						// and identically, or the call fails and the read
						// is dropped as unanswered. Strictness matters —
						// the default unanimous collator excludes failed
						// members and proceeds with the rest, so mid-repair
						// a single state-lagging member could answer alone.
						// A majority-sized strict view intersects every
						// write quorum, so a recorded read cannot miss a
						// recorded write. The resilient stub is wrong here
						// for the same reason: its suspicion skipping is
						// built to leave lagging members out.
						rkey := readKey(rng, cfg, op)
						if tr := clients[ci].stub.Troupe(); tr.Degree() >= majority {
							rp := hist.Invoke(ci*cfg.Callers+gi, linear.Read, rkey, "")
							out, rerr := clients[ci].node.StubFor(tr).
								Call(ctx, ProcGet, []byte(rkey), circus.WithTimeout(300*time.Millisecond),
									circus.WithCollator(strictRead))
							if rerr == nil {
								rp.Done(string(out))
								mu.Lock()
								reads++
								mu.Unlock()
							} // an unanswered read constrains nothing: dropped
						}
					}
					time.Sleep(time.Duration(10+rng.Intn(20)) * time.Millisecond)
				}
			}()
		}
	}

	// The repairman sweeps concurrently with the faults.
	repairCtx, stopRepair := context.WithCancel(ctx)
	var repairWG sync.WaitGroup
	repairWG.Add(1)
	go func() {
		defer repairWG.Done()
		for repairCtx.Err() == nil {
			repair.sweep(repairCtx, false)
			select {
			case <-repairCtx.Done():
			case <-time.After(150 * time.Millisecond):
			}
		}
	}()

	// Apply the fault schedule.
	start := time.Now()
	for _, ev := range res.Schedule.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		cfg.Log("seed %d: %v", cfg.Seed, ev)
		switch ev.Kind {
		case KindCrash:
			powerLoss(ev.Server)
		case KindRestart:
			powerOn(ev.Server)
		case KindKillAll:
			for i := range serverNodes {
				powerLoss(i)
			}
		case KindRestartAll:
			for i := range serverNodes {
				powerOn(i)
			}
		case KindDiskFull:
			disks[ev.Server].FillDisk()
		case KindDiskSlow:
			disks[ev.Server].SetSyncDelay(2 * time.Millisecond)
		case KindDiskHeal:
			disks[ev.Server].SetQuota(0)
			disks[ev.Server].SetSyncDelay(0)
			disks[ev.Server].FailSyncs(false)
		case KindPartition:
			minority := make([]*circus.Node, 0, len(ev.Minority))
			isolated := make(map[int]bool)
			for _, si := range ev.Minority {
				minority = append(minority, serverNodes[si])
				isolated[si] = true
			}
			majority := []*circus.Node{binderNode, repairNode}
			for si, n := range serverNodes {
				if !isolated[si] {
					majority = append(majority, n)
				}
			}
			for _, c := range clients {
				majority = append(majority, c.node)
			}
			sim.Partition(majority, minority)
		case KindHeal:
			sim.Heal()
		case KindLossBurst:
			burst := baseline
			burst.LossRate = ev.Loss
			sim.SetLink(burst)
		case KindLossEnd:
			sim.SetLink(baseline)
		}
	}

	// Let the workload finish, then quiesce: no faults outstanding,
	// every machine up, and the repairman given the field.
	close(scheduleDone)
	wg.Wait()
	sim.Heal()
	sim.SetLink(baseline)
	if cfg.Durable {
		for _, d := range disks {
			d.SetQuota(0)
			d.SetSyncDelay(0)
			d.FailSyncs(false)
		}
	}
	for i := range serverNodes {
		powerOn(i)
	}
	time.Sleep(300 * time.Millisecond) // drain in-flight retransmissions
	stopRepair()
	repairWG.Wait()
	// Final sweeps force the full union reconciliation: the position
	// gossip fast path is for the steady state, not for the verdict.
	for i := 0; i < 4; i++ {
		if repair.sweep(ctx, true) {
			break
		}
		time.Sleep(150 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)

	// Harvest counters.
	res.Acked = len(acked)
	res.Failed = failed
	res.Reads = reads
	for _, c := range clients {
		st := c.stub.Stats()
		res.Rebinds += st.Rebinds
		res.Retries += st.Retries
		res.Suspected += st.Suspected
	}
	res.Removed = repair.removed
	res.Rejoined = repair.rejoined
	res.DeltaTransfers = repair.deltaTransfers
	res.DeltaBytes = repair.deltaBytes
	res.FullTransfers = repair.fullTransfers
	res.FullBytes = repair.fullBytes
	if cfg.Durable {
		for _, kv := range kvs {
			st := kv.WAL().Stats()
			res.Fsyncs += st.Fsyncs
			res.Snapshots += st.Snapshots
		}
	}

	// Invariants: application-level first, then the recorded trace is
	// replayed through the protocol conformance checker.
	res.Violations = appCheck(kvs, acked)
	conf := check.Check(rec.Events(), check.Config{
		Adaptive: true,
		MinRTO:   2 * time.Millisecond,
	})
	res.Violations = append(res.Violations, check.Strings(conf)...)
	// The online monitor saw the same stream live; anything it caught
	// is a breach too (at full sampling it subsumes the offline rules,
	// reported here with its own prefix so drift is visible).
	if mon != nil {
		st := mon.Stats()
		res.MonitorEvents = st.Events
		res.MonitorSampled = st.Sampled
		for _, v := range mon.Violations() {
			res.Violations = append(res.Violations, "monitor: "+v.String())
		}
	}
	// Linearizability: every read must be explainable by some
	// interleaving of the recorded operation windows, key by key.
	if hist != nil {
		lin := linear.Check(hist.Ops(), 0)
		res.LinearOps = lin.Ops
		res.LinearKeys = lin.Keys
		if !lin.Linearizable {
			res.Violations = append(res.Violations,
				fmt.Sprintf("linearizability: key %q: %s", lin.Key, lin.Explanation))
		}
		for _, k := range lin.Exhausted {
			cfg.Log("seed %d: linearizability search exhausted on key %q (inconclusive)", cfg.Seed, k)
		}
	}
	return res, nil
}

// appCheck verifies the post-quiescence invariants: per-member
// exactly-once execution and write consistency, cross-member state
// convergence, and no acknowledged update lost.
func appCheck(kvs []*KV, acked map[string]string) []string {
	var v []string
	for i, kv := range kvs {
		for _, s := range kv.Violations() {
			v = append(v, fmt.Sprintf("member %d: %s", i, s))
		}
	}
	snaps := make([]map[string]string, len(kvs))
	for i, kv := range kvs {
		snaps[i] = kv.Snapshot()
	}
	for i := 1; i < len(snaps); i++ {
		if diff := diffMaps(snaps[0], snaps[i]); diff != "" {
			v = append(v, fmt.Sprintf("members 0 and %d diverge: %s", i, diff))
		}
	}
	for key, val := range acked {
		got, ok := snaps[0][key]
		switch {
		case !ok:
			v = append(v, fmt.Sprintf("acknowledged update %q lost", key))
		case got != val:
			v = append(v, fmt.Sprintf("acknowledged update %q corrupted: %q != %q", key, got, val))
		}
	}
	sort.Strings(v)
	return v
}

// diffMaps describes the first few differences between two maps,
// empty if equal.
func diffMaps(a, b map[string]string) string {
	var diffs []string
	for k, va := range a {
		if vb, ok := b[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%q only in first", k))
		} else if va != vb {
			diffs = append(diffs, fmt.Sprintf("%q: %q vs %q", k, va, vb))
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%q only in second", k))
		}
	}
	sort.Strings(diffs)
	if len(diffs) > 4 {
		diffs = append(diffs[:4], fmt.Sprintf("... and %d more", len(diffs)-4))
	}
	if len(diffs) == 0 {
		return ""
	}
	return fmt.Sprintf("%d diffs: %v", len(diffs), diffs)
}
