package chaos

import (
	"context"
	"reflect"
	"testing"
	"time"

	"circus"
)

func TestScheduleDeterministicAndComplete(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := Generate(seed, 3)
		b := Generate(seed, 3)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ", seed)
		}
		have := make(map[Kind]int)
		for _, ev := range a.Events {
			have[ev.Kind]++
		}
		for _, k := range []Kind{KindCrash, KindRestart, KindPartition, KindHeal, KindLossBurst, KindLossEnd} {
			if have[k] == 0 {
				t.Fatalf("seed %d: schedule lacks %v: %v", seed, k, a.Events)
			}
		}
		if have[KindCrash] != have[KindRestart] || have[KindPartition] != have[KindHeal] {
			t.Fatalf("seed %d: unbalanced schedule: %v", seed, a.Events)
		}
		// Every crash is repaired, in order, and victims are valid.
		for _, ev := range a.Events {
			if (ev.Kind == KindCrash || ev.Kind == KindRestart) && (ev.Server < 0 || ev.Server >= 3) {
				t.Fatalf("seed %d: victim out of range: %v", seed, ev)
			}
			if ev.Kind == KindPartition && len(ev.Minority) >= 2 {
				t.Fatalf("seed %d: partitioned a majority of 3 servers: %v", seed, ev)
			}
		}
	}
}

// TestCampaignSmoke runs one full campaign and requires every
// invariant to hold.
func TestCampaignSmoke(t *testing.T) {
	res, err := Run(Config{Seed: 7, Ops: 12, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Acked == 0 {
		t.Fatal("no operation was acknowledged during the campaign")
	}
	t.Logf("seed %d: acked=%d failed=%d retries=%d rebinds=%d suspected=%d removed=%d rejoined=%d",
		res.Seed, res.Acked, res.Failed, res.Retries, res.Rebinds, res.Suspected, res.Removed, res.Rejoined)
}

// TestCampaignConcurrentCallers runs a campaign with four concurrent
// caller goroutines per client process sharing each client's stub —
// the fault schedule plays out against genuinely concurrent replicated
// calls, and every survivability invariant (plus the trace conformance
// check inside Run) must still hold.
func TestCampaignConcurrentCallers(t *testing.T) {
	res, err := Run(Config{Seed: 11, Ops: 6, Callers: 4, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations under concurrent callers: %v", res.Violations)
	}
	if res.Acked == 0 {
		t.Fatal("no operation was acknowledged during the campaign")
	}
	t.Logf("seed %d: acked=%d failed=%d retries=%d rebinds=%d suspected=%d removed=%d rejoined=%d",
		res.Seed, res.Acked, res.Failed, res.Retries, res.Rebinds, res.Suspected, res.Removed, res.Rejoined)
}

// TestCampaignMonitoredLinearized runs a campaign with always-on
// verification: the online monitor watches the trace stream live at
// full sampling, and clients interleave cross-client reads under
// quorum discipline (majority-acked writes, strict majority-view
// reads) whose history must linearize. Both layers must stay silent.
func TestCampaignMonitoredLinearized(t *testing.T) {
	res, err := Run(Config{Seed: 7, Ops: 12, Monitor: true, Linearize: true, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.MonitorEvents == 0 {
		t.Fatal("monitor saw no events")
	}
	if res.MonitorSampled != res.MonitorEvents {
		t.Fatalf("full sampling retained %d of %d events", res.MonitorSampled, res.MonitorEvents)
	}
	if res.Reads == 0 || res.LinearOps == 0 || res.LinearKeys == 0 {
		t.Fatalf("linearizability layer idle: reads=%d ops=%d keys=%d",
			res.Reads, res.LinearOps, res.LinearKeys)
	}
	t.Logf("seed %d: acked=%d reads=%d monitor-events=%d linear ops=%d keys=%d",
		res.Seed, res.Acked, res.Reads, res.MonitorEvents, res.LinearOps, res.LinearKeys)
}

// TestCampaignMonitorSampled drives the same campaign with 1/8
// identity sampling: the monitor must retain a strict subset without
// inventing violations.
func TestCampaignMonitorSampled(t *testing.T) {
	res, err := Run(Config{Seed: 11, Ops: 12, Monitor: true, MonitorSample: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.MonitorSampled == 0 || res.MonitorSampled >= res.MonitorEvents {
		t.Fatalf("1/8 sampling retained %d of %d events", res.MonitorSampled, res.MonitorEvents)
	}
}

// TestRebindDuringReconfiguration pins the acceptance scenario
// deterministically: the binding agent reconfigures the troupe while
// a client holds the old binding; the client's next call must succeed
// transparently via automatic rebind, with no error surfaced.
func TestRebindDuringReconfiguration(t *testing.T) {
	sim := circus.NewSimNetwork(99)
	binder, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	defer binder.Close()
	if _, err := binder.ServeRingmaster(); err != nil {
		t.Fatal(err)
	}
	boot := binder.BinderAddrs()

	ctx := context.Background()
	var addrs []circus.ModuleAddr
	for i := 0; i < 3; i++ {
		n, err := sim.NewNode(circus.WithBinder(boot))
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		addr, err := n.Export("kv", NewKV())
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}

	cn, err := sim.NewNode(circus.WithBinder(boot))
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	stub, err := cn.ImportResilient(ctx, "kv", circus.ResilientOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	args, _ := circus.Marshal(kvPair{Key: "a", Val: "1"})
	if _, err := stub.Call(ctx, ProcPut, args, circus.WithTimeout(2*time.Second)); err != nil {
		t.Fatalf("call before reconfiguration: %v", err)
	}

	// Reconfigure behind the client's back: remove one member via a
	// different binder client, bumping the troupe ID (§6.2).
	if _, err := cn.Binder().RemoveMember(ctx, "kv", addrs[2]); err != nil {
		t.Fatal(err)
	}
	cn.Binder().InvalidateAll() // the stub must not ride the local cache

	args, _ = circus.Marshal(kvPair{Key: "b", Val: "2"})
	if _, err := stub.Call(ctx, ProcPut, args, circus.WithTimeout(2*time.Second)); err != nil {
		t.Fatalf("call across reconfiguration surfaced an error: %v", err)
	}
	if got := stub.Stats().Rebinds; got < 1 {
		t.Fatalf("Rebinds = %d, want >= 1", got)
	}
	if stub.Troupe().Degree() != 2 {
		t.Fatalf("stub binding degree = %d after rebind, want 2", stub.Troupe().Degree())
	}
}
