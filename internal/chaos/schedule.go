package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind enumerates fault events.
type Kind int

const (
	// KindCrash fail-stops one server machine (§2.1.1).
	KindCrash Kind = iota
	// KindRestart brings a crashed machine back.
	KindRestart
	// KindPartition isolates a minority of the server troupe from
	// everything else (§4.3.5). The binding agent, clients, and
	// repairman always stay on the majority side, as the paper's
	// discipline requires for progress.
	KindPartition
	// KindHeal removes the partition.
	KindHeal
	// KindLossBurst raises the datagram loss rate on every link.
	KindLossBurst
	// KindLossEnd restores the baseline link.
	KindLossEnd
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindLossBurst:
		return "loss-burst"
	case KindLossEnd:
		return "loss-end"
	default:
		return "?"
	}
}

// Event is one scheduled fault.
type Event struct {
	At       time.Duration
	Kind     Kind
	Server   int   // victim server index (Crash, Restart)
	Minority []int // isolated server indices (Partition)
	Loss     float64
}

func (e Event) String() string {
	switch e.Kind {
	case KindCrash, KindRestart:
		return fmt.Sprintf("%v %v s%d", e.At.Round(time.Millisecond), e.Kind, e.Server)
	case KindPartition:
		return fmt.Sprintf("%v %v %v", e.At.Round(time.Millisecond), e.Kind, e.Minority)
	case KindLossBurst:
		return fmt.Sprintf("%v %v %.0f%%", e.At.Round(time.Millisecond), e.Kind, e.Loss*100)
	default:
		return fmt.Sprintf("%v %v", e.At.Round(time.Millisecond), e.Kind)
	}
}

// Schedule is a deterministic fault campaign: a time-ordered event
// list derived entirely from the seed.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Span returns the time of the last event.
func (s Schedule) Span() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// Generate derives a fault schedule from seed for a troupe of the
// given degree. Every schedule contains at least one crash (with its
// restart), one partition (with its heal), and one loss burst (with
// its end). Episodes are sequential — each fault is repaired before
// the next begins — and never touch more than a minority of the
// troupe at once, so the troupe as a whole stays available and the
// majority-side binding agent can always reconfigure around the
// fault (§6.4).
func Generate(seed int64, servers int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	jitter := func(base, spread time.Duration) time.Duration {
		return base + time.Duration(rng.Int63n(int64(spread)))
	}

	// The mandatory episode kinds, plus a seed-dependent tail of
	// extras, in seed-dependent order.
	kinds := []Kind{KindCrash, KindPartition, KindLossBurst}
	for i := 0; i < rng.Intn(3); i++ {
		kinds = append(kinds, []Kind{KindCrash, KindPartition, KindLossBurst}[rng.Intn(3)])
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	s := Schedule{Seed: seed}
	at := jitter(200*time.Millisecond, 150*time.Millisecond)
	for _, k := range kinds {
		hold := jitter(350*time.Millisecond, 250*time.Millisecond)
		switch k {
		case KindCrash:
			victim := rng.Intn(servers)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindCrash, Server: victim},
				Event{At: at + hold, Kind: KindRestart, Server: victim})
		case KindPartition:
			// Isolate a random minority: fewer than half the servers.
			k := 1
			if max := (servers+1)/2 - 1; max > 1 {
				k += rng.Intn(max)
			}
			perm := rng.Perm(servers)
			minority := append([]int(nil), perm[:k]...)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindPartition, Minority: minority},
				Event{At: at + hold, Kind: KindHeal})
		case KindLossBurst:
			loss := 0.15 + 0.25*rng.Float64()
			s.Events = append(s.Events,
				Event{At: at, Kind: KindLossBurst, Loss: loss},
				Event{At: at + hold, Kind: KindLossEnd})
		}
		at += hold + jitter(200*time.Millisecond, 200*time.Millisecond)
	}
	return s
}
