package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind enumerates fault events.
type Kind int

const (
	// KindCrash fail-stops one server machine (§2.1.1).
	KindCrash Kind = iota
	// KindRestart brings a crashed machine back.
	KindRestart
	// KindPartition isolates a minority of the server troupe from
	// everything else (§4.3.5). The binding agent, clients, and
	// repairman always stay on the majority side, as the paper's
	// discipline requires for progress.
	KindPartition
	// KindHeal removes the partition.
	KindHeal
	// KindLossBurst raises the datagram loss rate on every link.
	KindLossBurst
	// KindLossEnd restores the baseline link.
	KindLossEnd
	// KindKillAll power-fails every server machine at once — memory
	// and page cache lost, disks keep only synced bytes plus a torn
	// tail. Only durable campaigns schedule it: without logs the state
	// would simply be gone.
	KindKillAll
	// KindRestartAll powers every server machine back on; each member
	// recovers from its own log before rejoining.
	KindRestartAll
	// KindDiskFull makes one server's disk reject writes (ENOSPC); its
	// member keeps serving reads but fails to ack writes.
	KindDiskFull
	// KindDiskSlow makes one server's fsyncs crawl — the straggler
	// whose group commit must absorb the latency.
	KindDiskSlow
	// KindDiskHeal lifts the victim's disk faults.
	KindDiskHeal
	// KindShardKill power-fails every member of one shard troupe at
	// once — the mesh analog of KindKillAll. Only durable mesh
	// campaigns schedule it: a whole shard losing memory without logs
	// would lose its partition outright.
	KindShardKill
	// KindShardRestart powers the killed shard's members back on.
	KindShardRestart
	// KindShardPartition isolates one whole shard troupe from
	// everything else — binder, clients, repairmen, and the other
	// shards. Its partition of the key space goes dark; a migration
	// touching it must roll back rather than lose acked writes.
	KindShardPartition
	// KindShardHeal removes the shard partition.
	KindShardHeal
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindLossBurst:
		return "loss-burst"
	case KindLossEnd:
		return "loss-end"
	case KindKillAll:
		return "kill-all"
	case KindRestartAll:
		return "restart-all"
	case KindDiskFull:
		return "disk-full"
	case KindDiskSlow:
		return "disk-slow"
	case KindDiskHeal:
		return "disk-heal"
	case KindShardKill:
		return "shard-kill"
	case KindShardRestart:
		return "shard-restart"
	case KindShardPartition:
		return "shard-partition"
	case KindShardHeal:
		return "shard-heal"
	default:
		return "?"
	}
}

// Event is one scheduled fault.
type Event struct {
	At       time.Duration
	Kind     Kind
	Server   int   // victim member index within its shard (Crash, Restart)
	Shard    int   // victim shard index (mesh campaigns; 0 otherwise)
	Minority []int // isolated member indices (Partition)
	Loss     float64
}

func (e Event) String() string {
	switch e.Kind {
	case KindCrash, KindRestart, KindDiskFull, KindDiskSlow, KindDiskHeal:
		return fmt.Sprintf("%v %v s%d.%d", e.At.Round(time.Millisecond), e.Kind, e.Shard, e.Server)
	case KindShardKill, KindShardRestart, KindShardPartition:
		return fmt.Sprintf("%v %v shard %d", e.At.Round(time.Millisecond), e.Kind, e.Shard)
	case KindPartition:
		return fmt.Sprintf("%v %v s%d.%v", e.At.Round(time.Millisecond), e.Kind, e.Shard, e.Minority)
	case KindLossBurst:
		return fmt.Sprintf("%v %v %.0f%%", e.At.Round(time.Millisecond), e.Kind, e.Loss*100)
	default:
		return fmt.Sprintf("%v %v", e.At.Round(time.Millisecond), e.Kind)
	}
}

// Schedule is a deterministic fault campaign: a time-ordered event
// list derived entirely from the seed.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Span returns the time of the last event.
func (s Schedule) Span() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// Faults selects which fault families a schedule may draw from.
type Faults struct {
	// Durable adds the disk-fault episodes (disk-full, slow-fsync),
	// and makes crash episodes power losses: the victim's page cache
	// is discarded, leaving a possibly torn log tail.
	Durable bool
	// RestartAll adds a mandatory whole-troupe power loss — every
	// server machine killed at once, then restarted to recover from
	// its own log. Requires Durable.
	RestartAll bool
	// Shards, when above one, generates a mesh campaign: member-level
	// faults pick a victim shard, and the schedule adds a mandatory
	// whole-shard partition (plus, when Durable, a whole-shard power
	// loss) so at least one fault lands on an entire partition of the
	// key space at once.
	Shards int
}

// Generate derives the classic fault schedule from seed: the
// pre-durability campaign of crashes, partitions, and loss bursts.
func Generate(seed int64, servers int) Schedule {
	return GenerateWith(seed, servers, Faults{})
}

// GenerateWith derives a fault schedule from seed for a troupe of the
// given degree. Every schedule contains at least one crash (with its
// restart), one partition (with its heal), and one loss burst (with
// its end); durable schedules may add disk faults, and RestartAll
// schedules always include one whole-troupe kill/restart. Episodes
// are sequential — each fault is repaired before the next begins —
// and, except for the kill-all, never touch more than a minority of
// the troupe at once, so the troupe as a whole stays available and
// the majority-side binding agent can always reconfigure around the
// fault (§6.4).
func GenerateWith(seed int64, servers int, f Faults) Schedule {
	rng := rand.New(rand.NewSource(seed))
	jitter := func(base, spread time.Duration) time.Duration {
		return base + time.Duration(rng.Int63n(int64(spread)))
	}

	// The mandatory episode kinds, plus a seed-dependent tail of
	// extras, in seed-dependent order.
	kinds := []Kind{KindCrash, KindPartition, KindLossBurst}
	pool := []Kind{KindCrash, KindPartition, KindLossBurst}
	if f.Durable {
		pool = append(pool, KindDiskFull, KindDiskSlow, KindCrash)
	}
	if f.RestartAll {
		kinds = append(kinds, KindKillAll)
	}
	if f.Shards > 1 {
		kinds = append(kinds, KindShardPartition)
		if f.Durable {
			kinds = append(kinds, KindShardKill)
		}
	}
	for i := 0; i < rng.Intn(3); i++ {
		kinds = append(kinds, pool[rng.Intn(len(pool))])
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	// Mesh campaigns aim every member-level fault at a seed-chosen
	// shard; the draw is gated so single-troupe schedules stay
	// byte-identical across this feature's introduction.
	shard := func() int {
		if f.Shards > 1 {
			return rng.Intn(f.Shards)
		}
		return 0
	}

	s := Schedule{Seed: seed}
	at := jitter(200*time.Millisecond, 150*time.Millisecond)
	for _, k := range kinds {
		hold := jitter(350*time.Millisecond, 250*time.Millisecond)
		switch k {
		case KindCrash:
			victim := rng.Intn(servers)
			sh := shard()
			s.Events = append(s.Events,
				Event{At: at, Kind: KindCrash, Server: victim, Shard: sh},
				Event{At: at + hold, Kind: KindRestart, Server: victim, Shard: sh})
		case KindPartition:
			// Isolate a random minority: fewer than half the servers.
			k := 1
			if max := (servers+1)/2 - 1; max > 1 {
				k += rng.Intn(max)
			}
			perm := rng.Perm(servers)
			minority := append([]int(nil), perm[:k]...)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindPartition, Minority: minority, Shard: shard()},
				Event{At: at + hold, Kind: KindHeal})
		case KindLossBurst:
			loss := 0.15 + 0.25*rng.Float64()
			s.Events = append(s.Events,
				Event{At: at, Kind: KindLossBurst, Loss: loss},
				Event{At: at + hold, Kind: KindLossEnd})
		case KindKillAll:
			// Held a little longer: every member must recover and
			// rejoin, not just one.
			hold += jitter(200*time.Millisecond, 200*time.Millisecond)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindKillAll},
				Event{At: at + hold, Kind: KindRestartAll})
		case KindDiskFull:
			victim := rng.Intn(servers)
			sh := shard()
			s.Events = append(s.Events,
				Event{At: at, Kind: KindDiskFull, Server: victim, Shard: sh},
				Event{At: at + hold, Kind: KindDiskHeal, Server: victim, Shard: sh})
		case KindDiskSlow:
			victim := rng.Intn(servers)
			sh := shard()
			s.Events = append(s.Events,
				Event{At: at, Kind: KindDiskSlow, Server: victim, Shard: sh},
				Event{At: at + hold, Kind: KindDiskHeal, Server: victim, Shard: sh})
		case KindShardPartition:
			sh := rng.Intn(f.Shards)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindShardPartition, Shard: sh},
				Event{At: at + hold, Kind: KindShardHeal})
		case KindShardKill:
			// Held longer, like the kill-all: every member of the shard
			// must recover from its log and rejoin before the next
			// episode.
			sh := rng.Intn(f.Shards)
			hold += jitter(200*time.Millisecond, 200*time.Millisecond)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindShardKill, Shard: sh},
				Event{At: at + hold, Kind: KindShardRestart, Shard: sh})
		}
		at += hold + jitter(200*time.Millisecond, 200*time.Millisecond)
	}
	return s
}
