// Package linear checks recorded KV histories for linearizability:
// every completed operation must appear to take effect atomically at
// some instant between its invocation and its response, consistent
// with a register per key.
//
// The checker is the Wing–Gong algorithm with Lowe's just-in-time
// refinements (WGL): a depth-first search over which pending
// operation linearizes next, memoized on (set of linearized ops,
// register value) so equivalent interleavings are explored once.
// P-compositionality makes it tractable — linearizability is
// compositional over independent objects, so the history is
// partitioned by key and each key checked alone, keeping the
// per-search operation count small even for long campaigns.
//
// Indeterminate operations (a write whose response never arrived —
// client crash, timeout) may have taken effect or not; the search
// tries both. Failed reads carry no constraint and are dropped by the
// recorder.
package linear

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Kind distinguishes reads from writes.
type Kind uint8

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Op is one client operation in the history. Times are nanoseconds
// from the history's origin; Return is math.MaxInt64 for an operation
// that never returned (indeterminate).
type Op struct {
	Client int
	Kind   Kind
	Key    string
	// Value is the value written (Write) or observed (Read; "" means
	// the key was absent).
	Value  string
	Call   int64
	Return int64
	// Ok reports that a response arrived. A write with Ok == false is
	// indeterminate: it may or may not have taken effect.
	Ok bool
}

func (o Op) String() string {
	ret := "∞"
	if o.Return != math.MaxInt64 {
		ret = fmt.Sprintf("%d", o.Return)
	}
	return fmt.Sprintf("c%d %s(%q)=%q [%d,%s] ok=%v", o.Client, o.Kind, o.Key, o.Value, o.Call, ret, o.Ok)
}

// History records operations concurrently from many client
// goroutines.
type History struct {
	mu  sync.Mutex
	t0  time.Time
	ops []Op
}

// NewHistory starts an empty history; operation times are measured
// from now.
func NewHistory() *History {
	return &History{t0: time.Now()}
}

// Pending is an invoked-but-unfinished operation.
type Pending struct {
	h  *History
	op Op
}

// Invoke records the invocation of an operation and returns its
// pending half. value is the value being written (ignored for reads).
func (h *History) Invoke(client int, kind Kind, key, value string) *Pending {
	h.mu.Lock()
	defer h.mu.Unlock()
	return &Pending{h: h, op: Op{
		Client: client, Kind: kind, Key: key, Value: value,
		Call: time.Since(h.t0).Nanoseconds(), Return: math.MaxInt64,
	}}
}

// Done records the response. For reads, value is what came back ("" =
// absent). A read that failed should be dropped (do not call Done);
// a write that failed or timed out should call Fail so the op stays
// in the history as indeterminate.
func (p *Pending) Done(value string) {
	p.h.mu.Lock()
	defer p.h.mu.Unlock()
	if p.op.Kind == Read {
		p.op.Value = value
	}
	p.op.Return = time.Since(p.h.t0).Nanoseconds()
	p.op.Ok = true
	p.h.ops = append(p.h.ops, p.op)
}

// Fail records a write whose outcome is unknown: it keeps Return at
// infinity so the checker may linearize it anywhere after its call,
// or never.
func (p *Pending) Fail() {
	p.h.mu.Lock()
	defer p.h.mu.Unlock()
	if p.op.Kind == Read {
		return // an unanswered read constrains nothing
	}
	p.h.ops = append(p.h.ops, p.op)
}

// Ops snapshots the recorded history.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Op, len(h.ops))
	copy(out, h.ops)
	return out
}

// Result is the outcome of a check.
type Result struct {
	// Linearizable is true when every key's sub-history linearizes.
	Linearizable bool
	// Key and Explanation identify the first offending key when
	// Linearizable is false.
	Key         string
	Explanation string
	// Keys and Ops count what was checked.
	Keys int
	Ops  int
	// Visited counts search states across all keys.
	Visited int
	// Exhausted lists keys whose search hit the budget before
	// deciding; such keys are reported as linearizable (inconclusive,
	// never a false alarm) but named here for visibility.
	Exhausted []string
}

// Check partitions ops by key and runs WGL on each partition. budget
// bounds the visited search states per key (0 = 1<<20). The register
// model: a key starts absent (reads see ""), writes set it, values
// are opaque strings.
func Check(ops []Op, budget int) Result {
	if budget <= 0 {
		budget = 1 << 20
	}
	byKey := map[string][]Op{}
	for _, o := range ops {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	res := Result{Linearizable: true, Keys: len(keys), Ops: len(ops)}
	for _, k := range keys {
		ok, exhausted, visited := checkKey(byKey[k], budget)
		res.Visited += visited
		if exhausted {
			res.Exhausted = append(res.Exhausted, k)
			continue
		}
		if !ok {
			res.Linearizable = false
			res.Key = k
			res.Explanation = explain(byKey[k])
			return res
		}
	}
	return res
}

// explain renders a failed key's sub-history for the report.
func explain(ops []Op) string {
	s := fmt.Sprintf("%d ops admit no linearization:", len(ops))
	for _, o := range ops {
		s += "\n  " + o.String()
	}
	return s
}

// checkKey runs WGL over one key's operations. Returns ok (a
// linearization exists, or vacuously for >63 ops which the search
// cannot index), exhausted (budget hit first), and states visited.
func checkKey(ops []Op, budget int) (ok, exhausted bool, visited int) {
	// Determinate ops must all linearize; indeterminate ones may.
	if len(ops) == 0 {
		return true, false, 0
	}
	if len(ops) > 63 {
		// The bitmask search tops out at 63 ops per key; chaos
		// workloads stay far below this per key. Treat as
		// inconclusive rather than false-alarm.
		return true, true, 0
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Call != ops[j].Call {
			return ops[i].Call < ops[j].Call
		}
		return ops[i].Return < ops[j].Return
	})
	var needed uint64
	for i, o := range ops {
		if o.Ok {
			needed |= 1 << uint(i)
		}
	}
	full := uint64(1)<<uint(len(ops)) - 1

	type memoKey struct {
		mask uint64
		reg  string
	}
	seen := map[memoKey]bool{}

	// minimalReturn(mask) = the earliest Return among ops not yet
	// linearized; only ops whose Call precedes it may linearize next
	// (real-time order).
	minReturn := func(mask uint64) int64 {
		min := int64(math.MaxInt64)
		for i, o := range ops {
			if mask&(1<<uint(i)) == 0 && o.Ok && o.Return < min {
				min = o.Return
			}
		}
		return min
	}

	var dfs func(mask uint64, reg string) bool
	dfs = func(mask uint64, reg string) bool {
		if mask&needed == needed {
			return true
		}
		mk := memoKey{mask, reg}
		if seen[mk] {
			return false
		}
		seen[mk] = true
		visited++
		if visited > budget {
			exhausted = true
			return false
		}
		frontier := minReturn(mask)
		for i, o := range ops {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 {
				continue
			}
			// o can linearize next only if no unlinearized operation
			// finished before o began.
			if o.Call > frontier {
				continue
			}
			next := reg
			if o.Kind == Write {
				next = o.Value
			} else if o.Value != reg {
				continue // the read would observe the wrong value
			}
			if dfs(mask|bit, next) {
				return true
			}
			if exhausted {
				return false
			}
		}
		// Indeterminate ops not yet linearized may simply never have
		// happened; reaching here with only indeterminate ops left is
		// success (handled by the needed-mask check above).
		_ = full
		return false
	}
	ok = dfs(0, "")
	if exhausted {
		return true, true, visited
	}
	return ok, false, visited
}
