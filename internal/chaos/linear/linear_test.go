package linear

import (
	"math"
	"strings"
	"testing"
	"time"
)

// op builds a determinate operation on key "k".
func op(client int, kind Kind, val string, call, ret int64) Op {
	return Op{Client: client, Kind: kind, Key: "k", Value: val, Call: call, Return: ret, Ok: true}
}

// pending builds an indeterminate write on key "k".
func pendingWrite(client int, val string, call int64) Op {
	return Op{Client: client, Kind: Write, Key: "k", Value: val, Call: call, Return: math.MaxInt64}
}

func want(t *testing.T, ops []Op, linearizable bool) {
	t.Helper()
	res := Check(ops, 0)
	if len(res.Exhausted) > 0 {
		t.Fatalf("search exhausted on %v", res.Exhausted)
	}
	if res.Linearizable != linearizable {
		t.Fatalf("Linearizable = %v, want %v\n%s", res.Linearizable, linearizable, res.Explanation)
	}
}

// --- Known-linearizable histories ---

func TestLinearizableSequential(t *testing.T) {
	want(t, []Op{
		op(1, Write, "a", 0, 10),
		op(2, Read, "a", 20, 30),
		op(1, Write, "b", 40, 50),
		op(2, Read, "b", 60, 70),
	}, true)
}

func TestLinearizableConcurrentReadDuringWrite(t *testing.T) {
	// A read overlapping the write may see either the old or the new
	// value.
	for _, seen := range []string{"", "a"} {
		want(t, []Op{
			op(1, Write, "a", 0, 100),
			op(2, Read, seen, 10, 20),
		}, true)
	}
}

func TestLinearizableIndeterminateWrite(t *testing.T) {
	// A write that never returned may have happened...
	want(t, []Op{
		pendingWrite(1, "a", 0),
		op(2, Read, "a", 50, 60),
	}, true)
	// ...or not.
	want(t, []Op{
		pendingWrite(1, "a", 0),
		op(2, Read, "", 50, 60),
	}, true)
	// It can even take effect late, between two reads.
	want(t, []Op{
		pendingWrite(1, "a", 0),
		op(2, Read, "", 50, 60),
		op(2, Read, "a", 70, 80),
	}, true)
}

func TestLinearizableConcurrentWritersEitherOrder(t *testing.T) {
	want(t, []Op{
		op(1, Write, "a", 0, 100),
		op(2, Write, "b", 0, 100),
		op(3, Read, "a", 200, 210), // "b" then "a": both writes concurrent
	}, true)
}

// --- Known-non-linearizable histories ---

func TestStaleReadRejected(t *testing.T) {
	// The write completed before the read began; reading the old
	// value is a stale read.
	want(t, []Op{
		op(1, Write, "a", 0, 10),
		op(2, Read, "", 20, 30),
	}, false)
}

func TestLostUpdateRejected(t *testing.T) {
	// Two sequential writes, then a read of the first value: the
	// second write was lost.
	want(t, []Op{
		op(1, Write, "a", 0, 10),
		op(1, Write, "b", 20, 30),
		op(2, Read, "a", 40, 50),
	}, false)
}

func TestSplitBrainWriteRejected(t *testing.T) {
	// Concurrent writes may order either way, but both orders leave
	// ONE final value; sequential readers seeing different values
	// after both writes finished witnessed a split brain.
	want(t, []Op{
		op(1, Write, "a", 0, 10),
		op(2, Write, "b", 0, 10),
		op(3, Read, "a", 20, 30),
		op(3, Read, "b", 40, 50),
		op(3, Read, "a", 60, 70),
	}, false)
}

func TestIndeterminateWriteCannotFlipFlop(t *testing.T) {
	// Even an indeterminate write takes effect at most once: seen,
	// then unseen, is a violation.
	want(t, []Op{
		pendingWrite(1, "a", 0),
		op(2, Read, "a", 50, 60),
		op(2, Read, "", 70, 80),
	}, false)
}

// --- Compositionality and bookkeeping ---

func TestPerKeyPartitioning(t *testing.T) {
	// A violation on one key is found regardless of clean traffic on
	// others.
	ops := []Op{
		op(1, Write, "a", 0, 10),
		op(2, Read, "", 20, 30), // stale read on "k"
	}
	for i := 0; i < 30; i++ {
		base := int64(i * 100)
		ops = append(ops,
			Op{Client: 1, Kind: Write, Key: "other", Value: "x", Call: base, Return: base + 10, Ok: true},
			Op{Client: 2, Kind: Read, Key: "other", Value: "x", Call: base + 20, Return: base + 30, Ok: true},
		)
	}
	res := Check(ops, 0)
	if res.Linearizable || res.Key != "k" {
		t.Fatalf("want violation on key %q, got %+v", "k", res)
	}
	if res.Keys != 2 {
		t.Fatalf("Keys = %d, want 2", res.Keys)
	}
	if !strings.Contains(res.Explanation, "read") {
		t.Fatalf("explanation missing ops: %s", res.Explanation)
	}
}

func TestBudgetExhaustionIsInconclusiveNotFailure(t *testing.T) {
	// Many concurrent indeterminate writes explode the search; with a
	// tiny budget the key must land in Exhausted, not report a
	// violation.
	var ops []Op
	for i := 0; i < 20; i++ {
		ops = append(ops, pendingWrite(i, string(rune('a'+i)), 0))
	}
	ops = append(ops, op(99, Read, "zzz", 1000, 1010)) // unsatisfiable
	res := Check(ops, 5)
	if !res.Linearizable || len(res.Exhausted) != 1 {
		t.Fatalf("want inconclusive pass, got %+v", res)
	}
}

func TestHistoryRecorder(t *testing.T) {
	h := NewHistory()
	w := h.Invoke(1, Write, "k", "v")
	time.Sleep(time.Millisecond)
	w.Done("")
	r := h.Invoke(2, Read, "k", "")
	r.Done("v")
	f := h.Invoke(3, Write, "k", "w")
	f.Fail()
	dropped := h.Invoke(4, Read, "k", "")
	f2 := dropped // failed reads are dropped by not calling Done
	_ = f2

	ops := h.Ops()
	if len(ops) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(ops))
	}
	if ops[0].Kind != Write || !ops[0].Ok || ops[0].Return <= ops[0].Call {
		t.Fatalf("write recorded wrong: %+v", ops[0])
	}
	if ops[1].Kind != Read || ops[1].Value != "v" {
		t.Fatalf("read recorded wrong: %+v", ops[1])
	}
	if ops[2].Ok || ops[2].Return != math.MaxInt64 {
		t.Fatalf("failed write not indeterminate: %+v", ops[2])
	}
	if res := Check(ops, 0); !res.Linearizable {
		t.Fatalf("recorded history should linearize: %+v", res)
	}
}
