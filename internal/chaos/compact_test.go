package chaos

import (
	"fmt"
	"strings"
	"testing"

	"circus"
	"circus/internal/wal"
)

// TestCompactionRecoveryStaysLiveKeys is the log-compaction acceptance
// test: a delete-heavy workload (400 puts, 380 deletes) must leave a
// recovery image whose replay cost is O(live keys), not O(operations
// ever) — the snapshot holds only the surviving pairs, the log tail
// past it is short, and dead segments are pruned from disk.
func TestCompactionRecoveryStaysLiveKeys(t *testing.T) {
	fs := wal.NewMemFS(3)
	open := func() (*wal.Log, *wal.Recovered) {
		log, rec, err := wal.Open(wal.Options{FS: fs, SegmentBytes: 1 << 12, SnapshotEvery: 64})
		if err != nil {
			t.Fatal(err)
		}
		return log, rec
	}
	log, rec := open()
	kv, err := NewDurableKV(log, rec)
	if err != nil {
		t.Fatal(err)
	}

	const total, live = 400, 20
	for i := 0; i < total; i++ {
		if err := kv.put(kvPair{Key: fmt.Sprintf("k%03d", i), Val: fmt.Sprintf("v%03d", i)}, ""); err != nil {
			t.Fatal(err)
		}
	}
	// Sustained deletes in batches: everything but the last `live` keys.
	for lo := 0; lo < total-live; lo += 10 {
		var keys []string
		for i := lo; i < lo+10; i++ {
			keys = append(keys, fmt.Sprintf("k%03d", i))
		}
		if err := kv.del(keys, ""); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting an already-absent key (a retry after compaction) must
	// still ack cleanly.
	if err := kv.del([]string{"k000"}, ""); err != nil {
		t.Fatalf("retried delete of absent key: %v", err)
	}
	kv.snapshot() // final compaction covering the tail
	wantPos := kv.Position()
	wantState := kv.Snapshot()
	if len(wantState) != live {
		t.Fatalf("live keys = %d, want %d", len(wantState), live)
	}
	if n := len(fileNames(t, fs)); n > 4 {
		t.Fatalf("disk holds %d files after compaction; dead segments were not pruned", n)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replay cost: the image carries only live pairs, and the
	// redo tail past it is bounded by the snapshot cadence — nowhere
	// near the ~780 operations the member actually performed.
	log2, rec2 := open()
	defer log2.Close()
	if rec2.Snapshot == nil {
		t.Fatal("recovery found no snapshot")
	}
	var img kvImage
	if err := circus.Unmarshal(rec2.Snapshot, &img); err != nil {
		t.Fatal(err)
	}
	if len(img.Pairs) != live {
		t.Fatalf("snapshot holds %d pairs, want %d live: compaction kept dead history", len(img.Pairs), live)
	}
	if len(rec2.Records) > 64 {
		t.Fatalf("recovery replays %d redo records past the snapshot, want <= snapshot cadence", len(rec2.Records))
	}
	kv2, err := NewDurableKV(log2, rec2)
	if err != nil {
		t.Fatal(err)
	}
	if got := kv2.Position(); got != wantPos {
		t.Fatalf("recovered position = %d, want %d (absolute across compaction)", got, wantPos)
	}
	got := kv2.Snapshot()
	if len(got) != live {
		t.Fatalf("recovered %d keys, want %d", len(got), live)
	}
	for k, v := range wantState {
		if got[k] != v {
			t.Fatalf("recovered %q = %q, want %q", k, got[k], v)
		}
	}
	t.Logf("recovery: %d snapshot pairs + %d tail records for %d lifetime ops",
		len(img.Pairs), len(rec2.Records), total+(total-live)/10)
}

// TestDeleteTombstonesFlowThroughDelta pins the repair-path semantics
// of deletes: tombstones ride the apply-order log, so a delta transfer
// from a peer removes the deleted keys at the receiver, and a request
// for a suffix that was compacted away is refused (which sends the
// repairman down its full-transfer path).
func TestDeleteTombstonesFlowThroughDelta(t *testing.T) {
	a, b := NewKV(), NewKV()
	for i := 0; i < 8; i++ {
		p := kvPair{Key: fmt.Sprintf("k%d", i), Val: "v"}
		if err := a.put(p, ""); err != nil {
			t.Fatal(err)
		}
		if err := b.put(p, ""); err != nil {
			t.Fatal(err)
		}
	}
	from := b.Position()
	if err := a.del([]string{"k1", "k3"}, ""); err != nil {
		t.Fatal(err)
	}
	dump, err := a.DumpSince(from)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := decodePairs(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || !pairs[0].Del || !pairs[1].Del {
		t.Fatalf("delta = %+v, want two tombstones", pairs)
	}
	if err := b.merge(pairs); err != nil {
		t.Fatal(err)
	}
	got := b.Snapshot()
	if _, ok := got["k1"]; ok {
		t.Fatal("merge did not apply the k1 tombstone")
	}
	if _, ok := got["k3"]; ok {
		t.Fatal("merge did not apply the k3 tombstone")
	}
	if len(got) != 6 || b.Position() != a.Position() {
		t.Fatalf("after tombstone merge: %d keys at position %d, want 6 at %d",
			len(got), b.Position(), a.Position())
	}

	// A compacted member refuses suffixes below its base.
	fs := wal.NewMemFS(9)
	log, rec, err := wal.Open(wal.Options{FS: fs, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	c, err := NewDurableKV(log, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.put(kvPair{Key: fmt.Sprintf("k%d", i), Val: "v"}, ""); err != nil {
			t.Fatal(err)
		}
	}
	c.snapshot()
	if _, err := c.DumpSince(5); err == nil || !strings.Contains(err.Error(), "compacted") {
		t.Fatalf("DumpSince inside the compacted prefix: err = %v, want compacted", err)
	}
	if dump, err := c.DumpSince(c.Position()); err != nil {
		t.Fatalf("DumpSince at head: %v", err)
	} else if pairs, _ := decodePairs(dump); len(pairs) != 0 {
		t.Fatalf("DumpSince at head returned %d pairs, want 0", len(pairs))
	}
}

func fileNames(t *testing.T, fs *wal.MemFS) []string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	return names
}
