package gen

import (
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"reflect"
	"strings"
	"testing"

	"circus/internal/idl"
)

func parseBankIDL(t *testing.T) *idl.Program {
	t.Helper()
	src, err := os.ReadFile("../../examples/bank/bank.courier")
	if err != nil {
		t.Fatalf("reading bank.courier: %v", err)
	}
	prog, err := idl.Parse(string(src))
	if err != nil {
		t.Fatalf("parsing bank.courier: %v", err)
	}
	return prog
}

// TestGoldenBankStubs: regenerating the committed bank stubs must
// reproduce them byte for byte; this pins the generator's output and
// guarantees the example uses current output.
func TestGoldenBankStubs(t *testing.T) {
	prog := parseBankIDL(t)
	code, err := Generate(prog, Options{Package: "bankrpc"})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	formatted, err := format.Source(code)
	if err != nil {
		t.Fatalf("generated code does not format: %v", err)
	}
	committed, err := os.ReadFile("../../examples/bank/bankrpc/bankrpc.go")
	if err != nil {
		t.Fatalf("reading committed stubs: %v", err)
	}
	if string(formatted) != string(committed) {
		t.Fatal("committed bankrpc.go is stale; rerun stubgen")
	}
}

func TestGeneratedCodeParses(t *testing.T) {
	prog := parseBankIDL(t)
	code, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", code, 0); err != nil {
		t.Fatalf("generated code does not parse: %v", err)
	}
}

func TestGeneratedSymbols(t *testing.T) {
	prog := parseBankIDL(t)
	code, err := Generate(prog, Options{Package: "bankrpc"})
	if err != nil {
		t.Fatal(err)
	}
	src := string(code)
	for _, sym := range []string{
		"package bankrpc",
		"type Account = string",
		"type Amount = int32",
		"type Entry struct",
		"type Statement = []Entry",
		"ErrInsufficientFunds",
		"ErrNoSuchAccount",
		"func (c *Client) Deposit(ctx context.Context, account Account, amount Amount, opts ...circus.CallOption) (balance Amount, err error)",
		"func (c *Client) Transfer(ctx context.Context, from Account, to Account, amount Amount, opts ...circus.CallOption) (err error)",
		"type Service interface",
		"func NewModule(svc Service) circus.Module",
		"func Export(n *circus.Node, svc Service, opts ...circus.ExportOption)",
		"func Import(ctx context.Context, n *circus.Node) (*Client, error)",
		"circus.ErrNoSuchProc",
	} {
		if !strings.Contains(src, sym) {
			t.Errorf("generated code missing %q", sym)
		}
	}
}

func TestGoTypeMapping(t *testing.T) {
	g := &generator{}
	cases := []struct {
		t    idl.Type
		want string
	}{
		{idl.Prim{Kind: idl.Boolean}, "bool"},
		{idl.Prim{Kind: idl.Cardinal}, "uint16"},
		{idl.Prim{Kind: idl.LongCardinal}, "uint32"},
		{idl.Prim{Kind: idl.Integer}, "int16"},
		{idl.Prim{Kind: idl.LongInteger}, "int32"},
		{idl.Prim{Kind: idl.String}, "string"},
		{idl.Prim{Kind: idl.Unspecified}, "uint16"},
		{idl.Sequence{Elem: idl.Prim{Kind: idl.String}}, "[]string"},
		{idl.Array{N: 3, Elem: idl.Prim{Kind: idl.Integer}}, "[3]int16"},
		{idl.Ref{Name: "foo"}, "Foo"},
	}
	for _, c := range cases {
		got, err := g.goType(c.t)
		if err != nil || got != c.want {
			t.Errorf("goType(%v) = %q, %v; want %q", c.t, got, err, c.want)
		}
	}
}

func TestIdentifierHygiene(t *testing.T) {
	// Courier field names that collide with Go keywords or the stub's
	// own locals must be renamed.
	prog, err := idl.Parse(`
X: PROGRAM 2 VERSION 1 =
BEGIN
    P: PROCEDURE [type: STRING, range: CARDINAL, data: STRING] RETURNS [func: BOOLEAN] = 0;
END.
`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := format.Source(code); err != nil {
		t.Fatalf("keyword-colliding fields produced invalid Go: %v", err)
	}
	for _, frag := range []string{"type_ string", "range_ uint16", "data_ string"} {
		if !strings.Contains(string(code), frag) {
			t.Errorf("missing renamed parameter %q", frag)
		}
	}
}

func TestNoErrorsDeclared(t *testing.T) {
	prog, err := idl.Parse(`X: PROGRAM 3 VERSION 1 = BEGIN P: PROCEDURE = 0; END.`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := format.Source(code); err != nil {
		t.Fatalf("error-free interface produced invalid Go: %v", err)
	}
	if strings.Contains(string(code), "declaredErrors") {
		t.Error("error machinery emitted for interface without errors")
	}
}

func TestProcNumbers(t *testing.T) {
	prog := parseBankIDL(t)
	nums := ProcNumbers(prog)
	if !reflect.DeepEqual(nums, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("nums = %v", nums)
	}
}

func TestInterfaceNameOverride(t *testing.T) {
	prog := parseBankIDL(t)
	code, err := Generate(prog, Options{InterfaceName: "bank-v2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), `n.Import(ctx, "bank-v2")`) {
		t.Error("interface name override ignored")
	}
}
