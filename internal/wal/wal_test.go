package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openMem(t *testing.T, mfs *MemFS, o Options) (*Log, *Recovered) {
	t.Helper()
	o.FS = mfs
	l, rec, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func powerCycle(t *testing.T, mfs *MemFS, l *Log) *Recovered {
	t.Helper()
	mfs.Crash()
	mfs.Restart()
	rec, err := l.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	return rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	mfs := NewMemFS(1)
	l, rec := openMem(t, mfs, Options{})
	if rec.Pos != 0 || len(rec.Records) != 0 || rec.Snapshot != nil {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%02d", i))
		pos, err := l.AppendSync(p)
		if err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
		if pos != uint64(i+1) {
			t.Fatalf("pos = %d, want %d", pos, i+1)
		}
		want = append(want, p)
	}
	rec = powerCycle(t, mfs, l)
	if rec.Pos != 20 {
		t.Fatalf("recovered Pos = %d, want 20", rec.Pos)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if string(r) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r, want[i])
		}
	}
}

func TestTornTailLosesOnlyUnacked(t *testing.T) {
	mfs := NewMemFS(7)
	l, _ := openMem(t, mfs, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.AppendSync([]byte(fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	// Unsynced appends: buffered only, mostly lost by the crash.
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("unacked-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	rec := powerCycle(t, mfs, l)
	if rec.Pos < 10 {
		t.Fatalf("recovered Pos = %d, lost acked records", rec.Pos)
	}
	for i := 0; i < 10; i++ {
		if string(rec.Records[i]) != fmt.Sprintf("acked-%d", i) {
			t.Fatalf("acked record %d = %q", i, rec.Records[i])
		}
	}
	// Whatever survived past the acked prefix must be an in-order prefix
	// of the unacked appends.
	for i, r := range rec.Records[10:] {
		if string(r) != fmt.Sprintf("unacked-%d", i) {
			t.Fatalf("tail record %d = %q", i, r)
		}
	}
}

func TestRecoverStopsAtCorruptRecordAndSeals(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{FS: DirFS(dir)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.AppendSync([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	l.Close()

	// Flip a bit inside record 3's payload (records are 8+9 bytes each).
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[2*17+frameHeader+1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(Options{FS: DirFS(dir)})
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	if !rec.Torn {
		t.Fatal("corruption not reported as torn")
	}
	if len(rec.Records) != 2 || rec.Pos != 2 {
		t.Fatalf("recovered %d records to pos %d, want 2 records to pos 2", len(rec.Records), rec.Pos)
	}
	// The torn segment was sealed: appending and recovering again must
	// chain cleanly past it with no torn flag.
	if _, err := l2.AppendSync([]byte("after-corruption")); err != nil {
		t.Fatalf("AppendSync after seal: %v", err)
	}
	l2.Close()
	l3, rec, err := Open(Options{FS: DirFS(dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec.Torn {
		t.Fatal("sealed segment still reported torn")
	}
	if len(rec.Records) != 3 || string(rec.Records[2]) != "after-corruption" {
		t.Fatalf("post-seal recovery = %d records (%q)", len(rec.Records), rec.Records)
	}
}

func TestSegmentRotationChains(t *testing.T) {
	mfs := NewMemFS(3)
	l, _ := openMem(t, mfs, Options{SegmentBytes: 64})
	for i := 0; i < 50; i++ {
		if _, err := l.AppendSync([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	if s := l.Stats(); s.Segments < 5 {
		t.Fatalf("only %d rotations across 50 records with 64-byte segments", s.Segments)
	}
	rec := powerCycle(t, mfs, l)
	if rec.Pos != 50 || len(rec.Records) != 50 {
		t.Fatalf("recovered %d records to pos %d, want 50", len(rec.Records), rec.Pos)
	}
	for i, r := range rec.Records {
		if string(r) != fmt.Sprintf("record-%02d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
}

func TestSnapshotPrunesAndRecovers(t *testing.T) {
	mfs := NewMemFS(5)
	l, _ := openMem(t, mfs, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if _, err := l.AppendSync([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SnapshotAt([]byte("state@10"), 10); err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.AppendSync([]byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rec := powerCycle(t, mfs, l)
	if string(rec.Snapshot) != "state@10" || rec.SnapshotPos != 10 {
		t.Fatalf("snapshot = %q @ %d", rec.Snapshot, rec.SnapshotPos)
	}
	if rec.Pos != 15 || len(rec.Records) != 5 {
		t.Fatalf("tail = %d records to pos %d, want 5 to 15", len(rec.Records), rec.Pos)
	}
	for i, r := range rec.Records {
		if string(r) != fmt.Sprintf("new-%d", i) {
			t.Fatalf("tail record %d = %q", i, r)
		}
	}
	// Pruning dropped the fully covered segments.
	names, _ := mfs.List()
	for _, n := range names {
		p, kind, ok := parseName(n)
		if ok && kind == segSuffix && p+4 <= 10 { // 64-byte segments hold ~4 records
			t.Fatalf("segment %s not pruned by snapshot", n)
		}
	}
}

func TestDiskFull(t *testing.T) {
	mfs := NewMemFS(9)
	l, _ := openMem(t, mfs, Options{})
	if _, err := l.AppendSync([]byte("before")); err != nil {
		t.Fatal(err)
	}
	mfs.FillDisk()
	if _, err := l.AppendSync([]byte("rejected")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append on full disk: %v, want ErrNoSpace", err)
	}
	mfs.SetQuota(0)
	if _, err := l.AppendSync([]byte("after")); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	rec := powerCycle(t, mfs, l)
	if len(rec.Records) != 2 || string(rec.Records[0]) != "before" || string(rec.Records[1]) != "after" {
		t.Fatalf("recovered %q", rec.Records)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	mfs := NewMemFS(11)
	mfs.SetSyncDelay(time.Millisecond)
	l, _ := openMem(t, mfs, Options{})
	const callers, each = 16, 8
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.AppendSync([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
					t.Errorf("AppendSync: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s := l.Stats()
	if s.Appends != callers*each {
		t.Fatalf("appends = %d, want %d", s.Appends, callers*each)
	}
	if s.Fsyncs >= s.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", s.Fsyncs, s.Appends)
	}
	rec := powerCycle(t, mfs, l)
	if uint64(len(rec.Records)) != s.Appends {
		t.Fatalf("recovered %d of %d acked records", len(rec.Records), s.Appends)
	}
}

func TestCrashMidFsyncNeverAcksLostRecord(t *testing.T) {
	mfs := NewMemFS(13)
	mfs.SetSyncDelay(2 * time.Millisecond)
	l, _ := openMem(t, mfs, Options{})
	if _, err := l.AppendSync([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := l.AppendSync([]byte("in-flight"))
		errc <- err
	}()
	time.Sleep(time.Millisecond) // let the append land, crash mid-fsync
	mfs.Crash()
	if err := <-errc; err == nil {
		t.Fatal("AppendSync acked a record whose fsync was interrupted by the crash")
	}
	mfs.Restart()
	rec, err := l.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if len(rec.Records) < 1 || string(rec.Records[0]) != "acked" {
		t.Fatalf("acked record lost: recovered %q", rec.Records)
	}
}

func TestFailedFsyncReportsError(t *testing.T) {
	mfs := NewMemFS(17)
	l, _ := openMem(t, mfs, Options{})
	mfs.FailSyncs(true)
	if _, err := l.AppendSync([]byte("doomed")); err == nil {
		t.Fatal("AppendSync succeeded under injected fsync failure")
	}
	mfs.FailSyncs(false)
	if _, err := l.AppendSync([]byte("healed")); err != nil {
		t.Fatalf("AppendSync after heal: %v", err)
	}
}

// TestDurabilityContractSeeded hammers the log with appends and seeded
// power cycles, checking the one contract everything else builds on:
// every record whose AppendSync returned nil is recovered by every
// subsequent recovery.
func TestDurabilityContractSeeded(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			mfs := NewMemFS(seed)
			l, _ := openMem(t, mfs, Options{SegmentBytes: 128})
			acked := map[string]bool{}
			next := 0
			for round := 0; round < 6; round++ {
				for i := 0; i < 10; i++ {
					p := fmt.Sprintf("seed%d-op%d", seed, next)
					next++
					if _, err := l.AppendSync([]byte(p)); err == nil {
						acked[p] = true
					}
				}
				if round%2 == 1 {
					rec := powerCycle(t, mfs, l)
					got := map[string]bool{}
					for _, r := range rec.Records {
						got[string(r)] = true
					}
					for p := range acked {
						if !got[p] {
							t.Fatalf("round %d: acked record %q lost", round, p)
						}
					}
				}
			}
		})
	}
}

func TestNeedSnapshot(t *testing.T) {
	mfs := NewMemFS(19)
	l, _ := openMem(t, mfs, Options{SnapshotEvery: 5})
	for i := 0; i < 4; i++ {
		if _, err := l.AppendSync([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if l.NeedSnapshot() {
		t.Fatal("NeedSnapshot before threshold")
	}
	if _, err := l.AppendSync([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if !l.NeedSnapshot() {
		t.Fatal("NeedSnapshot not signalled at threshold")
	}
	if err := l.SnapshotAt([]byte("s"), l.Pos()); err != nil {
		t.Fatal(err)
	}
	if l.NeedSnapshot() {
		t.Fatal("NeedSnapshot still set after snapshot")
	}
}

func TestCloseIsCleanAndIdempotent(t *testing.T) {
	mfs := NewMemFS(23)
	l, _ := openMem(t, mfs, Options{})
	if _, err := l.Append([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.AppendSync([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	// Close synced the buffered record.
	l2, rec, err := Open(Options{FS: mfs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Records) != 1 || string(rec.Records[0]) != "buffered" {
		t.Fatalf("Close did not sync: recovered %q", rec.Records)
	}
}
