package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALReplay fuzzes the record decoder with arbitrary segment
// images — truncated tails, bit flips, absurd length fields — and
// checks the invariants recovery depends on: decoding never panics,
// stops cleanly at the first invalid record, accepts exactly a framed
// prefix of the input, and is idempotent over that prefix.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	valid := appendFrame(nil, []byte("hello"))
	valid = appendFrame(valid, nil)
	valid = appendFrame(valid, bytes.Repeat([]byte{0xAB}, 100))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn final record
	f.Add(valid[:5])            // torn header
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0x40 // payload bit flip breaks the CRC
	f.Add(flipped)
	huge := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(huge, 1<<31) // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, clean := DecodeRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d outside [0, %d]", valid, len(data))
		}
		if clean != (valid == len(data)) {
			t.Fatalf("clean = %v but valid = %d of %d", clean, valid, len(data))
		}
		// The accepted prefix must be exactly the re-encoding of the
		// decoded records: nothing invented, nothing silently skipped.
		var re []byte
		for _, r := range recs {
			re = appendFrame(re, r)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("accepted prefix is not the framing of the decoded records")
		}
		// Decoding the accepted prefix again is clean and identical —
		// recovery can seal a torn segment to it and replay it forever.
		recs2, valid2, clean2 := DecodeRecords(data[:valid])
		if !clean2 || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("re-decode of accepted prefix: clean=%v valid=%d recs=%d", clean2, valid2, len(recs2))
		}
	})
}
