// The injectable filesystem under the write-ahead log. The log never
// touches the disk directly: it goes through FS, so tests and the
// chaos harness can substitute an in-memory disk with fault injection
// — crash-mid-fsync (unsynced writes lost, the final record torn),
// disk-full, and slow-fsync stragglers — while production uses the
// real directory-backed implementation.
package wal

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrNoSpace reports a write rejected because the disk is full.
var ErrNoSpace = errors.New("wal: no space left on device")

// ErrCrashed reports an operation against a crashed (powered-off)
// in-memory disk.
var ErrCrashed = errors.New("wal: disk crashed")

// File is the writable handle the log appends through. Writes are not
// durable until Sync returns.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem the log lives on: a flat namespace of files.
// Implementations must be safe for concurrent use.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// ReadFile returns the entire content of name.
	ReadFile(name string) ([]byte, error)
	// List returns every file name, sorted.
	List() ([]string, error)
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Sub returns a namespace rooted at name (a subdirectory), creating
	// it if needed, so one FS can host several logs.
	Sub(name string) FS
}

// ---------------------------------------------------------------------
// Directory-backed FS (the production disk).

type dirFS struct{ dir string }

// DirFS returns an FS rooted at dir, creating it if needed.
func DirFS(dir string) FS { return dirFS{dir: dir} }

func (d dirFS) Create(name string) (File, error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, err
	}
	return os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (d dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d dirFS) Remove(name string) error {
	err := os.Remove(filepath.Join(d.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

func (d dirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(d.dir, oldname), filepath.Join(d.dir, newname))
}

func (d dirFS) Sub(name string) FS { return dirFS{dir: filepath.Join(d.dir, name)} }

// ---------------------------------------------------------------------
// In-memory FS with crash semantics and fault injection.

// memFile models one file's page-cache split: durable bytes survive a
// power loss, buffered bytes are written but not yet synced and are
// (mostly) lost by one — a crash keeps a random prefix, the torn-write
// behaviour real disks exhibit.
type memFile struct {
	durable  []byte
	buffered []byte
}

// MemFS is an in-memory FS with power-loss semantics: writes land in a
// volatile buffer until Sync moves them to the durable image; Crash
// discards the volatile buffers, keeping a seeded random prefix of
// each (the torn final record). Fault injection knobs model disk-full
// (quota), fsync stragglers (sync delay), and fsync failure.
type MemFS struct {
	mu        sync.Mutex
	rng       *rand.Rand
	files     map[string]*memFile
	subs      map[string]*MemFS
	crashed   bool
	failSync  bool
	quota     int // max durable+buffered bytes; 0 = unlimited
	syncDelay time.Duration
	fsyncs    int64
}

// NewMemFS returns an empty in-memory disk whose torn-write behaviour
// is driven by seed.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{
		rng:   rand.New(rand.NewSource(seed)),
		files: make(map[string]*memFile),
		subs:  make(map[string]*MemFS),
	}
}

// Crash powers the disk off: every unsynced buffer is discarded except
// a random prefix (the torn tail), and all operations fail until
// Restart. Sub-filesystems crash with their parent.
func (m *MemFS) Crash() {
	m.mu.Lock()
	m.crashed = true
	for _, f := range m.files {
		if n := len(f.buffered); n > 0 {
			keep := m.rng.Intn(n + 1)
			f.durable = append(f.durable, f.buffered[:keep]...)
		}
		f.buffered = nil
	}
	subs := make([]*MemFS, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.Crash()
	}
}

// Restart powers the disk back on, also clearing any injected fsync
// failure. Quota and sync delay persist until explicitly lifted.
func (m *MemFS) Restart() {
	m.mu.Lock()
	m.crashed = false
	m.failSync = false
	subs := make([]*MemFS, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.Restart()
	}
}

// Crashed reports whether the disk is powered off.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// FailSyncs makes every subsequent Sync fail (crash-mid-fsync: the
// write happened, durability didn't) until Restart or FailSyncs(false).
func (m *MemFS) FailSyncs(fail bool) {
	m.mu.Lock()
	m.failSync = fail
	subs := make([]*MemFS, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.FailSyncs(fail)
	}
}

// FillDisk sets the quota to the bytes already used, so every further
// write fails with ErrNoSpace until SetQuota(0).
func (m *MemFS) FillDisk() {
	m.mu.Lock()
	m.quota = m.usedLocked()
	if m.quota == 0 {
		m.quota = 1 // an empty full disk still rejects writes
	}
	subs := make([]*MemFS, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.FillDisk()
	}
}

// SetQuota bounds the disk size in bytes; 0 lifts the bound.
func (m *MemFS) SetQuota(n int) {
	m.mu.Lock()
	m.quota = n
	subs := make([]*MemFS, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.SetQuota(n)
	}
}

// SetSyncDelay makes every Sync sleep d first — the slow-disk
// straggler. 0 restores a fast disk.
func (m *MemFS) SetSyncDelay(d time.Duration) {
	m.mu.Lock()
	m.syncDelay = d
	subs := make([]*MemFS, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		s.SetSyncDelay(d)
	}
}

// Fsyncs returns the number of successful syncs, including those of
// sub-filesystems.
func (m *MemFS) Fsyncs() int64 {
	m.mu.Lock()
	n := m.fsyncs
	subs := make([]*MemFS, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.mu.Unlock()
	for _, s := range subs {
		n += s.Fsyncs()
	}
	return n
}

func (m *MemFS) usedLocked() int {
	n := 0
	for _, f := range m.files {
		n += len(f.durable) + len(f.buffered)
	}
	return n
}

type memHandle struct {
	fs   *MemFS
	name string
}

func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	f, ok := m.files[h.name]
	if !ok {
		// Recreated behind our back (rotation never does this); treat
		// the handle as stale.
		return 0, fmt.Errorf("wal: write to removed file %q", h.name)
	}
	if m.quota > 0 && m.usedLocked()+len(p) > m.quota {
		return 0, ErrNoSpace
	}
	f.buffered = append(f.buffered, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	delay := m.syncDelay
	m.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.failSync {
		return errors.New("wal: injected fsync failure")
	}
	if f, ok := m.files[h.name]; ok {
		f.durable = append(f.durable, f.buffered...)
		f.buffered = nil
	}
	m.fsyncs++
	return nil
}

func (h *memHandle) Close() error { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

// ReadFile implements FS: a live (uncrashed) disk reads through the
// buffer cache, so unsynced writes are visible, exactly as on a real
// OS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[name]
	if !ok {
		return nil, os.ErrNotExist
	}
	out := make([]byte, 0, len(f.durable)+len(f.buffered))
	out = append(out, f.durable...)
	out = append(out, f.buffered...)
	return out, nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS. The rename itself is modeled as atomic and
// immediately durable (metadata journaling); the content's durability
// is still whatever Sync made of it.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[oldname]
	if !ok {
		return os.ErrNotExist
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Sub implements FS: sub-disks share the parent's failure mode (Crash,
// Restart, FailSyncs, quota, and sync delay cascade).
func (m *MemFS) Sub(name string) FS {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[name]
	if !ok {
		s = NewMemFS(m.rng.Int63())
		s.crashed = m.crashed
		s.failSync = m.failSync
		s.quota = m.quota
		s.syncDelay = m.syncDelay
		m.subs[name] = s
	}
	return s
}
