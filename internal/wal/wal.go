// Package wal is a segmented write-ahead log with crash-consistent
// recovery, built for troupe members whose state must survive a
// whole-troupe power loss (the scenario replication alone cannot
// mask).
//
// The log is a flat namespace of files on an injectable FS:
//
//	wal-<pos>.seg   append-only segments of CRC-framed records; the
//	                name carries the position of the segment's first
//	                record, so segments chain by record count
//	wal-<pos>.snap  a snapshot of the application state covering all
//	                records with position <= pos
//
// Records are framed [len u32][crc32c u32][payload]. Appends are made
// durable by group commit: concurrent AppendSync callers elect one
// leader whose single fsync covers every append admitted while the
// previous fsync was in flight, so fsyncs/op falls toward zero under
// concurrency instead of costing one disk round trip per record.
//
// Recovery reads the newest intact snapshot and replays the segment
// chain after it, stopping cleanly at the first torn or corrupt
// record (a power loss mid-write leaves at most a torn tail); the
// torn segment is sealed back to its valid prefix and a fresh segment
// is opened, so a half-written record can never be appended after.
//
// The durability contract the members build on: a record whose
// AppendSync returned nil is replayed by every subsequent recovery.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"

	"circus/internal/trace"
)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrReopened reports an append that was in flight when the log was
// crash-recovered: its durability is unknown and the caller must not
// acknowledge it.
var ErrReopened = errors.New("wal: log reopened by crash recovery")

const (
	frameHeader         = 8       // len + crc32c
	maxRecord           = 1 << 26 // 64 MiB sanity bound on the len field
	segPrefix           = "wal-"
	segSuffix           = ".seg"
	snapSuffix          = ".snap"
	tmpSuffix           = ".tmp"
	defaultSegmentBytes = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a log.
type Options struct {
	// FS is the disk; required. Use DirFS for a real directory,
	// NewMemFS for tests and fault injection.
	FS FS
	// SegmentBytes rotates the active segment once it exceeds this
	// size; 0 means 1 MiB.
	SegmentBytes int
	// SnapshotEvery makes NeedSnapshot report true once this many
	// records have accumulated past the last snapshot; 0 disables the
	// hint (snapshots remain caller-driven).
	SnapshotEvery int
	// Trace, when set, receives wal.append, wal.snapshot, and recover
	// events (Detail = Name, Troupe = record position).
	Trace trace.Sink
	// Name tags trace events when one process hosts several logs.
	Name string
}

// Recovered is what Open (or Reopen) salvaged from the disk.
type Recovered struct {
	// Snapshot is the newest intact snapshot's payload, nil if none.
	Snapshot []byte
	// SnapshotPos is the position the snapshot covers through.
	SnapshotPos uint64
	// Records are the replayable records after the snapshot, in order.
	Records [][]byte
	// Pos is the position of the last recovered record.
	Pos uint64
	// Torn reports that recovery stopped at a torn or corrupt record
	// (the expected signature of a crash mid-write, not an error).
	Torn bool
}

// Stats counts a log's work.
type Stats struct {
	Appends   uint64
	Fsyncs    uint64
	Snapshots uint64
	Segments  uint64 // rotations (segments opened beyond the first)
	Recovered uint64 // recoveries performed (Open + Reopen)
}

// Log is an open write-ahead log.
type Log struct {
	o Options

	mu          sync.Mutex
	cond        *sync.Cond
	active      File
	activeStart uint64 // position of the active segment's first record
	activeBytes int
	pos         uint64 // last appended position
	synced      uint64 // last durable position
	snapPos     uint64 // last snapshot position
	syncing     bool
	syncSeq     uint64 // completed leader fsyncs (success or failure)
	failSeq     uint64 // syncSeq value of the last failed fsync
	failErr     error  // what that fsync returned
	gen         uint64 // bumped by Reopen; voids in-flight appends
	closed      bool
	stats       Stats
}

// Open scans the disk, recovers whatever is intact, and opens a fresh
// active segment after it. The caller replays Recovered into its state
// before appending.
func Open(o Options) (*Log, *Recovered, error) {
	if o.FS == nil {
		return nil, nil, errors.New("wal: Options.FS is required")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	l := &Log{o: o}
	l.cond = sync.NewCond(&l.mu)
	rec, err := l.recoverLocked()
	if err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

func segName(pos uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, pos, segSuffix) }
func snapName(pos uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, pos, snapSuffix) }

func parseName(name string) (pos uint64, kind string, ok bool) {
	if !strings.HasPrefix(name, segPrefix) {
		return 0, "", false
	}
	rest := name[len(segPrefix):]
	switch {
	case strings.HasSuffix(rest, segSuffix):
		kind = segSuffix
		rest = strings.TrimSuffix(rest, segSuffix)
	case strings.HasSuffix(rest, snapSuffix):
		kind = snapSuffix
		rest = strings.TrimSuffix(rest, snapSuffix)
	default:
		return 0, "", false
	}
	if _, err := fmt.Sscanf(rest, "%016x", &pos); err != nil {
		return 0, "", false
	}
	return pos, kind, true
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeRecords decodes a segment (or snapshot) image into its framed
// records. It never panics on corrupt input: decoding stops cleanly at
// the first invalid record — a truncated header, a truncated payload,
// an absurd length, or a CRC mismatch — and clean reports whether the
// whole image was consumed. valid is the byte length of the accepted
// prefix.
func DecodeRecords(data []byte) (recs [][]byte, valid int, clean bool) {
	off := 0
	for {
		if off == len(data) {
			return recs, off, true
		}
		if len(data)-off < frameHeader {
			return recs, off, false
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecord || len(data)-off-frameHeader < n {
			return recs, off, false
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return recs, off, false
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += frameHeader + n
	}
}

// recoverLocked scans the FS and (re)initializes the log's in-memory
// state. Called with l.mu held (or before the log escapes).
func (l *Log) recoverLocked() (*Recovered, error) {
	fs := l.o.FS
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	var segs, snaps []uint64
	for _, name := range names {
		pos, kind, ok := parseName(name)
		if !ok {
			// Stray temp file from an interrupted snapshot or seal.
			if strings.HasSuffix(name, tmpSuffix) {
				_ = fs.Remove(name)
			}
			continue
		}
		if kind == segSuffix {
			segs = append(segs, pos)
		} else {
			snaps = append(snaps, pos)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	rec := &Recovered{}

	// Newest intact snapshot wins; corrupt ones are skipped (a crash
	// mid-snapshot leaves the previous snapshot in place).
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := fs.ReadFile(snapName(snaps[i]))
		if err != nil {
			continue
		}
		recs, _, clean := DecodeRecords(data)
		if clean && len(recs) == 1 {
			rec.Snapshot = recs[0]
			rec.SnapshotPos = snaps[i]
			break
		}
		_ = fs.Remove(snapName(snaps[i]))
	}

	// Replay the segment chain. Segments chain by record count: a
	// segment starting at position p with k records is followed by one
	// starting at p+k. A gap, a torn record, or a corrupt record ends
	// recovery; everything after is unreachable by the durability
	// contract (it was never acknowledged) and is discarded.
	pos := uint64(0)
	if len(segs) > 0 {
		pos = segs[0] - 1
	}
	if rec.SnapshotPos > pos {
		pos = rec.SnapshotPos
	}
	expected := uint64(0)
	for i, start := range segs {
		if i > 0 && start != expected {
			rec.Torn = true
			break
		}
		data, err := fs.ReadFile(segName(start))
		if err != nil {
			rec.Torn = true
			break
		}
		recs, valid, clean := DecodeRecords(data)
		for j, r := range recs {
			p := start + uint64(j)
			if p > rec.SnapshotPos {
				rec.Records = append(rec.Records, r)
			}
			if p > pos {
				pos = p
			}
		}
		expected = start + uint64(len(recs))
		if !clean {
			rec.Torn = true
			// Seal the torn segment back to its valid prefix so a
			// future recovery chains past it instead of re-tripping.
			if err := l.sealSegment(start, data[:valid]); err != nil {
				return nil, err
			}
			break
		}
	}
	rec.Pos = pos

	// Drop segments made obsolete by the snapshot and anything beyond
	// the torn point; then open a fresh active segment. Recovery never
	// appends to an existing segment — a torn tail must stay sealed.
	for i, start := range segs {
		end := expected // only meaningful for fully scanned segments
		if i+1 < len(segs) {
			end = segs[i+1]
		}
		if end <= rec.SnapshotPos+1 || start > pos+1 {
			_ = fs.Remove(segName(start))
		}
	}
	active, err := fs.Create(segName(pos + 1))
	if err != nil {
		return nil, err
	}
	l.active = active
	l.activeStart = pos + 1
	l.activeBytes = 0
	l.pos = pos
	l.synced = pos
	l.snapPos = rec.SnapshotPos
	l.syncing = false
	l.failErr = nil
	l.closed = false
	l.stats.Recovered++
	if l.o.Trace != nil {
		detail := l.o.Name
		if rec.Torn {
			detail += " torn"
		}
		trace.Stamp(l.o.Trace, trace.Event{Kind: trace.KindRecover,
			Troupe: pos, N: len(rec.Records), Detail: strings.TrimSpace(detail)})
	}
	return rec, nil
}

// sealSegment rewrites a torn segment to its valid prefix via
// temp-write, sync, and atomic rename.
func (l *Log) sealSegment(start uint64, valid []byte) error {
	fs := l.o.FS
	tmp := segName(start) + tmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(valid); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return fs.Rename(tmp, segName(start))
}

// Reopen simulates (or follows) a power loss: whatever the FS now
// holds is re-scanned exactly as Open would, in-flight appends are
// voided with ErrReopened, and the log is ready to append again. The
// chaos harness calls it after MemFS.Crash + Restart.
func (l *Log) Reopen() (*Recovered, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gen++
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	rec, err := l.recoverLocked()
	l.cond.Broadcast()
	return rec, err
}

// Append writes one record without waiting for durability; pair with
// Sync. Most callers want AppendSync.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload)
}

func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.activeBytes >= l.o.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
		if l.closed {
			return 0, ErrClosed
		}
	}
	frame := appendFrame(nil, payload)
	if _, err := l.active.Write(frame); err != nil {
		return 0, err
	}
	l.pos++
	l.activeBytes += len(frame)
	l.stats.Appends++
	if l.o.Trace != nil {
		trace.Stamp(l.o.Trace, trace.Event{Kind: trace.KindWALAppend,
			Troupe: l.pos, N: len(payload), Detail: l.o.Name})
	}
	return l.pos, nil
}

// rotateLocked seals the active segment (one fsync makes its whole
// content durable) and opens the next. A group-commit fsync in flight
// is drained first so leader and rotation never sync concurrently;
// waiting releases the lock, so the rotation condition is re-checked.
func (l *Log) rotateLocked() error {
	for l.syncing && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	if l.activeBytes < l.o.SegmentBytes {
		return nil // another appender rotated while we waited
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.stats.Fsyncs++
	if l.pos > l.synced {
		l.synced = l.pos
	}
	l.active.Close()
	next, err := l.o.FS.Create(segName(l.pos + 1))
	if err != nil {
		return err
	}
	l.active = next
	l.activeStart = l.pos + 1
	l.activeBytes = 0
	l.stats.Segments++
	return nil
}

// AppendSync appends one record and returns once it is durable. Group
// commit: while one caller's fsync is in flight, later callers queue
// behind it and are covered together by the next single fsync.
func (l *Log) AppendSync(payload []byte) (uint64, error) {
	l.mu.Lock()
	pos, err := l.appendLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	err = l.waitSyncedLocked(pos)
	l.mu.Unlock()
	return pos, err
}

// Sync makes every record appended so far durable (batching with any
// concurrent AppendSync).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waitSyncedLocked(l.pos)
}

// SyncTo makes every record up to position pos durable, returning
// immediately when that prefix already is. A retried operation whose
// record was appended (but not synced) by an earlier failed attempt
// uses this to finish the job without re-appending.
func (l *Log) SyncTo(pos uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if pos > l.pos {
		pos = l.pos
	}
	return l.waitSyncedLocked(pos)
}

// waitSyncedLocked blocks until position target is durable, electing
// this goroutine as the fsync leader when none is in flight. An fsync
// failure is delivered to the leader and to exactly the followers of
// that round — later callers trigger a fresh fsync rather than
// inheriting a stale error, so a healed disk heals the log. Called
// with l.mu held; may release and reacquire it.
func (l *Log) waitSyncedLocked(target uint64) error {
	gen := l.gen
	for {
		if l.gen != gen {
			return ErrReopened
		}
		if l.closed {
			return ErrClosed
		}
		if l.synced >= target {
			return nil
		}
		if !l.syncing {
			// Leader: one fsync covers every append admitted so far.
			l.syncing = true
			covered := l.pos
			f := l.active
			l.mu.Unlock()
			err := f.Sync()
			l.mu.Lock()
			if l.gen != gen {
				return ErrReopened
			}
			l.syncing = false
			l.syncSeq++
			if err == nil {
				if covered > l.synced {
					l.synced = covered
				}
				l.stats.Fsyncs++
			} else {
				l.failSeq = l.syncSeq
				l.failErr = err
			}
			l.cond.Broadcast()
			if err != nil {
				return err
			}
			continue
		}
		// Follower: wait out the in-flight fsync and take its verdict.
		seq := l.syncSeq
		for l.syncSeq == seq && l.gen == gen && !l.closed {
			l.cond.Wait()
		}
		if l.gen != gen {
			return ErrReopened
		}
		if l.closed {
			return ErrClosed
		}
		if l.synced >= target {
			return nil
		}
		if l.failSeq == l.syncSeq && l.failErr != nil {
			return l.failErr
		}
		// That fsync succeeded but was led before our append; elect or
		// follow again.
	}
}

// Snapshot records the application state as covering every record
// appended so far. Correct only when no appends race it; concurrent
// members use SnapshotAt with a position captured under their own
// state lock.
func (l *Log) Snapshot(state []byte) error {
	return l.SnapshotAt(state, l.Pos())
}

// SnapshotAt records state as covering every record with position
// <= pos, then prunes fully covered segments and older snapshots. The
// caller guarantees state reflects at least all records through pos —
// the members' locking gives this: state mutations happen before the
// corresponding append, and the caller captures state and pos under
// the same lock.
func (l *Log) SnapshotAt(state []byte, pos uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if pos > l.pos {
		pos = l.pos
	}
	gen := l.gen
	l.mu.Unlock()

	fs := l.o.FS
	tmp := snapName(pos) + tmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(appendFrame(nil, state)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	f.Close()
	if err := fs.Rename(tmp, snapName(pos)); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen != gen {
		return ErrReopened
	}
	if pos > l.snapPos {
		l.snapPos = pos
	}
	l.stats.Snapshots++
	l.stats.Fsyncs++
	if l.o.Trace != nil {
		trace.Stamp(l.o.Trace, trace.Event{Kind: trace.KindWALSnapshot,
			Troupe: pos, N: len(state), Detail: l.o.Name})
	}
	// Prune: drop snapshots older than this one and segments whose
	// records all lie at or below it. The active segment stays.
	names, err := fs.List()
	if err != nil {
		return nil // pruning is best-effort
	}
	var segs []uint64
	for _, name := range names {
		p, kind, ok := parseName(name)
		if !ok {
			continue
		}
		if kind == snapSuffix && p < pos {
			_ = fs.Remove(snapName(p))
		}
		if kind == segSuffix {
			segs = append(segs, p)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for i, start := range segs {
		if start == l.activeStart {
			continue
		}
		end := l.activeStart // records strictly below the next segment
		if i+1 < len(segs) {
			end = segs[i+1]
		}
		if end <= pos+1 {
			_ = fs.Remove(segName(start))
		}
	}
	return nil
}

// NeedSnapshot reports whether SnapshotEvery records have accumulated
// past the last snapshot.
func (l *Log) NeedSnapshot() bool {
	if l.o.SnapshotEvery <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos-l.snapPos >= uint64(l.o.SnapshotEvery)
}

// Pos returns the position of the last appended record.
func (l *Log) Pos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// Stats returns a copy of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.waitSyncedLocked(l.pos)
	l.closed = true
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if errors.Is(err, ErrReopened) || errors.Is(err, ErrClosed) {
		err = nil
	}
	return err
}
