//go:build linux && (amd64 || arm64)

package udptrans

import (
	"net"
	"syscall"
	"unsafe"

	"circus/internal/transport"
)

// Batched datagram I/O via sendmmsg(2)/recvmmsg(2). Each coalesced
// flush from the paired message layer becomes one system call instead
// of one per datagram, and the read loop drains bursts in one call.
// Restricted to 64-bit Linux where syscall.Msghdr matches the kernel's
// struct msghdr layout (32-bit ABIs differ).

// recvBatchSize is how many datagrams one recvmmsg call may drain.
const recvBatchSize = 16

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// returned datagram length, padded to an 8-byte boundary.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// putSockaddr fills sa with the AF_INET form of a; port and host are
// stored big-endian as the kernel expects. Every transport.Addr is
// encodable — Host is a 32-bit IPv4 address by construction — except
// the zero Addr, which Send/SendBatch reject with errBadAddr before
// any sockaddr is built, so a datagram can never silently go to
// 0.0.0.0. (IPv6 peers cannot reach this encoding at all: toAddr
// refuses to shrink a 16-byte address into Host.)
func putSockaddr(sa *syscall.RawSockaddrInet4, a transport.Addr) {
	sa.Family = syscall.AF_INET
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0] = byte(a.Port >> 8)
	p[1] = byte(a.Port)
	sa.Addr[0] = byte(a.Host >> 24)
	sa.Addr[1] = byte(a.Host >> 16)
	sa.Addr[2] = byte(a.Host >> 8)
	sa.Addr[3] = byte(a.Host)
}

// fromSockaddr is putSockaddr's inverse for received datagrams; ok is
// false for a non-IPv4 source, which the caller skips (the transport
// cannot name such a peer, so no protocol above could reply to it).
func fromSockaddr(sa *syscall.RawSockaddrInet4) (transport.Addr, bool) {
	if sa.Family != syscall.AF_INET {
		return transport.Addr{}, false
	}
	return transport.Addr{
		Host: uint32(sa.Addr[0])<<24 | uint32(sa.Addr[1])<<16 |
			uint32(sa.Addr[2])<<8 | uint32(sa.Addr[3]),
		Port: uint16(sa.Port>>8) | uint16(sa.Port)<<8,
	}, true
}

// sendBatchOn transmits the datagrams on conn with as few sendmmsg
// calls as the socket buffer allows, waiting for writability between
// partial sends. Shared by the single-socket Endpoint and the sharded
// endpoint's non-io_uring path.
func sendBatchOn(conn *net.UDPConn, raw syscall.RawConn, dgrams []transport.Datagram) error {
	sas := make([]syscall.RawSockaddrInet4, len(dgrams))
	iovs := make([]syscall.Iovec, len(dgrams))
	hdrs := make([]mmsghdr, len(dgrams))
	for i := range dgrams {
		d := &dgrams[i]
		putSockaddr(&sas[i], d.To)
		if len(d.Data) > 0 {
			iovs[i].Base = &d.Data[0]
		}
		iovs[i].SetLen(len(d.Data))
		h := &hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&sas[i]))
		h.Namelen = uint32(unsafe.Sizeof(sas[i]))
		h.Iov = &iovs[i]
		h.Iovlen = 1
	}
	sent := 0
	var sysErr error
	err := raw.Write(func(fd uintptr) bool {
		for sent < len(hdrs) {
			n, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(hdrs)-sent), 0, 0, 0)
			if errno == syscall.EAGAIN {
				return false // wait for writability, then resume
			}
			if errno != 0 {
				sysErr = errno
				return true
			}
			sent += int(n)
		}
		return true
	})
	if err != nil {
		return err
	}
	return sysErr
}

// recvBatch is the per-socket receive state for one recvmmsg drain
// loop: a window of pooled buffers the kernel scatters datagrams into.
// Handed-off buffers are replaced from the pool slot by slot, so a
// drained burst costs zero allocations once the pool is warm.
type recvBatch struct {
	pool *transport.BufPool
	bufs [recvBatchSize]*transport.Buf
	sas  [recvBatchSize]syscall.RawSockaddrInet4
	iovs [recvBatchSize]syscall.Iovec
	hdrs [recvBatchSize]mmsghdr
}

func (rb *recvBatch) init(pool *transport.BufPool) {
	rb.pool = pool
	for i := range rb.hdrs {
		rb.bufs[i] = pool.Get()
		rb.iovs[i].Base = &rb.bufs[i].Bytes()[0]
		rb.iovs[i].SetLen(transport.MaxDatagram)
		h := &rb.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&rb.sas[i]))
		h.Iov = &rb.iovs[i]
		h.Iovlen = 1
	}
}

// recv drains up to recvBatchSize datagrams in one recvmmsg call,
// blocking in the runtime poller until the socket is readable. It
// reports n received datagrams (slot i's source, payload, and buffer
// are read via take) or an error once the socket is closed.
func (rb *recvBatch) recv(raw syscall.RawConn) (int, error) {
	got := 0
	err := raw.Read(func(fd uintptr) bool {
		// Namelen is value-result; reset before every call.
		for i := range rb.hdrs {
			rb.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(rb.sas[i]))
		}
		n, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&rb.hdrs[0])), recvBatchSize,
			syscall.MSG_DONTWAIT, 0, 0)
		if errno == syscall.EAGAIN {
			return false // block in the poller until readable
		}
		if errno == 0 {
			got = int(n)
		}
		// Any other errno: report zero packets; the outer loop exits
		// via the closed-socket error from raw.Read or simply retries
		// on a transient fault.
		return true
	})
	return got, err
}

// take hands slot i's datagram to the caller as a pooled-buffer packet
// (the caller inherits the buffer's reference) and re-arms the slot
// with a fresh buffer. ok is false for an undeliverable (non-IPv4)
// source; the slot keeps its buffer for the next drain.
func (rb *recvBatch) take(i int, to transport.Addr) (pkt transport.Packet, ok bool) {
	from, ok := fromSockaddr(&rb.sas[i])
	if !ok {
		return transport.Packet{}, false
	}
	n := int(rb.hdrs[i].n)
	if n > transport.MaxDatagram {
		n = transport.MaxDatagram
	}
	buf := rb.bufs[i]
	rb.bufs[i] = rb.pool.Get()
	rb.iovs[i].Base = &rb.bufs[i].Bytes()[0]
	return transport.Packet{From: from, To: to, Data: buf.Bytes()[:n], Buf: buf}, true
}

// release returns the window's unconsumed buffers to the pool when the
// drain loop exits.
func (rb *recvBatch) release() {
	for i, b := range rb.bufs {
		if b != nil {
			b.Release()
			rb.bufs[i] = nil
		}
	}
}

// readLoop drains the socket with recvmmsg, copying each datagram into
// a fresh exactly-sized buffer before handing it upward (the
// transport.Packet contract: the receiver owns Data). The single-
// socket Endpoint keeps the copying path: its consumers read from the
// Recv channel at unknown pace, so pooled buffers would mostly pin
// the pool rather than save allocation.
func (e *Endpoint) readLoop() {
	var (
		bufs [recvBatchSize][transport.MaxDatagram]byte
		sas  [recvBatchSize]syscall.RawSockaddrInet4
		iovs [recvBatchSize]syscall.Iovec
		hdrs [recvBatchSize]mmsghdr
	)
	for i := range hdrs {
		iovs[i].Base = &bufs[i][0]
		iovs[i].SetLen(transport.MaxDatagram)
		h := &hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&sas[i]))
		h.Iov = &iovs[i]
		h.Iovlen = 1
	}
	for {
		got := 0
		err := e.raw.Read(func(fd uintptr) bool {
			for i := range hdrs {
				hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(sas[i]))
			}
			n, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), recvBatchSize,
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EAGAIN {
				return false
			}
			if errno == 0 {
				got = int(n)
			}
			return true
		})
		if err != nil {
			close(e.recv)
			return
		}
		for i := 0; i < got; i++ {
			from, ok := fromSockaddr(&sas[i])
			if !ok {
				continue
			}
			n := int(hdrs[i].n)
			if n > transport.MaxDatagram {
				n = transport.MaxDatagram
			}
			e.enqueue(from, append([]byte(nil), bufs[i][:n]...))
		}
	}
}

// drainLoop is a shard's socket-side goroutine: recvmmsg bursts into
// pooled buffers, pushed onto the SPSC ring without per-datagram
// channel operations. It closes the ring when the socket dies, which
// ends the shard's dispatch loop.
func (s *shard) drainLoop() {
	var rb recvBatch
	rb.init(&s.pool)
	defer rb.release()
	to := s.parent.addr
	for {
		got, err := rb.recv(s.raw)
		if err != nil {
			s.ring.close()
			return
		}
		for i := 0; i < got; i++ {
			pkt, ok := rb.take(i, to)
			if !ok {
				continue
			}
			if !s.ring.push(pkt) {
				pkt.Buf.Release() // ring full: drop like a kernel buffer
			}
		}
	}
}
