//go:build linux && (amd64 || arm64)

package udptrans

import (
	"syscall"
	"unsafe"

	"circus/internal/transport"
)

// Batched datagram I/O via sendmmsg(2)/recvmmsg(2). Each coalesced
// flush from the paired message layer becomes one system call instead
// of one per datagram, and the read loop drains bursts in one call.
// Restricted to 64-bit Linux where syscall.Msghdr matches the kernel's
// struct msghdr layout (32-bit ABIs differ).

// recvBatchSize is how many datagrams one recvmmsg call may drain.
const recvBatchSize = 16

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// returned datagram length, padded to an 8-byte boundary.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// putSockaddr fills sa with the AF_INET form of a; port and host are
// stored big-endian as the kernel expects.
func putSockaddr(sa *syscall.RawSockaddrInet4, a transport.Addr) {
	sa.Family = syscall.AF_INET
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0] = byte(a.Port >> 8)
	p[1] = byte(a.Port)
	sa.Addr[0] = byte(a.Host >> 24)
	sa.Addr[1] = byte(a.Host >> 16)
	sa.Addr[2] = byte(a.Host >> 8)
	sa.Addr[3] = byte(a.Host)
}

// sendBatch transmits the datagrams with as few sendmmsg calls as the
// socket buffer allows, waiting for writability between partial sends.
func (e *Endpoint) sendBatch(dgrams []transport.Datagram) error {
	sas := make([]syscall.RawSockaddrInet4, len(dgrams))
	iovs := make([]syscall.Iovec, len(dgrams))
	hdrs := make([]mmsghdr, len(dgrams))
	for i := range dgrams {
		d := &dgrams[i]
		putSockaddr(&sas[i], d.To)
		if len(d.Data) > 0 {
			iovs[i].Base = &d.Data[0]
		}
		iovs[i].SetLen(len(d.Data))
		h := &hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&sas[i]))
		h.Namelen = uint32(unsafe.Sizeof(sas[i]))
		h.Iov = &iovs[i]
		h.Iovlen = 1
	}
	sent := 0
	var sysErr error
	err := e.raw.Write(func(fd uintptr) bool {
		for sent < len(hdrs) {
			n, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(hdrs)-sent), 0, 0, 0)
			if errno == syscall.EAGAIN {
				return false // wait for writability, then resume
			}
			if errno != 0 {
				sysErr = errno
				return true
			}
			sent += int(n)
		}
		return true
	})
	if err != nil {
		return err
	}
	return sysErr
}

// readLoop drains the socket with recvmmsg, copying each datagram into
// a fresh exactly-sized buffer before handing it upward (the
// transport.Packet contract: the receiver owns Data).
func (e *Endpoint) readLoop() {
	var (
		bufs [recvBatchSize][transport.MaxDatagram]byte
		sas  [recvBatchSize]syscall.RawSockaddrInet4
		iovs [recvBatchSize]syscall.Iovec
		hdrs [recvBatchSize]mmsghdr
	)
	for i := range hdrs {
		iovs[i].Base = &bufs[i][0]
		iovs[i].SetLen(transport.MaxDatagram)
		h := &hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&sas[i]))
		h.Iov = &iovs[i]
		h.Iovlen = 1
	}
	for {
		got := 0
		err := e.raw.Read(func(fd uintptr) bool {
			// Namelen is value-result; reset before every call.
			for i := range hdrs {
				hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(sas[i]))
			}
			n, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), recvBatchSize,
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EAGAIN {
				return false // block in the poller until readable
			}
			if errno == 0 {
				got = int(n)
			}
			// Any other errno: report zero packets; the outer loop
			// exits via the closed-socket error from raw.Read or
			// simply retries on a transient fault.
			return true
		})
		if err != nil {
			close(e.recv)
			return
		}
		for i := 0; i < got; i++ {
			sa := &sas[i]
			if sa.Family != syscall.AF_INET {
				continue
			}
			from := transport.Addr{
				Host: uint32(sa.Addr[0])<<24 | uint32(sa.Addr[1])<<16 |
					uint32(sa.Addr[2])<<8 | uint32(sa.Addr[3]),
				Port: uint16(sa.Port>>8) | uint16(sa.Port)<<8,
			}
			n := int(hdrs[i].n)
			if n > transport.MaxDatagram {
				n = transport.MaxDatagram
			}
			e.enqueue(from, append([]byte(nil), bufs[i][:n]...))
		}
	}
}
