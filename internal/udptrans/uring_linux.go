//go:build linux && (amd64 || arm64)

package udptrans

import (
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"

	"circus/internal/transport"
)

// Minimal io_uring plumbing for batched sendmsg: raw io_uring_setup /
// io_uring_enter plus the two mmap'd rings, no liburing. One batch of
// datagrams becomes one io_uring_enter that submits every sendmsg SQE
// and waits for all completions, so a coalesced flush costs a single
// kernel crossing regardless of fan-out — half the syscalls of even
// sendmmsg once the paired message layer mixes destinations.
//
// Everything is probe-gated: io_uring_setup failing (old kernel's
// ENOSYS, a seccomp policy's EPERM) just means newURing returns nil
// and the endpoint keeps its sendmmsg path. A ring that dies later
// (enter blocked by policy) flips the endpoint back to sendmmsg too,
// so io_uring is strictly an amortization, never a dependency.

// uring op/flag constants (include/uapi/linux/io_uring.h).
const (
	opSENDMSG      = 9
	enterGETEVENTS = 1
	offSQRing      = 0
	offCQRing      = 0x8000000
	offSQEs        = 0x10000000
	sqeSize        = 64
	cqeSize        = 16
	uringEntries   = 64 // SQ depth; batches larger than this chunk
	mapPOPULATE    = 0x8000
)

// sqringOffsets / cqringOffsets mirror io_sqring_offsets and
// io_cqring_offsets from the uapi header.
type sqringOffsets struct {
	head, tail, ringMask, ringEntries, flags, dropped, array, resv1 uint32
	userAddr                                                        uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries, overflow, cqes, flags, resv1 uint32
	userAddr                                                        uint64
}

// uringParams mirrors struct io_uring_params (120 bytes).
type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        sqringOffsets
	cqOff        cqringOffsets
}

// sqe mirrors the head of struct io_uring_sqe; the trailing union
// (buf_index, personality, splice bits…) stays zero for sendmsg.
type sqe struct {
	opcode   uint8
	flags    uint8
	ioprio   uint16
	fd       int32
	off      uint64
	addr     uint64
	len      uint32
	msgFlags uint32
	userData uint64
	_        [24]byte
}

// cqe mirrors struct io_uring_cqe.
type cqe struct {
	userData uint64
	res      int32
	flags    uint32
}

// uring is one submission/completion ring pair. All submission state
// is guarded by mu: the paired message flusher is the only steady
// caller, but Multicast may race it.
type uring struct {
	fd     int
	sqMem  []byte // SQ ring mmap
	cqMem  []byte // CQ ring mmap
	sqeMem []byte // SQE array mmap

	sqHead    *uint32
	sqTail    *uint32
	sqMask    uint32
	sqArray   *uint32
	sqEntries uint32
	sqes      *sqe

	cqHead *uint32
	cqTail *uint32
	cqMask uint32
	cqes   *cqe

	mu sync.Mutex
}

func atPtr[T any](mem []byte, off uint32) *T {
	return (*T)(unsafe.Pointer(&mem[off]))
}

// newURing probes for io_uring and builds a ring of the given SQ
// depth, returning nil when the kernel (or the sandbox policy) does
// not provide it.
func newURing(entries int) *uring {
	if DisableIOUring {
		return nil
	}
	var p uringParams
	fd, _, errno := syscall.Syscall(sysIO_URING_SETUP, uintptr(entries),
		uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil // ENOSYS, EPERM, EINVAL…: no io_uring here
	}
	u := &uring{fd: int(fd)}
	ok := false
	defer func() {
		if !ok {
			u.Close()
		}
	}()

	sqSize := int(p.sqOff.array + p.sqEntries*4)
	cqSize := int(p.cqOff.cqes + p.cqEntries*cqeSize)
	var err error
	u.sqMem, err = syscall.Mmap(int(fd), offSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|mapPOPULATE)
	if err != nil {
		return nil
	}
	u.cqMem, err = syscall.Mmap(int(fd), offCQRing, cqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|mapPOPULATE)
	if err != nil {
		return nil
	}
	u.sqeMem, err = syscall.Mmap(int(fd), offSQEs, int(p.sqEntries)*sqeSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|mapPOPULATE)
	if err != nil {
		return nil
	}

	u.sqHead = atPtr[uint32](u.sqMem, p.sqOff.head)
	u.sqTail = atPtr[uint32](u.sqMem, p.sqOff.tail)
	u.sqMask = *atPtr[uint32](u.sqMem, p.sqOff.ringMask)
	u.sqArray = atPtr[uint32](u.sqMem, p.sqOff.array)
	u.sqEntries = p.sqEntries
	u.sqes = atPtr[sqe](u.sqeMem, 0)

	u.cqHead = atPtr[uint32](u.cqMem, p.cqOff.head)
	u.cqTail = atPtr[uint32](u.cqMem, p.cqOff.tail)
	u.cqMask = *atPtr[uint32](u.cqMem, p.cqOff.ringMask)
	u.cqes = atPtr[cqe](u.cqMem, p.cqOff.cqes)
	ok = true
	return u
}

func (u *uring) sqeAt(i uint32) *sqe {
	return (*sqe)(unsafe.Pointer(uintptr(unsafe.Pointer(u.sqes)) + uintptr(i)*sqeSize))
}

func (u *uring) sqArrayAt(i uint32) *uint32 {
	return (*uint32)(unsafe.Pointer(uintptr(unsafe.Pointer(u.sqArray)) + uintptr(i)*4))
}

func (u *uring) cqeAt(i uint32) *cqe {
	return (*cqe)(unsafe.Pointer(uintptr(unsafe.Pointer(u.cqes)) + uintptr(i)*cqeSize))
}

// sendBatch submits one sendmsg SQE per datagram and waits for every
// completion before returning (the BatchSender contract: no Data
// buffer is retained past the call). done=false reports a ring that
// stopped working — the caller falls back to sendmmsg permanently.
// A datagram whose completion carries -EAGAIN is dropped, exactly the
// UDP contract; the paired message layer retransmits.
func (u *uring) sendBatch(raw syscall.RawConn, dgrams []transport.Datagram) (done bool, err error) {
	sas := make([]syscall.RawSockaddrInet4, len(dgrams))
	iovs := make([]syscall.Iovec, len(dgrams))
	msgs := make([]syscall.Msghdr, len(dgrams))
	for i := range dgrams {
		d := &dgrams[i]
		putSockaddr(&sas[i], d.To)
		if len(d.Data) > 0 {
			iovs[i].Base = &d.Data[0]
		}
		iovs[i].SetLen(len(d.Data))
		m := &msgs[i]
		m.Name = (*byte)(unsafe.Pointer(&sas[i]))
		m.Namelen = uint32(unsafe.Sizeof(sas[i]))
		m.Iov = &iovs[i]
		m.Iovlen = 1
	}

	u.mu.Lock()
	defer u.mu.Unlock()
	done = true
	werr := raw.Write(func(fd uintptr) bool {
		for base := 0; base < len(msgs); base += int(u.sqEntries) {
			n := len(msgs) - base
			if n > int(u.sqEntries) {
				n = int(u.sqEntries)
			}
			tail := atomic.LoadUint32(u.sqTail)
			for i := 0; i < n; i++ {
				idx := (tail + uint32(i)) & u.sqMask
				e := u.sqeAt(idx)
				*e = sqe{
					opcode:   opSENDMSG,
					fd:       int32(fd),
					addr:     uint64(uintptr(unsafe.Pointer(&msgs[base+i]))),
					len:      1,
					userData: uint64(base + i),
				}
				*u.sqArrayAt(idx) = idx
			}
			atomic.StoreUint32(u.sqTail, tail+uint32(n))

			submitted := 0
			for submitted < n {
				r1, _, errno := syscall.Syscall6(sysIO_URING_ENTER, uintptr(u.fd),
					uintptr(n-submitted), uintptr(n-submitted), enterGETEVENTS, 0, 0)
				if errno == syscall.EINTR {
					continue
				}
				if errno != 0 {
					done = false // ring unusable; caller falls back
					err = errno
					return true
				}
				submitted += int(r1)
			}

			// Reap exactly n completions; GETEVENTS above waited for
			// them all. Individual failures other than EAGAIN/ECONNREFUSED
			// surface as the batch error (first one wins).
			head := atomic.LoadUint32(u.cqHead)
			for reaped := 0; reaped < n; reaped++ {
				for atomic.LoadUint32(u.cqTail) == head {
					_, _, errno := syscall.Syscall6(sysIO_URING_ENTER, uintptr(u.fd),
						0, 1, enterGETEVENTS, 0, 0)
					if errno != 0 && errno != syscall.EINTR {
						done = false
						err = errno
						atomic.StoreUint32(u.cqHead, head)
						return true
					}
				}
				c := u.cqeAt(head & u.cqMask)
				if c.res < 0 {
					e := syscall.Errno(-c.res)
					// EAGAIN: socket buffer full — dropped, UDP-style.
					// ECONNREFUSED: a prior datagram hit a dead port
					// and the kernel latched the ICMP error; the
					// datagram itself was never going to arrive.
					if e != syscall.EAGAIN && e != syscall.ECONNREFUSED && err == nil {
						err = e
					}
				}
				head++
			}
			atomic.StoreUint32(u.cqHead, head)
		}
		return true
	})
	if werr != nil && err == nil {
		err = werr
	}
	return done, err
}

// Close unmaps the rings and closes the ring fd.
func (u *uring) Close() {
	if u.sqeMem != nil {
		syscall.Munmap(u.sqeMem)
		u.sqeMem = nil
	}
	if u.cqMem != nil {
		syscall.Munmap(u.cqMem)
		u.cqMem = nil
	}
	if u.sqMem != nil {
		syscall.Munmap(u.sqMem)
		u.sqMem = nil
	}
	if u.fd >= 0 {
		syscall.Close(u.fd)
		u.fd = -1
	}
}
