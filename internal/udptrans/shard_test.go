package udptrans

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"circus/internal/transport"
)

func TestShardedRoundTrip(t *testing.T) {
	a, err := ListenSharded(0, 2)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer a.Close()
	b, err := ListenSharded(0, 2)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case pkt := <-b.Recv():
		if string(pkt.Data) != "ping" {
			t.Errorf("data = %q, want ping", pkt.Data)
		}
		if pkt.From != a.Addr() {
			t.Errorf("from = %v, want %v", pkt.From, a.Addr())
		}
		if pkt.Buf != nil {
			pkt.Buf.Release()
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no datagram received")
	}
}

func TestShardedHandlerDelivery(t *testing.T) {
	a, err := ListenSharded(0, 2)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer a.Close()
	b, err := ListenSharded(0, 2)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer b.Close()

	const n = 50
	var mu sync.Mutex
	got := make(map[string]bool)
	done := make(chan struct{})
	b.SetHandler(func(pkt transport.Packet) {
		mu.Lock()
		got[string(pkt.Data)] = true
		full := len(got) == n
		mu.Unlock()
		if pkt.Buf != nil {
			pkt.Buf.Release()
		}
		if full {
			close(done)
		}
	})

	var batch []transport.Datagram
	for i := 0; i < n; i++ {
		batch = append(batch, transport.Datagram{To: b.Addr(), Data: []byte(fmt.Sprintf("m%02d", i))})
	}
	if err := a.SendBatch(batch); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		mu.Lock()
		seen := len(got)
		mu.Unlock()
		t.Fatalf("handler saw %d of %d datagrams", seen, n)
	}
}

func TestShardedCloseStopsHandler(t *testing.T) {
	a, err := ListenSharded(0, 2)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	var mu sync.Mutex
	calls := 0
	a.SetHandler(func(pkt transport.Packet) {
		mu.Lock()
		calls++
		mu.Unlock()
		if pkt.Buf != nil {
			pkt.Buf.Release()
		}
	})
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close has returned: the Dispatcher contract says the handler can
	// never run again, so this count is final and race-free to read.
	mu.Lock()
	final := calls
	mu.Unlock()
	_ = final
	if err := a.Send(a.Addr(), []byte("x")); err != transport.ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	if err := a.SendBatch([]transport.Datagram{{To: transport.Addr{Host: 1, Port: 1}, Data: []byte("x")}}); err != transport.ErrClosed {
		t.Errorf("SendBatch after close = %v, want ErrClosed", err)
	}
}

func TestShardedMulticast(t *testing.T) {
	a, err := ListenSharded(0, 1)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer a.Close()
	b, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer b.Close()
	c, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer c.Close()

	if err := a.Multicast([]transport.Addr{b.Addr(), c.Addr()}, []byte("hi")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	for _, ep := range []*Endpoint{b, c} {
		select {
		case pkt := <-ep.Recv():
			if string(pkt.Data) != "hi" {
				t.Errorf("data = %q, want hi", pkt.Data)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("multicast datagram not received")
		}
	}
}

func TestSendRejectsZeroAddr(t *testing.T) {
	a, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer a.Close()
	if err := a.Send(transport.Addr{}, []byte("x")); err == nil {
		t.Error("Send to zero addr succeeded; want clear encode error")
	}
	err = a.SendBatch([]transport.Datagram{
		{To: a.Addr(), Data: []byte("ok")},
		{To: transport.Addr{}, Data: []byte("bad")},
	})
	if err == nil {
		t.Error("SendBatch with zero addr succeeded; want clear encode error")
	}

	s, err := ListenSharded(0, 1)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer s.Close()
	if err := s.Send(transport.Addr{}, []byte("x")); err == nil {
		t.Error("sharded Send to zero addr succeeded; want clear encode error")
	}
	if err := s.SendBatch([]transport.Datagram{{To: transport.Addr{}, Data: []byte("x")}}); err == nil {
		t.Error("sharded SendBatch with zero addr succeeded; want clear encode error")
	}
}

// TestBatchParity sends the same datagram sequence through the
// per-datagram path (Send) and the platform batch path (SendBatch),
// in both directions, and checks the receivers observe identical
// payload multisets — the fallback-vs-batch contract. With io_uring
// present it runs the batch leg twice, once per sender.
func TestBatchParity(t *testing.T) {
	run := func(t *testing.T, disableURing bool) {
		old := DisableIOUring
		DisableIOUring = disableURing
		defer func() { DisableIOUring = old }()

		a, err := ListenSharded(0, 2)
		if err != nil {
			t.Fatalf("ListenSharded: %v", err)
		}
		defer a.Close()
		b, err := ListenSharded(0, 2)
		if err != nil {
			t.Fatalf("ListenSharded: %v", err)
		}
		defer b.Close()

		const n = 40
		seq := func(tag string) [][]byte {
			var out [][]byte
			for i := 0; i < n; i++ {
				out = append(out, []byte(fmt.Sprintf("%s-%03d", tag, i)))
			}
			return out
		}
		collect := func(ep *Sharded, want int) map[string]int {
			got := make(map[string]int)
			deadline := time.After(2 * time.Second)
			for count := 0; count < want; count++ {
				select {
				case pkt := <-ep.Recv():
					got[string(pkt.Data)]++
					if pkt.Buf != nil {
						pkt.Buf.Release()
					}
				case <-deadline:
					t.Fatalf("received %d of %d datagrams", count, want)
				}
			}
			return got
		}
		diff := func(x, y map[string]int) {
			t.Helper()
			for k, v := range x {
				if y[k] != v {
					t.Errorf("payload %q: one path saw %d, other %d", k, v, y[k])
				}
			}
		}

		// a -> b: single sends, then the same sequence batched.
		for _, d := range seq("s") {
			if err := a.Send(b.Addr(), d); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		single := collect(b, n)
		var batch []transport.Datagram
		for _, d := range seq("s") {
			batch = append(batch, transport.Datagram{To: b.Addr(), Data: d})
		}
		if err := a.SendBatch(batch); err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
		batched := collect(b, n)
		diff(single, batched)
		diff(batched, single)

		// b -> a: same comparison on the reverse direction.
		for _, d := range seq("r") {
			if err := b.Send(a.Addr(), d); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		single = collect(a, n)
		batch = batch[:0]
		for _, d := range seq("r") {
			batch = append(batch, transport.Datagram{To: a.Addr(), Data: d})
		}
		if err := b.SendBatch(batch); err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
		batched = collect(a, n)
		diff(single, batched)
		diff(batched, single)
	}

	t.Run("fallback", func(t *testing.T) { run(t, true) })
	t.Run("platform", func(t *testing.T) { run(t, false) })
}

// TestIOUringProbe documents which batch sender the platform granted;
// both outcomes are legal (the probe gate is the point), and when the
// ring is present the parity test above already exercised it.
func TestIOUringProbe(t *testing.T) {
	a, err := ListenSharded(0, 1)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer a.Close()
	t.Logf("io_uring in use: %v (shards=%d)", a.UsingIOUring(), a.Shards())

	old := DisableIOUring
	DisableIOUring = true
	defer func() { DisableIOUring = old }()
	b, err := ListenSharded(0, 1)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	defer b.Close()
	if b.UsingIOUring() {
		t.Error("DisableIOUring did not force the fallback sender")
	}
	// The disabled endpoint must still deliver.
	if err := b.SendBatch([]transport.Datagram{{To: a.Addr(), Data: []byte("z")}}); err != nil {
		t.Fatalf("SendBatch (fallback): %v", err)
	}
	select {
	case pkt := <-a.Recv():
		if string(pkt.Data) != "z" {
			t.Errorf("data = %q, want z", pkt.Data)
		}
		if pkt.Buf != nil {
			pkt.Buf.Release()
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fallback datagram not received")
	}
}
