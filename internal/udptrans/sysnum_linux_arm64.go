//go:build linux && arm64

package udptrans

// sendmmsg/recvmmsg/io_uring syscall numbers; the stdlib syscall
// tables predate them on some arches, so they are spelled out here.
// io_uring entered the unified table, so its numbers match amd64.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243

	sysIO_URING_SETUP = 425
	sysIO_URING_ENTER = 426
)
