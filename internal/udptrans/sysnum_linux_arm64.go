//go:build linux && arm64

package udptrans

// sendmmsg/recvmmsg syscall numbers; the stdlib syscall tables predate
// them on some arches, so they are spelled out here.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
