package udptrans

import (
	"testing"
	"time"

	"circus/internal/transport"
)

func TestRoundTrip(t *testing.T) {
	a, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer a.Close()
	b, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case pkt := <-b.Recv():
		if string(pkt.Data) != "ping" {
			t.Errorf("data = %q, want ping", pkt.Data)
		}
		if pkt.From != a.Addr() {
			t.Errorf("from = %v, want %v", pkt.From, a.Addr())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no datagram received")
	}
}

func TestAddrIsLoopback(t *testing.T) {
	a, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer a.Close()
	addr := a.Addr()
	if addr.Host != 0x7f000001 {
		t.Errorf("host = %x, want 7f000001", addr.Host)
	}
	if addr.Port == 0 {
		t.Error("port not assigned")
	}
}

func TestSendTooLarge(t *testing.T) {
	a, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer a.Close()
	err = a.Send(a.Addr(), make([]byte, transport.MaxDatagram+1))
	if err != transport.ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	a, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Error("unexpected packet from closed endpoint")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv channel not closed after Close")
	}
	if err := a.Send(a.Addr(), []byte("x")); err != transport.ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestSendBatchRoundTrip(t *testing.T) {
	a, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer a.Close()
	b, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer b.Close()
	c, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer c.Close()

	var batch []transport.Datagram
	for i := 0; i < 20; i++ {
		to := b.Addr()
		if i%2 == 1 {
			to = c.Addr()
		}
		batch = append(batch, transport.Datagram{To: to, Data: []byte{byte(i)}})
	}
	if err := a.SendBatch(batch); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	got := make(map[byte]bool)
	deadline := time.After(2 * time.Second)
	for len(got) < 20 {
		select {
		case pkt := <-b.Recv():
			if pkt.From != a.Addr() {
				t.Errorf("from = %v, want %v", pkt.From, a.Addr())
			}
			got[pkt.Data[0]] = true
		case pkt := <-c.Recv():
			got[pkt.Data[0]] = true
		case <-deadline:
			t.Fatalf("received %d of 20 datagrams", len(got))
		}
	}
}

func TestSendBatchAfterClose(t *testing.T) {
	a, err := Listen(0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := a.Addr()
	a.Close()
	err = a.SendBatch([]transport.Datagram{{To: addr, Data: []byte("x")}})
	if err != transport.ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}
