//go:build !linux || (!amd64 && !arm64)

package udptrans

import (
	"circus/internal/transport"
)

// Fallback batch I/O for platforms without sendmmsg/recvmmsg (or whose
// msghdr ABI we do not model): plain per-datagram system calls. The
// coalescing in the paired message layer still reduces datagram count;
// only the syscall amortization is lost.

func (e *Endpoint) sendBatch(dgrams []transport.Datagram) error {
	for _, d := range dgrams {
		if _, err := e.conn.WriteToUDP(d.Data, toUDPAddr(d.To)); err != nil {
			return err
		}
	}
	return nil
}

func (e *Endpoint) readLoop() {
	buf := make([]byte, transport.MaxDatagram)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			close(e.recv)
			return
		}
		e.enqueue(toAddr(from), append([]byte(nil), buf[:n]...))
	}
}
