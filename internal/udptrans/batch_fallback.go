//go:build !linux || (!amd64 && !arm64)

package udptrans

import (
	"net"
	"syscall"

	"circus/internal/transport"
)

// Fallback batch I/O for platforms without sendmmsg/recvmmsg (or whose
// msghdr ABI we do not model): plain per-datagram system calls. The
// coalescing in the paired message layer still reduces datagram count;
// only the syscall amortization is lost.

func sendBatchOn(conn *net.UDPConn, _ syscall.RawConn, dgrams []transport.Datagram) error {
	for _, d := range dgrams {
		if _, err := conn.WriteToUDP(d.Data, toUDPAddr(d.To)); err != nil {
			return err
		}
	}
	return nil
}

func (e *Endpoint) readLoop() {
	buf := make([]byte, transport.MaxDatagram)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			close(e.recv)
			return
		}
		a, aerr := toAddr(from)
		if aerr != nil {
			continue // non-IPv4 source: the transport cannot name it
		}
		e.enqueue(a, append([]byte(nil), buf[:n]...))
	}
}

// drainLoop is the portable shard drain: one datagram per read, still
// into pooled buffers and through the SPSC ring so the upper layers
// see the identical delivery contract.
func (s *shard) drainLoop() {
	to := s.parent.addr
	for {
		buf := s.pool.Get()
		n, from, err := s.conn.ReadFromUDP(buf.Bytes())
		if err != nil {
			buf.Release()
			s.ring.close()
			return
		}
		a, aerr := toAddr(from)
		if aerr != nil {
			buf.Release()
			continue
		}
		pkt := transport.Packet{From: a, To: to, Data: buf.Bytes()[:n], Buf: buf}
		if !s.ring.push(pkt) {
			buf.Release() // ring full: drop like a kernel buffer
		}
	}
}
