package udptrans

import (
	"sync/atomic"

	"circus/internal/transport"
)

// spscRing is a bounded single-producer single-consumer queue of
// packets: the hand-off between a shard's socket drain loop (producer)
// and its dispatch goroutine (consumer). It replaces a per-datagram
// channel send with one atomic store per packet plus an occasional
// wake-up, so draining a burst of datagrams costs no scheduler
// round-trips while the consumer is busy.
//
// The slots are plain memory published by the tail store: the producer
// writes slot contents before advancing tail (Store is a release), and
// the consumer reads tail (Load is an acquire) before touching slots,
// so each packet's fields are visible by the time the consumer can
// observe its index. Exactly one goroutine may call push/close, and
// exactly one may call pop.
type spscRing struct {
	slots []transport.Packet
	mask  uint64

	// head (consumer cursor) and tail (producer cursor) only ever
	// advance; slot i holds the packet with sequence i until consumed.
	// Padding keeps the two cursors off one cache line so the producer
	// and consumer do not false-share.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64

	// wake is the consumer's parking lot: the producer tickles it
	// (non-blocking, capacity 1) after publishing into an empty ring,
	// and close() closes it to end the consumer's loop.
	wake   chan struct{}
	closed atomic.Bool
}

// newSPSCRing returns a ring with the given capacity, rounded up to a
// power of two (minimum 2).
func newSPSCRing(capacity int) *spscRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &spscRing{
		slots: make([]transport.Packet, n),
		mask:  uint64(n - 1),
		wake:  make(chan struct{}, 1),
	}
}

// push publishes one packet, reporting false when the ring is full
// (the caller drops the datagram, as a full kernel socket buffer
// would; the paired message protocol recovers by retransmission).
func (r *spscRing) push(pkt transport.Packet) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = pkt
	r.tail.Store(t + 1)
	// Wake a possibly-parked consumer. The capacity-1 buffer makes
	// this free while the consumer is already awake and working.
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return true
}

// pop removes the next packet, blocking in the wake channel while the
// ring is empty. ok is false once the ring is closed and drained.
func (r *spscRing) pop() (pkt transport.Packet, ok bool) {
	h := r.head.Load()
	for {
		if r.tail.Load() > h {
			pkt = r.slots[h&r.mask]
			r.slots[h&r.mask] = transport.Packet{} // drop the Buf reference
			r.head.Store(h + 1)
			return pkt, true
		}
		if r.closed.Load() {
			// Re-check after observing closed: close() happens after
			// the final push, so an empty ring now stays empty.
			if r.tail.Load() > h {
				continue
			}
			return transport.Packet{}, false
		}
		if _, open := <-r.wake; !open {
			// Closed while parked; drain whatever was published first.
			if r.tail.Load() > h {
				continue
			}
			return transport.Packet{}, false
		}
	}
}

// close ends the stream from the producer side; the consumer drains
// remaining packets and then sees ok=false. Must be called by the
// producer (or after the producer has stopped pushing).
func (r *spscRing) close() {
	r.closed.Store(true)
	close(r.wake)
}
