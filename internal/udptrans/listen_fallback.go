//go:build !linux

package udptrans

import (
	"net"
)

// reusePortAvailable: without Linux's SO_REUSEPORT load-balancing
// semantics the sharded endpoint collapses to one socket (BSD's
// SO_REUSEPORT exists but balances differently; Windows has none).
const reusePortAvailable = false

func listenShardSocket(port uint16, _ bool) (*net.UDPConn, error) {
	return net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: int(port)})
}
