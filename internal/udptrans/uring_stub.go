//go:build !linux || (!amd64 && !arm64)

package udptrans

import (
	"syscall"

	"circus/internal/transport"
)

// io_uring exists only on Linux; elsewhere the probe always reports
// absence and batched sends take the portable path.

const uringEntries = 64

type uring struct{}

func newURing(int) *uring { return nil }

func (u *uring) sendBatch(syscall.RawConn, []transport.Datagram) (bool, error) {
	return false, nil
}

func (u *uring) Close() {}
