package udptrans

import (
	"runtime"
	"testing"

	"circus/internal/transport"
)

func TestRingFIFO(t *testing.T) {
	r := newSPSCRing(4)
	for i := 0; i < 3; i++ {
		if !r.push(transport.Packet{From: transport.Addr{Port: uint16(i + 1)}}) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 0; i < 3; i++ {
		pkt, ok := r.pop()
		if !ok || pkt.From.Port != uint16(i+1) {
			t.Fatalf("pop %d = %v %v", i, pkt.From.Port, ok)
		}
	}
}

func TestRingFullDrops(t *testing.T) {
	r := newSPSCRing(2)
	if !r.push(transport.Packet{}) || !r.push(transport.Packet{}) {
		t.Fatal("fill failed")
	}
	if r.push(transport.Packet{}) {
		t.Error("push into full ring succeeded")
	}
	if _, ok := r.pop(); !ok {
		t.Fatal("pop from full ring failed")
	}
	if !r.push(transport.Packet{}) {
		t.Error("push after pop failed")
	}
}

func TestRingCloseDrains(t *testing.T) {
	r := newSPSCRing(8)
	r.push(transport.Packet{From: transport.Addr{Port: 7}})
	r.close()
	pkt, ok := r.pop()
	if !ok || pkt.From.Port != 7 {
		t.Fatalf("pop after close = %v %v, want port 7", pkt.From.Port, ok)
	}
	if _, ok := r.pop(); ok {
		t.Error("pop past close succeeded")
	}
}

func TestRingConcurrent(t *testing.T) {
	const total = 10000
	r := newSPSCRing(64)
	got := make(chan int, 1)
	go func() {
		sum := 0
		for {
			pkt, ok := r.pop()
			if !ok {
				got <- sum
				return
			}
			sum += int(pkt.From.Host)
		}
	}()
	sent := 0
	for i := 0; i < total; i++ {
		// Spin on full: the test producer outruns the consumer, and a
		// drop would make the checksum meaningless. Yield so a
		// single-CPU machine lets the consumer drain.
		for !r.push(transport.Packet{From: transport.Addr{Host: 1}}) {
			runtime.Gosched()
		}
		sent++
	}
	r.close()
	if sum := <-got; sum != sent {
		t.Errorf("consumer saw %d packets, want %d", sum, sent)
	}
}
