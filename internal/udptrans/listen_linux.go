//go:build linux

package udptrans

import (
	"context"
	"net"
	"strconv"
	"syscall"
)

// reusePortAvailable: Linux hashes incoming datagrams across all
// sockets sharing a port when each sets SO_REUSEPORT before bind, the
// substrate of the sharded endpoint.
const reusePortAvailable = true

// soREUSEPORT is SO_REUSEPORT; the syscall package predates the
// option on some arches, so it is spelled out (asm-generic value,
// shared by amd64 and arm64).
const soREUSEPORT = 0xf

// listenShardSocket binds one loopback UDP socket for a shard,
// setting SO_REUSEPORT when the endpoint spans several sockets.
func listenShardSocket(port uint16, reuse bool) (*net.UDPConn, error) {
	lc := net.ListenConfig{}
	if reuse {
		lc.Control = func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soREUSEPORT, 1)
			})
			if err != nil {
				return err
			}
			return serr
		}
	}
	pc, err := lc.ListenPacket(context.Background(), "udp4",
		net.JoinHostPort("127.0.0.1", strconv.Itoa(int(port))))
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
