//go:build linux && amd64

package udptrans

// sendmmsg/recvmmsg/io_uring syscall numbers; the stdlib syscall
// tables predate them on some arches, so they are spelled out here.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299

	sysIO_URING_SETUP = 425
	sysIO_URING_ENTER = 426
)
