// Package udptrans provides a transport.Endpoint backed by a real UDP
// socket, the same substrate the Circus implementation used under
// Berkeley 4.2BSD (§4.2). It exists so that the protocol stack can be
// exercised between genuine operating-system processes on one machine
// (the paper's repro band: multi-process on one laptop); the test
// suites mostly use internal/netsim for determinism.
package udptrans

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"syscall"

	"circus/internal/transport"
)

// Endpoint is a transport.Endpoint over a loopback UDP socket.
type Endpoint struct {
	conn *net.UDPConn
	raw  syscall.RawConn // for sendmmsg/recvmmsg on platforms that have them
	addr transport.Addr
	recv chan transport.Packet

	mu     sync.Mutex
	closed bool
}

var (
	_ transport.Endpoint    = (*Endpoint)(nil)
	_ transport.BatchSender = (*Endpoint)(nil)
)

// Listen binds a UDP socket on 127.0.0.1. Port 0 selects a free port.
func Listen(port uint16) (*Endpoint, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: int(port)})
	if err != nil {
		return nil, err
	}
	raw, err := conn.SyscallConn()
	if err != nil {
		conn.Close()
		return nil, err
	}
	local := conn.LocalAddr().(*net.UDPAddr)
	addr, err := toAddr(local)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ep := &Endpoint{
		conn: conn,
		raw:  raw,
		addr: addr,
		recv: make(chan transport.Packet, 1024),
	}
	go ep.readLoop()
	return ep, nil
}

// toAddr converts a UDP address to the transport's 32-bit-host form,
// rejecting anything that is not IPv4: transport.Addr cannot represent
// a 16-byte address, and the AF_INET sockaddr encoding on the batch
// send path would silently truncate it.
func toAddr(u *net.UDPAddr) (transport.Addr, error) {
	ip4 := u.IP.To4()
	if ip4 == nil {
		return transport.Addr{}, fmt.Errorf("udptrans: %v is not an IPv4 address", u.IP)
	}
	return transport.Addr{
		Host: binary.BigEndian.Uint32(ip4),
		Port: uint16(u.Port),
	}, nil
}

// errBadAddr reports an address the AF_INET wire encoding cannot
// carry. The zero Addr is the only unrepresentable value reachable
// through transport.Addr (every non-zero Host/Port pair is a valid
// IPv4 destination), and sending to it would otherwise surface as the
// kernel's cryptic EINVAL — or, on the batch path, as a datagram to
// 0.0.0.0.
func errBadAddr(a transport.Addr) error {
	return fmt.Errorf("udptrans: cannot encode %v as an AF_INET destination", a)
}

func toUDPAddr(a transport.Addr) *net.UDPAddr {
	ip := make(net.IP, 4)
	binary.BigEndian.PutUint32(ip, a.Host)
	return &net.UDPAddr{IP: ip, Port: int(a.Port)}
}

// enqueue offers one received packet upward, dropping on overflow as a
// kernel socket buffer would. The paired message protocol recovers by
// retransmission. Data must be a fresh buffer the receiver may own
// (transport.Packet contract).
func (e *Endpoint) enqueue(from transport.Addr, data []byte) {
	pkt := transport.Packet{From: from, To: e.addr, Data: data}
	select {
	case e.recv <- pkt:
	default:
	}
}

// Addr returns the bound loopback address.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// Recv returns the incoming datagram channel.
func (e *Endpoint) Recv() <-chan transport.Packet { return e.recv }

// Send transmits one UDP datagram.
func (e *Endpoint) Send(to transport.Addr, data []byte) error {
	if len(data) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	if to.IsZero() {
		return errBadAddr(to)
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	_, err := e.conn.WriteToUDP(data, toUDPAddr(to))
	return err
}

// SendBatch transmits several datagrams in as few system calls as the
// platform allows: one sendmmsg(2) per batch on Linux, a WriteToUDP
// loop elsewhere. The paper's cost accounting (Table 4.2) charges each
// datagram a full sendmsg; batching the coalesced flush of the paired
// message layer amortizes that per-call overhead.
func (e *Endpoint) SendBatch(dgrams []transport.Datagram) error {
	for i := range dgrams {
		if len(dgrams[i].Data) > transport.MaxDatagram {
			return transport.ErrTooLarge
		}
		if dgrams[i].To.IsZero() {
			return errBadAddr(dgrams[i].To)
		}
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	return sendBatchOn(e.conn, e.raw, dgrams)
}

// Close shuts the socket; the receive channel closes once the read
// loop observes the closed socket.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.conn.Close()
}
