// Package udptrans provides a transport.Endpoint backed by a real UDP
// socket, the same substrate the Circus implementation used under
// Berkeley 4.2BSD (§4.2). It exists so that the protocol stack can be
// exercised between genuine operating-system processes on one machine
// (the paper's repro band: multi-process on one laptop); the test
// suites mostly use internal/netsim for determinism.
package udptrans

import (
	"encoding/binary"
	"net"
	"sync"

	"circus/internal/transport"
)

// Endpoint is a transport.Endpoint over a loopback UDP socket.
type Endpoint struct {
	conn *net.UDPConn
	addr transport.Addr
	recv chan transport.Packet

	mu     sync.Mutex
	closed bool
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Listen binds a UDP socket on 127.0.0.1. Port 0 selects a free port.
func Listen(port uint16) (*Endpoint, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: int(port)})
	if err != nil {
		return nil, err
	}
	local := conn.LocalAddr().(*net.UDPAddr)
	ep := &Endpoint{
		conn: conn,
		addr: toAddr(local),
		recv: make(chan transport.Packet, 1024),
	}
	go ep.readLoop()
	return ep, nil
}

func toAddr(u *net.UDPAddr) transport.Addr {
	ip4 := u.IP.To4()
	return transport.Addr{
		Host: binary.BigEndian.Uint32(ip4),
		Port: uint16(u.Port),
	}
}

func toUDPAddr(a transport.Addr) *net.UDPAddr {
	ip := make(net.IP, 4)
	binary.BigEndian.PutUint32(ip, a.Host)
	return &net.UDPAddr{IP: ip, Port: int(a.Port)}
}

func (e *Endpoint) readLoop() {
	buf := make([]byte, transport.MaxDatagram)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			close(e.recv)
			return
		}
		pkt := transport.Packet{
			From: toAddr(from),
			To:   e.addr,
			Data: append([]byte(nil), buf[:n]...),
		}
		select {
		case e.recv <- pkt:
		default:
			// Receive queue overflow: drop, as a kernel socket
			// buffer would. The paired message protocol recovers by
			// retransmission.
		}
	}
}

// Addr returns the bound loopback address.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// Recv returns the incoming datagram channel.
func (e *Endpoint) Recv() <-chan transport.Packet { return e.recv }

// Send transmits one UDP datagram.
func (e *Endpoint) Send(to transport.Addr, data []byte) error {
	if len(data) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	_, err := e.conn.WriteToUDP(data, toUDPAddr(to))
	return err
}

// Close shuts the socket; the receive channel closes once the read
// loop observes the closed socket.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.conn.Close()
}
