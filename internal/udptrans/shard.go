package udptrans

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"

	"circus/internal/transport"
)

// ringCapacity bounds each shard's drain-to-dispatch hand-off. At 1472
// bytes per datagram this is on the order of a kernel socket buffer;
// overflow drops the datagram exactly as the kernel would, and the
// paired message protocol retransmits.
const ringCapacity = 1024

// DisableIOUring forces the sendmmsg/portable batch path even where
// the io_uring probe would succeed. Set before ListenSharded; used by
// tests and the experiment harness to measure both paths.
var DisableIOUring bool

// Sharded is a transport.Endpoint spread across several UDP sockets
// bound to one port with SO_REUSEPORT (Linux; elsewhere it degrades to
// a single socket). The kernel hashes each peer's 4-tuple to one
// socket, so a given peer's datagrams always arrive on the same shard
// and keep their order, while different peers drain and dispatch on
// different CPUs in parallel.
//
// Each shard runs two goroutines: a drain loop that pulls bursts off
// the socket (recvmmsg on Linux) into pooled transport.Bufs, and a
// dispatch loop that consumes a bounded SPSC ring and either invokes
// the installed Dispatcher handler or forwards to the shared Recv
// channel. The ring keeps the socket draining while the protocol
// stack works, without a channel operation per datagram.
type Sharded struct {
	shards []*shard
	addr   transport.Addr
	recv   chan transport.Packet

	// handler, once set, takes delivery exclusively (transport.Dispatcher).
	handler atomic.Pointer[func(transport.Packet)]

	sendNext atomic.Uint32 // round-robin shard picker for sends
	ur       *uring        // io_uring batch sender; nil when unavailable

	dispatchWG sync.WaitGroup // dispatch loops; Close waits for these
	mu         sync.Mutex
	closed     bool
}

type shard struct {
	parent *Sharded
	conn   *net.UDPConn
	raw    syscall.RawConn
	pool   transport.BufPool
	ring   *spscRing
}

var (
	_ transport.Endpoint    = (*Sharded)(nil)
	_ transport.BatchSender = (*Sharded)(nil)
	_ transport.Multicaster = (*Sharded)(nil)
	_ transport.Dispatcher  = (*Sharded)(nil)
)

// ListenSharded binds shards UDP sockets to one loopback port. Port 0
// selects a free port (claimed by the first socket, shared by the
// rest). shards <= 0 selects runtime.NumCPU(). On platforms without
// SO_REUSEPORT the endpoint degrades to one socket.
func ListenSharded(port uint16, shards int) (*Sharded, error) {
	if shards <= 0 {
		shards = runtime.NumCPU()
	}
	if !reusePortAvailable {
		shards = 1
	}
	se := &Sharded{recv: make(chan transport.Packet, 1024)}
	for i := 0; i < shards; i++ {
		conn, err := listenShardSocket(port, shards > 1)
		if err != nil {
			se.Close()
			return nil, err
		}
		raw, err := conn.SyscallConn()
		if err != nil {
			conn.Close()
			se.Close()
			return nil, err
		}
		local := conn.LocalAddr().(*net.UDPAddr)
		a, err := toAddr(local)
		if err != nil {
			conn.Close()
			se.Close()
			return nil, err
		}
		if i == 0 {
			se.addr = a
			port = a.Port // later shards join the chosen port
		} else if a != se.addr {
			conn.Close()
			se.Close()
			return nil, fmt.Errorf("udptrans: shard %d bound %v, want %v", i, a, se.addr)
		}
		s := &shard{parent: se, conn: conn, raw: raw, ring: newSPSCRing(ringCapacity)}
		se.shards = append(se.shards, s)
	}
	se.ur = newURing(uringEntries)
	for _, s := range se.shards {
		se.dispatchWG.Add(1)
		go s.dispatchLoop()
		go s.drainLoop()
	}
	return se, nil
}

// Addr returns the shared bound address.
func (se *Sharded) Addr() transport.Addr { return se.addr }

// Recv returns the merged incoming channel; unused once a Dispatcher
// handler is installed.
func (se *Sharded) Recv() <-chan transport.Packet { return se.recv }

// SetHandler installs fn as the exclusive delivery path
// (transport.Dispatcher). Packets from different shards may invoke fn
// concurrently; packets from one peer never do, because the kernel's
// REUSEPORT hash pins each peer to one shard.
func (se *Sharded) SetHandler(fn func(transport.Packet)) {
	se.handler.Store(&fn)
}

// deliver hands one packet up from a shard's dispatch loop.
func (se *Sharded) deliver(pkt transport.Packet) {
	if h := se.handler.Load(); h != nil {
		(*h)(pkt)
		return
	}
	select {
	case se.recv <- pkt:
	default:
		if pkt.Buf != nil {
			pkt.Buf.Release() // dropped as a full socket buffer would
		}
	}
}

// dispatchLoop consumes the shard's ring serially, preserving each
// peer's arrival order.
func (s *shard) dispatchLoop() {
	defer s.parent.dispatchDone()
	for {
		pkt, ok := s.ring.pop()
		if !ok {
			return
		}
		s.parent.deliver(pkt)
	}
}

func (se *Sharded) dispatchWait() { se.dispatchWG.Wait() }
func (se *Sharded) dispatchDone() { se.dispatchWG.Done() }

// pickShard spreads sends across the shard sockets. All shards share
// one local port, so a peer's replies hash to the same receive shard
// regardless of which socket carried our send.
func (se *Sharded) pickShard() *shard {
	n := se.sendNext.Add(1)
	return se.shards[int(n)%len(se.shards)]
}

func (se *Sharded) checkOpen() error {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.closed {
		return transport.ErrClosed
	}
	return nil
}

// Send transmits one UDP datagram from one of the shard sockets.
func (se *Sharded) Send(to transport.Addr, data []byte) error {
	if len(data) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	if to.IsZero() {
		return errBadAddr(to)
	}
	if err := se.checkOpen(); err != nil {
		return err
	}
	_, err := se.pickShard().conn.WriteToUDP(data, toUDPAddr(to))
	return err
}

// SendBatch transmits several datagrams in as few kernel crossings as
// the platform allows: one io_uring_enter when the ring probe
// succeeded, one sendmmsg(2) otherwise, a write loop on non-Linux.
func (se *Sharded) SendBatch(dgrams []transport.Datagram) error {
	for i := range dgrams {
		if len(dgrams[i].Data) > transport.MaxDatagram {
			return transport.ErrTooLarge
		}
		if dgrams[i].To.IsZero() {
			return errBadAddr(dgrams[i].To)
		}
	}
	if err := se.checkOpen(); err != nil {
		return err
	}
	s := se.pickShard()
	if se.ur != nil {
		if done, err := se.ur.sendBatch(s.raw, dgrams); done {
			return err
		}
		// The ring went unusable mid-flight (for example a seccomp
		// policy that allowed setup but blocks enter): fall through to
		// the classic path for this and every later batch.
		se.ur = nil
	}
	return sendBatchOn(s.conn, s.raw, dgrams)
}

// Multicast sends data to every group member; UDP has no true
// multicast primitive here, so this is a batched unicast fan-out
// (§4.3.3's software multicast), one kernel crossing via SendBatch.
func (se *Sharded) Multicast(group []transport.Addr, data []byte) error {
	dgrams := make([]transport.Datagram, len(group))
	for i, to := range group {
		dgrams[i] = transport.Datagram{To: to, Data: data}
	}
	return se.SendBatch(dgrams)
}

// Close shuts every shard socket and waits for the dispatch loops, so
// the Dispatcher handler is never invoked after Close returns.
func (se *Sharded) Close() error {
	se.mu.Lock()
	if se.closed {
		se.mu.Unlock()
		return nil
	}
	se.closed = true
	se.mu.Unlock()
	var first error
	for _, s := range se.shards {
		if err := s.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Drain loops observe the closed sockets and close their rings;
	// dispatch loops drain and exit; then Recv closes.
	se.dispatchWait()
	close(se.recv)
	if se.ur != nil {
		se.ur.Close()
		se.ur = nil
	}
	return first
}

// Shards reports how many sockets the endpoint spans (for experiment
// reporting).
func (se *Sharded) Shards() int { return len(se.shards) }

// UsingIOUring reports whether batched sends go through io_uring (for
// experiment reporting and tests).
func (se *Sharded) UsingIOUring() bool { return se.ur != nil }
