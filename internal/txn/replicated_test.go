package txn

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/wire"
)

// replWorld is a replicated transactional store of the given degree
// plus helpers to mint clients.
type replWorld struct {
	t        *testing.T
	net      *netsim.Network
	resolver core.StaticResolver
	dest     core.Troupe
	mods     []*StoreModule
}

func newReplWorld(t *testing.T, seed int64, degree int) *replWorld {
	t.Helper()
	w := &replWorld{t: t, net: netsim.New(seed), resolver: core.StaticResolver{}}
	opts := fastOpts()
	opts.Resolver = w.resolver
	w.dest = core.Troupe{ID: 0x7e57}
	for i := 0; i < degree; i++ {
		rt := newRT(t, w.net, opts)
		m := NewStoreModule(NewStore(DetectDeadlock), time.Minute)
		addr := rt.Export(m, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, w.dest.ID)
		w.dest.Members = append(w.dest.Members, addr)
		w.mods = append(w.mods, m)
	}
	w.resolver[w.dest.ID] = w.dest.Members
	return w
}

func (w *replWorld) client() *RemoteStore {
	opts := fastOpts()
	opts.Resolver = w.resolver
	rt := newRT(w.t, w.net, opts)
	return NewRemoteStore(rt, w.dest, w.resolver)
}

// committed reads a member's committed value.
func (w *replWorld) committed(member int, key string) ([]byte, bool) {
	return w.mods[member].Store().ReadCommitted(key)
}

// assertConsistent demands identical committed state at every member —
// troupe consistency (§3.5.2).
func (w *replWorld) assertConsistent() {
	w.t.Helper()
	ref := w.mods[0].Store()
	refKeys := ref.Keys()
	for i := 1; i < len(w.mods); i++ {
		s := w.mods[i].Store()
		keys := s.Keys()
		if len(keys) != len(refKeys) {
			w.t.Fatalf("member %d has %d keys, member 0 has %d", i, len(keys), len(refKeys))
		}
		for _, k := range refKeys {
			a, _ := ref.ReadCommitted(k)
			b, ok := s.ReadCommitted(k)
			if !ok || !bytes.Equal(a, b) {
				w.t.Fatalf("member %d diverges at %q: %v vs %v", i, k, b, a)
			}
		}
	}
}

func TestReplicatedStoreCommit(t *testing.T) {
	w := newReplWorld(t, 71, 3)
	rs := w.client()
	err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		if err := tx.Set("a", []byte("1")); err != nil {
			return err
		}
		return tx.Set("b", []byte("2"))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range w.mods {
		if v, ok := w.committed(i, "a"); !ok || string(v) != "1" {
			t.Fatalf("member %d: a = %q, %v", i, v, ok)
		}
	}
	w.assertConsistent()
	for i, m := range w.mods {
		if m.ActiveTransactions() != 0 {
			t.Fatalf("member %d leaked %d transactions", i, m.ActiveTransactions())
		}
	}
}

func TestReplicatedStoreReadYourWrites(t *testing.T) {
	w := newReplWorld(t, 72, 2)
	rs := w.client()
	err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		if err := tx.Set("k", []byte("v")); err != nil {
			return err
		}
		got, found, err := tx.Get("k")
		if err != nil {
			return err
		}
		if !found || string(got) != "v" {
			return fmt.Errorf("read-your-writes broken: %q %v", got, found)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestReplicatedStoreGetMissing(t *testing.T) {
	w := newReplWorld(t, 73, 2)
	rs := w.client()
	err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		_, found, err := tx.Get("ghost")
		if err != nil {
			return err
		}
		if found {
			return errors.New("found a ghost")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestReplicatedStoreBodyErrorAborts(t *testing.T) {
	w := newReplWorld(t, 74, 2)
	rs := w.client()
	boom := errors.New("boom")
	err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		if err := tx.Set("a", []byte("tentative")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Give the abort a moment to land at the members.
	time.Sleep(100 * time.Millisecond)
	for i := range w.mods {
		if _, ok := w.committed(i, "a"); ok {
			t.Fatalf("member %d committed an aborted write", i)
		}
		if w.mods[i].ActiveTransactions() != 0 {
			t.Fatalf("member %d leaked a transaction", i)
		}
	}
}

func TestReplicatedStoreDelete(t *testing.T) {
	w := newReplWorld(t, 75, 2)
	rs := w.client()
	if err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		return tx.Set("d", []byte("x"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		return tx.Delete("d")
	}); err != nil {
		t.Fatal(err)
	}
	for i := range w.mods {
		if _, ok := w.committed(i, "d"); ok {
			t.Fatalf("member %d still has deleted key", i)
		}
	}
}

// TestReplicatedStoreSerializableCounter: concurrent read-modify-write
// increments from independent clients must not lose updates, and every
// member must end with the same count — the full Chapter 5 guarantee.
func TestReplicatedStoreSerializableCounter(t *testing.T) {
	w := newReplWorld(t, 76, 2)

	const clients = 3
	const perClient = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		c := c
		rs := w.client()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				err := rs.Run(context.Background(), RetryOptions{MaxAttempts: 40}, func(tx *RemoteTx) error {
					raw, found, err := tx.Get("n")
					if err != nil {
						return err
					}
					var n uint32
					if found {
						if err := wire.Unmarshal(raw, &n); err != nil {
							return err
						}
					}
					enc, _ := wire.Marshal(n + 1)
					return tx.Set("n", enc)
				})
				if err != nil {
					errs[c] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	raw, ok := w.committed(0, "n")
	if !ok {
		t.Fatal("counter missing")
	}
	var n uint32
	wire.Unmarshal(raw, &n)
	if n != clients*perClient {
		t.Fatalf("counter = %d, want %d (lost updates)", n, clients*perClient)
	}
	w.assertConsistent()
}

func TestReplicatedStoreIdleTransactionExpires(t *testing.T) {
	net := netsim.New(77)
	resolver := core.StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	rt := newRT(t, net, opts)
	mod := NewStoreModule(NewStore(DetectDeadlock), 50*time.Millisecond)
	addr := rt.Export(mod, core.ExportOptions{})
	dest := core.Troupe{Members: []core.ModuleAddr{addr}}

	clientRT := newRT(t, net, opts)
	rs := NewRemoteStore(clientRT, dest, resolver)

	// Open a transaction and abandon it (no commit, no abort).
	tx := &RemoteTx{rs: rs, ctx: context.Background(), tc: clientRT.NewThread()}
	if err := tx.Set("orphan", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if mod.ActiveTransactions() != 1 {
		t.Fatalf("active = %d", mod.ActiveTransactions())
	}
	time.Sleep(120 * time.Millisecond)

	// A new transaction touching the same key must not deadlock on the
	// orphan's lock: the sweeper reaps it on the next dispatch.
	err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		return tx.Set("orphan", []byte("y"))
	})
	if err != nil {
		t.Fatalf("post-expiry transaction: %v", err)
	}
	if v, ok := mod.Store().ReadCommitted("orphan"); !ok || string(v) != "y" {
		t.Fatalf("orphan = %q, %v", v, ok)
	}
}

func TestReplicatedStoreStateTransfer(t *testing.T) {
	w := newReplWorld(t, 78, 2)
	rs := w.client()
	if err := rs.Run(context.Background(), RetryOptions{}, func(tx *RemoteTx) error {
		return tx.Set("seed", []byte("value"))
	}); err != nil {
		t.Fatal(err)
	}
	state, err := w.mods[0].GetState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewStoreModule(NewStore(DetectDeadlock), 0)
	if err := fresh.SetState(state); err != nil {
		t.Fatal(err)
	}
	if v, ok := fresh.Store().ReadCommitted("seed"); !ok || string(v) != "value" {
		t.Fatalf("transferred state: %q, %v", v, ok)
	}
}

func TestReplicatedStoreConflictingClientsConverge(t *testing.T) {
	// Two clients write disjoint then overlapping keys concurrently;
	// whatever serialization wins, all members must agree on it
	// (Theorem 5.1's "same order at all members").
	w := newReplWorld(t, 79, 3)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		c := c
		rs := w.client()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				rs.Run(context.Background(), RetryOptions{MaxAttempts: 30}, func(tx *RemoteTx) error {
					if err := tx.Set("shared", []byte{byte(c)}); err != nil {
						return err
					}
					return tx.Set(fmt.Sprintf("own-%d", c), []byte{byte(i)})
				})
			}
		}()
	}
	wg.Wait()
	w.assertConsistent()
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrAborted, true},
		{&core.AppError{Msg: errDeadlockWire}, true},
		{&core.AppError{Msg: "txn: wait-die abort"}, true},
		{&core.AppError{Msg: "no such key"}, false},
		{errors.New("random"), false},
		{context.DeadlineExceeded, true},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestCommitWithoutTransaction(t *testing.T) {
	w := newReplWorld(t, 80, 1)
	rs := w.client()
	tx := &RemoteTx{rs: rs, ctx: context.Background(), tc: rs.rt.NewThread()}
	_, err := tx.commit()
	var app *core.AppError
	if !errors.As(err, &app) {
		t.Fatalf("commit without tx: %v", err)
	}
	if !reflect.DeepEqual(app.Msg, errNoTxWire) {
		t.Fatalf("msg = %q", app.Msg)
	}
}
