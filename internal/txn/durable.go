// Durable stores: a redo-logging layer under the transactional store.
//
// The paper's lightweight transactions deliberately omit stable
// storage (§5.2) — replication masks individual member crashes. What
// replication cannot mask is a whole-troupe power loss, so a store
// may optionally carry a write-ahead log: every top-level commit is
// redo-logged and fsynced (group commit) before Commit returns, and
// the store periodically snapshots itself so recovery replays a short
// tail instead of history.
//
// Ordering is apply-then-log-then-ack: the writes land in memory and
// the redo record is appended under the same store mutex (so log
// order equals apply order), then the fsync is awaited outside the
// lock, then the commit is acknowledged. Memory is primary and the
// log trails it; the unsynced suffix of memory is exactly the
// unacknowledged window, which the durability contract permits to
// vanish in a crash.
package txn

import (
	"sort"

	"circus/internal/wal"
	"circus/internal/wire"
)

// walWrite is one key's redo entry within a committed transaction's
// log record.
type walWrite struct {
	Key string
	Val []byte
	Del bool
}

// OpenDurableStore builds a store whose top-level commits are
// redo-logged to log, first replaying what a previous incarnation left
// behind (rec, as returned by wal.Open or wal.Reopen).
func OpenDurableStore(policy Policy, log *wal.Log, rec *wal.Recovered) (*Store, error) {
	s := NewStore(policy)
	s.wal = log
	if rec != nil {
		if err := s.Recover(rec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Recover resets the committed state to what the log holds: the
// snapshot image, then the redo records after it, in log order. Used
// at open and by the chaos harness after a simulated power loss.
func (s *Store) Recover(rec *wal.Recovered) error {
	data := make(map[string][]byte)
	if rec.Snapshot != nil {
		if err := wire.Unmarshal(rec.Snapshot, &data); err != nil {
			return err
		}
	}
	for _, r := range rec.Records {
		var writes []walWrite
		if err := wire.Unmarshal(r, &writes); err != nil {
			return err
		}
		for _, w := range writes {
			if w.Del {
				delete(data, w.Key)
			} else {
				data[w.Key] = w.Val
			}
		}
	}
	s.mu.Lock()
	s.data = data
	// Re-base the apply-order position to the log's: one redo record
	// per state-changing commit, so the position a member reported
	// before the crash is never exceeded by a client token the
	// recovered member cannot honor.
	s.commits = rec.SnapshotPos + uint64(len(rec.Records))
	s.mu.Unlock()
	return nil
}

// logCommitLocked appends the redo record for a top-level commit.
// Called with s.mu held so records are appended in apply order; the
// append only buffers (one copy into the active segment), durability
// waits in syncCommit.
func (s *Store) logCommitLocked(writes map[string]*[]byte) error {
	if s.wal == nil || len(writes) == 0 {
		return nil
	}
	rec := make([]walWrite, 0, len(writes))
	for k, vp := range writes {
		w := walWrite{Key: k}
		if *vp == nil {
			w.Del = true
		} else {
			w.Val = *vp
		}
		rec = append(rec, w)
	}
	sort.Slice(rec, func(i, j int) bool { return rec[i].Key < rec[j].Key })
	b, err := wire.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = s.wal.Append(b)
	return err
}

// syncCommit awaits durability of the commit's redo record (group
// commit batches concurrent committers under one fsync) and takes a
// snapshot when enough log has accumulated.
func (s *Store) syncCommit(nwrites int) error {
	if s.wal == nil || nwrites == 0 {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	if s.wal.NeedSnapshot() {
		s.snapshot()
	}
	return nil
}

// snapshot writes the committed state as a snapshot, truncating the
// log. Concurrent committers skip rather than queue: one snapshot in
// flight is enough.
func (s *Store) snapshot() {
	if !s.snapMu.TryLock() {
		return
	}
	defer s.snapMu.Unlock()
	// Position and state are captured under s.mu; appends also happen
	// under s.mu, so the position exactly covers the captured state.
	s.mu.Lock()
	pos := s.wal.Pos()
	state, err := wire.Marshal(s.data)
	s.mu.Unlock()
	if err != nil {
		return
	}
	_ = s.wal.SnapshotAt(state, pos) // failure just delays truncation
}

// WAL exposes the store's log (nil for in-memory stores), for stats
// and tests.
func (s *Store) WAL() *wal.Log { return s.wal }
