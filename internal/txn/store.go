// Package txn implements replicated lightweight transactions (§5).
//
// Transactions provide the synchronization replicated distributed
// programs need once there is more than one thread of control: not
// only must concurrent calls be serialized at each server troupe
// member, they must be serialized in the same order at all members
// (§5.1). Because troupes mask partial failures, the permanence
// machinery of conventional transactions (stable storage, commit
// records) is unnecessary: these transactions live entirely in
// volatile memory, which is what makes them lightweight (§5.2).
//
// The package provides a versioned in-memory store with dynamically
// nested transactions over two-phase locking (store.go, locks.go), the
// optimistic troupe commit protocol (commit.go), and the
// starvation-free ordered broadcast alternative (broadcast.go).
package txn

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"circus/internal/trace"
	"circus/internal/wal"
)

// ErrTxDone reports use of a committed or aborted transaction.
var ErrTxDone = errors.New("txn: transaction already terminated")

// ErrNotFound reports a read of a key with no value.
var ErrNotFound = errors.New("txn: key not found")

// Store is a transactional in-memory object store: the state variable
// of a module (§3.1), structured so that tentative updates can be
// undone (§5.2).
type Store struct {
	lm *LockManager
	tr trace.Sink // nil disables transaction tracing

	// wal, when set, redo-logs every top-level commit before it is
	// acknowledged (see durable.go); nil keeps the store lightweight.
	wal    *wal.Log
	snapMu sync.Mutex // serializes background snapshots

	mu      sync.Mutex
	data    map[string][]byte
	nextTx  uint64
	commits uint64 // state-changing top-level commits applied (see Position)
}

// Position returns the store's apply-order position: the number of
// state-changing top-level commits applied, aligned with the WAL
// record position for durable stores (one redo record per such
// commit, and recovery re-bases the counter), so it survives restarts
// and is comparable across troupe members applying the same commit
// sequence. This is the freshness bound mesh spread reads check
// client position tokens against.
func (s *Store) Position() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.commits)
}

// SetTrace installs a sink recording transaction commits and aborts
// (and, via the lock manager, lock grants and releases). Transaction
// events carry the root transaction ID in Troupe.
func (s *Store) SetTrace(sink trace.Sink) {
	s.tr = sink
	s.lm.SetTrace(sink)
}

// NewStore returns an empty store using the given locking policy.
func NewStore(policy Policy) *Store {
	return &Store{
		lm:   NewLockManager(policy),
		data: make(map[string][]byte),
	}
}

// txState is the lifecycle of a transaction.
type txState int

const (
	txActive txState = iota
	txCommitted
	txAborted
)

// Tx is a transaction (or subtransaction). Until it commits, its
// updates are tentative and visible only to itself and its descendants
// (§2.3.2). Committing a subtransaction folds its updates into the
// parent; committing a top-level transaction applies them to the
// store and releases its locks.
type Tx struct {
	store  *Store
	parent *Tx
	id     uint64 // root transaction ID; shared by all descendants

	mu      sync.Mutex
	state   txState
	writes  map[string]*[]byte // nil slice pointer = deleted
	openSub bool
}

// Begin starts a top-level transaction. Transaction IDs are issued in
// increasing order and double as the timestamps of the wait-die
// policy.
func (s *Store) Begin() *Tx {
	s.mu.Lock()
	s.nextTx++
	id := s.nextTx
	s.mu.Unlock()
	return &Tx{store: s, id: id, writes: make(map[string]*[]byte)}
}

// Begin starts a subtransaction, nested dynamically like a procedure
// activation record (§5.2). A transaction may have one open
// subtransaction at a time (the thread's stack discipline, §3.2).
func (t *Tx) Begin() (*Tx, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != txActive {
		return nil, ErrTxDone
	}
	if t.openSub {
		return nil, errors.New("txn: parent already has an open subtransaction")
	}
	t.openSub = true
	return &Tx{store: t.store, parent: t, id: t.id, writes: make(map[string]*[]byte)}, nil
}

// ID returns the root transaction ID.
func (t *Tx) ID() uint64 { return t.id }

// acquire takes a lock on behalf of the transaction and re-checks
// liveness afterwards: the transaction may have been aborted by
// another thread (a remote abort racing a blocked lock request) while
// the request was queued, in which case the just-granted lock must be
// released rather than orphaned.
func (t *Tx) acquire(key string, mode Mode) error {
	if err := t.store.lm.Acquire(t.id, key, mode); err != nil {
		return err
	}
	root := t
	for root.parent != nil {
		root = root.parent
	}
	root.mu.Lock()
	dead := root.state != txActive
	root.mu.Unlock()
	if dead {
		t.store.lm.ReleaseAll(t.id)
		return ErrTxDone
	}
	return nil
}

// Get reads a key under a read lock. Its own and its ancestors'
// tentative updates are visible (§2.3.2).
func (t *Tx) Get(key string) ([]byte, error) {
	t.mu.Lock()
	if t.state != txActive {
		t.mu.Unlock()
		return nil, ErrTxDone
	}
	t.mu.Unlock()
	if err := t.acquire(key, Read); err != nil {
		return nil, err
	}
	for cur := t; cur != nil; cur = cur.parent {
		cur.mu.Lock()
		vp, ok := cur.writes[key]
		cur.mu.Unlock()
		if ok {
			if *vp == nil {
				return nil, ErrNotFound
			}
			return append([]byte(nil), (*vp)...), nil
		}
	}
	t.store.mu.Lock()
	v, ok := t.store.data[key]
	t.store.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Set tentatively writes a key under a write lock.
func (t *Tx) Set(key string, value []byte) error {
	t.mu.Lock()
	if t.state != txActive {
		t.mu.Unlock()
		return ErrTxDone
	}
	t.mu.Unlock()
	if err := t.acquire(key, Write); err != nil {
		return err
	}
	v := make([]byte, len(value)) // non-nil even when empty: nil marks deletion
	copy(v, value)
	vp := &v
	t.mu.Lock()
	t.writes[key] = vp
	t.mu.Unlock()
	return nil
}

// Delete tentatively removes a key under a write lock.
func (t *Tx) Delete(key string) error {
	t.mu.Lock()
	if t.state != txActive {
		t.mu.Unlock()
		return ErrTxDone
	}
	t.mu.Unlock()
	if err := t.acquire(key, Write); err != nil {
		return err
	}
	var nilv []byte
	t.mu.Lock()
	t.writes[key] = &nilv
	t.mu.Unlock()
	return nil
}

// Commit makes the transaction's updates permanent: a subtransaction's
// become visible to its parent; a top-level transaction's become
// visible to other transactions, and its locks are released (strict
// two-phase locking, §2.3.1).
func (t *Tx) Commit() error {
	t.mu.Lock()
	if t.state != txActive {
		t.mu.Unlock()
		return ErrTxDone
	}
	if t.openSub {
		t.mu.Unlock()
		return errors.New("txn: open subtransaction must terminate first")
	}
	t.state = txCommitted
	writes := t.writes
	t.mu.Unlock()

	if t.parent != nil {
		t.parent.mu.Lock()
		for k, vp := range writes {
			t.parent.writes[k] = vp
		}
		t.parent.openSub = false
		t.parent.mu.Unlock()
		// Locks were acquired in the root's name and are retained by
		// the parent (Moss's rules, §2.3.2).
		if t.store.tr != nil {
			trace.Stamp(t.store.tr, trace.Event{Kind: trace.KindTxnCommit,
				Troupe: t.id, N: len(writes), Detail: "sub"})
		}
		return nil
	}

	t.store.mu.Lock()
	for k, vp := range writes {
		if *vp == nil {
			delete(t.store.data, k)
		} else {
			t.store.data[k] = *vp
		}
	}
	if len(writes) > 0 {
		t.store.commits++
	}
	// The redo record is appended while s.mu is held so the log order
	// equals the apply order; the fsync waits outside the lock (see
	// durable.go). Without this, two commits could apply in one order
	// and log in the other, and replay would diverge from memory.
	appendErr := t.store.logCommitLocked(writes)
	t.store.mu.Unlock()
	if t.store.tr != nil {
		trace.Stamp(t.store.tr, trace.Event{Kind: trace.KindTxnCommit,
			Troupe: t.id, N: len(writes)})
	}
	walErr := appendErr
	if walErr == nil {
		walErr = t.store.syncCommit(len(writes))
	}
	t.store.lm.ReleaseAll(t.id)
	return walErr
}

// Abort undoes the transaction: tentative updates vanish without a
// trace (§2.3.1: aborts never cascade, because tentative updates were
// never visible to other transactions).
func (t *Tx) Abort() error {
	t.mu.Lock()
	if t.state != txActive {
		t.mu.Unlock()
		return ErrTxDone
	}
	if t.openSub {
		t.mu.Unlock()
		return errors.New("txn: open subtransaction must terminate first")
	}
	t.state = txAborted
	t.mu.Unlock()

	if t.parent != nil {
		t.parent.mu.Lock()
		t.parent.openSub = false
		t.parent.mu.Unlock()
		// Locks acquired by the aborted subtransaction remain with
		// the root: conservative and safe.
		if t.store.tr != nil {
			trace.Stamp(t.store.tr, trace.Event{Kind: trace.KindTxnAbort,
				Troupe: t.id, Detail: "sub"})
		}
		return nil
	}
	if t.store.tr != nil {
		trace.Stamp(t.store.tr, trace.Event{Kind: trace.KindTxnAbort, Troupe: t.id})
	}
	t.store.lm.ReleaseAll(t.id)
	return nil
}

// ReadCommitted reads a key outside any transaction, seeing only
// committed state (used by state transfer, §6.4.1, which runs as a
// read-only transaction; callers needing strictness should use Get).
func (s *Store) ReadCommitted(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Keys returns the committed keys in unspecified order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	return keys
}

// RetryOptions tunes Run's handling of deadlock aborts.
type RetryOptions struct {
	// MaxAttempts bounds the number of tries; zero means 10.
	MaxAttempts int
	// BaseDelay is the first back-off interval; zero means 1ms. The
	// mean delay doubles on each retry — the binary exponential
	// back-off of §5.3.1.
	BaseDelay time.Duration
	// Rand supplies the randomized back-off; nil uses a private
	// source.
	Rand *rand.Rand
}

// Run executes body inside a transaction, committing on nil return and
// aborting otherwise. Deadlock (and wait-die) aborts are retried with
// binary exponential back-off (§5.3.1); other errors abort and are
// returned.
func (s *Store) Run(opts RetryOptions, body func(tx *Tx) error) error {
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 10
	}
	if opts.BaseDelay == 0 {
		opts.BaseDelay = time.Millisecond
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	delay := opts.BaseDelay
	var err error
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		tx := s.Begin()
		err = body(tx)
		if err == nil {
			return tx.Commit()
		}
		tx.Abort()
		if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrWaitDie) {
			return err
		}
		// Randomly chosen interval with doubling mean (§5.3.1).
		time.Sleep(time.Duration(rng.Int63n(int64(delay) + 1)))
		delay *= 2
	}
	return err
}
