package txn

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/pairedmsg"
)

func fastOpts() core.Options {
	return core.Options{
		Message: pairedmsg.Options{
			RetransmitInterval: 10 * time.Millisecond,
			MaxRetries:         15,
			ProbeInterval:      15 * time.Millisecond,
			ProbeMissLimit:     4,
		},
		ManyToOneTimeout: 250 * time.Millisecond,
	}
}

func newRT(t *testing.T, n *netsim.Network, opts core.Options) *core.Runtime {
	t.Helper()
	ep, err := n.Listen(n.NewHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(ep, opts)
	t.Cleanup(func() { rt.Close() })
	return rt
}

func TestQueueOrdering(t *testing.T) {
	var order []string
	q := NewQueue(func(id string, msg []byte) { order = append(order, id) })

	p1 := q.Propose("m1", nil)
	p2 := q.Propose("m2", nil)
	if p2 <= p1 {
		t.Fatalf("clock not monotonic: %d then %d", p1, p2)
	}
	// Accept m2 first with a larger final time: it must not be
	// delivered while m1 is still only proposed.
	if err := q.Accept("m2", p2+10); err != nil {
		t.Fatal(err)
	}
	if len(order) != 0 {
		t.Fatalf("m2 delivered before m1 resolved: %v", order)
	}
	if err := q.Accept("m1", p1+5); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"m1", "m2"}) {
		t.Fatalf("order = %v, want [m1 m2]", order)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending = %d", q.Pending())
	}
}

func TestQueueTiebreakByID(t *testing.T) {
	var order []string
	q := NewQueue(func(id string, msg []byte) { order = append(order, id) })
	q.Propose("b", nil)
	q.Propose("a", nil)
	q.Accept("b", 100)
	q.Accept("a", 100)
	if !reflect.DeepEqual(order, []string{"a", "b"}) {
		t.Fatalf("equal-time order = %v, want [a b]", order)
	}
}

func TestQueueClockAdvancesOnAccept(t *testing.T) {
	q := NewQueue(func(string, []byte) {})
	q.Propose("m1", nil)
	q.Accept("m1", 500)
	if p := q.Propose("m2", nil); p <= 500 {
		t.Fatalf("proposal %d not past accepted time 500", p)
	}
	q.Accept("m2", 501)
}

func TestQueueAcceptUnknown(t *testing.T) {
	q := NewQueue(func(string, []byte) {})
	if err := q.Accept("ghost", 1); err == nil {
		t.Fatal("accept of unknown message succeeded")
	}
}

// TestOrderedBroadcastEndToEnd: several concurrent broadcasters, a
// troupe of three members; every member must deliver every message in
// the identical order (§5.4's guarantee) and nothing may starve.
func TestOrderedBroadcastEndToEnd(t *testing.T) {
	net := netsim.New(31)
	opts := fastOpts()

	const degree = 3
	var mus [degree]sync.Mutex
	orders := make([][]string, degree)
	dest := core.Troupe{ID: 0xbc}
	resolver := core.StaticResolver{}
	opts.Resolver = resolver
	for i := 0; i < degree; i++ {
		i := i
		rt := newRT(t, net, opts)
		q := NewQueue(func(id string, msg []byte) {
			mus[i].Lock()
			orders[i] = append(orders[i], id)
			mus[i].Unlock()
		})
		addr := rt.Export(&Module{Queue: q}, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, dest.ID)
		dest.Members = append(dest.Members, addr)
	}
	resolver[dest.ID] = dest.Members

	const clients, perClient = 3, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		rt := newRT(t, net, opts)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				id := fmt.Sprintf("c%d-m%d", c, k)
				if err := Broadcast(context.Background(), rt, dest, id, []byte(id)); err != nil {
					t.Errorf("broadcast %s: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mus[0].Lock()
		n := len(orders[0])
		mus[0].Unlock()
		if n == clients*perClient || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	var ref []string
	mus[0].Lock()
	ref = append(ref, orders[0]...)
	mus[0].Unlock()
	if len(ref) != clients*perClient {
		t.Fatalf("member 0 delivered %d of %d (starvation?)", len(ref), clients*perClient)
	}
	for i := 1; i < degree; i++ {
		mus[i].Lock()
		got := append([]string(nil), orders[i]...)
		mus[i].Unlock()
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("member %d order %v differs from member 0 %v", i, got, ref)
		}
	}
}

// TestOrderedBroadcastDeterministicCC: the delivered order drives
// serial read-modify-write updates at each member; all members must
// end in the same state even though the operations do not commute.
func TestOrderedBroadcastDeterministicCC(t *testing.T) {
	net := netsim.New(32)
	opts := fastOpts()
	resolver := core.StaticResolver{}
	opts.Resolver = resolver

	const degree = 3
	stores := make([]*Store, degree)
	dest := core.Troupe{ID: 0xcc}
	for i := 0; i < degree; i++ {
		s := NewStore(DetectDeadlock)
		stores[i] = s
		seed := s.Begin()
		seed.Set("v", []byte{1})
		seed.Commit()
		q := NewQueue(func(id string, msg []byte) {
			// Serial execution in acceptance order: the trivial
			// deterministic concurrency control of §5.4.
			s.Run(RetryOptions{}, func(tx *Tx) error {
				v, err := tx.Get("v")
				if err != nil {
					return err
				}
				switch msg[0] {
				case '+':
					return tx.Set("v", []byte{v[0] + msg[1]})
				default:
					return tx.Set("v", []byte{v[0] * msg[1]})
				}
			})
		})
		rt := newRT(t, net, opts)
		addr := rt.Export(&Module{Queue: q}, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, dest.ID)
		dest.Members = append(dest.Members, addr)
	}
	resolver[dest.ID] = dest.Members

	// Non-commuting updates from two concurrent clients.
	var wg sync.WaitGroup
	ops := [][]byte{{'+', 3}, {'*', 5}, {'+', 7}, {'*', 2}}
	for c := 0; c < 2; c++ {
		c := c
		rt := newRT(t, net, opts)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k, op := range ops {
				id := fmt.Sprintf("cl%d-%d", c, k)
				if err := Broadcast(context.Background(), rt, dest, id, op); err != nil {
					t.Errorf("broadcast: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond) // let deliveries drain

	v0, _ := stores[0].ReadCommitted("v")
	for i := 1; i < degree; i++ {
		vi, _ := stores[i].ReadCommitted("v")
		if v0[0] != vi[0] {
			t.Fatalf("member %d state %d != member 0 state %d (troupe inconsistency)", i, vi[0], v0[0])
		}
	}
}

func TestSimulateCommitRoundMatchesEq51(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 20000
	cases := []struct {
		k, n int
		want float64 // 1 - (1/k!)^(n-1)
	}{
		{1, 3, 0},
		{2, 2, 0.5},
		{2, 3, 0.75},
		{3, 2, 1 - 1.0/6},
	}
	for _, c := range cases {
		dead := 0
		for i := 0; i < trials; i++ {
			if SimulateCommitRound(c.k, c.n, rng) {
				dead++
			}
		}
		got := float64(dead) / trials
		if diff := got - c.want; diff > 0.02 || diff < -0.02 {
			t.Errorf("k=%d n=%d: P[deadlock] = %.3f, want %.3f", c.k, c.n, got, c.want)
		}
	}
}
