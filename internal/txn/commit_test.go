package txn

import (
	"context"
	"sync"
	"testing"
	"time"

	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/thread"
	"circus/internal/wire"
)

// bankMember is one server troupe member running transactions over a
// local store and committing through the troupe commit protocol.
type bankMember struct {
	store       *Store
	coordinator core.Troupe

	mu      sync.Mutex
	commits int
	aborts  int
}

func (b *bankMember) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case 1: // deposit(amount) within a replicated transaction
		var amount int64
		if err := wire.Unmarshal(args, &amount); err != nil {
			return nil, err
		}
		tx := b.store.Begin()
		var balance int64
		if v, err := tx.Get("balance"); err == nil {
			wire.Unmarshal(v, &balance)
		}
		enc, _ := wire.Marshal(balance + amount)
		if err := tx.Set("balance", enc); err != nil {
			tx.Abort()
			return nil, err
		}
		// Ready to commit: call back the client troupe (§5.3).
		commit, err := ReadyToCommit(call, b.coordinator, "deposit", true)
		if err != nil {
			tx.Abort()
			return nil, err
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		if !commit {
			tx.Abort()
			b.aborts++
			return wire.Marshal(false)
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		b.commits++
		return wire.Marshal(true)
	case 2: // vote-abort variant: the member itself wants to abort
		commit, err := ReadyToCommit(call, b.coordinator, "doomed", false)
		if err != nil {
			return nil, err
		}
		return wire.Marshal(commit)
	default:
		return nil, core.ErrNoSuchProc
	}
}

// TestTroupeCommitAllReady: a server troupe of two; both members call
// ready_to_commit(true); the coordinator must answer true to both and
// both commit.
func TestTroupeCommitAllReady(t *testing.T) {
	net := netsim.New(41)
	resolver := core.StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	// Client with its coordinator module.
	clientRT := newRT(t, net, opts)
	coordAddr := clientRT.Export(NewCoordinator(resolver), CoordinatorExportOptions())
	clientTroupeID := core.TroupeID(0xc0)
	resolver[clientTroupeID] = []core.ModuleAddr{coordAddr}
	coordTroupe := core.Troupe{Members: []core.ModuleAddr{coordAddr}}

	// Server troupe of two bank members.
	serverTroupe := core.Troupe{ID: 0xba}
	var members []*bankMember
	for i := 0; i < 2; i++ {
		rt := newRT(t, net, opts)
		m := &bankMember{store: NewStore(DetectDeadlock), coordinator: coordTroupe}
		addr := rt.Export(m, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, serverTroupe.ID)
		serverTroupe.Members = append(serverTroupe.Members, addr)
		members = append(members, m)
	}
	resolver[serverTroupe.ID] = serverTroupe.Members

	amount, _ := wire.Marshal(int64(100))
	res, err := clientRT.Call(context.Background(), serverTroupe, 1, amount, core.CallOptions{
		AsTroupe: clientTroupeID,
	})
	if err != nil {
		t.Fatalf("deposit: %v", err)
	}
	var committed bool
	if err := wire.Unmarshal(res, &committed); err != nil || !committed {
		t.Fatalf("committed = %v, %v", committed, err)
	}
	for i, m := range members {
		v, ok := m.store.ReadCommitted("balance")
		if !ok {
			t.Fatalf("member %d has no balance", i)
		}
		var bal int64
		wire.Unmarshal(v, &bal)
		if bal != 100 {
			t.Fatalf("member %d balance = %d", i, bal)
		}
		if m.commits != 1 || m.aborts != 0 {
			t.Fatalf("member %d commits=%d aborts=%d", i, m.commits, m.aborts)
		}
	}
}

// TestTroupeCommitVoteAbort: one member votes false; the whole troupe
// must abort.
func TestTroupeCommitVoteAbort(t *testing.T) {
	net := netsim.New(42)
	resolver := core.StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	clientRT := newRT(t, net, opts)
	coordAddr := clientRT.Export(NewCoordinator(resolver), CoordinatorExportOptions())
	clientTroupeID := core.TroupeID(0xc1)
	resolver[clientTroupeID] = []core.ModuleAddr{coordAddr}
	coordTroupe := core.Troupe{Members: []core.ModuleAddr{coordAddr}}

	serverTroupe := core.Troupe{ID: 0xbb}
	for i := 0; i < 2; i++ {
		rt := newRT(t, net, opts)
		m := &bankMember{store: NewStore(DetectDeadlock), coordinator: coordTroupe}
		addr := rt.Export(m, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, serverTroupe.ID)
		serverTroupe.Members = append(serverTroupe.Members, addr)
	}
	resolver[serverTroupe.ID] = serverTroupe.Members

	res, err := clientRT.Call(context.Background(), serverTroupe, 2, nil, core.CallOptions{
		AsTroupe: clientTroupeID,
	})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	var committed bool
	if err := wire.Unmarshal(res, &committed); err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("transaction committed despite a false vote")
	}
}

// TestTroupeCommitMissingVoteAborts models Theorem 5.1's deadlock
// path: only one of two server troupe members reaches
// ready_to_commit (the other serialized a conflicting transaction
// first and is blocked). The coordinator's barrier times out and the
// round must abort rather than commit with partial votes.
func TestTroupeCommitMissingVoteAborts(t *testing.T) {
	net := netsim.New(43)
	resolver := core.StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	clientRT := newRT(t, net, opts)
	coordAddr := clientRT.Export(NewCoordinator(resolver), CoordinatorExportOptions())
	coordTroupe := core.Troupe{Members: []core.ModuleAddr{coordAddr}}

	// The "server troupe" has two registered members, but only one
	// will ever vote.
	voter := newRT(t, net, opts)
	silent := newRT(t, net, opts)
	serverTroupeID := core.TroupeID(0xbd)
	resolver[serverTroupeID] = []core.ModuleAddr{
		{Addr: voter.Addr(), Module: 0},
		{Addr: silent.Addr(), Module: 0},
	}

	// The voting member calls ready_to_commit directly, impersonating
	// a server-member thread.
	tc := thread.Child(thread.ID{Host: 5, Proc: 5}, []uint32{1})
	args, _ := wire.Marshal(readyArgs{TxKey: "t", Ready: true})
	start := time.Now()
	res, err := voter.Call(context.Background(), coordTroupe, ProcReadyToCommit, args, core.CallOptions{
		AsTroupe: serverTroupeID,
		Thread:   tc,
	})
	if err != nil {
		t.Fatalf("ready_to_commit: %v", err)
	}
	var commit bool
	if err := wire.Unmarshal(res, &commit); err != nil {
		t.Fatal(err)
	}
	if commit {
		t.Fatal("committed with a missing vote")
	}
	if time.Since(start) < 200*time.Millisecond {
		t.Error("coordinator answered before the barrier timeout — it did not wait for the second member")
	}
}

// TestTroupeCommitTheorem51SameOrder: two sequential transactions
// committed in the same order at all members succeed (the "if"
// direction of Theorem 5.1).
func TestTroupeCommitTheorem51SameOrder(t *testing.T) {
	net := netsim.New(44)
	resolver := core.StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	clientRT := newRT(t, net, opts)
	coordAddr := clientRT.Export(NewCoordinator(resolver), CoordinatorExportOptions())
	clientTroupeID := core.TroupeID(0xc2)
	resolver[clientTroupeID] = []core.ModuleAddr{coordAddr}
	coordTroupe := core.Troupe{Members: []core.ModuleAddr{coordAddr}}

	serverTroupe := core.Troupe{ID: 0xbe}
	var members []*bankMember
	for i := 0; i < 3; i++ {
		rt := newRT(t, net, opts)
		m := &bankMember{store: NewStore(DetectDeadlock), coordinator: coordTroupe}
		addr := rt.Export(m, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, serverTroupe.ID)
		serverTroupe.Members = append(serverTroupe.Members, addr)
		members = append(members, m)
	}
	resolver[serverTroupe.ID] = serverTroupe.Members

	for i := 0; i < 3; i++ {
		amount, _ := wire.Marshal(int64(10))
		res, err := clientRT.Call(context.Background(), serverTroupe, 1, amount, core.CallOptions{
			AsTroupe: clientTroupeID,
		})
		if err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
		var ok bool
		wire.Unmarshal(res, &ok)
		if !ok {
			t.Fatalf("deposit %d aborted", i)
		}
	}
	for i, m := range members {
		v, _ := m.store.ReadCommitted("balance")
		var bal int64
		wire.Unmarshal(v, &bal)
		if bal != 30 {
			t.Fatalf("member %d balance = %d, want 30", i, bal)
		}
		if m.commits != 3 {
			t.Fatalf("member %d commits = %d", i, m.commits)
		}
	}
}
