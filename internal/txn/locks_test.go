package txn

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestLockReentrant(t *testing.T) {
	lm := NewLockManager(DetectDeadlock)
	if err := lm.Acquire(1, "a", Read); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, "a", Read); err != nil {
		t.Fatalf("reentrant read: %v", err)
	}
	if err := lm.Acquire(1, "a", Write); err != nil {
		t.Fatalf("sole-holder upgrade: %v", err)
	}
	if m, ok := lm.Held(1, "a"); !ok || m != Write {
		t.Fatalf("held = %v, %v", m, ok)
	}
	lm.ReleaseAll(1)
	if _, ok := lm.Held(1, "a"); ok {
		t.Fatal("lock survived ReleaseAll")
	}
}

func TestWriterNotStarvedByReaders(t *testing.T) {
	lm := NewLockManager(DetectDeadlock)
	if err := lm.Acquire(1, "a", Read); err != nil {
		t.Fatal(err)
	}
	// A writer queues.
	wDone := make(chan error, 1)
	go func() { wDone <- lm.Acquire(2, "a", Write) }()
	time.Sleep(20 * time.Millisecond)
	// A later reader must not overtake the queued writer.
	rDone := make(chan error, 1)
	go func() { rDone <- lm.Acquire(3, "a", Read) }()
	select {
	case <-rDone:
		t.Fatal("reader overtook a queued writer")
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	if err := <-wDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	lm.ReleaseAll(2)
	if err := <-rDone; err != nil {
		t.Fatalf("reader after writer: %v", err)
	}
	lm.ReleaseAll(3)
}

// TestLockLivenessUnderRandomLoad: N workers run random acquire
// sequences; deadlock victims release and retry. The system must
// drain — no lost wakeups, no permanent wedge.
func TestLockLivenessUnderRandomLoad(t *testing.T) {
	for _, policy := range []Policy{DetectDeadlock, WaitDie} {
		lm := NewLockManager(policy)
		objects := []string{"a", "b", "c", "d"}
		const workers = 8
		const rounds = 50

		var wg sync.WaitGroup
		done := make(chan struct{})
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				id := uint64(w + 1)
				for r := 0; r < rounds; r++ {
					tx := id + uint64(r)*100 // fresh "transaction" per round
					n := 1 + rng.Intn(3)
					ok := true
					for i := 0; i < n; i++ {
						obj := objects[rng.Intn(len(objects))]
						mode := Mode(rng.Intn(2))
						if err := lm.Acquire(tx, obj, mode); err != nil {
							ok = false
							break // deadlock or wait-die: abort
						}
					}
					_ = ok
					lm.ReleaseAll(tx)
				}
			}()
		}
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("policy %v: lock manager wedged under random load", policy)
		}
	}
}

func TestDeadlockThreeWayCycle(t *testing.T) {
	lm := NewLockManager(DetectDeadlock)
	lm.Acquire(1, "a", Write)
	lm.Acquire(2, "b", Write)
	lm.Acquire(3, "c", Write)

	errs := make(chan error, 3)
	go func() { errs <- lm.Acquire(1, "b", Write) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- lm.Acquire(2, "c", Write) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- lm.Acquire(3, "a", Write) }() // closes the cycle

	select {
	case err := <-errs:
		if err != ErrDeadlock {
			t.Fatalf("err = %v, want ErrDeadlock", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("three-way deadlock not detected")
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	lm.ReleaseAll(3)
	// Drain the remaining outcomes (granted after releases, or
	// deadlock).
	for i := 0; i < 2; i++ {
		select {
		case <-errs:
		case <-time.After(2 * time.Second):
			t.Fatal("waiters not drained after releases")
		}
	}
}
