package txn

import (
	"math/rand"

	"circus/internal/core"
	"circus/internal/wire"
)

// This file implements the troupe commit protocol of §5.3: a generic,
// optimistic protocol guaranteeing that all troupe members commit
// transactions in the same order, with no communication among the
// members.
//
// When a server troupe member is ready to commit or abort a
// transaction it calls ready_to_commit at the client troupe — a
// call-back that temporarily reverses the roles of client and server.
// Each client troupe member answers true only once every server troupe
// member has called; a member that wishes to abort, or a member that
// never calls (it serialized another transaction first and is blocked)
// turns the round into an abort. Different serialization orders at
// different members thus become deadlocks (Theorem 5.1), which the
// runtime's availability timeout converts into aborts that are retried
// with binary exponential back-off (§5.3.1).

// ProcReadyToCommit is the procedure number of the call-back in the
// coordinator module's interface.
const ProcReadyToCommit uint16 = 1

type readyArgs struct {
	TxKey string
	Ready bool
}

// Coordinator is the client-side module implementing ready_to_commit
// (§5.3). Export it with ArgWaitAll and AllowDivergentArgs: the
// arguments of the server troupe members legitimately differ (one may
// vote false), and waiting for all of them is the barrier that turns
// divergent serialization orders into deadlocks.
//
//	addr := rt.Export(txn.NewCoordinator(resolver), txn.CoordinatorExportOptions())
type Coordinator struct {
	resolver core.Resolver
}

// NewCoordinator returns a coordinator that uses resolver to learn the
// size of the server troupe voting in each round.
func NewCoordinator(resolver core.Resolver) *Coordinator {
	return &Coordinator{resolver: resolver}
}

// CoordinatorExportOptions returns the export options a Coordinator
// requires.
func CoordinatorExportOptions() core.ExportOptions {
	return core.ExportOptions{Policy: core.ArgWaitAll, AllowDivergentArgs: true}
}

var _ core.Module = (*Coordinator)(nil)

// Dispatch implements core.Module: each member of the client troupe
// plays the role of the coordinator in a conventional two-phase commit
// (§5.3). It returns true to the entire server troupe iff every member
// called ready_to_commit(true); a missing vote (a member serialized
// differently and is blocked — the runtime released the call after its
// availability timeout) or a false vote yields false, aborting the
// transaction at every member.
func (c *Coordinator) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	if proc != ProcReadyToCommit {
		return nil, core.ErrNoSuchProc
	}
	expected := 1
	if id := call.ClientTroupe(); id != 0 && c.resolver != nil {
		if members, err := c.resolver.LookupByID(id); err == nil && len(members) > 0 {
			expected = len(members)
		}
	}
	votes := call.Args()
	commit := len(votes) >= expected
	for _, v := range votes {
		var a readyArgs
		if err := wire.Unmarshal(v, &a); err != nil {
			return nil, err
		}
		if !a.Ready {
			commit = false
		}
	}
	return wire.Marshal(commit)
}

// ReadyToCommit is the server-member side of the protocol: called with
// true when the member is ready to commit, false when it wishes to
// abort (§5.3). The call is made through the executing ServerCall so
// that thread identity propagates and the client collates the votes of
// all members of this troupe. The reply — commit or abort — applies to
// every member.
func ReadyToCommit(sc *core.ServerCall, coordinator core.Troupe, txKey string, ready bool) (bool, error) {
	args, err := wire.Marshal(readyArgs{TxKey: txKey, Ready: ready})
	if err != nil {
		return false, err
	}
	res, err := sc.Call(coordinator, ProcReadyToCommit, args, core.CallOptions{})
	if err != nil {
		return false, err
	}
	var commit bool
	if err := wire.Unmarshal(res, &commit); err != nil {
		return false, err
	}
	return commit, nil
}

// SimulateCommitRound models one round of the troupe commit protocol
// for the §5.3.1 analysis: k conflicting transactions at a server
// troupe of n members, each member independently serializing them in a
// uniformly random order. The round is deadlock-free iff all members
// chose the same order; the function reports whether the protocol
// deadlocked. E[deadlock] = 1 − (1/k!)^(n−1), Equation 5.1.
func SimulateCommitRound(k, n int, rng *rand.Rand) bool {
	if k <= 1 || n <= 1 {
		return false
	}
	reference := rng.Perm(k)
	for member := 1; member < n; member++ {
		order := rng.Perm(k)
		for i := range order {
			if order[i] != reference[i] {
				return true // divergent serialization ⇒ deadlock
			}
		}
	}
	return false
}
