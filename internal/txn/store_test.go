package txn

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestGetSetCommit(t *testing.T) {
	s := NewStore(DetectDeadlock)
	tx := s.Begin()
	if err := tx.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.ReadCommitted("a"); !ok || string(v) != "1" {
		t.Fatalf("committed value = %q, %v", v, ok)
	}
}

func TestAbortDiscards(t *testing.T) {
	s := NewStore(DetectDeadlock)
	tx := s.Begin()
	tx.Set("a", []byte("1"))
	tx.Abort()
	if _, ok := s.ReadCommitted("a"); ok {
		t.Fatal("aborted write became visible")
	}
}

func TestDelete(t *testing.T) {
	s := NewStore(DetectDeadlock)
	tx := s.Begin()
	tx.Set("a", []byte("1"))
	tx.Commit()

	tx2 := s.Begin()
	if err := tx2.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after tentative delete = %v, want ErrNotFound", err)
	}
	tx2.Commit()
	if _, ok := s.ReadCommitted("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore(DetectDeadlock)
	tx := s.Begin()
	defer tx.Abort()
	if _, err := tx.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestUseAfterTermination(t *testing.T) {
	s := NewStore(DetectDeadlock)
	tx := s.Begin()
	tx.Commit()
	if err := tx.Set("a", nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Set after commit = %v", err)
	}
	if _, err := tx.Get("a"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Get after commit = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("abort after commit = %v", err)
	}
}

func TestIsolationUncommittedInvisible(t *testing.T) {
	s := NewStore(DetectDeadlock)
	tx := s.Begin()
	tx.Set("a", []byte("tentative"))
	if _, ok := s.ReadCommitted("a"); ok {
		t.Fatal("tentative update visible outside the transaction")
	}
	tx.Abort()
}

func TestWriteBlocksWrite(t *testing.T) {
	s := NewStore(DetectDeadlock)
	t1 := s.Begin()
	t1.Set("a", []byte("t1"))

	t2 := s.Begin()
	done := make(chan error, 1)
	go func() { done <- t2.Set("a", []byte("t2")) }()

	select {
	case <-done:
		t.Fatal("conflicting write proceeded while lock held")
	case <-time.After(50 * time.Millisecond):
	}
	t1.Commit()
	if err := <-done; err != nil {
		t.Fatalf("blocked write failed after release: %v", err)
	}
	t2.Commit()
	if v, _ := s.ReadCommitted("a"); string(v) != "t2" {
		t.Fatalf("final value %q, want t2 (serial order t1;t2)", v)
	}
}

func TestReadersShare(t *testing.T) {
	s := NewStore(DetectDeadlock)
	seed := s.Begin()
	seed.Set("a", []byte("v"))
	seed.Commit()

	t1, t2 := s.Begin(), s.Begin()
	if _, err := t1.Get("a"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := t2.Get("a")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("concurrent read failed: %v", err)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("read lock blocked a concurrent reader")
	}
	t1.Commit()
	t2.Commit()
}

func TestDeadlockDetected(t *testing.T) {
	s := NewStore(DetectDeadlock)
	t1, t2 := s.Begin(), s.Begin()
	if err := t1.Set("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := t2.Set("b", nil); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	go func() { errs <- t1.Set("b", nil) }()
	go func() { errs <- t2.Set("a", nil) }()

	// Exactly one of the two must be aborted with ErrDeadlock; the
	// other blocks until its victim releases.
	var first error
	select {
	case first = <-errs:
	case <-time.After(2 * time.Second):
		t.Fatal("no deadlock detected within 2s")
	}
	if !errors.Is(first, ErrDeadlock) {
		t.Fatalf("first completion = %v, want ErrDeadlock", first)
	}
	// Abort the victim; the survivor's lock request must then be
	// granted.
	t1.Abort()
	t2.Abort()
	select {
	case err := <-errs:
		if err != nil && !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTxDone) {
			t.Fatalf("survivor error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor still blocked after victim aborted")
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two readers upgrading to writers is the classic 2PL deadlock.
	s := NewStore(DetectDeadlock)
	seed := s.Begin()
	seed.Set("a", []byte("v"))
	seed.Commit()

	t1, t2 := s.Begin(), s.Begin()
	if _, err := t1.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Get("a"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- t1.Set("a", nil) }()
	go func() { errs <- t2.Set("a", nil) }()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("err = %v, want ErrDeadlock", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("upgrade deadlock not detected")
	}
	t1.Abort()
	t2.Abort()
	<-errs
}

func TestWaitDiePolicy(t *testing.T) {
	s := NewStore(WaitDie)
	older := s.Begin() // smaller ID = older
	younger := s.Begin()
	if err := older.Set("a", nil); err != nil {
		t.Fatal(err)
	}
	// The younger transaction must die rather than wait.
	if err := younger.Set("a", nil); !errors.Is(err, ErrWaitDie) {
		t.Fatalf("younger wait = %v, want ErrWaitDie", err)
	}
	younger.Abort()
	older.Commit()
}

func TestWaitDieOlderWaits(t *testing.T) {
	s := NewStore(WaitDie)
	first := s.Begin()
	second := s.Begin()
	if err := second.Set("a", nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- first.Set("a", nil) }()
	select {
	case err := <-done:
		t.Fatalf("older transaction did not wait: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	second.Commit()
	if err := <-done; err != nil {
		t.Fatalf("older transaction failed after release: %v", err)
	}
	first.Commit()
}

func TestNestedCommitFoldsIntoParent(t *testing.T) {
	s := NewStore(DetectDeadlock)
	parent := s.Begin()
	parent.Set("p", []byte("1"))

	child, err := parent.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Child sees the parent's tentative update (§2.3.2).
	if v, err := child.Get("p"); err != nil || string(v) != "1" {
		t.Fatalf("child read of parent write: %q, %v", v, err)
	}
	child.Set("c", []byte("2"))
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	// Child's update visible to parent, not to the store.
	if v, err := parent.Get("c"); err != nil || string(v) != "2" {
		t.Fatalf("parent read of committed child write: %q, %v", v, err)
	}
	if _, ok := s.ReadCommitted("c"); ok {
		t.Fatal("child commit leaked to store before top-level commit")
	}
	parent.Commit()
	if v, ok := s.ReadCommitted("c"); !ok || string(v) != "2" {
		t.Fatalf("store after top-level commit: %q, %v", v, ok)
	}
}

func TestNestedAbortDiscardsOnlyChild(t *testing.T) {
	s := NewStore(DetectDeadlock)
	parent := s.Begin()
	parent.Set("p", []byte("1"))
	child, _ := parent.Begin()
	child.Set("c", []byte("2"))
	child.Abort()
	if _, err := parent.Get("c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted child write visible to parent: %v", err)
	}
	if v, err := parent.Get("p"); err != nil || string(v) != "1" {
		t.Fatalf("parent write damaged by child abort: %q %v", v, err)
	}
	parent.Commit()
}

func TestOpenSubtransactionGuards(t *testing.T) {
	s := NewStore(DetectDeadlock)
	parent := s.Begin()
	child, _ := parent.Begin()
	if _, err := parent.Begin(); err == nil {
		t.Fatal("second open subtransaction allowed")
	}
	if err := parent.Commit(); err == nil {
		t.Fatal("parent committed with open subtransaction")
	}
	child.Commit()
	if err := parent.Commit(); err != nil {
		t.Fatalf("commit after child closed: %v", err)
	}
}

func TestNestedDepth(t *testing.T) {
	s := NewStore(DetectDeadlock)
	top := s.Begin()
	cur := top
	for i := 0; i < 5; i++ {
		child, err := cur.Begin()
		if err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
		child.Set(fmt.Sprintf("k%d", i), []byte{byte(i)})
		cur = child
	}
	for cur != top {
		parent := cur.parent
		if err := cur.Commit(); err != nil {
			t.Fatal(err)
		}
		cur = parent
	}
	top.Commit()
	for i := 0; i < 5; i++ {
		if _, ok := s.ReadCommitted(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d lost", i)
		}
	}
}

func TestRunRetriesDeadlocks(t *testing.T) {
	s := NewStore(DetectDeadlock)
	seed := s.Begin()
	seed.Set("x", []byte{0})
	seed.Set("y", []byte{0})
	seed.Commit()

	// Two workers increment x and y in opposite orders: a deadlock
	// factory. Run's retry with back-off must get both through.
	inc := func(first, second string) func(tx *Tx) error {
		return func(tx *Tx) error {
			a, err := tx.Get(first)
			if err != nil {
				return err
			}
			if err := tx.Set(first, []byte{a[0] + 1}); err != nil {
				return err
			}
			b, err := tx.Get(second)
			if err != nil {
				return err
			}
			return tx.Set(second, []byte{b[0] + 1})
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	opts := RetryOptions{MaxAttempts: 50, BaseDelay: time.Millisecond}
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = s.Run(opts, inc("x", "y")) }()
		go func() { defer wg.Done(); errs[1] = s.Run(opts, inc("y", "x")) }()
		wg.Wait()
		if errs[0] != nil || errs[1] != nil {
			t.Fatalf("round %d: %v, %v", i, errs[0], errs[1])
		}
	}
	x, _ := s.ReadCommitted("x")
	y, _ := s.ReadCommitted("y")
	if x[0] != 20 || y[0] != 20 {
		t.Fatalf("x=%d y=%d, want 20,20 (lost updates)", x[0], y[0])
	}
}

func TestRunPropagatesAppError(t *testing.T) {
	s := NewStore(DetectDeadlock)
	boom := errors.New("boom")
	err := s.Run(RetryOptions{}, func(tx *Tx) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestSerializabilityCounter: concurrent read-modify-write increments
// must never lose an update under 2PL.
func TestSerializabilityCounter(t *testing.T) {
	for _, policy := range []Policy{DetectDeadlock, WaitDie} {
		s := NewStore(policy)
		seed := s.Begin()
		seed.Set("n", []byte{0, 0})
		seed.Commit()

		const workers, perWorker = 8, 10
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < perWorker; i++ {
					err := s.Run(RetryOptions{MaxAttempts: 200, Rand: rng}, func(tx *Tx) error {
						v, err := tx.Get("n")
						if err != nil {
							return err
						}
						n := int(v[0])<<8 | int(v[1])
						n++
						return tx.Set("n", []byte{byte(n >> 8), byte(n)})
					})
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
					}
				}
			}(w)
		}
		wg.Wait()
		v, _ := s.ReadCommitted("n")
		n := int(v[0])<<8 | int(v[1])
		if n != workers*perWorker {
			t.Fatalf("policy %v: counter = %d, want %d", policy, n, workers*perWorker)
		}
	}
}

func TestKeys(t *testing.T) {
	s := NewStore(DetectDeadlock)
	tx := s.Begin()
	tx.Set("a", nil)
	tx.Set("b", nil)
	tx.Commit()
	if len(s.Keys()) != 2 {
		t.Fatalf("Keys = %v", s.Keys())
	}
}

// Property: committed state equals a serial replay of the committed
// transactions' writes in commit order (single-writer sanity).
func TestQuickSerialEquivalence(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val byte
	}) bool {
		s := NewStore(DetectDeadlock)
		shadow := map[string][]byte{}
		for _, op := range ops {
			k := string([]byte{'k', op.Key % 4})
			err := s.Run(RetryOptions{}, func(tx *Tx) error {
				return tx.Set(k, []byte{op.Val})
			})
			if err != nil {
				return false
			}
			shadow[k] = []byte{op.Val}
		}
		for k, want := range shadow {
			got, ok := s.ReadCommitted(k)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
