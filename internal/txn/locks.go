package txn

import (
	"errors"
	"sync"

	"circus/internal/trace"
)

// Mode is a lock mode. Two-phase locking distinguishes read locks,
// which are compatible with one another, from exclusive write locks
// (§2.3.1: more sophisticated versions of two-phase locking allow
// operations that do not conflict to proceed concurrently).
type Mode int

const (
	// Read is a shared lock.
	Read Mode = iota
	// Write is an exclusive lock.
	Write
)

// ErrDeadlock reports that granting a lock would have created a cycle
// in the waits-for relation (§2.3.1); the requesting transaction
// should abort and retry, with binary exponential back-off under
// contention (§5.3.1).
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrWaitDie reports that a younger transaction tried to wait on an
// older one under the wait-die policy and must abort.
var ErrWaitDie = errors.New("txn: wait-die abort")

// Policy selects how lock conflicts that could deadlock are handled.
type Policy int

const (
	// DetectDeadlock builds the waits-for graph and aborts a
	// requester whose wait would close a cycle — the deadlock
	// detection of §2.3.1.
	DetectDeadlock Policy = iota
	// WaitDie is the timestamp-based prevention scheme of Rosenkrantz
	// et al. (§5.4): an older transaction may wait for a younger one,
	// but a younger transaction aborts instead of waiting. Transaction
	// IDs serve as timestamps.
	WaitDie
)

type waiter struct {
	tx    uint64
	mode  Mode
	ready chan struct{} // closed when granted
	err   error
}

type lockState struct {
	holders map[uint64]Mode
	queue   []*waiter
}

// LockManager implements two-phase locking over named objects with
// configurable deadlock handling.
type LockManager struct {
	policy Policy
	tr     trace.Sink // nil disables lock tracing

	mu    sync.Mutex
	locks map[string]*lockState
	// waitsFor[t] is the set of transactions t currently waits for —
	// the waits-for relation of §2.3.1.
	waitsFor map[uint64]map[uint64]bool
}

// NewLockManager returns an empty lock manager.
func NewLockManager(policy Policy) *LockManager {
	return &LockManager{
		policy:   policy,
		locks:    make(map[string]*lockState),
		waitsFor: make(map[uint64]map[uint64]bool),
	}
}

// SetTrace installs a sink recording lock grants and releases. Lock
// events carry the root transaction ID in Troupe, the object name in
// Detail, and the mode in N; they have no transport identity, so
// traces join them to call events by time and detail.
func (lm *LockManager) SetTrace(s trace.Sink) { lm.tr = s }

// Acquire obtains the lock on obj in the given mode on behalf of tx,
// blocking while conflicting transactions hold it. It returns
// ErrDeadlock (or ErrWaitDie) if waiting is not allowed.
// Reentrant acquisition and read-to-write upgrade are supported.
func (lm *LockManager) Acquire(tx uint64, obj string, mode Mode) error {
	lm.mu.Lock()
	ls, ok := lm.locks[obj]
	if !ok {
		ls = &lockState{holders: make(map[uint64]Mode)}
		lm.locks[obj] = ls
	}

	for {
		if lm.grantableLocked(ls, tx, mode) {
			if cur, held := ls.holders[tx]; !held || mode > cur {
				ls.holders[tx] = mode
			}
			lm.mu.Unlock()
			if lm.tr != nil {
				trace.Stamp(lm.tr, trace.Event{Kind: trace.KindLockAcquire,
					Troupe: tx, Detail: obj, N: int(mode)})
			}
			return nil
		}
		blockers := lm.blockersLocked(ls, tx, mode)
		if lm.policy == WaitDie {
			// Timestamps are transaction IDs: smaller is older. A
			// younger requester dies instead of waiting.
			for b := range blockers {
				if tx > b {
					lm.mu.Unlock()
					return ErrWaitDie
				}
			}
		} else {
			if lm.wouldDeadlockLocked(tx, blockers) {
				lm.mu.Unlock()
				return ErrDeadlock
			}
		}

		w := &waiter{tx: tx, mode: mode, ready: make(chan struct{})}
		ls.queue = append(ls.queue, w)
		if lm.waitsFor[tx] == nil {
			lm.waitsFor[tx] = make(map[uint64]bool)
		}
		for b := range blockers {
			lm.waitsFor[tx][b] = true
		}
		lm.mu.Unlock()

		<-w.ready

		lm.mu.Lock()
		delete(lm.waitsFor, tx)
		if w.err != nil {
			lm.mu.Unlock()
			return w.err
		}
		// Re-check; another waiter may have been granted first.
	}
}

// grantableLocked reports whether tx may take obj's lock in mode now.
func (lm *LockManager) grantableLocked(ls *lockState, tx uint64, mode Mode) bool {
	for holder, hmode := range ls.holders {
		if holder == tx {
			continue
		}
		if mode == Write || hmode == Write {
			return false
		}
	}
	// Fairness: a read must not overtake a queued write from another
	// transaction (writer starvation), except when tx already holds
	// the lock (upgrade priority).
	if _, held := ls.holders[tx]; !held && mode == Read {
		for _, w := range ls.queue {
			if w.tx != tx && w.mode == Write {
				return false
			}
		}
	}
	return true
}

// blockersLocked returns the transactions tx would wait for.
func (lm *LockManager) blockersLocked(ls *lockState, tx uint64, mode Mode) map[uint64]bool {
	blockers := make(map[uint64]bool)
	for holder, hmode := range ls.holders {
		if holder == tx {
			continue
		}
		if mode == Write || hmode == Write {
			blockers[holder] = true
		}
	}
	if _, held := ls.holders[tx]; !held && mode == Read {
		for _, w := range ls.queue {
			if w.tx != tx && w.mode == Write {
				blockers[w.tx] = true
			}
		}
	}
	return blockers
}

// wouldDeadlockLocked reports whether adding edges tx→blockers closes
// a cycle in the waits-for graph.
func (lm *LockManager) wouldDeadlockLocked(tx uint64, blockers map[uint64]bool) bool {
	// DFS from each blocker looking for tx.
	seen := make(map[uint64]bool)
	var stack []uint64
	for b := range blockers {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == tx {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := range lm.waitsFor[cur] {
			stack = append(stack, next)
		}
	}
	return false
}

// ReleaseAll releases every lock held by tx and wakes eligible
// waiters; 2PL requires each transaction to hold all locks until it
// commits or aborts (§2.3.1).
func (lm *LockManager) ReleaseAll(tx uint64) {
	if lm.tr != nil {
		trace.Stamp(lm.tr, trace.Event{Kind: trace.KindLockRelease, Troupe: tx})
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.waitsFor, tx)
	for obj, ls := range lm.locks {
		delete(ls.holders, tx)
		lm.wakeLocked(ls)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(lm.locks, obj)
		}
	}
	// Remove tx from other transactions' waits-for sets: they no
	// longer wait for it.
	for _, deps := range lm.waitsFor {
		delete(deps, tx)
	}
}

// wakeLocked grants queue entries that are now compatible, in FIFO
// order.
func (lm *LockManager) wakeLocked(ls *lockState) {
	var remaining []*waiter
	for i, w := range ls.queue {
		// Temporarily hide w from the queue so grantableLocked's
		// queued-writer check does not see w itself.
		rest := append(append([]*waiter(nil), ls.queue[:i]...), ls.queue[i+1:]...)
		saved := ls.queue
		ls.queue = rest
		ok := lm.grantableLocked(ls, w.tx, w.mode)
		ls.queue = saved
		if ok {
			if cur, held := ls.holders[w.tx]; !held || w.mode > cur {
				ls.holders[w.tx] = w.mode
			}
			close(w.ready)
		} else {
			remaining = append(remaining, w)
		}
	}
	ls.queue = remaining
}

// Held reports whether tx currently holds a lock on obj (for tests).
func (lm *LockManager) Held(tx uint64, obj string) (Mode, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	ls, ok := lm.locks[obj]
	if !ok {
		return 0, false
	}
	m, ok := ls.holders[tx]
	return m, ok
}
