package txn

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"circus/internal/collate"
	"circus/internal/core"
	"circus/internal/trace"
	"circus/internal/wire"
)

// This file implements the ordered broadcast protocol of §5.4 (Figure
// 5.1), the basis of the starvation-free replicated concurrency
// control scheme: all members of a troupe accept broadcast messages
// for application-level processing in the same order, so a
// deterministic local concurrency control algorithm (here: serial
// execution in acceptance order) keeps the troupe consistent.
//
// The protocol is Skeen's two-phase algorithm: the client asks every
// member for a proposed time (get_proposed_time), takes the maximum,
// and tells every member to accept the message at that time
// (accept_time). A member releases the head of its queue for
// processing only once the head is accepted and no pending proposal
// could still be ordered before it. Clocks are Lamport logical clocks,
// which satisfy the synchronized-clock assumption of §5.4 without
// real synchronized hardware.

// Procedure numbers of the ordered broadcast interface (Figure 5.1).
const (
	ProcGetProposedTime uint16 = 1
	ProcAcceptTime      uint16 = 2
)

type proposeArgs struct {
	MsgID string
	Msg   []byte
}

type acceptArgs struct {
	MsgID string
	Time  uint64
}

type bcastStatus int

const (
	statusProposed bcastStatus = iota
	statusAccepted
)

type bcastEntry struct {
	msgID  string
	msg    []byte
	time   uint64
	status bcastStatus
}

// Queue is one troupe member's message queue, ordered by time with
// message ID as the tiebreak. Deliver is invoked, in acceptance order
// and on a single goroutine, for each message released for
// application-level processing.
type Queue struct {
	tr trace.Sink // nil disables accept-order tracing

	mu      sync.Mutex
	clock   uint64
	entries []*bcastEntry // sorted by (time, msgID)
	deliver func(msgID string, msg []byte)
}

// NewQueue returns a queue delivering to the given function.
func NewQueue(deliver func(msgID string, msg []byte)) *Queue {
	return &Queue{deliver: deliver}
}

// SetTrace installs a sink recording each message's release for
// application-level processing in acceptance order: the message ID in
// Detail, the accepted Lamport time in N. Comparing the accept-order
// events of all members checks the §5.4 agreement property offline.
func (q *Queue) SetTrace(s trace.Sink) { q.tr = s }

// Propose implements get_proposed_time: the message is inserted with a
// proposed time from the local clock, which is returned.
func (q *Queue) Propose(msgID string, msg []byte) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.clock++
	e := &bcastEntry{msgID: msgID, msg: msg, time: q.clock, status: statusProposed}
	q.insertLocked(e)
	return e.time
}

// Accept implements accept_time: the message's status becomes accepted
// and its queue position moves to the accepted time; any releasable
// prefix of the queue is delivered.
func (q *Queue) Accept(msgID string, t uint64) error {
	q.mu.Lock()
	var e *bcastEntry
	for i, x := range q.entries {
		if x.msgID == msgID {
			e = x
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			break
		}
	}
	if e == nil {
		q.mu.Unlock()
		return fmt.Errorf("txn: accept_time for unknown message %q", msgID)
	}
	e.time = t
	e.status = statusAccepted
	q.insertLocked(e)
	// Advance the clock past the accepted time so later proposals sort
	// after already-accepted messages (Lamport's rule).
	if t > q.clock {
		q.clock = t
	}
	var release []*bcastEntry
	for len(q.entries) > 0 && q.entries[0].status == statusAccepted {
		release = append(release, q.entries[0])
		q.entries = q.entries[1:]
	}
	q.mu.Unlock()

	for _, r := range release {
		if q.tr != nil {
			trace.Stamp(q.tr, trace.Event{Kind: trace.KindAcceptOrder,
				Detail: r.msgID, N: int(r.time)})
		}
		q.deliver(r.msgID, r.msg)
	}
	return nil
}

func (q *Queue) insertLocked(e *bcastEntry) {
	i := sort.Search(len(q.entries), func(i int) bool {
		x := q.entries[i]
		if x.time != e.time {
			return x.time > e.time
		}
		return x.msgID > e.msgID
	})
	q.entries = append(q.entries, nil)
	copy(q.entries[i+1:], q.entries[i:])
	q.entries[i] = e
}

// Pending returns the number of queued, undelivered messages.
func (q *Queue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// Module wraps a Queue as a core.Module exporting the two procedures
// of Figure 5.1. Export it with the default options; the proposals it
// returns legitimately differ between members, so clients collate them
// with the maximum rather than unanimously.
type Module struct {
	Queue *Queue
}

var _ core.Module = (*Module)(nil)

// Dispatch implements core.Module.
func (m *Module) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcGetProposedTime:
		var a proposeArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return wire.Marshal(m.Queue.Propose(a.MsgID, a.Msg))
	case ProcAcceptTime:
		var a acceptArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		if err := m.Queue.Accept(a.MsgID, a.Time); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, core.ErrNoSuchProc
	}
}

// Broadcast performs the client side of Figure 5.1's atomic_broadcast:
// a replicated call collecting every member's proposed time, then a
// second replicated call accepting the maximum. msgID must be unique
// among all broadcasts to the troupe (a thread ID plus sequence number
// suffices).
func Broadcast(ctx context.Context, rt *core.Runtime, dest core.Troupe, msgID string, msg []byte) error {
	pArgs, err := wire.Marshal(proposeArgs{MsgID: msgID, Msg: msg})
	if err != nil {
		return err
	}
	// Proposals differ per member: collate with max over all replies.
	maxCollator := func(n int) collate.Collator {
		return collate.New(n, func(items []collate.Item) ([]byte, error) {
			var max uint64
			ok := false
			for _, it := range items {
				if it.Err != nil {
					continue
				}
				var t uint64
				if err := wire.Unmarshal(it.Data, &t); err != nil {
					return nil, err
				}
				if t > max {
					max = t
				}
				ok = true
			}
			if !ok {
				return nil, collate.ErrAllFailed
			}
			return wire.Marshal(max)
		})
	}
	res, err := rt.Call(ctx, dest, ProcGetProposedTime, pArgs, core.CallOptions{Collator: maxCollator})
	if err != nil {
		return fmt.Errorf("txn: get_proposed_time: %w", err)
	}
	var max uint64
	if err := wire.Unmarshal(res, &max); err != nil {
		return err
	}

	aArgs, err := wire.Marshal(acceptArgs{MsgID: msgID, Time: max})
	if err != nil {
		return err
	}
	if _, err := rt.Call(ctx, dest, ProcAcceptTime, aArgs, core.CallOptions{}); err != nil {
		return fmt.Errorf("txn: accept_time: %w", err)
	}
	return nil
}
