package txn

import (
	"fmt"
	"sync"
	"testing"

	"circus/internal/wal"
)

func openDurable(t *testing.T, mfs *wal.MemFS, snapshotEvery int) *Store {
	t.Helper()
	log, rec, err := wal.Open(wal.Options{FS: mfs, SegmentBytes: 4096, SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := OpenDurableStore(DetectDeadlock, log, rec)
	if err != nil {
		t.Fatalf("OpenDurableStore: %v", err)
	}
	return s
}

func mustCommit(t *testing.T, s *Store, kv map[string]string, del ...string) {
	t.Helper()
	tx := s.Begin()
	for k, v := range kv {
		if err := tx.Set(k, []byte(v)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	for _, k := range del {
		if err := tx.Delete(k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// powerLoss simulates losing the process and the page cache, then
// recovers the store from its own log.
func powerLoss(t *testing.T, mfs *wal.MemFS, s *Store) {
	t.Helper()
	mfs.Crash()
	mfs.Restart()
	rec, err := s.WAL().Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if err := s.Recover(rec); err != nil {
		t.Fatalf("Recover: %v", err)
	}
}

func TestDurableStoreSurvivesPowerLoss(t *testing.T) {
	mfs := wal.NewMemFS(1)
	s := openDurable(t, mfs, 0)
	mustCommit(t, s, map[string]string{"a": "1", "b": "2"})
	mustCommit(t, s, map[string]string{"b": "3"})
	mustCommit(t, s, nil, "a")

	powerLoss(t, mfs, s)

	if _, ok := s.ReadCommitted("a"); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
	if v, ok := s.ReadCommitted("b"); !ok || string(v) != "3" {
		t.Fatalf("b = %q, %v after recovery; want \"3\"", v, ok)
	}
}

func TestDurableStoreUncommittedNeverRecovered(t *testing.T) {
	mfs := wal.NewMemFS(2)
	s := openDurable(t, mfs, 0)
	mustCommit(t, s, map[string]string{"committed": "yes"})
	tx := s.Begin()
	if err := tx.Set("tentative", []byte("no")); err != nil {
		t.Fatal(err)
	}
	// The transaction never commits: power loss.
	powerLoss(t, mfs, s)
	if _, ok := s.ReadCommitted("tentative"); ok {
		t.Fatal("uncommitted write recovered")
	}
	if v, ok := s.ReadCommitted("committed"); !ok || string(v) != "yes" {
		t.Fatalf("committed = %q, %v", v, ok)
	}
}

func TestDurableStoreSnapshotCompactsAndRecovers(t *testing.T) {
	mfs := wal.NewMemFS(3)
	s := openDurable(t, mfs, 10)
	for i := 0; i < 50; i++ {
		mustCommit(t, s, map[string]string{fmt.Sprintf("k%02d", i): fmt.Sprintf("v%d", i)})
	}
	if st := s.WAL().Stats(); st.Snapshots == 0 {
		t.Fatal("no snapshot taken across 50 commits with SnapshotEvery=10")
	}
	powerLoss(t, mfs, s)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		if v, ok := s.ReadCommitted(k); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q, %v after snapshot recovery", k, v, ok)
		}
	}
}

// TestDurableStoreApplyOrderMatchesLogOrder drives concurrent
// committers over the same keys and checks that replay reproduces
// memory exactly — the property the append-under-store-mutex ordering
// exists for.
func TestDurableStoreApplyOrderMatchesLogOrder(t *testing.T) {
	mfs := wal.NewMemFS(4)
	s := openDurable(t, mfs, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("shared-%d", i%5)
				_ = s.Run(RetryOptions{}, func(tx *Tx) error {
					return tx.Set(key, []byte(fmt.Sprintf("g%d-i%d", g, i)))
				})
			}
		}(g)
	}
	wg.Wait()

	before := make(map[string]string)
	for _, k := range s.Keys() {
		v, _ := s.ReadCommitted(k)
		before[k] = string(v)
	}

	powerLoss(t, mfs, s)

	for k, want := range before {
		if v, ok := s.ReadCommitted(k); !ok || string(v) != want {
			t.Fatalf("%s = %q, %v after replay; memory had %q", k, v, ok, want)
		}
	}
	if got := len(s.Keys()); got != len(before) {
		t.Fatalf("recovered %d keys, memory had %d", got, len(before))
	}
}

func TestDurableStoreFsyncFailureFailsCommit(t *testing.T) {
	mfs := wal.NewMemFS(5)
	s := openDurable(t, mfs, 0)
	mustCommit(t, s, map[string]string{"a": "1"})
	mfs.FailSyncs(true)
	tx := s.Begin()
	if err := tx.Set("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit acknowledged under failing fsync")
	}
	mfs.FailSyncs(false)
	// The store is not wedged: later commits succeed and recovery
	// holds every acknowledged write.
	mustCommit(t, s, map[string]string{"c": "3"})
	powerLoss(t, mfs, s)
	if v, ok := s.ReadCommitted("a"); !ok || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if v, ok := s.ReadCommitted("c"); !ok || string(v) != "3" {
		t.Fatalf("c = %q, %v", v, ok)
	}
}
