package txn

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"circus/internal/collate"
	"circus/internal/core"
	"circus/internal/thread"
	"circus/internal/transport"
	"circus/internal/wire"
)

// This file assembles Chapter 5 end to end: a replicated transactional
// store. StoreModule is the server troupe member — an ordinary
// transactional store whose commits run the troupe commit protocol of
// §5.3 — and RemoteStore is the client library that brackets a
// sequence of replicated calls into one transaction, retrying
// deadlock-aborted rounds with binary exponential back-off (§5.3.1).
//
// A transaction is identified by the distributed thread performing it
// (§3.4.1): every member sees the same thread ID on every operation of
// the transaction, so the members' transaction tables stay aligned
// with no communication among them.

// Procedure numbers of the replicated store interface.
const (
	ProcTxGet    uint16 = 1
	ProcTxSet    uint16 = 2
	ProcTxDelete uint16 = 3
	ProcTxCommit uint16 = 4
	ProcTxAbort  uint16 = 5
)

// Error strings crossing the wire (AppError payloads).
const (
	errDeadlockWire = "txn: deadlock detected"
	errNoTxWire     = "txn: no active transaction"
)

// ErrAborted reports that the troupe commit round decided to abort.
var ErrAborted = errors.New("txn: transaction aborted by troupe commit")

type wireAddr struct {
	Host   uint32
	Port   uint16
	Module uint16
}

type keyArgs struct {
	Key string
}

type setArgs struct {
	Key string
	Val []byte
}

type getReply struct {
	Found bool
	Val   []byte
}

type commitArgs struct {
	Coord []wireAddr
}

// StoreModule is one server troupe member of a replicated
// transactional store. Export it on each member's runtime; all members
// start from the same (empty) state and stay consistent because the
// troupe commit protocol permits two transactions to commit only when
// every member serializes them in the same order (Theorem 5.1).
type StoreModule struct {
	store *Store

	mu  sync.Mutex
	txs map[thread.ID]*memberTx
	ttl time.Duration
	now func() time.Time
}

type memberTx struct {
	tx       *Tx
	lastUsed time.Time
	// doomed marks a transaction whose serialization diverged at this
	// member (a local deadlock abort while other members proceeded):
	// the member keeps the record so that at commit time it votes
	// ready_to_commit(false), turning the divergence into a collective
	// abort (§5.3).
	doomed bool
}

// NewStoreModule wraps a store as a replicated module. Transactions
// idle longer than ttl are aborted (their initiator is presumed
// crashed; the troupe masks it, §5.2); zero means 30 seconds.
func NewStoreModule(store *Store, ttl time.Duration) *StoreModule {
	if ttl == 0 {
		ttl = 30 * time.Second
	}
	return &StoreModule{
		store: store,
		txs:   make(map[thread.ID]*memberTx),
		ttl:   ttl,
		now:   time.Now,
	}
}

// Store returns the underlying local store (for tests and state
// transfer).
func (m *StoreModule) Store() *Store { return m.store }

var _ core.Module = (*StoreModule)(nil)

// tx returns the calling thread's transaction, beginning one on first
// use; transactions nest per thread, not per call, because the thread
// is the unit of sequential computation (§3.2).
func (m *StoreModule) tx(id thread.ID, begin bool) (*memberTx, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	if at, ok := m.txs[id]; ok {
		at.lastUsed = m.now()
		return at, nil
	}
	if !begin {
		return nil, errors.New(errNoTxWire)
	}
	t := m.store.Begin()
	at := &memberTx{tx: t, lastUsed: m.now()}
	m.txs[id] = at
	return at, nil
}

// opFailed records the outcome of a transactional operation: a
// serialization failure (deadlock, wait-die) dooms the member's
// transaction so the forthcoming commit round aborts everywhere.
func (m *StoreModule) opFailed(id thread.ID, err error) error {
	if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrWaitDie) || errors.Is(err, ErrTxDone) {
		m.mu.Lock()
		if at, ok := m.txs[id]; ok {
			at.doomed = true
		}
		m.mu.Unlock()
	}
	return err
}

func (m *StoreModule) drop(id thread.ID) {
	m.mu.Lock()
	delete(m.txs, id)
	m.mu.Unlock()
}

// expireLocked aborts transactions whose initiator has gone quiet.
func (m *StoreModule) expireLocked() {
	cutoff := m.now().Add(-m.ttl)
	for id, at := range m.txs {
		if at.lastUsed.Before(cutoff) {
			at.tx.Abort()
			delete(m.txs, id)
		}
	}
}

// ActiveTransactions reports how many transactions are open (tests).
func (m *StoreModule) ActiveTransactions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.txs)
}

// Dispatch implements core.Module.
func (m *StoreModule) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	id := call.Thread().ID()
	switch proc {
	case ProcTxGet:
		var a keyArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		at, err := m.tx(id, true)
		if err != nil {
			return nil, err
		}
		v, err := at.tx.Get(a.Key)
		switch {
		case errors.Is(err, ErrNotFound):
			return wire.Marshal(getReply{})
		case err != nil:
			return nil, m.opFailed(id, err)
		default:
			return wire.Marshal(getReply{Found: true, Val: v})
		}
	case ProcTxSet:
		var a setArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		at, err := m.tx(id, true)
		if err != nil {
			return nil, err
		}
		if err := at.tx.Set(a.Key, a.Val); err != nil {
			return nil, m.opFailed(id, err)
		}
		return nil, nil
	case ProcTxDelete:
		var a keyArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		at, err := m.tx(id, true)
		if err != nil {
			return nil, err
		}
		if err := at.tx.Delete(a.Key); err != nil {
			return nil, m.opFailed(id, err)
		}
		return nil, nil
	case ProcTxCommit:
		var a commitArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return m.commit(call, id, a)
	case ProcTxAbort:
		at, err := m.tx(id, false)
		if err != nil {
			return wire.Marshal(false) // nothing to abort: idempotent
		}
		m.drop(id)
		at.tx.Abort()
		return wire.Marshal(true)
	default:
		return nil, core.ErrNoSuchProc
	}
}

// commit runs the member's half of the troupe commit protocol (§5.3):
// ready_to_commit at the coordinator, then commit or abort locally
// according to the collective verdict.
func (m *StoreModule) commit(call *core.ServerCall, id thread.ID, a commitArgs) ([]byte, error) {
	at, err := m.tx(id, false)
	if err != nil {
		return nil, err
	}
	coord := core.Troupe{}
	for _, w := range a.Coord {
		coord.Members = append(coord.Members, core.ModuleAddr{
			Addr:   transport.Addr{Host: w.Host, Port: w.Port},
			Module: w.Module,
		})
	}
	txKey := fmt.Sprintf("%d/%d", id.Host, id.Proc)
	// A member whose serialization diverged votes false (§5.3): the
	// ready_to_commit argument is the member's readiness, and any
	// false vote aborts the transaction at every member.
	doCommit, err := ReadyToCommit(call, coord, txKey, !at.doomed)
	if err != nil {
		// The call-back itself failed; the safe unilateral decision is
		// abort — the coordinator told no one to commit.
		m.drop(id)
		at.tx.Abort()
		return nil, err
	}
	m.drop(id)
	if !doCommit {
		at.tx.Abort()
		return wire.Marshal(false)
	}
	if err := at.tx.Commit(); err != nil {
		return nil, err
	}
	return wire.Marshal(true)
}

// GetState / SetState implement core.StateProvider: the committed
// store contents transfer to a joining member (§6.4.1). In-flight
// transactions do not transfer; get_state runs as a read-only snapshot
// of committed state.
func (m *StoreModule) GetState() ([]byte, error) {
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	return wire.Marshal(m.store.data)
}

// SetState implements core.StateProvider.
func (m *StoreModule) SetState(b []byte) error {
	data := make(map[string][]byte)
	if err := wire.Unmarshal(b, &data); err != nil {
		return err
	}
	m.store.mu.Lock()
	m.store.data = data
	m.store.mu.Unlock()
	return nil
}

// RemoteStore is the client library of the replicated transactional
// store: it owns a coordinator module (exported on the client's
// runtime) and brackets bodies of Get/Set/Delete calls into
// transactions committed by the troupe commit protocol.
type RemoteStore struct {
	rt        *core.Runtime
	dest      core.Troupe
	coord     []wireAddr
	opTimeout time.Duration
}

// SetOpTimeout bounds each transactional operation. A blocked
// operation usually means the transaction is waiting on a lock held by
// a conflicting transaction — possibly a distributed deadlock no
// single member can see — so the client aborts and retries after the
// bound, the client-side half of §5.3's deadlock-to-abort
// transformation. Zero restores the 5-second default.
func (rs *RemoteStore) SetOpTimeout(d time.Duration) {
	if d == 0 {
		d = 5 * time.Second
	}
	rs.opTimeout = d
}

// NewRemoteStore prepares a client of the replicated store at dest.
// resolver must be able to resolve dest.ID (it is how the coordinator
// learns how many member votes to await); it is typically the same
// resolver the runtime uses.
func NewRemoteStore(rt *core.Runtime, dest core.Troupe, resolver core.Resolver) *RemoteStore {
	coordAddr := rt.Export(NewCoordinator(resolver), CoordinatorExportOptions())
	return &RemoteStore{
		rt:        rt,
		dest:      dest,
		opTimeout: 5 * time.Second,
		coord: []wireAddr{{
			Host:   coordAddr.Addr.Host,
			Port:   coordAddr.Addr.Port,
			Module: coordAddr.Module,
		}},
	}
}

// strictCollator is the waiting policy for transactional operations:
// unlike the crash-masking unanimous default, an application-level
// error at ANY member fails the operation. Members choose their own
// deadlock victims, so one member may abort an acquisition that
// another granted; proceeding on the majority would let the members'
// workspaces diverge. The failed operation aborts the transaction
// everywhere and the round is retried (§5.3).
func strictCollator(n int) collate.Collator {
	return collate.New(n, func(items []collate.Item) ([]byte, error) {
		var first []byte
		have := false
		for _, it := range items {
			if it.Err != nil {
				// Only a presumed crash is masked (§4.3.1). Any other
				// per-member failure — an application error such as a
				// deadlock abort, or a timeout on a blocked lock —
				// must fail the whole operation: the member's
				// workspace no longer matches the others', and
				// proceeding would let the troupe diverge.
				if errors.Is(it.Err, core.ErrMemberDown) {
					continue
				}
				return nil, it.Err
			}
			if !have {
				first, have = it.Data, true
			} else if !bytes.Equal(first, it.Data) {
				return nil, collate.ErrDisagreement
			}
		}
		if !have {
			return nil, collate.ErrAllFailed
		}
		return first, nil
	})
}

// RemoteTx is one transaction attempt. Its operations are replicated
// calls sharing one distributed thread, so every member associates
// them with the same transaction (§3.4.1).
type RemoteTx struct {
	rs  *RemoteStore
	ctx context.Context
	tc  *thread.Context
}

func (tx *RemoteTx) call(proc uint16, args any) ([]byte, error) {
	data, err := wire.Marshal(args)
	if err != nil {
		return nil, err
	}
	return tx.rs.rt.Call(tx.ctx, tx.rs.dest, proc, data, core.CallOptions{
		Thread:   tx.tc,
		Timeout:  tx.rs.opTimeout,
		Collator: strictCollator,
	})
}

// Get reads a key under the transaction's read lock at every member.
func (tx *RemoteTx) Get(key string) ([]byte, bool, error) {
	res, err := tx.call(ProcTxGet, keyArgs{Key: key})
	if err != nil {
		return nil, false, err
	}
	var rep getReply
	if err := wire.Unmarshal(res, &rep); err != nil {
		return nil, false, err
	}
	return rep.Val, rep.Found, nil
}

// Set tentatively writes a key at every member.
func (tx *RemoteTx) Set(key string, val []byte) error {
	_, err := tx.call(ProcTxSet, setArgs{Key: key, Val: val})
	return err
}

// Delete tentatively removes a key at every member.
func (tx *RemoteTx) Delete(key string) error {
	_, err := tx.call(ProcTxDelete, keyArgs{Key: key})
	return err
}

// abort tells every member to discard the transaction; errors are
// ignored (the member TTL sweeper is the backstop).
func (tx *RemoteTx) abort() {
	tx.call(ProcTxAbort, struct{}{})
}

// commit runs the troupe commit round and reports the verdict.
func (tx *RemoteTx) commit() (bool, error) {
	res, err := tx.call(ProcTxCommit, commitArgs{Coord: tx.rs.coord})
	if err != nil {
		return false, err
	}
	var ok bool
	if err := wire.Unmarshal(res, &ok); err != nil {
		return false, err
	}
	return ok, nil
}

// retryable reports whether a failed round should be retried: deadlock
// aborts (transformed serialization divergence, §5.3) and commit-round
// aborts are; application errors are not.
func retryable(err error) bool {
	if errors.Is(err, ErrAborted) || errors.Is(err, collate.ErrDisagreement) ||
		errors.Is(err, collate.ErrAllFailed) {
		return true
	}
	var app *core.AppError
	if errors.As(err, &app) {
		return strings.Contains(app.Msg, errDeadlockWire) ||
			strings.Contains(app.Msg, "wait-die") ||
			strings.Contains(app.Msg, errNoTxWire) || // member reaped an idle tx (TTL)
			strings.Contains(app.Msg, ErrTxDone.Error()) ||
			strings.Contains(app.Msg, context.DeadlineExceeded.Error())
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// Run executes body as a replicated transaction: on nil return it runs
// the troupe commit protocol; deadlocks and commit aborts are retried
// with binary exponential back-off (§5.3.1). Each attempt uses a fresh
// distributed thread, which is what makes the retry a new transaction.
func (rs *RemoteStore) Run(ctx context.Context, opts RetryOptions, body func(tx *RemoteTx) error) error {
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 10
	}
	if opts.BaseDelay == 0 {
		opts.BaseDelay = 5 * time.Millisecond
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	delay := opts.BaseDelay
	var last error
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		tx := &RemoteTx{rs: rs, ctx: ctx, tc: rs.rt.NewThread()}
		err := body(tx)
		if err != nil {
			tx.abort()
			if !retryable(err) {
				return err
			}
			last = err
		} else {
			ok, cerr := tx.commit()
			if cerr == nil && ok {
				return nil
			}
			if cerr != nil && !retryable(cerr) {
				return cerr
			}
			if cerr == nil {
				last = ErrAborted
			} else {
				last = cerr
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(rng.Int63n(int64(delay) + 1))):
		}
		delay *= 2
	}
	return fmt.Errorf("txn: giving up after %d attempts: %w", opts.MaxAttempts, last)
}
