// Package thread implements distributed threads of control (§3.2) and
// the thread ID propagation algorithm of §3.4.1.
//
// A thread begins in a base process; its ID is the machine ID plus the
// local process ID of that base process, and every call message bears
// the ID so that all call-stack segments of the distributed thread
// share it. In addition to the paper's ID, each call carries a call
// path: the sequence of per-frame call counters from the base of the
// stack down to the current call. Two call messages are part of the
// same replicated call if and only if they bear the same thread ID and
// call path — the call path plays the role of the paper's
// deterministic per-process call sequence number (§4.3.2), made
// hierarchical because a Go process multiplexes many threads over one
// endpoint where Circus ran one process per thread.
package thread

import (
	"context"
	"fmt"
	"sync"

	"circus/internal/wire"
)

// ID uniquely identifies a distributed thread: the machine ID and
// local process ID of its base process (§3.4.1).
type ID struct {
	Host uint32
	Proc uint32
}

func (id ID) String() string { return fmt.Sprintf("thread(%d/%d)", id.Host, id.Proc) }

// Context is the per-segment bookkeeping of a distributed thread: the
// propagated ID, the call path prefix of the frame being executed, and
// the counter of calls made from this frame. Deterministic replicas
// executing the same frame allocate identical call paths, which is
// what lets a server collate the call messages of a replicated call
// (§4.3.2).
type Context struct {
	id     ID
	prefix []uint32

	mu   sync.Mutex
	next uint32
}

// NewRoot starts a fresh thread in a base process.
func NewRoot(id ID) *Context {
	return &Context{id: id}
}

// Child returns the context a server uses while executing an incoming
// call: same thread ID, prefix equal to the incoming call path, so
// that nested calls extend the path (§3.4.1: the server process
// assumes the caller's thread ID for the duration of the procedure).
func Child(id ID, path []uint32) *Context {
	prefix := append([]uint32(nil), path...)
	return &Context{id: id, prefix: prefix}
}

// ID returns the thread ID.
func (c *Context) ID() ID { return c.id }

// Key renders the thread ID and call path prefix of the frame as an
// opaque map key. Executions of the same replicated call at different
// troupe members carry equal thread IDs and call paths (§4.3.2), so
// their Keys are equal — which lets instrumented modules verify
// exactly-once execution per replicated call.
func (c *Context) Key() string { return PathKey(c.id, c.prefix) }

// NextCallPath allocates the call path for the next call made from
// this frame. Replicas in the same state calling in the same order get
// the same paths.
func (c *Context) NextCallPath() []uint32 {
	c.mu.Lock()
	c.next++
	n := c.next
	c.mu.Unlock()
	path := make([]uint32, len(c.prefix)+1)
	copy(path, c.prefix)
	path[len(c.prefix)] = n
	return path
}

// PathKey renders a thread ID and call path as a map key.
func PathKey(id ID, path []uint32) string {
	e := wire.NewEncoder()
	e.PutUint32(id.Host)
	e.PutUint32(id.Proc)
	for _, p := range path {
		e.PutUint32(p)
	}
	return string(e.Bytes())
}

type ctxKey struct{}

// NewContext attaches a thread context to a context.Context, the Go
// stand-in for the implicit extra parameter the paper threads through
// every remote procedure (§3.4.1).
func NewContext(parent context.Context, tc *Context) context.Context {
	return context.WithValue(parent, ctxKey{}, tc)
}

// FromContext extracts the thread context, or nil if none is attached.
func FromContext(ctx context.Context) *Context {
	tc, _ := ctx.Value(ctxKey{}).(*Context)
	return tc
}
