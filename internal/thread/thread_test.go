package thread

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

func TestRootPaths(t *testing.T) {
	c := NewRoot(ID{Host: 1, Proc: 2})
	if got := c.NextCallPath(); !reflect.DeepEqual(got, []uint32{1}) {
		t.Fatalf("first path = %v, want [1]", got)
	}
	if got := c.NextCallPath(); !reflect.DeepEqual(got, []uint32{2}) {
		t.Fatalf("second path = %v, want [2]", got)
	}
}

func TestChildExtendsPath(t *testing.T) {
	c := Child(ID{Host: 1, Proc: 2}, []uint32{3, 1})
	if got := c.NextCallPath(); !reflect.DeepEqual(got, []uint32{3, 1, 1}) {
		t.Fatalf("nested path = %v, want [3 1 1]", got)
	}
	if c.ID() != (ID{Host: 1, Proc: 2}) {
		t.Fatalf("thread ID not propagated: %v", c.ID())
	}
}

func TestChildCopiesPath(t *testing.T) {
	path := []uint32{5}
	c := Child(ID{}, path)
	path[0] = 99
	if got := c.NextCallPath(); !reflect.DeepEqual(got, []uint32{5, 1}) {
		t.Fatalf("child shares caller's slice: %v", got)
	}
}

func TestDeterministicReplicas(t *testing.T) {
	// Two replicas executing the same frame must allocate identical
	// call paths — the property §4.3.2's matching depends on.
	a := Child(ID{Host: 9, Proc: 1}, []uint32{4})
	b := Child(ID{Host: 9, Proc: 1}, []uint32{4})
	for i := 0; i < 10; i++ {
		pa, pb := a.NextCallPath(), b.NextCallPath()
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("replica paths diverged: %v vs %v", pa, pb)
		}
	}
}

func TestPathKeyDistinguishes(t *testing.T) {
	id1 := ID{Host: 1, Proc: 1}
	id2 := ID{Host: 1, Proc: 2}
	seen := map[string]bool{
		PathKey(id1, []uint32{1}):    true,
		PathKey(id1, []uint32{2}):    true,
		PathKey(id1, []uint32{1, 1}): true,
		PathKey(id2, []uint32{1}):    true,
	}
	if len(seen) != 4 {
		t.Fatalf("PathKey collisions: %d distinct of 4", len(seen))
	}
	if PathKey(id1, []uint32{7}) != PathKey(id1, []uint32{7}) {
		t.Fatal("PathKey not stable")
	}
}

func TestContextPropagation(t *testing.T) {
	tc := NewRoot(ID{Host: 3, Proc: 4})
	ctx := NewContext(context.Background(), tc)
	if got := FromContext(ctx); got != tc {
		t.Fatalf("FromContext = %v, want %v", got, tc)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
}

func TestConcurrentNextCallPath(t *testing.T) {
	c := NewRoot(ID{Host: 1, Proc: 1})
	const n = 64
	var wg sync.WaitGroup
	paths := make(chan uint32, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := c.NextCallPath()
			paths <- p[0]
		}()
	}
	wg.Wait()
	close(paths)
	seen := map[uint32]bool{}
	for p := range paths {
		if seen[p] {
			t.Fatalf("duplicate call number %d", p)
		}
		seen[p] = true
	}
}
