package transport

import (
	"sync"
	"sync/atomic"
)

// Buf is a pooled, reference-counted datagram buffer, the memory unit
// of the zero-alloc receive path. A transport that delivers packets
// from a BufPool hands each receiver a Buf alongside the payload
// slice; the receiver calls Release when the bytes are dead, which
// returns the buffer to its pool for reuse, and Retain when it stores
// an alias that outlives the current handler.
//
// Releasing is an optimization, never an obligation: a Buf whose
// references are dropped on the floor is simply collected by the
// garbage collector (the pool holds no link to outstanding buffers),
// so forgetting a Release can never corrupt data — it only forfeits
// reuse. The dangerous direction is over-releasing: a Release without
// a matching reference hands the buffer back to the pool while bytes
// are still aliased, so Retain/Release must pair exactly.
type Buf struct {
	refs atomic.Int32
	pool *BufPool
	data [MaxDatagram]byte
}

// Bytes returns the buffer's full storage; producers fill a prefix and
// deliver Bytes()[:n] as the packet payload.
func (b *Buf) Bytes() []byte { return b.data[:] }

// Retain adds a reference: one more Release is required before the
// buffer returns to its pool.
func (b *Buf) Retain() { b.refs.Add(1) }

// Release drops one reference, recycling the buffer when the last
// holder lets go. Calling it with no outstanding reference is a bug.
func (b *Buf) Release() {
	if b.refs.Add(-1) == 0 {
		b.pool.put(b)
	}
}

// BufPool is a free list of datagram buffers. The zero value is ready
// to use.
type BufPool struct {
	p sync.Pool
}

// Get returns a buffer with one reference held by the caller.
func (p *BufPool) Get() *Buf {
	if v := p.p.Get(); v != nil {
		b := v.(*Buf)
		b.refs.Store(1)
		return b
	}
	b := &Buf{pool: p}
	b.refs.Store(1)
	return b
}

func (p *BufPool) put(b *Buf) { p.p.Put(b) }
