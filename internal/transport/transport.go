// Package transport defines the datagram abstraction on which the
// paired message protocol is built.
//
// The paper (§2.2) assumes only that a network delivers packets
// unreliably: packets may be lost, delayed, duplicated, or garbled,
// and checksums turn garbled packets into lost ones. An Endpoint is a
// process's handle on such a network, analogous to a bound UDP socket
// in Berkeley 4.2BSD. Two implementations exist: internal/netsim (an
// in-memory simulated internet with fault injection) and
// internal/udptrans (real UDP on the loopback interface).
package transport

import (
	"errors"
	"fmt"
)

// MaxDatagram is the largest payload an Endpoint must accept in Send,
// mirroring an Ethernet MTU minus IP/UDP headers (§4.2.4: segments are
// sized to avoid IP fragmentation).
const MaxDatagram = 1472

// Addr identifies a process in the internet, as in §4.2.1: a 32-bit
// host address plus a 16-bit port number. The zero Addr is invalid.
type Addr struct {
	Host uint32
	Port uint16
}

// IsZero reports whether a is the invalid zero address.
func (a Addr) IsZero() bool { return a.Host == 0 && a.Port == 0 }

// String renders the address in dotted-quad:port form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d",
		byte(a.Host>>24), byte(a.Host>>16), byte(a.Host>>8), byte(a.Host), a.Port)
}

// Packet is one datagram as delivered to a receiver.
//
// When Buf is nil, Data is a fresh buffer owned by the receiver: the
// transport never reuses it, and no other delivery (including an
// injected duplicate) shares its backing array, so the receiver may
// retain or alias it freely.
//
// When Buf is non-nil, Data aliases Buf's pooled storage and the
// receiver holds one reference: it must call Buf.Release once the
// bytes are dead (and Buf.Retain for any alias that outlives its
// handler), after which Data must not be touched. Dropping the packet
// without releasing is safe — the buffer falls to the garbage
// collector instead of the pool — so pooled delivery is a strict
// optimization over the fresh-buffer contract, never a new hazard.
type Packet struct {
	From Addr
	To   Addr
	Data []byte
	Buf  *Buf
}

// ErrClosed is returned by operations on a closed Endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrTooLarge is returned by Send when the payload exceeds MaxDatagram.
var ErrTooLarge = errors.New("transport: datagram exceeds maximum size")

// Endpoint is a bound datagram socket. Implementations must make Send
// non-blocking with respect to the receiver (datagrams are queued or
// dropped, never flow-controlled) and must deliver incoming datagrams
// on the channel returned by Recv until Close.
type Endpoint interface {
	// Addr returns the local address the endpoint is bound to.
	Addr() Addr

	// Send transmits one datagram. Delivery is unreliable: the
	// datagram may be lost, delayed, duplicated or reordered. Send
	// never blocks awaiting the receiver, and must not retain data
	// after it returns — callers may immediately reuse the buffer
	// (the paired message layer sends from pooled buffers).
	Send(to Addr, data []byte) error

	// Recv returns the channel of incoming datagrams. The channel is
	// closed when the endpoint is closed.
	Recv() <-chan Packet

	// Close releases the endpoint. Further Sends fail with ErrClosed.
	Close() error
}

// Multicaster is implemented by endpoints that support hardware-style
// multicast (§4.3.3): sending one datagram to a whole group in a
// single operation. The netsim transport implements it; plain UDP does
// not, which is exactly the distinction the paper's performance
// analysis turns on.
type Multicaster interface {
	// Multicast sends data to every address in group in one network
	// operation. Per-recipient delivery remains unreliable and
	// independent (§2.2).
	Multicast(group []Addr, data []byte) error
}

// Dispatcher is implemented by endpoints that can deliver incoming
// datagrams by invoking a handler from their own drain machinery —
// a ring-buffer hand-off — instead of queueing Packets on the Recv
// channel. A consumer that installs a handler takes delivery that way
// exclusively: nothing more arrives on Recv.
//
// The handler runs on the endpoint's receive goroutines, one packet
// at a time per goroutine (a sharded endpoint may run it concurrently
// from different shards, never concurrently for one shard, so one
// sender's datagrams keep their arrival order when the network shards
// by peer). It must not block indefinitely. After Close returns, the
// handler is never invoked again. Packet ownership is unchanged: the
// handler owns Data per the Packet contract.
type Dispatcher interface {
	SetHandler(fn func(Packet))
}

// Datagram is one (destination, payload) pair of a batched send.
type Datagram struct {
	To   Addr
	Data []byte
}

// BatchSender is implemented by endpoints that can hand several
// datagrams to the network in one operation — sendmmsg(2) on a real
// socket, a single locked pass in the simulator. The paper's cost
// breakdown (Table 4.2, §4.4.1) charges every datagram a full sendmsg;
// batching amortizes that per-operation cost across a whole
// retransmission tick or coalesced flush.
//
// The Send contract carries over per datagram: delivery stays
// unreliable and independent, the call never blocks awaiting any
// receiver, and no Data buffer is retained after SendBatch returns
// (callers send from pooled buffers).
type BatchSender interface {
	SendBatch(dgrams []Datagram) error
}
