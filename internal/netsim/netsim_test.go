package netsim

import (
	"testing"
	"time"

	"circus/internal/transport"
)

func mustListen(t *testing.T, n *Network, host uint32, port uint16) *Endpoint {
	t.Helper()
	ep, err := n.Listen(host, port)
	if err != nil {
		t.Fatalf("Listen(%d, %d): %v", host, port, err)
	}
	return ep
}

func recvOne(t *testing.T, ep *Endpoint, timeout time.Duration) (transport.Packet, bool) {
	t.Helper()
	select {
	case pkt, ok := <-ep.Recv():
		return pkt, ok
	case <-time.After(timeout):
		return transport.Packet{}, false
	}
}

func TestDeliverBasic(t *testing.T) {
	n := New(1)
	h1, h2 := n.NewHost(), n.NewHost()
	a := mustListen(t, n, h1, 0)
	b := mustListen(t, n, h2, 0)
	if err := a.Send(b.Addr(), []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	pkt, ok := recvOne(t, b, time.Second)
	if !ok {
		t.Fatal("no packet delivered")
	}
	if string(pkt.Data) != "hello" {
		t.Errorf("data = %q, want %q", pkt.Data, "hello")
	}
	if pkt.From != a.Addr() {
		t.Errorf("from = %v, want %v", pkt.From, a.Addr())
	}
	if pkt.To != b.Addr() {
		t.Errorf("to = %v, want %v", pkt.To, b.Addr())
	}
}

func TestDistinctHosts(t *testing.T) {
	n := New(1)
	h1, h2 := n.NewHost(), n.NewHost()
	if h1 == h2 {
		t.Fatalf("NewHost returned duplicate id %d", h1)
	}
}

func TestAutoPortAssignment(t *testing.T) {
	n := New(1)
	h := n.NewHost()
	a := mustListen(t, n, h, 0)
	b := mustListen(t, n, h, 0)
	if a.Addr() == b.Addr() {
		t.Errorf("auto-assigned duplicate address %v", a.Addr())
	}
}

func TestPortInUse(t *testing.T) {
	n := New(1)
	h := n.NewHost()
	mustListen(t, n, h, 99)
	if _, err := n.Listen(h, 99); err == nil {
		t.Error("expected error binding used port")
	}
}

func TestAddrString(t *testing.T) {
	a := transport.Addr{Host: 0x0a000001, Port: 2000}
	if got := a.String(); got != "10.0.0.1:2000" {
		t.Errorf("String() = %q, want 10.0.0.1:2000", got)
	}
}

func TestLossAllDropsEverything(t *testing.T) {
	n := New(1)
	n.SetLink(LinkConfig{LossRate: 1})
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), []byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Error("packet delivered despite 100% loss")
	}
	st := n.Stats()
	if st.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", st.Dropped)
	}
}

func TestLossRateApproximate(t *testing.T) {
	n := New(42)
	n.SetLink(LinkConfig{LossRate: 0.5})
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(b.Addr(), []byte("x"))
	}
	st := n.Stats()
	if st.Delivered < total/3 || st.Delivered > 2*total/3 {
		t.Errorf("Delivered = %d of %d with 50%% loss; suspicious", st.Delivered, total)
	}
	if st.Delivered+st.Dropped != total {
		t.Errorf("Delivered+Dropped = %d, want %d", st.Delivered+st.Dropped, total)
	}
}

func TestDuplication(t *testing.T) {
	n := New(7)
	n.SetLink(LinkConfig{DupRate: 1})
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	a.Send(b.Addr(), []byte("x"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("first copy missing")
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("duplicate copy missing")
	}
	if st := n.Stats(); st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
}

func TestDelay(t *testing.T) {
	n := New(1)
	n.SetLink(LinkConfig{MinDelay: 30 * time.Millisecond, MaxDelay: 40 * time.Millisecond})
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	start := time.Now()
	a.Send(b.Addr(), []byte("x"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("packet not delivered")
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", d)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	n := New(1)
	h1, h2 := n.NewHost(), n.NewHost()
	a := mustListen(t, n, h1, 0)
	b := mustListen(t, n, h2, 0)
	n.Crash(h2)
	a.Send(b.Addr(), []byte("x"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Error("crashed host received a packet")
	}
	if !n.Crashed(h2) {
		t.Error("Crashed(h2) = false")
	}
	n.Restart(h2)
	a.Send(b.Addr(), []byte("y"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Error("restarted host did not receive")
	}
}

func TestCrashedSenderDropsOutbound(t *testing.T) {
	n := New(1)
	h1, h2 := n.NewHost(), n.NewHost()
	a := mustListen(t, n, h1, 0)
	b := mustListen(t, n, h2, 0)
	n.Crash(h1)
	a.Send(b.Addr(), []byte("x"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Error("packet escaped a crashed host")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(1)
	h1, h2, h3 := n.NewHost(), n.NewHost(), n.NewHost()
	a := mustListen(t, n, h1, 0)
	b := mustListen(t, n, h2, 0)
	c := mustListen(t, n, h3, 0)
	n.Partition([]uint32{h1, h3}, []uint32{h2})
	a.Send(b.Addr(), []byte("x"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Error("packet crossed partition")
	}
	a.Send(c.Addr(), []byte("x"))
	if _, ok := recvOne(t, c, time.Second); !ok {
		t.Error("packet within partition group not delivered")
	}
	n.Heal()
	a.Send(b.Addr(), []byte("x"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Error("packet not delivered after Heal")
	}
}

func TestPerPairLink(t *testing.T) {
	n := New(1)
	h1, h2, h3 := n.NewHost(), n.NewHost(), n.NewHost()
	a := mustListen(t, n, h1, 0)
	b := mustListen(t, n, h2, 0)
	c := mustListen(t, n, h3, 0)
	n.SetLinkBetween(h1, h2, LinkConfig{LossRate: 1})
	a.Send(b.Addr(), []byte("x"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Error("lossy pair delivered")
	}
	a.Send(c.Addr(), []byte("x"))
	if _, ok := recvOne(t, c, time.Second); !ok {
		t.Error("clean pair did not deliver")
	}
}

func TestMulticastCountsOneSendOp(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	c := mustListen(t, n, n.NewHost(), 0)
	group := []transport.Addr{b.Addr(), c.Addr()}
	if err := a.Multicast(group, []byte("m")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Error("b missed multicast")
	}
	if _, ok := recvOne(t, c, time.Second); !ok {
		t.Error("c missed multicast")
	}
	st := n.Stats()
	if st.SendOps != 1 {
		t.Errorf("SendOps = %d, want 1", st.SendOps)
	}
	if st.Datagrams != 2 {
		t.Errorf("Datagrams = %d, want 2", st.Datagrams)
	}
}

func TestSendTooLarge(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	if err := a.Send(b.Addr(), make([]byte, transport.MaxDatagram+1)); err != transport.ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := a.Send(b.Addr(), []byte("x")); err != transport.ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if _, ok := <-a.Recv(); ok {
		t.Error("recv channel not closed")
	}
}

func TestSendToUnboundAddressDropped(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	a.Send(transport.Addr{Host: 0x0a0000ff, Port: 9}, []byte("x"))
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestDataIsCopied(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	buf := []byte("abc")
	a.Send(b.Addr(), buf)
	buf[0] = 'z'
	pkt, ok := recvOne(t, b, time.Second)
	if !ok {
		t.Fatal("no packet")
	}
	if string(pkt.Data) != "abc" {
		t.Errorf("data = %q; sender mutation leaked into delivery", pkt.Data)
	}
}

func TestResetStats(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	a.Send(b.Addr(), []byte("x"))
	recvOne(t, b, time.Second)
	n.ResetStats()
	if st := n.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v, want zero", st)
	}
}

func TestDeterministicFaultInjection(t *testing.T) {
	run := func() Stats {
		n := New(99)
		n.SetLink(LinkConfig{LossRate: 0.3, DupRate: 0.1})
		a, _ := n.Listen(n.NewHost(), 5)
		b, _ := n.Listen(n.NewHost(), 6)
		for i := 0; i < 500; i++ {
			a.Send(b.Addr(), []byte{byte(i)})
		}
		return n.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Errorf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
}

func TestBandwidthSerializationDelay(t *testing.T) {
	n := New(1)
	// 10 Mb/s Ethernet (§4.4.1): a full 1472-byte datagram takes
	// ~1.18 ms on the wire; 40 of them back to back take ~47 ms.
	n.SetLink(LinkConfig{BitsPerSecond: 10_000_000})
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	payload := make([]byte, transport.MaxDatagram)
	start := time.Now()
	const count = 40
	for i := 0; i < count; i++ {
		a.Send(b.Addr(), payload)
	}
	for i := 0; i < count; i++ {
		if _, ok := recvOne(t, b, time.Second); !ok {
			t.Fatalf("datagram %d lost", i)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Errorf("40 full datagrams at 10 Mb/s arrived in %v, want ≥ ~47ms", elapsed)
	}
	// A tiny datagram is much quicker than a full one.
	n2 := New(2)
	n2.SetLink(LinkConfig{BitsPerSecond: 10_000_000})
	c := mustListen(t, n2, n2.NewHost(), 0)
	d := mustListen(t, n2, n2.NewHost(), 0)
	start = time.Now()
	c.Send(d.Addr(), []byte{1})
	if _, ok := recvOne(t, d, time.Second); !ok {
		t.Fatal("tiny datagram lost")
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Errorf("tiny datagram took %v", time.Since(start))
	}
}

func TestSendBatchCountsOneSendOp(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	c := mustListen(t, n, n.NewHost(), 0)
	batch := []transport.Datagram{
		{To: b.Addr(), Data: []byte("one")},
		{To: c.Addr(), Data: []byte("two")},
		{To: b.Addr(), Data: []byte("three")},
	}
	if err := a.SendBatch(batch); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	for _, want := range []string{"one", "three"} {
		pkt, ok := recvOne(t, b, time.Second)
		if !ok {
			t.Fatalf("b missed %q", want)
		}
		if string(pkt.Data) != want {
			t.Errorf("b got %q, want %q", pkt.Data, want)
		}
	}
	if pkt, ok := recvOne(t, c, time.Second); !ok || string(pkt.Data) != "two" {
		t.Errorf("c got (%q, %v), want (two, true)", pkt.Data, ok)
	}
	st := n.Stats()
	if st.SendOps != 1 {
		t.Errorf("SendOps = %d, want 1 (batch is one send operation)", st.SendOps)
	}
	if st.Datagrams != 3 {
		t.Errorf("Datagrams = %d, want 3", st.Datagrams)
	}
}

func TestSendBatchTooLargeRejectsWholeBatch(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	batch := []transport.Datagram{
		{To: b.Addr(), Data: []byte("ok")},
		{To: b.Addr(), Data: make([]byte, transport.MaxDatagram+1)},
	}
	if err := a.SendBatch(batch); err != transport.ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Error("partial batch delivered despite validation error")
	}
	if st := n.Stats(); st.Datagrams != 0 {
		t.Errorf("Datagrams = %d, want 0", st.Datagrams)
	}
}

func TestCaptureHoldsAndInjectDelivers(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	var held []transport.Packet
	n.SetCapture(func(p transport.Packet) bool {
		held = append(held, p)
		return true
	})
	if err := a.Send(b.Addr(), []byte("held")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("captured packet was delivered anyway")
	}
	if len(held) != 1 {
		t.Fatalf("captured %d packets, want 1", len(held))
	}
	n.Inject(held[0])
	pkt, ok := recvOne(t, b, time.Second)
	if !ok {
		t.Fatal("injected packet not delivered")
	}
	if string(pkt.Data) != "held" || pkt.From != a.Addr() {
		t.Errorf("got (%q from %v), want (held from %v)", pkt.Data, pkt.From, a.Addr())
	}
}

func TestCaptureDeclineLetsPacketPass(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	n.SetCapture(func(transport.Packet) bool { return false })
	if err := a.Send(b.Addr(), []byte("through")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if pkt, ok := recvOne(t, b, time.Second); !ok || string(pkt.Data) != "through" {
		t.Errorf("got (%q, %v), want (through, true)", pkt.Data, ok)
	}
}

func TestInjectBypassesFaultInjection(t *testing.T) {
	n := New(1)
	n.SetLink(LinkConfig{LossRate: 1})
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	n.Inject(transport.Packet{From: a.Addr(), To: b.Addr(), Data: []byte("sure")})
	if pkt, ok := recvOne(t, b, time.Second); !ok || string(pkt.Data) != "sure" {
		t.Errorf("got (%q, %v), want (sure, true): Inject must skip fault injection", pkt.Data, ok)
	}
}

func TestInjectRespectsCrashedDestination(t *testing.T) {
	n := New(1)
	a := mustListen(t, n, n.NewHost(), 0)
	b := mustListen(t, n, n.NewHost(), 0)
	n.Crash(b.Addr().Host)
	n.Inject(transport.Packet{From: a.Addr(), To: b.Addr(), Data: []byte("lost")})
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Error("injected packet delivered to a crashed host")
	}
}
