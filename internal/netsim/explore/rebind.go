package explore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/pairedmsg"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/trace/check"
	"circus/internal/wire"
)

// exploreOpts are runtime options for systems under exploration:
// every protocol timer is pushed far past the schedule's horizon, so
// nothing happens except when the explorer delivers a message, and
// acks go out immediately rather than on a piggyback timer.
func exploreOpts(rec trace.Sink, resolver core.Resolver) core.Options {
	return core.Options{
		Message: pairedmsg.Options{
			RetransmitInterval: 30 * time.Second,
			MaxRetries:         4,
			ProbeInterval:      time.Minute,
			ProbeMissLimit:     5,
			AckDelay:           -1, // immediate: no delayed-ack timer in the schedule
			CoalesceWindow:     -1, // no pacing timer either
		},
		ManyToOneTimeout:   time.Minute,
		CallRetention:      time.Minute,
		DefaultCallTimeout: core.NoTimeout,
		Resolver:           resolver,
		Trace:              rec,
	}
}

// counterMod counts executions; the echo of the at-most-once tests.
type counterMod struct{ execs atomic.Int32 }

func (m *counterMod) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	m.execs.Add(1)
	return args, nil
}

// RebindScenario targets the §6.2 repair window: a replicated client
// troupe of two members makes one logical call to a server while a
// repairman concurrently rebinds the server's troupe ID (the
// set_troupe_id of a reconfiguration). Under every interleaving the
// server must execute the call exactly once — the second member's
// call message, whenever it lands, must collate with (or replay the
// buffered return of) the first. The invariant is checked both
// directly (the module's execution count) and through the trace
// conformance rules, so a violating schedule pins the exact event.
type RebindScenario struct{}

func (RebindScenario) Name() string { return "rebind" }

// Build implements Scenario.
func (RebindScenario) Build(net *netsim.Network, seed int64) (func() error, func() []string, func(), error) {
	rec := trace.NewRecorder()
	resolver := core.StaticResolver{}
	opts := exploreOpts(rec, resolver)

	var rts []*core.Runtime
	stop := func() {
		for _, rt := range rts {
			rt.Close()
		}
	}
	newRT := func() (*core.Runtime, error) {
		ep, err := net.Listen(net.NewHost(), 0)
		if err != nil {
			return nil, err
		}
		rt := core.NewRuntime(ep, opts)
		rts = append(rts, rt)
		return rt, nil
	}

	server, err := newRT()
	if err != nil {
		return nil, nil, stop, err
	}
	mod := &counterMod{}
	// ArgFirstCome keeps the server fully message-driven: it executes
	// on the first member's message with no availability timer, and
	// later siblings read the buffered return (§4.3.4).
	saddr := server.Export(mod, core.ExportOptions{Policy: core.ArgFirstCome})
	// Troupe ID zero means direct addressing: the rebind changes the
	// server's registered ID mid-flight, and the point is to exercise
	// the collation state across that change, not the staleness check.
	serverTroupe := core.Troupe{Members: []core.ModuleAddr{saddr}}

	c1, err := newRT()
	if err != nil {
		return nil, nil, stop, err
	}
	c2, err := newRT()
	if err != nil {
		return nil, nil, stop, err
	}
	repair, err := newRT()
	if err != nil {
		return nil, nil, stop, err
	}
	const clientTroupe = core.TroupeID(0xc1)
	resolver[clientTroupe] = []core.ModuleAddr{
		{Addr: c1.Addr(), Module: 0},
		{Addr: c2.Addr(), Module: 0},
	}

	tid := thread.ID{Host: 701, Proc: 1}
	drive := func() error {
		ctx := context.Background()
		var wg sync.WaitGroup
		errs := make(chan error, 3)
		for i, rt := range []*core.Runtime{c1, c2} {
			i, rt := i, rt
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Identical thread contexts: the two calls are one
				// logical call from a replicated caller (§4.3.2).
				tc := thread.Child(tid, []uint32{1})
				out, err := rt.Call(ctx, serverTroupe, 1, []byte("once"), core.CallOptions{
					Thread: tc, AsTroupe: clientTroupe,
				})
				if err != nil {
					errs <- fmt.Errorf("member %d call: %w", i+1, err)
				} else if string(out) != "once" {
					errs <- fmt.Errorf("member %d got %q", i+1, out)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			arg, err := wire.Marshal(uint64(0x7e))
			if err != nil {
				errs <- err
				return
			}
			if _, err := repair.Call(ctx, serverTroupe, core.ProcSetTroupeID, arg, core.CallOptions{}); err != nil {
				errs <- fmt.Errorf("rebind call: %w", err)
			}
		}()
		wg.Wait()
		close(errs)
		return <-errs
	}

	checkFn := func() []string {
		var vs []string
		if n := mod.execs.Load(); n != 1 {
			vs = append(vs, fmt.Sprintf("replicated call executed %d times, want exactly once", n))
		}
		for _, v := range check.Check(rec.Events(), check.Config{}) {
			vs = append(vs, "trace: "+v.String())
		}
		return vs
	}
	return drive, checkFn, stop, nil
}
