// Package explore searches over message delivery schedules.
//
// The simulated internet's fault injection (loss, delay, duplication)
// samples one schedule per seed; most protocol bugs, though, live in
// narrow interleavings that random timing rarely produces — a repair
// action landing between two sibling call messages, a commit crossing
// a proposal. This package drives netsim's capture hook instead:
// every datagram is intercepted at transmission, and a seeded search
// decides, step by step, which held datagram is delivered (or
// dropped) next. Protocol timers are configured far beyond the
// schedule's horizon, so the system under test is purely
// message-driven and the explorer owns the entire interleaving.
//
// Every choice comes from a schedule-seeded rand.Rand over a
// deterministically ordered pending set, so a violating schedule is
// replayed exactly by re-running its seed — the counterexample is a
// single integer.
package explore

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"circus/internal/netsim"
	"circus/internal/transport"
)

// Options tunes a search.
type Options struct {
	// Seed numbers the first schedule; schedule i runs with Seed+i.
	Seed int64
	// Schedules is how many seeds to try before giving up. Default 20.
	Schedules int
	// Steps bounds the delivery decisions per schedule; past the
	// budget the network is released and the workload runs out
	// normally. Default 400.
	Steps int
	// DropRate is the probability that a chosen datagram is dropped
	// instead of delivered. Scenarios whose timers are pushed beyond
	// the horizon should keep this zero: a dropped datagram is not
	// retransmitted within the schedule.
	DropRate float64
	// Settle is how long the explorer waits after each decision for
	// the consequences — handler goroutines running, their sends being
	// captured — to land before the next decision. It must exceed any
	// short timer left enabled in the system under test. Default 8ms.
	Settle time.Duration
	// MaxWait bounds how long the explorer tolerates an empty pending
	// set with the workload still running before it releases the
	// network (capture off, everything held delivered). Default 2s.
	MaxWait time.Duration
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Schedules == 0 {
		o.Schedules = 20
	}
	if o.Steps == 0 {
		o.Steps = 400
	}
	if o.Settle == 0 {
		o.Settle = 8 * time.Millisecond
	}
	if o.MaxWait == 0 {
		o.MaxWait = 2 * time.Second
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Decision is one explored choice: which held datagram went next, and
// whether it was delivered or dropped.
type Decision struct {
	Step     int
	From, To transport.Addr
	Bytes    int
	Drop     bool
}

func (d Decision) String() string {
	verb := "deliver"
	if d.Drop {
		verb = "drop"
	}
	return fmt.Sprintf("step %d: %s %v -> %v (%dB)", d.Step, verb, d.From, d.To, d.Bytes)
}

// Schedule is the outcome of one explored interleaving.
type Schedule struct {
	// Seed replays this schedule: RunSchedule with the same scenario
	// and seed makes the same decisions.
	Seed      int64
	Decisions []Decision
	// Released is true when the step budget or MaxWait ran out and the
	// remaining traffic was delivered without exploration.
	Released bool
	// Violations lists every invariant breach the scenario's check
	// found after the workload finished.
	Violations []string
}

// Report summarizes a search.
type Report struct {
	Scenario string
	// Explored counts schedules run; TotalSteps the decisions made.
	Explored   int
	TotalSteps int
	// Violating is the first schedule that broke an invariant, nil
	// when every explored schedule was clean.
	Violating *Schedule
}

// Scenario is a system under exploration. Build constructs it on the
// given network and returns the workload driver (run once, to
// completion), the invariant check (run after the workload finishes),
// and the teardown.
type Scenario interface {
	Name() string
	Build(net *netsim.Network, seed int64) (drive func() error, check func() []string, stop func(), err error)
}

// Run explores schedules until one violates an invariant or the
// schedule budget is spent.
func Run(sc Scenario, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{Scenario: sc.Name()}
	for i := 0; i < opts.Schedules; i++ {
		seed := opts.Seed + int64(i)
		s, err := RunSchedule(sc, opts, seed)
		if err != nil {
			return rep, err
		}
		rep.Explored++
		rep.TotalSteps += len(s.Decisions)
		opts.Log("explore %s: seed %d: %d decisions, %d violations",
			sc.Name(), seed, len(s.Decisions), len(s.Violations))
		if len(s.Violations) > 0 {
			rep.Violating = s
			return rep, nil
		}
	}
	return rep, nil
}

// held is a captured datagram awaiting a delivery decision. seq is
// its capture order, used only to break ties among identical
// datagrams — which are interchangeable, keeping schedules
// reproducible even though capture order itself races.
type held struct {
	pkt transport.Packet
	seq int
}

// RunSchedule runs one scenario under one seeded interleaving. Calling
// it again with the same scenario and seed replays the schedule.
func RunSchedule(sc Scenario, opts Options, seed int64) (*Schedule, error) {
	opts = opts.withDefaults()
	net := netsim.New(seed)

	var (
		mu        sync.Mutex
		pending   []held
		nextSeq   int
		capturing = true
	)
	net.SetCapture(func(p transport.Packet) bool {
		mu.Lock()
		defer mu.Unlock()
		if !capturing {
			return false
		}
		pending = append(pending, held{pkt: p, seq: nextSeq})
		nextSeq++
		return true
	})

	drive, check, stop, err := sc.Build(net, seed)
	if err != nil {
		return nil, err
	}
	defer stop()

	done := make(chan error, 1)
	go func() { done <- drive() }()

	s := &Schedule{Seed: seed}
	// release turns exploration off: capture stops claiming datagrams
	// and everything held is delivered, letting the workload run out
	// under normal network rules.
	release := func() {
		mu.Lock()
		capturing = false
		rest := pending
		pending = nil
		mu.Unlock()
		if len(rest) > 0 {
			s.Released = true
		}
		for _, h := range rest {
			net.Inject(h.pkt)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	var quiet time.Duration
	released := false
	for {
		select {
		case werr := <-done:
			release()
			if werr != nil {
				s.Violations = append(s.Violations, fmt.Sprintf("workload failed: %v", werr))
			}
			s.Violations = append(s.Violations, check()...)
			return s, nil
		case <-time.After(opts.Settle):
		}
		if released || len(s.Decisions) >= opts.Steps {
			release()
			released = true
			quiet += opts.Settle
			if quiet >= opts.MaxWait+10*time.Second {
				return nil, fmt.Errorf("explore %s: seed %d: workload did not terminate after release", sc.Name(), seed)
			}
			continue
		}
		mu.Lock()
		snapshot := append([]held(nil), pending...)
		mu.Unlock()
		if len(snapshot) == 0 {
			quiet += opts.Settle
			if quiet >= opts.MaxWait {
				released = true
				release()
			}
			continue
		}
		quiet = 0
		// The pending order must not depend on capture timing: sort by
		// endpoints, size and content, with capture order only breaking
		// ties between identical (hence interchangeable) datagrams.
		sort.Slice(snapshot, func(i, j int) bool { return heldLess(snapshot[i], snapshot[j]) })
		choice := snapshot[rng.Intn(len(snapshot))]
		drop := opts.DropRate > 0 && rng.Float64() < opts.DropRate
		mu.Lock()
		for i := range pending {
			if pending[i].seq == choice.seq {
				pending = append(pending[:i], pending[i+1:]...)
				break
			}
		}
		mu.Unlock()
		s.Decisions = append(s.Decisions, Decision{
			Step: len(s.Decisions),
			From: choice.pkt.From, To: choice.pkt.To,
			Bytes: len(choice.pkt.Data), Drop: drop,
		})
		if !drop {
			net.Inject(choice.pkt)
		}
	}
}

func heldLess(a, b held) bool {
	ka, kb := a.pkt, b.pkt
	switch {
	case ka.From != kb.From:
		return addrLess(ka.From, kb.From)
	case ka.To != kb.To:
		return addrLess(ka.To, kb.To)
	case len(ka.Data) != len(kb.Data):
		return len(ka.Data) < len(kb.Data)
	}
	ha, hb := dataHash(ka.Data), dataHash(kb.Data)
	if ha != hb {
		return ha < hb
	}
	return a.seq < b.seq
}

func addrLess(a, b transport.Addr) bool {
	if a.Host != b.Host {
		return a.Host < b.Host
	}
	return a.Port < b.Port
}

func dataHash(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}
