package explore

import (
	"reflect"
	"strings"
	"testing"

	"circus/internal/core"
)

// TestRebindCleanSchedules: with the runtime correct, every explored
// interleaving of the repair-window scenario — including the repair
// call landing between the two sibling call messages — keeps the
// exactly-once invariant.
func TestRebindCleanSchedules(t *testing.T) {
	rep, err := Run(RebindScenario{}, Options{Seed: 1, Schedules: 6, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("clean runtime violated under seed %d:\n%s",
			rep.Violating.Seed, strings.Join(rep.Violating.Violations, "\n"))
	}
	if rep.Explored != 6 || rep.TotalSteps == 0 {
		t.Fatalf("explored %d schedules over %d steps, want 6 over >0", rep.Explored, rep.TotalSteps)
	}
}

// TestRebindPlantedBugFoundAndReplayed is the regression pinning the
// explorer's reason to exist: a rebind that wrongly discards the
// server's collation records only misbehaves when the repair call is
// delivered between two sibling deliveries of one logical call. The
// search must find that window within its schedule budget, and the
// counterexample must replay decision-for-decision from its seed.
func TestRebindPlantedBugFoundAndReplayed(t *testing.T) {
	core.PlantedRebindBug = true
	defer func() { core.PlantedRebindBug = false }()

	opts := Options{Seed: 1, Schedules: 20, Log: t.Logf}
	rep, err := Run(RebindScenario{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating == nil {
		t.Fatalf("planted rebind bug not found in %d schedules (%d steps)", rep.Explored, rep.TotalSteps)
	}
	found := rep.Violating
	t.Logf("bug found at seed %d after %d schedules:\n%s",
		found.Seed, rep.Explored, strings.Join(found.Violations, "\n"))
	if !hasViolation(found.Violations, "executed") {
		t.Fatalf("expected a double-execution violation, got: %v", found.Violations)
	}

	replay, err := RunSchedule(RebindScenario{}, opts, found.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay.Decisions, found.Decisions) {
		t.Fatalf("replay of seed %d diverged:\noriginal: %v\nreplay:   %v",
			found.Seed, found.Decisions, replay.Decisions)
	}
	if !hasViolation(replay.Violations, "executed") {
		t.Fatalf("replay of seed %d lost the violation: %v", found.Seed, replay.Violations)
	}
}

// TestBroadcastOrderedUnderExploration: the §5.4 commit protocol keeps
// identical delivery order at every member no matter how the explorer
// interleaves proposals and commits.
func TestBroadcastOrderedUnderExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second schedule search")
	}
	rep, err := Run(BroadcastScenario{}, Options{Seed: 1, Schedules: 3, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("broadcast order violated under seed %d:\n%s",
			rep.Violating.Seed, strings.Join(rep.Violating.Violations, "\n"))
	}
}

func hasViolation(vs []string, substr string) bool {
	for _, v := range vs {
		if strings.Contains(v, substr) {
			return true
		}
	}
	return false
}
