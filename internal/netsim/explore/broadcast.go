package explore

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/txn"
)

// BroadcastScenario targets the §5.4 ordered-broadcast commit
// protocol: two broadcasters each send two messages to a two-member
// queue troupe while the explorer interleaves the propose/accept
// traffic. Whatever order the proposals and commits cross in, every
// member must deliver all four messages in the identical order.
type BroadcastScenario struct{}

func (BroadcastScenario) Name() string { return "broadcast" }

// Build implements Scenario.
func (BroadcastScenario) Build(net *netsim.Network, seed int64) (func() error, func() []string, func(), error) {
	resolver := core.StaticResolver{}
	opts := exploreOpts(nil, resolver)

	var rts []*core.Runtime
	stop := func() {
		for _, rt := range rts {
			rt.Close()
		}
	}
	newRT := func() (*core.Runtime, error) {
		ep, err := net.Listen(net.NewHost(), 0)
		if err != nil {
			return nil, err
		}
		rt := core.NewRuntime(ep, opts)
		rts = append(rts, rt)
		return rt, nil
	}

	const degree = 2
	var mus [degree]sync.Mutex
	orders := make([][]string, degree)
	dest := core.Troupe{ID: 0xbc}
	for i := 0; i < degree; i++ {
		i := i
		rt, err := newRT()
		if err != nil {
			return nil, nil, stop, err
		}
		q := txn.NewQueue(func(id string, msg []byte) {
			mus[i].Lock()
			orders[i] = append(orders[i], id)
			mus[i].Unlock()
		})
		addr := rt.Export(&txn.Module{Queue: q}, core.ExportOptions{})
		rt.SetTroupeID(addr.Module, dest.ID)
		dest.Members = append(dest.Members, addr)
	}
	resolver[dest.ID] = dest.Members

	const senders, perSender = 2, 2
	var broadcasters []*core.Runtime
	for c := 0; c < senders; c++ {
		rt, err := newRT()
		if err != nil {
			return nil, nil, stop, err
		}
		broadcasters = append(broadcasters, rt)
	}

	drive := func() error {
		ctx := context.Background()
		var wg sync.WaitGroup
		errs := make(chan error, senders)
		for c, rt := range broadcasters {
			c, rt := c, rt
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < perSender; k++ {
					id := fmt.Sprintf("c%d-m%d", c, k)
					if err := txn.Broadcast(ctx, rt, dest, id, []byte(id)); err != nil {
						errs <- fmt.Errorf("broadcast %s: %w", id, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	checkFn := func() []string {
		var vs []string
		mus[0].Lock()
		ref := append([]string(nil), orders[0]...)
		mus[0].Unlock()
		if len(ref) != senders*perSender {
			vs = append(vs, fmt.Sprintf("member 0 delivered %d of %d messages", len(ref), senders*perSender))
		}
		for i := 1; i < degree; i++ {
			mus[i].Lock()
			got := append([]string(nil), orders[i]...)
			mus[i].Unlock()
			if !reflect.DeepEqual(got, ref) {
				vs = append(vs, fmt.Sprintf("delivery order diverged: member 0 %v, member %d %v", ref, i, got))
			}
		}
		return vs
	}
	return drive, checkFn, stop, nil
}
