// Package netsim is an in-memory simulated internet.
//
// It stands in for the Berkeley research internet of §4.4.1 (six
// VAX-11/750s on one 10 Mb/s Ethernet): a datagram network whose
// packets may be lost, delayed, duplicated and reordered, and whose
// machines may crash (fail-stop, §2.1.1) or be partitioned from one
// another (§4.3.5). All fault injection is controlled and
// deterministic given a seed, which makes the protocol test suites
// reproducible in a way the 1985 testbed never was.
package netsim

import (
	"math/rand"
	"sync"
	"time"

	"circus/internal/transport"
)

// LinkConfig describes the behaviour of datagram delivery.
type LinkConfig struct {
	// LossRate is the probability in [0,1] that a datagram is dropped.
	LossRate float64
	// DupRate is the probability in [0,1] that a datagram is delivered
	// twice.
	DupRate float64
	// MinDelay and MaxDelay bound the uniformly distributed one-way
	// propagation delay. Zero means immediate delivery.
	MinDelay time.Duration
	MaxDelay time.Duration
	// BitsPerSecond, when nonzero, adds per-datagram serialization
	// delay of size/bandwidth — the 10 Mb/s Ethernet of §4.4.1 puts a
	// 1472-byte datagram on the wire in about 1.2 ms.
	BitsPerSecond int64
}

// Stats counts network activity. The replicated procedure call
// experiments (§4.3.3) compare datagram counts between repeated
// unicast (m·n) and multicast (m+n) implementations, so send
// operations and datagrams are counted separately.
type Stats struct {
	SendOps    int64 // Send and Multicast calls (the "sendmsg" count)
	Datagrams  int64 // individual datagrams put on the wire
	Delivered  int64
	Dropped    int64 // lost by fault injection, partition, crash or overflow
	Duplicated int64
	BytesSent  int64
}

// Network is a simulated internet. The zero value is not usable; call
// New.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	link      LinkConfig
	perPair   map[[2]uint32]LinkConfig
	endpoints map[transport.Addr]*Endpoint
	nextHost  uint32
	nextPort  map[uint32]uint16
	crashed   map[uint32]bool
	txBusy    map[uint32]time.Time // per-host transmitter busy-until (bandwidth model)
	partition map[uint32]int       // host -> group; absent means group 0
	split     bool
	capture   func(transport.Packet) bool
	stats     Stats
	closed    bool
}

// New creates a network whose fault injection is driven by seed.
// The default link is perfect (no loss, no delay); tests and
// experiments configure faults explicitly via SetLink.
func New(seed int64) *Network {
	return &Network{
		rng:       rand.New(rand.NewSource(seed)),
		perPair:   make(map[[2]uint32]LinkConfig),
		endpoints: make(map[transport.Addr]*Endpoint),
		nextPort:  make(map[uint32]uint16),
		crashed:   make(map[uint32]bool),
		txBusy:    make(map[uint32]time.Time),
		partition: make(map[uint32]int),
	}
}

// SetLink sets the default link behaviour for all host pairs.
func (n *Network) SetLink(cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.link = cfg
}

// SetLinkBetween overrides link behaviour for the unordered host pair
// (a, b).
func (n *Network) SetLinkBetween(a, b uint32, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.perPair[pairKey(a, b)] = cfg
}

func pairKey(a, b uint32) [2]uint32 {
	if a > b {
		a, b = b, a
	}
	return [2]uint32{a, b}
}

// NewHost allocates a fresh machine with an independent failure mode
// (§3.5.1: troupe members execute on machines that fail
// independently) and returns its host ID.
func (n *Network) NewHost() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextHost++
	// Host IDs start at 0x0a000001 ("10.0.0.1") so that the zero Addr
	// stays invalid and addresses print like internet addresses.
	id := 0x0a000000 + n.nextHost
	n.nextPort[id] = 1024
	return id
}

// Crash fail-stops a host: all its endpoints stop sending and
// receiving until Restart. Queued undelivered datagrams to it are
// dropped on arrival.
func (n *Network) Crash(host uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[host] = true
}

// Restart clears the crashed state of a host. Endpoints bound before
// the crash resume working; the paper's model (§6.4) instead creates a
// fresh process, which callers model by binding new endpoints.
func (n *Network) Restart(host uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, host)
}

// Crashed reports whether host is currently fail-stopped.
func (n *Network) Crashed(host uint32) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[host]
}

// Partition splits the network into the given groups of hosts; hosts
// in different groups cannot exchange datagrams (§4.3.5). Hosts not
// named fall into group 0 together with any hosts of groups[0].
func (n *Network) Partition(groups ...[]uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[uint32]int)
	for i, g := range groups {
		for _, h := range g {
			n.partition[h] = i
		}
	}
	n.split = true
}

// Heal removes any partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[uint32]int)
	n.split = false
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the network counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// SetCapture installs a capture hook for deterministic schedule
// exploration: fn sees every datagram at the moment of transmission,
// before fault injection, and returning true claims it — the datagram
// goes nowhere until (unless) the holder re-injects it with Inject.
// fn runs with the network lock held, so it must not call back into
// the network. A nil fn uninstalls the hook.
func (n *Network) SetCapture(fn func(transport.Packet) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.capture = fn
}

// Inject delivers a previously captured datagram now, bypassing fault
// injection and the capture hook. The usual destination rules still
// apply: a crashed or partitioned destination drops it.
func (n *Network) Inject(pkt transport.Packet) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.deliverLocked(pkt)
}

// recvBuffer is the per-endpoint incoming queue length; datagrams
// arriving at a full queue are dropped, like a full socket buffer.
const recvBuffer = 4096

// Endpoint is a simulated datagram socket bound to one host and port.
type Endpoint struct {
	net    *Network
	addr   transport.Addr
	recv   chan transport.Packet
	closed bool // guarded by net.mu
}

var (
	_ transport.Endpoint    = (*Endpoint)(nil)
	_ transport.Multicaster = (*Endpoint)(nil)
	_ transport.BatchSender = (*Endpoint)(nil)
)

// Listen binds a new endpoint on host. Port 0 selects an unused port.
func (n *Network) Listen(host uint32, port uint16) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, transport.ErrClosed
	}
	if port == 0 {
		for {
			port = n.nextPort[host]
			n.nextPort[host]++
			if _, used := n.endpoints[transport.Addr{Host: host, Port: port}]; !used {
				break
			}
		}
	}
	addr := transport.Addr{Host: host, Port: port}
	if _, used := n.endpoints[addr]; used {
		return nil, errAddrInUse
	}
	ep := &Endpoint{
		net:  n,
		addr: addr,
		recv: make(chan transport.Packet, recvBuffer),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

var errAddrInUse = transportError("address already in use")

type transportError string

func (e transportError) Error() string { return "netsim: " + string(e) }

// Addr returns the bound address.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// Recv returns the incoming datagram channel.
func (e *Endpoint) Recv() <-chan transport.Packet { return e.recv }

// Close unbinds the endpoint and closes its receive channel.
func (e *Endpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	delete(e.net.endpoints, e.addr)
	close(e.recv)
	return nil
}

// Send transmits one datagram, subject to the configured link faults.
func (e *Endpoint) Send(to transport.Addr, data []byte) error {
	if len(data) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	n.stats.SendOps++
	n.transmitLocked(e, to, data)
	return nil
}

// SendBatch hands several datagrams to the network in one send
// operation, the simulator's analog of sendmmsg(2): one SendOps
// increment (the "sendmsg" count the paper's Table 4.2 charges per
// system call), while each datagram still counts toward Datagrams and
// faces fault injection independently.
func (e *Endpoint) SendBatch(dgrams []transport.Datagram) error {
	for _, d := range dgrams {
		if len(d.Data) > transport.MaxDatagram {
			return transport.ErrTooLarge
		}
	}
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	n.stats.SendOps++
	for _, d := range dgrams {
		n.transmitLocked(e, d.To, d.Data)
	}
	return nil
}

// Multicast delivers data to every member of group in a single send
// operation (§4.3.3). Fault injection applies independently per
// recipient, matching the paper's assumption that broadcast delivery
// reliability may vary from recipient to recipient (§2.2).
func (e *Endpoint) Multicast(group []transport.Addr, data []byte) error {
	if len(data) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	n.stats.SendOps++
	for _, to := range group {
		n.transmitLocked(e, to, data)
	}
	return nil
}

// pktBufs backs simulated datagrams with pooled storage: a delivery
// copies the payload into a pooled buffer instead of a fresh
// allocation, and the receiver's Release returns it for the next
// datagram (transport.Packet pooled contract). Receivers that never
// release — closed endpoints, dropped queues — just feed the GC.
var pktBufs transport.BufPool

// transmitLocked decides the fate of one datagram. Caller holds n.mu.
func (n *Network) transmitLocked(e *Endpoint, to transport.Addr, data []byte) {
	n.stats.Datagrams++
	n.stats.BytesSent += int64(len(data))
	if n.crashed[e.addr.Host] {
		n.stats.Dropped++
		return
	}
	if n.capture != nil {
		pkt := transport.Packet{From: e.addr, To: to, Data: append([]byte(nil), data...)}
		if n.capture(pkt) {
			return
		}
	}
	cfg := n.link
	if c, ok := n.perPair[pairKey(e.addr.Host, to.Host)]; ok {
		cfg = c
	}
	if n.rng.Float64() < cfg.LossRate {
		n.stats.Dropped++
		return
	}
	copies := 1
	if cfg.DupRate > 0 && n.rng.Float64() < cfg.DupRate {
		copies = 2
		n.stats.Duplicated++
	}
	for i := 0; i < copies; i++ {
		delay := cfg.MinDelay
		if cfg.MaxDelay > cfg.MinDelay {
			delay += time.Duration(n.rng.Int63n(int64(cfg.MaxDelay - cfg.MinDelay)))
		}
		if cfg.BitsPerSecond > 0 {
			// The sender's transmitter is a shared serial resource:
			// back-to-back datagrams queue behind one another, as on
			// the 10 Mb/s Ethernet of §4.4.1.
			tx := time.Duration(int64(len(data)) * 8 * int64(time.Second) / cfg.BitsPerSecond)
			now := time.Now()
			start := now
			if busy := n.txBusy[e.addr.Host]; busy.After(now) {
				start = busy
			}
			done := start.Add(tx)
			n.txBusy[e.addr.Host] = done
			delay += done.Sub(now)
		}
		b := pktBufs.Get()
		nb := copy(b.Bytes(), data)
		pkt := transport.Packet{From: e.addr, To: to, Data: b.Bytes()[:nb], Buf: b}
		if delay <= 0 {
			n.deliverLocked(pkt)
		} else {
			time.AfterFunc(delay, func() {
				n.mu.Lock()
				defer n.mu.Unlock()
				n.deliverLocked(pkt)
			})
		}
	}
}

// deliverLocked hands a datagram to its destination endpoint if the
// destination is up, reachable and has buffer space; a dropped
// datagram's pooled buffer is released here, the one place every drop
// path funnels through. Caller holds n.mu.
func (n *Network) deliverLocked(pkt transport.Packet) {
	if n.crashed[pkt.To.Host] || n.crashed[pkt.From.Host] {
		n.dropLocked(pkt)
		return
	}
	if n.split && n.partition[pkt.From.Host] != n.partition[pkt.To.Host] {
		n.dropLocked(pkt)
		return
	}
	dst, ok := n.endpoints[pkt.To]
	if !ok || dst.closed {
		n.dropLocked(pkt)
		return
	}
	select {
	case dst.recv <- pkt:
		n.stats.Delivered++
	default:
		n.dropLocked(pkt)
	}
}

func (n *Network) dropLocked(pkt transport.Packet) {
	n.stats.Dropped++
	if pkt.Buf != nil {
		pkt.Buf.Release()
	}
}
