package meshbench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"circus"
	"circus/internal/bench"
	"circus/internal/core"
	"circus/internal/mesh"
)

// The mesh benchmark measures what partitioning buys: aggregate keyed
// throughput across N consistent-hash shards at fixed replication
// degree, driven by closed-loop callers routing through mesh clients.
// Each shard is an independent troupe, so at a fixed per-shard service
// rate the aggregate should scale with the shard count until the
// callers (not the shards) are the bottleneck.
//
// The simulated operating point is deliberately network-bound: 1 Mb/s
// per-host links with a few hundred microseconds of propagation delay
// make each member's 128 B return datagram cost over a millisecond of
// downlink serialization, so a single shard's member links saturate
// around a thousand reads/s while the clients' small request uplinks
// idle. Adding shards adds member links — the scale-out the experiment
// exists to show. On an infinitely fast wire the runtimes all contend
// for the same cores and the curve flattens into a CPU benchmark.

// MeshService is the interface name the benchmark mesh registers its
// shard troupes under (kv/s0, kv/s1, ...).
const MeshService = "kv"

// MeshPayloadBytes is the value size behind every benchmark key: the
// payload rides the member→client return path, so each shard's member
// downlinks — not the shared client uplinks — are the serialized
// resource the sweep multiplies.
const MeshPayloadBytes = 128

// MeshKeyspace is how many keys the benchmark preloads and then reads
// from; the consistent hash spreads them across the shards.
const MeshKeyspace = 512

// Benchmark store procedures: a keyed put (small ack) and a keyed get
// (returns the 128 B value).
const (
	ProcMeshPut uint16 = 1
	ProcMeshGet uint16 = 2
)

type meshPair struct {
	Key string
	Val string
}

// meshStore is the minimal keyed module behind each shard's ownership
// guard. The chaos package owns the full KV (apply logs, tombstones,
// durability); the benchmark store keeps the server-side work at a
// floor so the measurement is the routing and replication machinery,
// not the application.
type meshStore struct {
	mu  sync.Mutex
	m   map[string]string
	pos int // puts applied — the apply-order position spread reads check
}

func newMeshStore() *meshStore { return &meshStore{m: make(map[string]string)} }

// Position implements mesh.Positioned so the benchmark store can serve
// spread reads: one position per applied put, identical across a
// shard's members because replicated calls apply in collation order.
func (s *meshStore) Position() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

func (s *meshStore) Dispatch(_ *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcMeshPut:
		var p meshPair
		if err := circus.Unmarshal(args, &p); err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.m[p.Key] = p.Val
		s.pos++
		s.mu.Unlock()
		return nil, nil
	case ProcMeshGet:
		s.mu.Lock()
		v, ok := s.m[string(args)]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("bench: mesh store: no key %q", args)
		}
		return []byte(v), nil
	}
	return nil, fmt.Errorf("bench: mesh store: unknown procedure %d", proc)
}

// meshStoreKeys is the guard's key extractor; both procedures are
// keyed data-path calls subject to the ownership check.
func meshStoreKeys(proc uint16, args []byte) (string, bool) {
	switch proc {
	case ProcMeshPut:
		var p meshPair
		if err := circus.Unmarshal(args, &p); err != nil {
			return "", false
		}
		return p.Key, true
	case ProcMeshGet:
		return string(args), true
	}
	return "", false
}

// MeshCluster is a partitioned mesh ready to benchmark: a Ringmaster,
// N shard troupes of guarded stores, and a pool of client runtimes
// each holding a routing mesh.Client. Sim is nil for the UDP variant.
type MeshCluster struct {
	Sim     *circus.SimNetwork
	nodes   []*circus.Node
	clients []*mesh.Client
	val     string
}

// meshLink is the benchmark wire: 1 Mb/s per-host serialization and
// 200–400 µs propagation, lossless. See the package comment above for
// why the bandwidth cap is the point.
func meshLink() circus.LinkConfig {
	return circus.LinkConfig{
		MinDelay:      200 * time.Microsecond,
		MaxDelay:      400 * time.Microsecond,
		BitsPerSecond: 1_000_000,
	}
}

// meshResilient returns client retry options tuned for a loaded but
// fault-free wire: generous attempts, backoff short enough that a
// retransmit-absorbed hiccup doesn't idle the closed loop.
func meshResilient(seed int64) core.ResilientOptions {
	return core.ResilientOptions{
		MaxAttempts:  10,
		Backoff:      core.Backoff{Initial: 15 * time.Millisecond, Max: 250 * time.Millisecond},
		SuspicionTTL: 400 * time.Millisecond,
		Seed:         seed,
	}
}

// buildMesh assembles the mesh over whatever node factory it is given:
// a Ringmaster node, shards×degree guarded store members (one node
// each), a controller node that bootstraps the shard map, and
// clientRuntimes mesh clients.
func buildMesh(newNode func(opts ...circus.Option) (*circus.Node, error),
	seed int64, shards, degree, clientRuntimes int) (*MeshCluster, error) {
	c := &MeshCluster{val: strings.Repeat("v", MeshPayloadBytes)}
	fail := func(err error) (*MeshCluster, error) {
		c.Close()
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	binder, err := newNode(circus.WithTrace(bench.Trace))
	if err != nil {
		return fail(err)
	}
	c.nodes = append(c.nodes, binder)
	if _, err := binder.ServeRingmaster(); err != nil {
		return fail(err)
	}
	opts := []circus.Option{circus.WithBinder(binder.BinderAddrs()), circus.WithTrace(bench.Trace)}

	names := make([]string, shards)
	for s := 0; s < shards; s++ {
		names[s] = fmt.Sprintf("%s/s%d", MeshService, s)
		for i := 0; i < degree; i++ {
			n, err := newNode(opts...)
			if err != nil {
				return fail(err)
			}
			c.nodes = append(c.nodes, n)
			if _, err := n.Export(names[s], mesh.NewGuard(names[s], newMeshStore(), meshStoreKeys)); err != nil {
				return fail(err)
			}
		}
	}

	admin, err := newNode(opts...)
	if err != nil {
		return fail(err)
	}
	c.nodes = append(c.nodes, admin)
	// The controller only bootstraps the map here — Split/Merge, the
	// operations that consult the state codec, never run — so no codec.
	ctl := mesh.NewController(admin.Runtime(), admin.Binder(), MeshService, nil)
	ctl.Resilient = meshResilient(seed ^ 0xc01)
	// 256 virtual nodes per shard: with the benchmark's uniform key
	// traffic the busiest shard's share of the ring bounds aggregate
	// throughput, so ring balance is part of the operating point.
	if _, err := ctl.Bootstrap(ctx, names, 256); err != nil {
		return fail(err)
	}

	for i := 0; i < clientRuntimes; i++ {
		n, err := newNode(opts...)
		if err != nil {
			return fail(err)
		}
		c.nodes = append(c.nodes, n)
		mc, err := mesh.NewClient(ctx, n.Runtime(), n.Binder(), MeshService,
			mesh.Options{Resilient: meshResilient(seed<<8 | int64(i))})
		if err != nil {
			return fail(err)
		}
		c.clients = append(c.clients, mc)
	}
	return c, nil
}

// NewMeshCluster builds the simulated mesh at the benchmark operating
// point: per-member timers of 100 ms retransmit / 200 ms probe (wire
// queueing under load must not masquerade as loss) and a 2 s
// many-to-one wait, over the 1 Mb/s link of meshLink.
func NewMeshCluster(seed int64, shards, degree, clientRuntimes int) (*MeshCluster, error) {
	sim := circus.NewSimNetwork(seed)
	sim.SetLink(meshLink())
	c, err := buildMesh(func(opts ...circus.Option) (*circus.Node, error) {
		opts = append([]circus.Option{
			circus.WithTimers(100*time.Millisecond, 200*time.Millisecond),
			circus.WithManyToOneWait(2 * time.Second),
		}, opts...)
		return sim.NewNode(opts...)
	}, seed, shards, degree, clientRuntimes)
	if err != nil {
		return nil, err
	}
	c.Sim = sim
	return c, nil
}

// NewMeshClusterUDP builds the mesh over real loopback UDP, every node
// listening on a Sharded endpoint with sockShards SO_REUSEPORT shards
// — the kernel transport tier under the partition tier. The wire is
// fast and lossless, so this variant measures dispatch scaling, not
// the bandwidth-bound scale-out of the simulated cluster.
func NewMeshClusterUDP(seed int64, shards, degree, clientRuntimes, sockShards int) (*MeshCluster, error) {
	return buildMesh(func(opts ...circus.Option) (*circus.Node, error) {
		opts = append([]circus.Option{
			circus.WithTimers(100*time.Millisecond, 500*time.Millisecond),
			circus.WithManyToOneWait(5 * time.Second),
		}, opts...)
		return circus.ListenUDPSharded(0, sockShards, opts...)
	}, seed, shards, degree, clientRuntimes)
}

// Close shuts every node down.
func (c *MeshCluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}

// put routes one keyed benchmark write through the given client.
func (c *MeshCluster) put(ctx context.Context, client int, key string) error {
	args, err := circus.Marshal(meshPair{Key: key, Val: c.val})
	if err != nil {
		return err
	}
	_, err = c.clients[client].Call(ctx, key, ProcMeshPut, args,
		core.CallOptions{Timeout: 5 * time.Second})
	return err
}

// get routes one keyed benchmark read through the given client.
func (c *MeshCluster) get(ctx context.Context, client int, key string) error {
	_, err := c.clients[client].Call(ctx, key, ProcMeshGet, []byte(key),
		core.CallOptions{Timeout: 5 * time.Second})
	return err
}

// getSpread routes one keyed read to a single shard member via the
// spread-read path (position token, stale bounce, quorum escalation).
func (c *MeshCluster) getSpread(ctx context.Context, client int, key string) error {
	_, err := c.clients[client].SpreadRead(ctx, key, ProcMeshGet, []byte(key),
		core.CallOptions{Timeout: 5 * time.Second})
	return err
}

func meshKey(n int) string { return fmt.Sprintf("bench.k%05d", n) }

// Preload writes the benchmark keyspace (spreading over the clients),
// then reads one key back through every client — so the measured loop
// starts with values in place, maps fetched, troupes bound, and paired
// message channels open on every path.
func (c *MeshCluster) Preload(keys int) error {
	ctx := context.Background()
	for n := 0; n < keys; n++ {
		if err := c.put(ctx, n%len(c.clients), meshKey(n)); err != nil {
			return err
		}
	}
	for ci := range c.clients {
		if err := c.get(ctx, ci, meshKey(ci%keys)); err != nil {
			return err
		}
	}
	return nil
}

// Workload shapes the benchmark operation mix.
type Workload struct {
	// ReadFrac is the fraction of operations that are reads; 1 means
	// read-only, 0 all writes.
	ReadFrac float64
	// Zipf, when > 1, skews key popularity with a Zipfian distribution
	// of that exponent over the keyspace (rank 0 hottest); <= 1 keeps
	// the uniform spread. The skewed mix is what exercises hot-key
	// widening: one or two keys soak up most reads.
	Zipf float64
	// Spread routes reads through the spread-read path (one member per
	// read) instead of the strict replicated read.
	Spread bool
	// Seed makes each caller's op stream deterministic.
	Seed int64
}

// ConcurrentOps issues total keyed operations from the given number of
// closed-loop callers, round-robined over the client runtimes, keys
// spread across the shards by the consistent hash. Mirrors
// Cluster.ConcurrentCalls: an atomic counter hands out operations, so
// faster paths do more work.
func (c *MeshCluster) ConcurrentOps(callers, total, keyspace int, w Workload) error {
	ctx := context.Background()
	var next int64
	errc := make(chan error, callers)
	for cl := 0; cl < callers; cl++ {
		go func(cl int) {
			rng := rand.New(rand.NewSource(w.Seed ^ int64(cl)*0x9E3779B9))
			var zipf *rand.Zipf
			if w.Zipf > 1 {
				zipf = rand.NewZipf(rng, w.Zipf, 1, uint64(keyspace-1))
			}
			for {
				n := atomic.AddInt64(&next, 1) - 1
				if n >= int64(total) {
					errc <- nil
					return
				}
				kn := int(n) % keyspace
				if zipf != nil {
					kn = int(zipf.Uint64())
				}
				key := meshKey(kn)
				client := int(n) % len(c.clients)
				var err error
				switch {
				case rng.Float64() >= w.ReadFrac:
					err = c.put(ctx, client, key)
				case w.Spread:
					err = c.getSpread(ctx, client, key)
				default:
					err = c.get(ctx, client, key)
				}
				if err != nil {
					errc <- fmt.Errorf("op on %q: %w", key, err)
					return
				}
			}
		}(cl)
	}
	var first error
	for cl := 0; cl < callers; cl++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ConcurrentGets issues total strict-quorum keyed reads — the
// read-only uniform workload the scale-out sweep is built on.
func (c *MeshCluster) ConcurrentGets(callers, total, keyspace int) error {
	return c.ConcurrentOps(callers, total, keyspace, Workload{ReadFrac: 1})
}

// Stats sums the routing counters across the mesh clients.
func (c *MeshCluster) Stats() mesh.ClientStats {
	var st mesh.ClientStats
	for _, mc := range c.clients {
		s := mc.Stats()
		st.Redirects += s.Redirects
		st.Parks += s.Parks
		st.Refreshes += s.Refreshes
		st.MapPushes += s.MapPushes
		st.SpreadReads += s.SpreadReads
		st.StaleBounces += s.StaleBounces
		st.Escalations += s.Escalations
		st.HotWidenings += s.HotWidenings
		st.StaleServes += s.StaleServes
	}
	return st
}

// MeshThroughput measures closed-loop aggregate keyed ops/s against a
// freshly built simulated mesh of the given shard count and workload,
// after preloading the keyspace through the write path.
func MeshThroughput(seed int64, shards, degree, callers, clientRuntimes, total int, w Workload) (float64, error) {
	c, err := NewMeshCluster(seed, shards, degree, clientRuntimes)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Preload(MeshKeyspace); err != nil {
		return 0, err
	}
	if w.Seed == 0 {
		w.Seed = seed
	}
	start := time.Now()
	if err := c.ConcurrentOps(callers, total, MeshKeyspace, w); err != nil {
		return 0, err
	}
	return float64(total) / time.Since(start).Seconds(), nil
}

// MeshReadComparison runs the read-scaling experiment of the spread
// path: one shard at the given degree, the same caller pool, uniform
// read-only traffic, once with strict quorum reads and once with
// spread reads. The strict read costs every member a value-sized
// downlink serialization per read; the spread read costs one. On the
// bandwidth-bound benchmark wire the ratio therefore approaches the
// replication degree.
func MeshReadComparison(seed int64, degree, callers, clientRuntimes, total int) (quorum, spread float64, err error) {
	quorum, err = MeshThroughput(seed, 1, degree, callers, clientRuntimes, total,
		Workload{ReadFrac: 1})
	if err != nil {
		return 0, 0, err
	}
	spread, err = MeshThroughput(seed, 1, degree, callers, clientRuntimes, total,
		Workload{ReadFrac: 1, Spread: true})
	if err != nil {
		return 0, 0, err
	}
	return quorum, spread, nil
}

// MeshShardCounts is the scale-out sweep: 1, 2, 4, and 8 shards at
// fixed degree and caller count.
func MeshShardCounts() []int { return []int{1, 2, 4, 8} }

// MeshScaling sweeps aggregate keyed ops/s across shard counts at a
// fixed degree, caller count, and read fraction — the scale-out curve
// of the partitioned mesh. total is the op count per point; the caller
// pool and the per-host wire stay fixed, so the ratio column is the
// experiment.
func MeshScaling(seed int64, degree, callers, clientRuntimes, total int, readFrac float64) (string, error) {
	var b strings.Builder
	b.WriteString("Partitioned mesh — aggregate keyed ops/s vs shard count\n")
	fmt.Fprintf(&b, "netsim 1 Mb/s per-host links, 200-400 us delay, %d B values, degree %d, %d closed-loop callers over %d client runtimes\n",
		MeshPayloadBytes, degree, callers, clientRuntimes)
	fmt.Fprintf(&b, "%-7s %9s %12s %9s\n", "shards", "readfrac", "ops/sec", "scaling")
	var base float64
	for _, shards := range MeshShardCounts() {
		rps, err := MeshThroughput(seed+int64(shards), shards, degree, callers, clientRuntimes, total,
			Workload{ReadFrac: readFrac})
		if err != nil {
			return "", err
		}
		if base == 0 {
			base = rps
		}
		fmt.Fprintf(&b, "%-7d %9.2f %12.0f %8.2fx\n", shards, readFrac, rps, rps/base)
	}
	b.WriteString("shape: every member of a key's shard serializes the value onto its own\n")
	b.WriteString("1 Mb/s downlink, so a shard's member links are the saturated resource;\n")
	b.WriteString("adding shards adds links, and aggregate ops/s climbs near-linearly\n")
	b.WriteString("until the fixed caller pool, not the mesh, is the bottleneck.\n")
	return b.String(), nil
}

// MeshSpreadScaling compares quorum and spread read throughput at one
// shard — the read-path scale-out table for the experiments binary.
func MeshSpreadScaling(seed int64, degree, callers, clientRuntimes, total int) (string, error) {
	quorum, spread, err := MeshReadComparison(seed, degree, callers, clientRuntimes, total)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Spread reads — single-shard keyed reads/s by read path\n")
	fmt.Fprintf(&b, "netsim 1 Mb/s per-host links, %d B values, degree %d, %d closed-loop callers over %d client runtimes\n",
		MeshPayloadBytes, degree, callers, clientRuntimes)
	fmt.Fprintf(&b, "%-8s %12s %9s\n", "path", "reads/sec", "vs base")
	fmt.Fprintf(&b, "%-8s %12.0f %8.2fx\n", "quorum", quorum, 1.0)
	fmt.Fprintf(&b, "%-8s %12.0f %8.2fx\n", "spread", spread, spread/quorum)
	b.WriteString("shape: the strict read serializes the value onto every member's downlink;\n")
	b.WriteString("the spread read onto one, so reads scale with the replication degree\n")
	b.WriteString("instead of paying for it.\n")
	return b.String(), nil
}
