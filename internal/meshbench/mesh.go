package meshbench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"circus"
	"circus/internal/bench"
	"circus/internal/core"
	"circus/internal/mesh"
)

// The mesh benchmark measures what partitioning buys: aggregate keyed
// throughput across N consistent-hash shards at fixed replication
// degree, driven by closed-loop callers routing through mesh clients.
// Each shard is an independent troupe, so at a fixed per-shard service
// rate the aggregate should scale with the shard count until the
// callers (not the shards) are the bottleneck.
//
// The simulated operating point is deliberately network-bound: 1 Mb/s
// per-host links with a few hundred microseconds of propagation delay
// make each member's 128 B return datagram cost over a millisecond of
// downlink serialization, so a single shard's member links saturate
// around a thousand reads/s while the clients' small request uplinks
// idle. Adding shards adds member links — the scale-out the experiment
// exists to show. On an infinitely fast wire the runtimes all contend
// for the same cores and the curve flattens into a CPU benchmark.

// MeshService is the interface name the benchmark mesh registers its
// shard troupes under (kv/s0, kv/s1, ...).
const MeshService = "kv"

// MeshPayloadBytes is the value size behind every benchmark key: the
// payload rides the member→client return path, so each shard's member
// downlinks — not the shared client uplinks — are the serialized
// resource the sweep multiplies.
const MeshPayloadBytes = 128

// MeshKeyspace is how many keys the benchmark preloads and then reads
// from; the consistent hash spreads them across the shards.
const MeshKeyspace = 512

// Benchmark store procedures: a keyed put (small ack) and a keyed get
// (returns the 128 B value).
const (
	ProcMeshPut uint16 = 1
	ProcMeshGet uint16 = 2
)

type meshPair struct {
	Key string
	Val string
}

// meshStore is the minimal keyed module behind each shard's ownership
// guard. The chaos package owns the full KV (apply logs, tombstones,
// durability); the benchmark store keeps the server-side work at a
// floor so the measurement is the routing and replication machinery,
// not the application.
type meshStore struct {
	mu sync.Mutex
	m  map[string]string
}

func newMeshStore() *meshStore { return &meshStore{m: make(map[string]string)} }

func (s *meshStore) Dispatch(_ *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcMeshPut:
		var p meshPair
		if err := circus.Unmarshal(args, &p); err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.m[p.Key] = p.Val
		s.mu.Unlock()
		return nil, nil
	case ProcMeshGet:
		s.mu.Lock()
		v, ok := s.m[string(args)]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("bench: mesh store: no key %q", args)
		}
		return []byte(v), nil
	}
	return nil, fmt.Errorf("bench: mesh store: unknown procedure %d", proc)
}

// meshStoreKeys is the guard's key extractor; both procedures are
// keyed data-path calls subject to the ownership check.
func meshStoreKeys(proc uint16, args []byte) (string, bool) {
	switch proc {
	case ProcMeshPut:
		var p meshPair
		if err := circus.Unmarshal(args, &p); err != nil {
			return "", false
		}
		return p.Key, true
	case ProcMeshGet:
		return string(args), true
	}
	return "", false
}

// MeshCluster is a partitioned mesh ready to benchmark: a Ringmaster,
// N shard troupes of guarded stores, and a pool of client runtimes
// each holding a routing mesh.Client. Sim is nil for the UDP variant.
type MeshCluster struct {
	Sim     *circus.SimNetwork
	nodes   []*circus.Node
	clients []*mesh.Client
	val     string
}

// meshLink is the benchmark wire: 1 Mb/s per-host serialization and
// 200–400 µs propagation, lossless. See the package comment above for
// why the bandwidth cap is the point.
func meshLink() circus.LinkConfig {
	return circus.LinkConfig{
		MinDelay:      200 * time.Microsecond,
		MaxDelay:      400 * time.Microsecond,
		BitsPerSecond: 1_000_000,
	}
}

// meshResilient returns client retry options tuned for a loaded but
// fault-free wire: generous attempts, backoff short enough that a
// retransmit-absorbed hiccup doesn't idle the closed loop.
func meshResilient(seed int64) core.ResilientOptions {
	return core.ResilientOptions{
		MaxAttempts:  10,
		Backoff:      core.Backoff{Initial: 15 * time.Millisecond, Max: 250 * time.Millisecond},
		SuspicionTTL: 400 * time.Millisecond,
		Seed:         seed,
	}
}

// buildMesh assembles the mesh over whatever node factory it is given:
// a Ringmaster node, shards×degree guarded store members (one node
// each), a controller node that bootstraps the shard map, and
// clientRuntimes mesh clients.
func buildMesh(newNode func(opts ...circus.Option) (*circus.Node, error),
	seed int64, shards, degree, clientRuntimes int) (*MeshCluster, error) {
	c := &MeshCluster{val: strings.Repeat("v", MeshPayloadBytes)}
	fail := func(err error) (*MeshCluster, error) {
		c.Close()
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	binder, err := newNode(circus.WithTrace(bench.Trace))
	if err != nil {
		return fail(err)
	}
	c.nodes = append(c.nodes, binder)
	if _, err := binder.ServeRingmaster(); err != nil {
		return fail(err)
	}
	opts := []circus.Option{circus.WithBinder(binder.BinderAddrs()), circus.WithTrace(bench.Trace)}

	names := make([]string, shards)
	for s := 0; s < shards; s++ {
		names[s] = fmt.Sprintf("%s/s%d", MeshService, s)
		for i := 0; i < degree; i++ {
			n, err := newNode(opts...)
			if err != nil {
				return fail(err)
			}
			c.nodes = append(c.nodes, n)
			if _, err := n.Export(names[s], mesh.NewGuard(names[s], newMeshStore(), meshStoreKeys)); err != nil {
				return fail(err)
			}
		}
	}

	admin, err := newNode(opts...)
	if err != nil {
		return fail(err)
	}
	c.nodes = append(c.nodes, admin)
	// The controller only bootstraps the map here — Split/Merge, the
	// operations that consult the state codec, never run — so no codec.
	ctl := mesh.NewController(admin.Runtime(), admin.Binder(), MeshService, nil)
	ctl.Resilient = meshResilient(seed ^ 0xc01)
	// 256 virtual nodes per shard: with the benchmark's uniform key
	// traffic the busiest shard's share of the ring bounds aggregate
	// throughput, so ring balance is part of the operating point.
	if _, err := ctl.Bootstrap(ctx, names, 256); err != nil {
		return fail(err)
	}

	for i := 0; i < clientRuntimes; i++ {
		n, err := newNode(opts...)
		if err != nil {
			return fail(err)
		}
		c.nodes = append(c.nodes, n)
		mc, err := mesh.NewClient(ctx, n.Runtime(), n.Binder(), MeshService,
			mesh.Options{Resilient: meshResilient(seed<<8 | int64(i))})
		if err != nil {
			return fail(err)
		}
		c.clients = append(c.clients, mc)
	}
	return c, nil
}

// NewMeshCluster builds the simulated mesh at the benchmark operating
// point: per-member timers of 100 ms retransmit / 200 ms probe (wire
// queueing under load must not masquerade as loss) and a 2 s
// many-to-one wait, over the 1 Mb/s link of meshLink.
func NewMeshCluster(seed int64, shards, degree, clientRuntimes int) (*MeshCluster, error) {
	sim := circus.NewSimNetwork(seed)
	sim.SetLink(meshLink())
	c, err := buildMesh(func(opts ...circus.Option) (*circus.Node, error) {
		opts = append([]circus.Option{
			circus.WithTimers(100*time.Millisecond, 200*time.Millisecond),
			circus.WithManyToOneWait(2 * time.Second),
		}, opts...)
		return sim.NewNode(opts...)
	}, seed, shards, degree, clientRuntimes)
	if err != nil {
		return nil, err
	}
	c.Sim = sim
	return c, nil
}

// NewMeshClusterUDP builds the mesh over real loopback UDP, every node
// listening on a Sharded endpoint with sockShards SO_REUSEPORT shards
// — the kernel transport tier under the partition tier. The wire is
// fast and lossless, so this variant measures dispatch scaling, not
// the bandwidth-bound scale-out of the simulated cluster.
func NewMeshClusterUDP(seed int64, shards, degree, clientRuntimes, sockShards int) (*MeshCluster, error) {
	return buildMesh(func(opts ...circus.Option) (*circus.Node, error) {
		opts = append([]circus.Option{
			circus.WithTimers(100*time.Millisecond, 500*time.Millisecond),
			circus.WithManyToOneWait(5 * time.Second),
		}, opts...)
		return circus.ListenUDPSharded(0, sockShards, opts...)
	}, seed, shards, degree, clientRuntimes)
}

// Close shuts every node down.
func (c *MeshCluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}

// put routes one keyed benchmark write through the given client.
func (c *MeshCluster) put(ctx context.Context, client int, key string) error {
	args, err := circus.Marshal(meshPair{Key: key, Val: c.val})
	if err != nil {
		return err
	}
	_, err = c.clients[client].Call(ctx, key, ProcMeshPut, args,
		core.CallOptions{Timeout: 5 * time.Second})
	return err
}

// get routes one keyed benchmark read through the given client.
func (c *MeshCluster) get(ctx context.Context, client int, key string) error {
	_, err := c.clients[client].Call(ctx, key, ProcMeshGet, []byte(key),
		core.CallOptions{Timeout: 5 * time.Second})
	return err
}

func meshKey(n int) string { return fmt.Sprintf("bench.k%05d", n) }

// Preload writes the benchmark keyspace (spreading over the clients),
// then reads one key back through every client — so the measured loop
// starts with values in place, maps fetched, troupes bound, and paired
// message channels open on every path.
func (c *MeshCluster) Preload(keys int) error {
	ctx := context.Background()
	for n := 0; n < keys; n++ {
		if err := c.put(ctx, n%len(c.clients), meshKey(n)); err != nil {
			return err
		}
	}
	for ci := range c.clients {
		if err := c.get(ctx, ci, meshKey(ci%keys)); err != nil {
			return err
		}
	}
	return nil
}

// ConcurrentGets issues total keyed reads over the preloaded keyspace
// from the given number of closed-loop callers, round-robined over
// the client runtimes, keys spread across the shards by the
// consistent hash. Mirrors Cluster.ConcurrentCalls: an atomic counter
// hands out operations, so faster paths do more work.
func (c *MeshCluster) ConcurrentGets(callers, total, keyspace int) error {
	ctx := context.Background()
	var next int64
	errc := make(chan error, callers)
	for w := 0; w < callers; w++ {
		go func() {
			for {
				n := atomic.AddInt64(&next, 1) - 1
				if n >= int64(total) {
					errc <- nil
					return
				}
				key := meshKey(int(n) % keyspace)
				if err := c.get(ctx, int(n)%len(c.clients), key); err != nil {
					errc <- fmt.Errorf("get %q: %w", key, err)
					return
				}
			}
		}()
	}
	var first error
	for w := 0; w < callers; w++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats sums the routing counters across the mesh clients.
func (c *MeshCluster) Stats() mesh.ClientStats {
	var st mesh.ClientStats
	for _, mc := range c.clients {
		s := mc.Stats()
		st.Redirects += s.Redirects
		st.Parks += s.Parks
		st.Refreshes += s.Refreshes
	}
	return st
}

// MeshThroughput measures closed-loop aggregate keyed reads/s against
// a freshly built simulated mesh of the given shard count, after
// preloading the keyspace through the write path.
func MeshThroughput(seed int64, shards, degree, callers, clientRuntimes, total int) (float64, error) {
	c, err := NewMeshCluster(seed, shards, degree, clientRuntimes)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Preload(MeshKeyspace); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := c.ConcurrentGets(callers, total, MeshKeyspace); err != nil {
		return 0, err
	}
	return float64(total) / time.Since(start).Seconds(), nil
}

// MeshShardCounts is the scale-out sweep: 1, 2, 4, and 8 shards at
// fixed degree and caller count.
func MeshShardCounts() []int { return []int{1, 2, 4, 8} }

// MeshScaling sweeps aggregate keyed reads/s across shard counts at a
// fixed degree and caller count — the scale-out curve of the
// partitioned mesh. total is the read count per point; the caller
// pool and the per-host wire stay fixed, so the ratio column is the
// experiment.
func MeshScaling(seed int64, degree, callers, clientRuntimes, total int) (string, error) {
	var b strings.Builder
	b.WriteString("Partitioned mesh — aggregate keyed reads/s vs shard count\n")
	fmt.Fprintf(&b, "netsim 1 Mb/s per-host links, 200-400 us delay, %d B values, degree %d, %d closed-loop callers over %d client runtimes\n",
		MeshPayloadBytes, degree, callers, clientRuntimes)
	fmt.Fprintf(&b, "%-7s %12s %9s\n", "shards", "reads/sec", "scaling")
	var base float64
	for _, shards := range MeshShardCounts() {
		rps, err := MeshThroughput(seed+int64(shards), shards, degree, callers, clientRuntimes, total)
		if err != nil {
			return "", err
		}
		if base == 0 {
			base = rps
		}
		fmt.Fprintf(&b, "%-7d %12.0f %8.2fx\n", shards, rps, rps/base)
	}
	b.WriteString("shape: every member of a key's shard serializes the value onto its own\n")
	b.WriteString("1 Mb/s downlink, so a shard's member links are the saturated resource;\n")
	b.WriteString("adding shards adds links, and aggregate reads/s climbs near-linearly\n")
	b.WriteString("until the fixed caller pool, not the mesh, is the bottleneck.\n")
	return b.String(), nil
}
