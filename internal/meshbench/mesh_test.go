package meshbench

import "testing"

// TestMeshClusterSmoke drives a small simulated mesh end to end:
// preload through the write path, closed-loop reads through the mesh
// clients, no routing faults expected on a calm map.
func TestMeshClusterSmoke(t *testing.T) {
	c, err := NewMeshCluster(7, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Preload(32); err != nil {
		t.Fatal(err)
	}
	if err := c.ConcurrentGets(8, 64, 32); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Redirects != 0 || st.Parks != 0 {
		t.Fatalf("routing faults on a calm map: %+v", st)
	}
}

// TestMeshClusterUDPSmoke runs the same loop over real sharded
// loopback UDP — the kernel transport under the partition tier.
func TestMeshClusterUDPSmoke(t *testing.T) {
	c, err := NewMeshClusterUDP(7, 2, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Preload(16); err != nil {
		t.Fatal(err)
	}
	if err := c.ConcurrentGets(4, 32, 16); err != nil {
		t.Fatal(err)
	}
}
