// Package ringmaster implements the binding agent for troupes (§6.3):
// a specialized name server that enables programs to import and export
// troupes by name, playing the role Grapevine plays in the Xerox PARC
// RPC system.
//
// The Ringmaster manipulates troupes (sets of module addresses),
// manages the troupe IDs required by the replicated procedure call
// algorithms, and is itself a module designed to be replicated: its
// state transitions are deterministic (troupe IDs are a deterministic
// function of name and incarnation), so a Ringmaster troupe stays
// consistent when driven through replicated procedure calls (§6.2).
//
// Changing a troupe's membership atomically changes its troupe ID and
// informs the members via the set_troupe_id procedure, which is how
// stale client bindings become detectable (§6.2): a member accepts a
// call only if it bears the member's current troupe ID.
package ringmaster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"circus/internal/core"
	"circus/internal/trace"
	"circus/internal/transport"
	"circus/internal/wire"
)

// Procedure numbers of the binding interface (Figure 6.1).
const (
	ProcRegisterTroupe     uint16 = 1
	ProcAddTroupeMember    uint16 = 2
	ProcLookupByName       uint16 = 3
	ProcLookupByID         uint16 = 4
	ProcRemoveTroupeMember uint16 = 5
	ProcRebind             uint16 = 6
	ProcListNames          uint16 = 7
	// ProcPublishMap/ProcFetchMap store and retrieve small epoch-
	// versioned configuration blobs keyed by service name — the mesh
	// layer's shard maps. Publish is compare-and-set on the epoch
	// (exactly current+1 is accepted), a deterministic transition, so a
	// replicated Ringmaster stays consistent and two racing rebalancing
	// coordinators cannot both win the same epoch.
	ProcPublishMap uint16 = 8
	ProcFetchMap   uint16 = 9
	// ProcWatchShardMap registers a push endpoint for a service's map:
	// every accepted publish is then pushed to the endpoint (see
	// ProcWatcherPush), turning the refusal-driven pull of stale
	// clients into an epoch-bump notification. Registration returns the
	// currently published map, so watch-then-use needs no extra fetch.
	// Watchers are soft state: they are not part of state transfer, and
	// an endpoint that fails several consecutive pushes is dropped —
	// the pull path remains the fallback either way.
	ProcWatchShardMap uint16 = 10
)

// ProcWatcherPush is the procedure a registered watch endpoint must
// implement: it receives the newly published configuration blob
// (e.g. an encoded mesh shard map) as its argument. The Ringmaster
// defines the number so watchers and pushers agree without a shared
// application package.
const ProcWatcherPush uint16 = 1

// watchPushTimeout bounds one watcher notification, so a dead or
// partitioned watcher cannot stall a publish for long.
const watchPushTimeout = 800 * time.Millisecond

// watchPushMaxFails is how many consecutive failed pushes a watcher
// survives before being dropped (it can re-register any time).
const watchPushMaxFails = 3

// WellKnownPort is the degenerate bootstrap binding of §6.3: the
// Ringmaster troupe is partially specified by a well-known port on
// each machine running an instance.
const WellKnownPort uint16 = 911

// Wire representations of the binding interface types.
type wireAddr struct {
	Host   uint32
	Port   uint16
	Module uint16
}

func toWire(m core.ModuleAddr) wireAddr {
	return wireAddr{Host: m.Addr.Host, Port: m.Addr.Port, Module: m.Module}
}

func fromWire(w wireAddr) core.ModuleAddr {
	return core.ModuleAddr{
		Addr:   transport.Addr{Host: w.Host, Port: w.Port},
		Module: w.Module,
	}
}

type nameMembersArgs struct {
	Name    string
	Members []wireAddr
}

type nameMemberArgs struct {
	Name   string
	Member wireAddr
}

type troupeReply struct {
	ID      uint64
	Members []wireAddr
}

type rebindArgs struct {
	Name    string
	StaleID uint64
}

type publishMapArgs struct {
	Service string
	Epoch   uint64
	Data    []byte
}

type mapReply struct {
	Epoch uint64
	Data  []byte
}

type watchMapArgs struct {
	Service string
	Watcher wireAddr
}

// mapWatcher is one registered push endpoint with its failure streak.
type mapWatcher struct {
	addr  core.ModuleAddr
	fails int
}

// entry is the registration record for one troupe name.
type entry struct {
	id          uint64
	incarnation uint32
	members     []core.ModuleAddr
}

// Service is the Ringmaster module. Export it on a core.Runtime (one
// per Ringmaster troupe member); all state transitions are
// deterministic functions of the operation sequence, as troupe
// consistency requires (§3.5.2).
type Service struct {
	mu      sync.Mutex
	entries map[string]*entry
	maps    map[string]mapReply // service -> latest published map
	// watchers lists the push endpoints per service. Soft state by
	// design: not serialized into GetState (a member initialized by
	// state transfer starts with no watchers), because a watcher missed
	// by a push recovers through the pull path regardless.
	watchers map[string][]*mapWatcher

	// InformMembers, when true (the default), makes membership
	// changes call set_troupe_id at every member of the affected
	// troupe (§6.2, Figure 6.2).
	InformMembers bool

	// Tracer, when set (by Node.ServeRingmaster), records binding
	// operations: registrations, membership changes, lookups.
	Tracer *trace.Local
}

// NewService returns an empty Ringmaster.
func NewService() *Service {
	return &Service{
		entries:       make(map[string]*entry),
		maps:          make(map[string]mapReply),
		watchers:      make(map[string][]*mapWatcher),
		InformMembers: true,
	}
}

var _ core.Module = (*Service)(nil)
var _ core.StateProvider = (*Service)(nil)

// troupeID derives the deterministic, permanently unique troupe ID for
// an incarnation of a name (§6.2 requires IDs to change with every
// membership change; determinism keeps Ringmaster replicas
// consistent).
func troupeID(name string, incarnation uint32) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d", name, incarnation)
	id := h.Sum64()
	if id == 0 {
		id = 1 // zero is the "no troupe" sentinel
	}
	return id
}

// Dispatch implements core.Module.
func (s *Service) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcRegisterTroupe:
		var a nameMembersArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return s.registerTroupe(call, a)
	case ProcAddTroupeMember:
		var a nameMemberArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return s.addMember(call, a)
	case ProcRemoveTroupeMember:
		var a nameMemberArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return s.removeMember(call, a)
	case ProcLookupByName:
		var name string
		if err := wire.Unmarshal(args, &name); err != nil {
			return nil, err
		}
		return s.lookupByName(name)
	case ProcLookupByID:
		var id uint64
		if err := wire.Unmarshal(args, &id); err != nil {
			return nil, err
		}
		return s.lookupByID(id)
	case ProcRebind:
		var a rebindArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		// The stale binding is only a hint (§6.1); the current
		// binding is looked up and returned.
		return s.lookupByName(a.Name)
	case ProcListNames:
		return s.listNames()
	case ProcPublishMap:
		var a publishMapArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return s.publishMap(call, a)
	case ProcWatchShardMap:
		var a watchMapArgs
		if err := wire.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return s.watchShardMap(a)
	case ProcFetchMap:
		var service string
		if err := wire.Unmarshal(args, &service); err != nil {
			return nil, err
		}
		return s.fetchMap(service)
	default:
		return nil, core.ErrNoSuchProc
	}
}

// registerTroupe registers a whole troupe under a name, as a third
// party such as the configuration manager does (§6.2). Re-registering
// a name replaces its membership and advances the incarnation.
func (s *Service) registerTroupe(call *core.ServerCall, a nameMembersArgs) ([]byte, error) {
	members := make([]core.ModuleAddr, len(a.Members))
	for i, w := range a.Members {
		members[i] = fromWire(w)
	}
	s.mu.Lock()
	e, ok := s.entries[a.Name]
	if !ok {
		e = &entry{}
		s.entries[a.Name] = e
	}
	e.incarnation++
	e.id = troupeID(a.Name, e.incarnation)
	e.members = members
	id := e.id
	s.mu.Unlock()

	if s.Tracer.Enabled() {
		s.Tracer.Emit(trace.Event{Kind: trace.KindRegister,
			Troupe: id, N: len(members), Detail: a.Name})
	}
	if err := s.informMembers(call, id, members); err != nil {
		return nil, err
	}
	return wire.Marshal(id)
}

// addMember implements Figure 6.2: the new member joins, the troupe ID
// changes, and every member (old and new) learns the new ID.
func (s *Service) addMember(call *core.ServerCall, a nameMemberArgs) ([]byte, error) {
	m := fromWire(a.Member)
	s.mu.Lock()
	e, ok := s.entries[a.Name]
	if !ok {
		e = &entry{}
		s.entries[a.Name] = e
	}
	present := false
	for _, x := range e.members {
		if x == m {
			present = true
			break
		}
	}
	if !present {
		e.members = append(e.members, m)
	}
	e.incarnation++
	e.id = troupeID(a.Name, e.incarnation)
	id := e.id
	members := append([]core.ModuleAddr(nil), e.members...)
	s.mu.Unlock()

	if s.Tracer.Enabled() {
		s.Tracer.Emit(trace.Event{Kind: trace.KindAddMember,
			Peer: m.Addr, Module: m.Module,
			Troupe: id, N: len(members), Detail: a.Name})
	}
	if err := s.informMembers(call, id, members); err != nil {
		return nil, err
	}
	return wire.Marshal(id)
}

// removeMember deletes a member (reconfiguration after a crash, §6.4)
// and advances the incarnation.
func (s *Service) removeMember(call *core.ServerCall, a nameMemberArgs) ([]byte, error) {
	m := fromWire(a.Member)
	s.mu.Lock()
	e, ok := s.entries[a.Name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("ringmaster: no troupe named %q", a.Name)
	}
	kept := e.members[:0]
	for _, x := range e.members {
		if x != m {
			kept = append(kept, x)
		}
	}
	e.members = kept
	e.incarnation++
	e.id = troupeID(a.Name, e.incarnation)
	id := e.id
	members := append([]core.ModuleAddr(nil), e.members...)
	s.mu.Unlock()

	if s.Tracer.Enabled() {
		s.Tracer.Emit(trace.Event{Kind: trace.KindRemoveMember,
			Peer: m.Addr, Module: m.Module,
			Troupe: id, N: len(members), Detail: a.Name})
	}
	if err := s.informMembers(call, id, members); err != nil {
		return nil, err
	}
	return wire.Marshal(id)
}

// informMembers runs set_troupe_id at every member of the affected
// troupe, expressed as a replicated procedure call so that a
// replicated Ringmaster's members are collated into one logical call
// (§6.2).
func (s *Service) informMembers(call *core.ServerCall, id uint64, members []core.ModuleAddr) error {
	if !s.InformMembers || len(members) == 0 || call == nil {
		return nil
	}
	arg, err := wire.Marshal(id)
	if err != nil {
		return err
	}
	// Destination troupe ID zero: the members' current IDs are stale
	// by construction, so the incarnation check must be skipped for
	// this administrative call.
	dest := core.Troupe{Members: members}
	if _, err := call.Call(dest, core.ProcSetTroupeID, arg, core.CallOptions{}); err != nil {
		return fmt.Errorf("ringmaster: informing troupe members: %w", err)
	}
	return nil
}

func (s *Service) lookupByName(name string) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.entries[name]
	if !ok || len(e.members) == 0 {
		s.mu.Unlock()
		if s.Tracer.Enabled() {
			s.Tracer.Emit(trace.Event{Kind: trace.KindLookup,
				Detail: name, Err: "not found"})
		}
		return nil, fmt.Errorf("ringmaster: no troupe named %q", name)
	}
	rep := troupeReply{ID: e.id}
	for _, m := range e.members {
		rep.Members = append(rep.Members, toWire(m))
	}
	s.mu.Unlock()
	if s.Tracer.Enabled() {
		s.Tracer.Emit(trace.Event{Kind: trace.KindLookup,
			Troupe: rep.ID, N: len(rep.Members), Detail: name})
	}
	return wire.Marshal(rep)
}

func (s *Service) lookupByID(id uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.id == id {
			rep := troupeReply{ID: e.id}
			for _, m := range e.members {
				rep.Members = append(rep.Members, toWire(m))
			}
			return wire.Marshal(rep)
		}
	}
	return nil, fmt.Errorf("ringmaster: no troupe with ID %#x", id)
}

// listNames enumerates registered names in sorted order (sorted so
// that replicated Ringmaster members answer identically), the
// enumeration the garbage collector needs (§6.1).
func (s *Service) listNames() ([]byte, error) {
	s.mu.Lock()
	names := make([]string, 0, len(s.entries))
	for n, e := range s.entries {
		if len(e.members) > 0 {
			names = append(names, n)
		}
	}
	s.mu.Unlock()
	sort.Strings(names)
	return wire.Marshal(names)
}

// publishMap stores a configuration blob for a service iff the offered
// epoch is exactly one past the stored one (zero when none): first-
// writer-wins compare-and-set, so concurrent coordinators serialize.
func (s *Service) publishMap(call *core.ServerCall, a publishMapArgs) ([]byte, error) {
	s.mu.Lock()
	cur := s.maps[a.Service].Epoch
	if a.Epoch != cur+1 {
		s.mu.Unlock()
		return nil, fmt.Errorf("ringmaster: stale map publish for %q: have epoch %d, offered %d",
			a.Service, cur, a.Epoch)
	}
	data := append([]byte(nil), a.Data...)
	s.maps[a.Service] = mapReply{Epoch: a.Epoch, Data: data}
	s.mu.Unlock()
	if s.Tracer.Enabled() {
		s.Tracer.Emit(trace.Event{Kind: trace.KindRegister,
			Troupe: a.Epoch, N: len(a.Data), Detail: "map:" + a.Service})
	}
	s.pushToWatchers(call, a.Service, data)
	return wire.Marshal(a.Epoch)
}

// watchShardMap registers a push endpoint for a service's map and
// returns the currently published map (epoch zero, empty data when
// none has been published yet). Re-registering the same endpoint
// resets its failure streak.
func (s *Service) watchShardMap(a watchMapArgs) ([]byte, error) {
	m := fromWire(a.Watcher)
	s.mu.Lock()
	found := false
	for _, w := range s.watchers[a.Service] {
		if w.addr == m {
			w.fails = 0
			found = true
			break
		}
	}
	if !found {
		s.watchers[a.Service] = append(s.watchers[a.Service], &mapWatcher{addr: m})
	}
	rep := s.maps[a.Service]
	s.mu.Unlock()
	if s.Tracer.Enabled() {
		s.Tracer.Emit(trace.Event{Kind: trace.KindRegister,
			Peer: m.Addr, Module: m.Module, Troupe: rep.Epoch, Detail: "watch:" + a.Service})
	}
	return wire.Marshal(rep)
}

// pushToWatchers notifies every registered endpoint of the newly
// published blob, best effort: failures never fail the publish, a
// bounded per-watcher timeout keeps a dead endpoint from stalling it,
// and an endpoint that fails watchPushMaxFails consecutive pushes is
// dropped (the pull path covers it from then on). Pushes are nested
// one-member calls expressed through the publish's own ServerCall, so
// a replicated Ringmaster's members collate into one logical push per
// watcher — the same trick informMembers plays.
func (s *Service) pushToWatchers(call *core.ServerCall, service string, data []byte) {
	if call == nil {
		return
	}
	s.mu.Lock()
	ws := append([]*mapWatcher(nil), s.watchers[service]...)
	s.mu.Unlock()
	if len(ws) == 0 {
		return
	}
	for _, w := range ws {
		dest := core.Troupe{Members: []core.ModuleAddr{w.addr}}
		_, err := call.Call(dest, ProcWatcherPush, data, core.CallOptions{Timeout: watchPushTimeout})
		s.mu.Lock()
		if err != nil {
			w.fails++
		} else {
			w.fails = 0
		}
		if w.fails >= watchPushMaxFails {
			kept := s.watchers[service][:0]
			for _, x := range s.watchers[service] {
				if x != w {
					kept = append(kept, x)
				}
			}
			s.watchers[service] = kept
		}
		s.mu.Unlock()
	}
}

// fetchMap returns the latest published map for a service.
func (s *Service) fetchMap(service string) ([]byte, error) {
	s.mu.Lock()
	rep, ok := s.maps[service]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("ringmaster: no map published for %q", service)
	}
	return wire.Marshal(rep)
}

// stateRecord is the externalized form of one entry, used for state
// transfer when a new Ringmaster member joins (§6.4.1).
type stateRecord struct {
	Name        string
	ID          uint64
	Incarnation uint32
	Members     []wireAddr
}

// mapStateRecord externalizes one published map for state transfer.
type mapStateRecord struct {
	Service string
	Epoch   uint64
	Data    []byte
}

// stateImage is the full externalized Ringmaster state: registrations
// plus published maps, both sorted for replica determinism.
type stateImage struct {
	Troupes []stateRecord
	Maps    []mapStateRecord
}

// GetState implements core.StateProvider.
func (s *Service) GetState() ([]byte, error) {
	s.mu.Lock()
	img := stateImage{Troupes: make([]stateRecord, 0, len(s.entries))}
	for name, e := range s.entries {
		r := stateRecord{Name: name, ID: e.id, Incarnation: e.incarnation}
		for _, m := range e.members {
			r.Members = append(r.Members, toWire(m))
		}
		img.Troupes = append(img.Troupes, r)
	}
	for service, m := range s.maps {
		img.Maps = append(img.Maps, mapStateRecord{Service: service, Epoch: m.Epoch, Data: m.Data})
	}
	s.mu.Unlock()
	sort.Slice(img.Troupes, func(i, j int) bool { return img.Troupes[i].Name < img.Troupes[j].Name })
	sort.Slice(img.Maps, func(i, j int) bool { return img.Maps[i].Service < img.Maps[j].Service })
	return wire.Marshal(img)
}

// SetState implements core.StateProvider.
func (s *Service) SetState(b []byte) error {
	var img stateImage
	if err := wire.Unmarshal(b, &img); err != nil {
		return err
	}
	entries := make(map[string]*entry, len(img.Troupes))
	for _, r := range img.Troupes {
		e := &entry{id: r.ID, incarnation: r.Incarnation}
		for _, w := range r.Members {
			e.members = append(e.members, fromWire(w))
		}
		entries[r.Name] = e
	}
	maps := make(map[string]mapReply, len(img.Maps))
	for _, m := range img.Maps {
		maps[m.Service] = mapReply{Epoch: m.Epoch, Data: append([]byte(nil), m.Data...)}
	}
	s.mu.Lock()
	s.entries = entries
	s.maps = maps
	s.mu.Unlock()
	return nil
}
