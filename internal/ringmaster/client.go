package ringmaster

import (
	"context"
	"sync"
	"time"

	"circus/internal/core"
	"circus/internal/trace"
	"circus/internal/wire"
)

// Client gives a program access to the Ringmaster troupe via
// replicated procedure calls, with the lookup cache of §6.1: a client
// contacts the binding agent only when it imports an interface and
// reuses the result for all subsequent calls until it proves stale.
type Client struct {
	rt     *core.Runtime
	binder core.Troupe

	mu      sync.Mutex
	byName  map[string]core.Troupe
	byID    map[core.TroupeID][]core.ModuleAddr
	timeout time.Duration
}

// NewClient returns a client of the given Ringmaster troupe.
func NewClient(rt *core.Runtime, binder core.Troupe) *Client {
	return &Client{
		rt:      rt,
		binder:  binder,
		byName:  make(map[string]core.Troupe),
		byID:    make(map[core.TroupeID][]core.ModuleAddr),
		timeout: 10 * time.Second,
	}
}

// Binder returns the Ringmaster troupe this client talks to.
func (c *Client) Binder() core.Troupe { return c.binder }

func (c *Client) call(ctx context.Context, proc uint16, args any) ([]byte, error) {
	data, err := wire.Marshal(args)
	if err != nil {
		return nil, err
	}
	return c.rt.Call(ctx, c.binder, proc, data, core.CallOptions{Timeout: c.timeout})
}

// Register registers a whole troupe under a name and returns its
// troupe ID (§6.2's third-party registration).
func (c *Client) Register(ctx context.Context, name string, members []core.ModuleAddr) (core.TroupeID, error) {
	args := nameMembersArgs{Name: name}
	for _, m := range members {
		args.Members = append(args.Members, toWire(m))
	}
	res, err := c.call(ctx, ProcRegisterTroupe, args)
	if err != nil {
		return 0, err
	}
	var id uint64
	if err := wire.Unmarshal(res, &id); err != nil {
		return 0, err
	}
	c.invalidateName(name)
	return core.TroupeID(id), nil
}

// AddMember adds one member to a (possibly empty) troupe, the export
// path of §6.3: if no troupe is associated with the name, a new one is
// created with the exported module as its only member.
func (c *Client) AddMember(ctx context.Context, name string, m core.ModuleAddr) (core.TroupeID, error) {
	res, err := c.call(ctx, ProcAddTroupeMember, nameMemberArgs{Name: name, Member: toWire(m)})
	if err != nil {
		return 0, err
	}
	var id uint64
	if err := wire.Unmarshal(res, &id); err != nil {
		return 0, err
	}
	c.invalidateName(name)
	return core.TroupeID(id), nil
}

// RemoveMember deletes one member from a troupe (reconfiguration after
// a partial failure, §6.4).
func (c *Client) RemoveMember(ctx context.Context, name string, m core.ModuleAddr) (core.TroupeID, error) {
	res, err := c.call(ctx, ProcRemoveTroupeMember, nameMemberArgs{Name: name, Member: toWire(m)})
	if err != nil {
		return 0, err
	}
	var id uint64
	if err := wire.Unmarshal(res, &id); err != nil {
		return 0, err
	}
	c.invalidateName(name)
	return core.TroupeID(id), nil
}

// LookupByName imports a troupe by name, consulting the cache first
// (§6.1).
func (c *Client) LookupByName(ctx context.Context, name string) (core.Troupe, error) {
	c.mu.Lock()
	if t, ok := c.byName[name]; ok {
		c.mu.Unlock()
		return t, nil
	}
	c.mu.Unlock()
	return c.lookupNameRemote(ctx, name)
}

func (c *Client) lookupNameRemote(ctx context.Context, name string) (core.Troupe, error) {
	res, err := c.call(ctx, ProcLookupByName, name)
	if err != nil {
		return core.Troupe{}, err
	}
	var rep troupeReply
	if err := wire.Unmarshal(res, &rep); err != nil {
		return core.Troupe{}, err
	}
	t := core.Troupe{ID: core.TroupeID(rep.ID)}
	for _, w := range rep.Members {
		t.Members = append(t.Members, fromWire(w))
	}
	c.mu.Lock()
	c.byName[name] = t
	c.byID[t.ID] = t.Members
	c.mu.Unlock()
	return t, nil
}

// LookupByID implements core.Resolver so that a Client can serve as a
// runtime's troupe resolver for many-to-one collation (§4.3.2),
// consulting the local cache before the binding agent.
func (c *Client) LookupByID(id core.TroupeID) ([]core.ModuleAddr, error) {
	c.mu.Lock()
	if ms, ok := c.byID[id]; ok {
		c.mu.Unlock()
		return ms, nil
	}
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	res, err := c.call(ctx, ProcLookupByID, uint64(id))
	if err != nil {
		return nil, err
	}
	var rep troupeReply
	if err := wire.Unmarshal(res, &rep); err != nil {
		return nil, err
	}
	var members []core.ModuleAddr
	for _, w := range rep.Members {
		members = append(members, fromWire(w))
	}
	c.mu.Lock()
	c.byID[core.TroupeID(rep.ID)] = members
	c.mu.Unlock()
	return members, nil
}

// Rebind reports a stale binding (as a hint, §6.1) and returns the
// current one, replacing the cache entry.
func (c *Client) Rebind(ctx context.Context, name string, stale core.Troupe) (core.Troupe, error) {
	c.invalidateName(name)
	res, err := c.call(ctx, ProcRebind, rebindArgs{Name: name, StaleID: uint64(stale.ID)})
	if err != nil {
		return core.Troupe{}, err
	}
	var rep troupeReply
	if err := wire.Unmarshal(res, &rep); err != nil {
		return core.Troupe{}, err
	}
	t := core.Troupe{ID: core.TroupeID(rep.ID)}
	for _, w := range rep.Members {
		t.Members = append(t.Members, fromWire(w))
	}
	c.mu.Lock()
	c.byName[name] = t
	c.byID[t.ID] = t.Members
	c.mu.Unlock()
	return t, nil
}

// NewResilientCaller imports the troupe registered under name and
// wraps it in a self-healing caller whose Rebind hook reports stale
// bindings to this binding agent (§6.1) and installs the fresh
// binding transparently.
func (c *Client) NewResilientCaller(ctx context.Context, name string, opts core.ResilientOptions) (*core.ResilientCaller, error) {
	t, err := c.LookupByName(ctx, name)
	if err != nil {
		return nil, err
	}
	if opts.Rebind == nil {
		opts.Rebind = func(ctx context.Context, stale core.Troupe) (core.Troupe, error) {
			return c.Rebind(ctx, name, stale)
		}
	}
	return core.NewResilientCaller(c.rt, t, opts), nil
}

// PublishMap offers an epoch-versioned configuration blob for a
// service name. The binding agent accepts it only if epoch is exactly
// one past the stored epoch (compare-and-set), so concurrent
// publishers serialize: exactly one wins each epoch.
func (c *Client) PublishMap(ctx context.Context, service string, epoch uint64, data []byte) error {
	_, err := c.call(ctx, ProcPublishMap, publishMapArgs{Service: service, Epoch: epoch, Data: data})
	return err
}

// FetchMap returns the latest published configuration blob and its
// epoch for a service name.
func (c *Client) FetchMap(ctx context.Context, service string) (uint64, []byte, error) {
	res, err := c.call(ctx, ProcFetchMap, service)
	if err != nil {
		return 0, nil, err
	}
	var rep mapReply
	if err := wire.Unmarshal(res, &rep); err != nil {
		return 0, nil, err
	}
	return rep.Epoch, rep.Data, nil
}

// WatchMap registers addr as a push endpoint for a service's
// configuration blob: every accepted publish is then delivered to the
// endpoint's ProcWatcherPush procedure. It returns the currently
// published epoch and blob (zero and empty when none has been
// published yet), so watch-then-use needs no separate fetch. The
// registration is soft state on the binding agent — re-register after
// reconnecting, and keep FetchMap as the fallback.
func (c *Client) WatchMap(ctx context.Context, service string, addr core.ModuleAddr) (uint64, []byte, error) {
	res, err := c.call(ctx, ProcWatchShardMap, watchMapArgs{Service: service, Watcher: toWire(addr)})
	if err != nil {
		return 0, nil, err
	}
	var rep mapReply
	if err := wire.Unmarshal(res, &rep); err != nil {
		return 0, nil, err
	}
	return rep.Epoch, rep.Data, nil
}

// ListNames enumerates every registered troupe name.
func (c *Client) ListNames(ctx context.Context) ([]string, error) {
	res, err := c.call(ctx, ProcListNames, struct{}{})
	if err != nil {
		return nil, err
	}
	var names []string
	if err := wire.Unmarshal(res, &names); err != nil {
		return nil, err
	}
	return names, nil
}

func (c *Client) invalidateName(name string) {
	c.mu.Lock()
	if t, ok := c.byName[name]; ok {
		delete(c.byID, t.ID)
	}
	delete(c.byName, name)
	c.mu.Unlock()
}

// InvalidateAll drops the whole cache.
func (c *Client) InvalidateAll() {
	c.mu.Lock()
	c.byName = make(map[string]core.Troupe)
	c.byID = make(map[core.TroupeID][]core.ModuleAddr)
	c.mu.Unlock()
}

// GarbageCollect is the sweeper of §6.1: it enumerates registered
// troupes, probes every member with the null "are you there?"
// procedure, and removes members that do not respond within
// probeTimeout. It returns the number of members removed.
func (c *Client) GarbageCollect(ctx context.Context, probeTimeout time.Duration) (int, error) {
	names, err := c.ListNames(ctx)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, name := range names {
		t, err := c.lookupNameRemote(ctx, name)
		if err != nil {
			continue
		}
		for _, m := range t.Members {
			single := core.Troupe{Members: []core.ModuleAddr{m}}
			_, err := c.rt.Call(ctx, single, core.ProcPing, nil, core.CallOptions{Timeout: probeTimeout})
			if err == nil {
				continue
			}
			if _, err := c.RemoveMember(ctx, name, m); err == nil {
				removed++
				if tr := c.rt.Tracer(); tr.Enabled() {
					tr.Emit(trace.Event{Kind: trace.KindGCRemove,
						Peer: m.Addr, Module: m.Module, Detail: name})
				}
			}
		}
	}
	return removed, nil
}
