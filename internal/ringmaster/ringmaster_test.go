package ringmaster

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"circus/internal/core"
	"circus/internal/netsim"
	"circus/internal/pairedmsg"
)

func fastOpts() core.Options {
	return core.Options{
		Message: pairedmsg.Options{
			RetransmitInterval: 10 * time.Millisecond,
			MaxRetries:         15,
			ProbeInterval:      15 * time.Millisecond,
			ProbeMissLimit:     4,
		},
		ManyToOneTimeout: 300 * time.Millisecond,
	}
}

type fixture struct {
	t      *testing.T
	net    *netsim.Network
	binder core.Troupe
	svcs   []*Service
	rts    []*core.Runtime
}

func newRuntime(t *testing.T, n *netsim.Network) *core.Runtime {
	t.Helper()
	ep, err := n.Listen(n.NewHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(ep, fastOpts())
	t.Cleanup(func() { rt.Close() })
	return rt
}

// newFixture starts a Ringmaster troupe of the given degree.
func newFixture(t *testing.T, seed int64, degree int) *fixture {
	t.Helper()
	f := &fixture{t: t, net: netsim.New(seed)}
	f.binder = core.Troupe{ID: 0} // bootstrap: addressed directly, no incarnation check
	for i := 0; i < degree; i++ {
		rt := newRuntime(t, f.net)
		svc := NewService()
		addr := rt.Export(svc, core.ExportOptions{})
		f.binder.Members = append(f.binder.Members, addr)
		f.svcs = append(f.svcs, svc)
		f.rts = append(f.rts, rt)
	}
	return f
}

// client creates a fresh runtime with a Ringmaster client wired in as
// its resolver.
func (f *fixture) client() (*core.Runtime, *Client) {
	rt := newRuntime(f.t, f.net)
	c := NewClient(rt, f.binder)
	rt.SetResolver(c)
	return rt, c
}

// echo is a trivial exported module.
type echo struct{ execs atomic.Int64 }

func (e *echo) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	e.execs.Add(1)
	return args, nil
}

// spawnServer exports an echo module on a fresh runtime and registers
// it as a member of the named troupe.
func (f *fixture) spawnServer(c *Client, name string) (core.ModuleAddr, *echo) {
	rt := newRuntime(f.t, f.net)
	mod := &echo{}
	addr := rt.Export(mod, core.ExportOptions{})
	if _, err := c.AddMember(context.Background(), name, addr); err != nil {
		f.t.Fatalf("AddMember(%s): %v", name, err)
	}
	return addr, mod
}

func TestRegisterAndLookup(t *testing.T) {
	f := newFixture(t, 1, 1)
	_, c := f.client()
	a1, _ := f.spawnServer(c, "svc")
	a2, _ := f.spawnServer(c, "svc")

	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatalf("LookupByName: %v", err)
	}
	if tr.Degree() != 2 {
		t.Fatalf("degree = %d, want 2", tr.Degree())
	}
	if tr.ID == 0 {
		t.Fatal("troupe ID not assigned")
	}
	want := map[core.ModuleAddr]bool{a1: true, a2: true}
	for _, m := range tr.Members {
		if !want[m] {
			t.Fatalf("unexpected member %v", m)
		}
	}
}

func TestLookupUnknownName(t *testing.T) {
	f := newFixture(t, 2, 1)
	_, c := f.client()
	if _, err := c.LookupByName(context.Background(), "ghost"); err == nil {
		t.Fatal("lookup of unregistered name succeeded")
	}
}

func TestMembersLearnTroupeID(t *testing.T) {
	f := newFixture(t, 3, 1)
	_, c := f.client()

	rt := newRuntime(t, f.net)
	mod := &echo{}
	addr := rt.Export(mod, core.ExportOptions{})
	id, err := c.AddMember(context.Background(), "svc", addr)
	if err != nil {
		t.Fatal(err)
	}
	// set_troupe_id must have reached the member (§6.2).
	deadline := time.Now().Add(2 * time.Second)
	for rt.TroupeIDOf(addr.Module) != id && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := rt.TroupeIDOf(addr.Module); got != id {
		t.Fatalf("member troupe ID = %v, want %v", got, id)
	}
}

func TestAddMemberChangesID(t *testing.T) {
	f := newFixture(t, 4, 1)
	_, c := f.client()
	f.spawnServer(c, "svc")
	t1, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	f.spawnServer(c, "svc")
	t2, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID == t2.ID {
		t.Fatal("troupe ID did not change with membership (incarnation numbers broken)")
	}
}

func TestCallThroughBinding(t *testing.T) {
	f := newFixture(t, 5, 1)
	rt, c := f.client()
	_, m1 := f.spawnServer(c, "svc")
	_, m2 := f.spawnServer(c, "svc")

	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Call(context.Background(), tr, 1, []byte("bound"), core.CallOptions{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "bound" {
		t.Fatalf("got %q", got)
	}
	if m1.execs.Load() != 1 || m2.execs.Load() != 1 {
		t.Fatalf("execs = %d, %d; want 1,1", m1.execs.Load(), m2.execs.Load())
	}
}

func TestStaleBindingDetectedAndRebound(t *testing.T) {
	f := newFixture(t, 6, 1)
	rt, c := f.client()
	f.spawnServer(c, "svc")

	stale, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}

	// Membership changes behind the client's back: another client adds
	// a member, so the troupe ID advances.
	_, c2 := f.client()
	f.spawnServer(c2, "svc")

	// Wait until the member has adopted the new ID.
	time.Sleep(100 * time.Millisecond)

	_, err = rt.Call(context.Background(), stale, 1, []byte("x"), core.CallOptions{})
	var sbe *core.StaleBindingError
	if !errors.As(err, &sbe) {
		t.Fatalf("err = %v, want StaleBindingError", err)
	}

	fresh, err := c.Rebind(context.Background(), "svc", stale)
	if err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	if fresh.ID == stale.ID {
		t.Fatal("rebind returned the stale ID")
	}
	got, err := rt.Call(context.Background(), fresh, 1, []byte("x"), core.CallOptions{})
	if err != nil {
		t.Fatalf("call after rebind: %v", err)
	}
	if string(got) != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestLookupByIDResolver(t *testing.T) {
	f := newFixture(t, 7, 1)
	_, c := f.client()
	f.spawnServer(c, "svc")
	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	c.InvalidateAll() // force a remote lookup
	members, err := c.LookupByID(tr.ID)
	if err != nil {
		t.Fatalf("LookupByID: %v", err)
	}
	if !reflect.DeepEqual(members, tr.Members) {
		t.Fatalf("members = %v, want %v", members, tr.Members)
	}
}

func TestRemoveMember(t *testing.T) {
	f := newFixture(t, 8, 1)
	_, c := f.client()
	a1, _ := f.spawnServer(c, "svc")
	f.spawnServer(c, "svc")

	if _, err := c.RemoveMember(context.Background(), "svc", a1); err != nil {
		t.Fatalf("RemoveMember: %v", err)
	}
	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", tr.Degree())
	}
	if tr.Members[0] == a1 {
		t.Fatal("removed member still present")
	}
}

func TestListNames(t *testing.T) {
	f := newFixture(t, 9, 1)
	_, c := f.client()
	f.spawnServer(c, "beta")
	f.spawnServer(c, "alpha")
	names, err := c.ListNames(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"alpha", "beta"}) {
		t.Fatalf("names = %v", names)
	}
}

func TestReplicatedRingmasterConsistency(t *testing.T) {
	// A Ringmaster troupe of 3: registrations flow through replicated
	// procedure calls and every member must end in the same state.
	f := newFixture(t, 10, 3)
	_, c := f.client()
	f.spawnServer(c, "svc")
	f.spawnServer(c, "svc")

	states := make([][]byte, len(f.svcs))
	for i, svc := range f.svcs {
		st, err := svc.GetState()
		if err != nil {
			t.Fatalf("GetState %d: %v", i, err)
		}
		states[i] = st
	}
	for i := 1; i < len(states); i++ {
		if !reflect.DeepEqual(states[0], states[i]) {
			t.Fatalf("ringmaster member %d diverged from member 0", i)
		}
	}

	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatalf("lookup via replicated binder: %v", err)
	}
	if tr.Degree() != 2 {
		t.Fatalf("degree = %d", tr.Degree())
	}
}

func TestRingmasterSurvivesMemberCrash(t *testing.T) {
	f := newFixture(t, 11, 3)
	_, c := f.client()
	f.spawnServer(c, "svc")

	f.net.Crash(f.binder.Members[0].Addr.Host)

	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatalf("lookup with crashed binder member: %v", err)
	}
	if tr.Degree() != 1 {
		t.Fatalf("degree = %d", tr.Degree())
	}
}

func TestStateTransferToNewRingmasterMember(t *testing.T) {
	f := newFixture(t, 12, 1)
	rtc, c := f.client()
	f.spawnServer(c, "svc")
	f.spawnServer(c, "other")

	// New member initializes its state from the existing troupe via
	// get_state (§6.4.1).
	got, err := rtc.Call(context.Background(), f.binder, core.ProcGetState, nil, core.CallOptions{})
	if err != nil {
		t.Fatalf("get_state: %v", err)
	}
	fresh := NewService()
	if err := fresh.SetState(got); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	st0, _ := f.svcs[0].GetState()
	st1, _ := fresh.GetState()
	if !reflect.DeepEqual(st0, st1) {
		t.Fatal("transferred state differs from source")
	}
}

func TestGarbageCollect(t *testing.T) {
	f := newFixture(t, 13, 1)
	_, c := f.client()
	a1, _ := f.spawnServer(c, "svc")
	f.spawnServer(c, "svc")

	f.net.Crash(a1.Addr.Host)
	removed, err := c.GarbageCollect(context.Background(), 300*time.Millisecond)
	if err != nil {
		t.Fatalf("GarbageCollect: %v", err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 1 {
		t.Fatalf("degree after GC = %d, want 1", tr.Degree())
	}
	for _, m := range tr.Members {
		if m == a1 {
			t.Fatal("crashed member survived GC")
		}
	}
}

func TestTroupeIDDeterministic(t *testing.T) {
	if troupeID("x", 1) != troupeID("x", 1) {
		t.Fatal("troupeID not deterministic")
	}
	if troupeID("x", 1) == troupeID("x", 2) {
		t.Fatal("incarnations collide")
	}
	if troupeID("x", 1) == troupeID("y", 1) {
		t.Fatal("names collide")
	}
	if troupeID("x", 1) == 0 {
		t.Fatal("zero troupe ID issued")
	}
}

func TestBadArgumentsRejected(t *testing.T) {
	svc := NewService()
	for _, proc := range []uint16{ProcRegisterTroupe, ProcAddTroupeMember,
		ProcRemoveTroupeMember, ProcLookupByName, ProcLookupByID, ProcRebind} {
		if _, err := svc.Dispatch(nil, proc, []byte{0xff}); err == nil {
			t.Errorf("proc %d accepted garbage arguments", proc)
		}
	}
	if _, err := svc.Dispatch(nil, 99, nil); err != core.ErrNoSuchProc {
		t.Errorf("unknown proc: %v", err)
	}
}

func TestLookupByIDUnknown(t *testing.T) {
	f := newFixture(t, 20, 1)
	_, c := f.client()
	if _, err := c.LookupByID(core.TroupeID(0xdeadbeef)); err == nil {
		t.Fatal("lookup of unknown troupe ID succeeded")
	}
}

func TestRemoveMemberUnknownName(t *testing.T) {
	f := newFixture(t, 21, 1)
	_, c := f.client()
	if _, err := c.RemoveMember(context.Background(), "ghost", core.ModuleAddr{}); err == nil {
		t.Fatal("remove from unknown troupe succeeded")
	}
}

func TestRebindRefreshesCache(t *testing.T) {
	f := newFixture(t, 22, 1)
	_, c := f.client()
	f.spawnServer(c, "svc")
	before, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	// Cache hit path: a second lookup returns the same value without a
	// remote call (observable only behaviourally: it succeeds even if
	// we crash the binder).
	f.net.Crash(f.binder.Members[0].Addr.Host)
	cached, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatalf("cached lookup hit the network: %v", err)
	}
	if cached.ID != before.ID {
		t.Fatal("cache returned a different binding")
	}
	f.net.Restart(f.binder.Members[0].Addr.Host)
}

func TestAddIdempotentMember(t *testing.T) {
	f := newFixture(t, 23, 1)
	_, c := f.client()
	addr, _ := f.spawnServer(c, "svc")
	// Re-adding the same member advances the incarnation but keeps the
	// membership set a set.
	if _, err := c.AddMember(context.Background(), "svc", addr); err != nil {
		t.Fatal(err)
	}
	tr, err := c.LookupByName(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 1 {
		t.Fatalf("degree = %d after duplicate add", tr.Degree())
	}
}

func TestRegisterWholeTroupe(t *testing.T) {
	f := newFixture(t, 24, 1)
	rt, c := f.client()

	m1 := rt.Export(&echo{}, core.ExportOptions{})
	m2 := rt.Export(&echo{}, core.ExportOptions{})
	id, err := c.Register(context.Background(), "pair", []core.ModuleAddr{m1, m2})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if id == 0 {
		t.Fatal("no troupe ID")
	}
	tr, err := c.LookupByName(context.Background(), "pair")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 2 || tr.ID != id {
		t.Fatalf("troupe = %+v", tr)
	}
	// Members were informed of their ID (set_troupe_id).
	deadline := time.Now().Add(2 * time.Second)
	for rt.TroupeIDOf(m1.Module) != id && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rt.TroupeIDOf(m1.Module) != id || rt.TroupeIDOf(m2.Module) != id {
		t.Fatal("members not informed of troupe ID")
	}
}
