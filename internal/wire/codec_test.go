package wire

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// walkerMarshal is the parity oracle: the retained reflection walker,
// driven exactly as the pre-codec Marshal drove it.
func walkerMarshal(v any) ([]byte, error) {
	e := NewEncoder()
	if err := marshalValue(e, reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

func walkerUnmarshal(data []byte, out any) error {
	d := NewDecoder(data)
	if err := unmarshalValue(d, reflect.ValueOf(out).Elem()); err != nil {
		return err
	}
	if !d.Finished() {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadValue, d.Remaining())
	}
	return nil
}

type parityLeaf struct {
	X float64
	Y [2]uint16
}

type parityNested struct {
	Tag   string
	Inner struct {
		Depth  uint32
		Leaf   *parityLeaf
		Labels []string
	}
	Payload []byte
	Footer  [3]int16
}

type namedBytes []byte
type namedU16 uint16

// parityCorpus is the promoted seed corpus the differential tests and
// fuzz target run over. It deliberately includes every shape the
// walker treats specially: bare uint8 (travels as a 16-bit word),
// [N]byte arrays (per-element words, NOT the byte-sequence form),
// maps with non-string keys, and strings at and beyond the 0xffff
// long-string divert.
func parityCorpus() []any {
	leaf := &parityLeaf{X: math.Pi, Y: [2]uint16{1, 0xffff}}
	nested := parityNested{Tag: "t", Payload: []byte{1, 2, 3}}
	nested.Inner.Depth = 9
	nested.Inner.Leaf = leaf
	nested.Inner.Labels = []string{"a", "", "b"}
	nested.Footer = [3]int16{-1, 0, 32767}

	return []any{
		true,
		false,
		uint8(0),
		uint8(0x7f),
		uint8(0xff), // bare uint8: encodes as a full 16-bit word
		int16(-2), uint16(3), int32(-4), uint32(5),
		int64(-6), uint64(7), int(-8), uint(9),
		namedU16(0xabcd),
		float64(0), math.Pi, math.Inf(-1),
		"",
		"odd",
		"even",
		strings.Repeat("x", 0xfffe),
		strings.Repeat("y", 0xffff),  // exactly at the long-string divert
		strings.Repeat("z", 0x10001), // odd long string: padded byte-sequence form
		[]byte(nil),
		[]byte{},
		[]byte{1, 2, 3},
		namedBytes{4, 5},
		[4]byte{1, 2, 3, 4}, // byte array: per-element 16-bit words
		[0]uint32{},
		[3]uint8{0xff, 0, 1},
		[]string{"a", "bb", ""},
		[][]byte{{1}, nil, {}},
		[]uint32{},
		[]uint32(nil),
		map[string]uint32(nil),
		map[string]uint32{},
		map[string]uint32{"b": 2, "a": 1, "": 0},
		map[uint16]string{3: "c", 1: "a", 2: "b"},    // non-string keys
		map[int32][]byte{-1: {1}, 5: nil, 0: {2, 3}}, // negative keys sort by encoding
		map[uint8]uint8{9: 1, 3: 2, 200: 3},          // bare uint8 keys and values
		map[namedU16]namedBytes{7: {1}, 6: nil},
		(*parityLeaf)(nil),
		leaf,
		parityLeaf{X: -1.5, Y: [2]uint16{0, 1}},
		nested,
		struct{}{},
		struct {
			A uint8
			b uint8 // unexported: skipped by both encoders
			C string
		}{A: 1, b: 2, C: "x"},
	}
}

// TestCodecParity asserts the compiled codec and the reflection walker
// produce byte-identical encodings over the corpus, and that each
// decoder internalizes the other's output identically.
func TestCodecParity(t *testing.T) {
	for i, v := range parityCorpus() {
		compiled, cerr := Marshal(v)
		oracle, oerr := walkerMarshal(v)
		if (cerr == nil) != (oerr == nil) {
			t.Fatalf("corpus[%d] %T: compiled err %v, walker err %v", i, v, cerr, oerr)
		}
		if cerr != nil {
			continue
		}
		if !bytes.Equal(compiled, oracle) {
			t.Fatalf("corpus[%d] %T: encodings diverge\ncompiled %x\nwalker   %x", i, v, compiled, oracle)
		}

		// Decode parity: both decoders internalize the shared bytes to
		// the same value.
		got := reflect.New(reflect.TypeOf(v))
		want := reflect.New(reflect.TypeOf(v))
		gerr := Unmarshal(compiled, got.Interface())
		werr := walkerUnmarshal(oracle, want.Interface())
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("corpus[%d] %T: compiled decode err %v, walker decode err %v", i, v, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		if !reflect.DeepEqual(got.Elem().Interface(), want.Elem().Interface()) {
			t.Fatalf("corpus[%d] %T: decodes diverge\ncompiled %+v\nwalker   %+v",
				i, v, got.Elem().Interface(), want.Elem().Interface())
		}
	}
}

// TestCodecParityErrors asserts unsupported kinds and malformed input
// report the same errors through the compiled path as the walker.
func TestCodecParityErrors(t *testing.T) {
	type hasChan struct{ C chan int }
	for _, v := range []any{hasChan{}, complex64(1), float32(1)} {
		_, cerr := Marshal(v)
		_, oerr := walkerMarshal(v)
		if cerr == nil || oerr == nil {
			t.Fatalf("%T: expected errors, got compiled=%v walker=%v", v, cerr, oerr)
		}
		if cerr.Error() != oerr.Error() {
			t.Fatalf("%T: error text diverges: %q vs %q", v, cerr, oerr)
		}
	}

	// Overflow on a bare uint8 word > 0xff: same wrapped error.
	var u8 uint8
	data := []byte{0x01, 0x00}
	cerr := Unmarshal(data, &u8)
	werr := walkerUnmarshal(data, &u8)
	if cerr == nil || werr == nil || cerr.Error() != werr.Error() {
		t.Fatalf("uint8 overflow: %v vs %v", cerr, werr)
	}

	// Field errors carry the same struct-qualified path.
	short := struct {
		A uint32
		B string
	}{A: 1, B: "hello"}
	enc, err := Marshal(short)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		A uint32
		B string
	}
	cerr = Unmarshal(enc[:5], &out)
	werr = walkerUnmarshal(enc[:5], &out)
	if cerr == nil || werr == nil || cerr.Error() != werr.Error() {
		t.Fatalf("field error: %v vs %v", cerr, werr)
	}
}

// TestDecodeReuseNoAliasing hammers the decode-side reuse paths. The
// pooled map scratch is shared global state, so entries it stores must
// never alias each other or a later decode; the target's own backing
// arrays, by contrast, are documented as reusable (like encoding/json,
// a second decode into the same target may overwrite them).
func TestDecodeReuseNoAliasing(t *testing.T) {
	type rec struct {
		M    map[uint16][]int32
		Rows [][]byte
	}
	first := rec{
		M:    map[uint16][]int32{1: {10, 11}, 2: {20}},
		Rows: [][]byte{{1, 1}, {2}},
	}
	second := rec{
		M:    map[uint16][]int32{1: {77, 78}, 3: {30}},
		Rows: [][]byte{{9, 9}, {8}},
	}
	b1, err := Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	var out rec
	if err := Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.M, first.M) {
		t.Fatalf("map entries alias the pooled decode scratch: %+v", out.M)
	}
	kept := out.M[1] // stored via the pooled holder; must not be scribbled on
	var other rec
	if err := Unmarshal(b2, &other); err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(b2, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.M, second.M) || !reflect.DeepEqual(out.Rows, second.Rows) {
		t.Fatalf("second decode diverged: %+v", out)
	}
	if !reflect.DeepEqual(other.M, second.M) || !reflect.DeepEqual(other.Rows, second.Rows) {
		t.Fatalf("decode into an independent target interfered: %+v", other)
	}
	if kept[0] != 10 || kept[1] != 11 {
		t.Fatalf("later decodes corrupted a map entry stored by the first: %v", kept)
	}
}

// TestMarshalAppend asserts MarshalAppend extends the caller's buffer
// with exactly Marshal's bytes and allocates nothing once capacity
// suffices.
func TestMarshalAppend(t *testing.T) {
	v := parityNested{Tag: "append"}
	v.Inner.Labels = []string{"l"}
	v.Payload = []byte{7, 7}

	plain, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("hdr:")
	got, err := MarshalAppend(prefix, v)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("hdr:"), plain...)
	if !bytes.Equal(got, want) {
		t.Fatalf("MarshalAppend diverged from Marshal:\n%x\n%x", got, want)
	}

	buf := make([]byte, 0, 1024)
	var vi any = v
	allocs := testing.AllocsPerRun(200, func() {
		out, err := MarshalAppend(buf, vi)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if allocs > 0 {
		t.Fatalf("MarshalAppend with capacity allocated %.1f times per op", allocs)
	}
}

// TestCodecSteadyStateAllocs pins the hot-path allocation budget:
// Marshal ≤1 (the returned buffer), warm Unmarshal 0.
func TestCodecSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	type rec struct {
		Name  string
		Count uint32
		Tags  []string
		Data  []byte
	}
	var vi any = rec{Name: "troupe", Count: 3, Tags: []string{"a", "b"}, Data: make([]byte, 64)}
	data, err := Marshal(vi)
	if err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := Marshal(vi); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Fatalf("Marshal allocated %.1f times per op, want <=1", allocs)
	}

	var out rec
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("warm Unmarshal allocated %.1f times per op, want 0", allocs)
	}
}

// FuzzCodecParity drives the compiled codec and the walker over
// fuzzer-built composites and rejects any byte divergence.
func FuzzCodecParity(f *testing.F) {
	f.Add("s", uint8(1), uint16(2), int32(-3), []byte{4}, false)
	f.Add(strings.Repeat("L", 0xffff), uint8(0xff), uint16(0), int32(0), []byte{}, true)
	f.Add("", uint8(0), uint16(0xffff), int32(1<<30), []byte(nil), false)
	f.Fuzz(func(t *testing.T, s string, u8 uint8, u16 uint16, i32 int32, bs []byte, flip bool) {
		type composite struct {
			S    string
			U8   uint8
			A    [3]uint8
			AB   [2]byte
			BS   []byte
			MU   map[uint16]string
			MI   map[int32]uint8
			P    *parityLeaf
			Flip bool
		}
		v := composite{
			S:    s,
			U8:   u8,
			A:    [3]uint8{u8, byte(u16), byte(i32)},
			AB:   [2]byte{byte(u16 >> 8), byte(u16)},
			BS:   bs,
			MU:   map[uint16]string{u16: s, u16 + 1: "", u16 ^ 0x55: "x"},
			MI:   map[int32]uint8{i32: u8, -i32: 0, i32 ^ 7: 0xff},
			Flip: flip,
		}
		if flip {
			v.P = &parityLeaf{X: float64(i32), Y: [2]uint16{u16, uint16(u8)}}
		}
		compiled, cerr := Marshal(v)
		oracle, oerr := walkerMarshal(v)
		if (cerr == nil) != (oerr == nil) {
			t.Fatalf("error divergence: compiled %v, walker %v", cerr, oerr)
		}
		if cerr != nil {
			return
		}
		if !bytes.Equal(compiled, oracle) {
			t.Fatalf("encoding divergence\ncompiled %x\nwalker   %x", compiled, oracle)
		}
		var back composite
		if err := Unmarshal(compiled, &back); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		round, err := walkerMarshal(back)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(round, compiled) {
			t.Fatalf("round trip changed bytes\nfirst  %x\nsecond %x", compiled, round)
		}
	})
}
