package wire

// Compiled codecs: a per-type encode/decode plan built once by
// reflection and cached, so the call hot path never repeats the
// recursive kind-switch of marshalValue/unmarshalValue. The plan is a
// flat program of field operations for structs and closure chains for
// constructed types. Output is byte-for-bit identical to the walker in
// reflect.go — §4.1's unanimous collator requires replicas to produce
// identical encodings, so the walker is retained both as the fallback
// for kinds outside the compiled subset and as the parity oracle the
// differential tests check against.

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
)

// codec is a compiled encode/decode plan for one reflect.Type.
type codec struct {
	enc   func(*Encoder, reflect.Value) error
	dec   func(*Decoder, reflect.Value) error
	fixed int // static minimum encoded size, used as a buffer size hint
}

var codecCache sync.Map // reflect.Type -> *codec

// codecFor returns the compiled codec for t, compiling and caching it
// on first use. Recursive types resolve through a wait-group
// placeholder (the encoding/json technique): the placeholder is
// published before compilation so a self-referential field finds it,
// and blocks any concurrent caller until the real codec is ready.
func codecFor(t reflect.Type) *codec {
	if c, ok := codecCache.Load(t); ok {
		return c.(*codec)
	}
	var (
		wg sync.WaitGroup
		c  *codec
	)
	wg.Add(1)
	placeholder := &codec{
		enc: func(e *Encoder, v reflect.Value) error { wg.Wait(); return c.enc(e, v) },
		dec: func(d *Decoder, v reflect.Value) error { wg.Wait(); return c.dec(d, v) },
	}
	if actual, loaded := codecCache.LoadOrStore(t, placeholder); loaded {
		return actual.(*codec)
	}
	c = compile(t)
	wg.Done()
	codecCache.Store(t, c)
	return c
}

func compile(t reflect.Type) *codec {
	switch t.Kind() {
	case reflect.Bool:
		return &codec{fixed: 2,
			enc: func(e *Encoder, v reflect.Value) error { e.PutBool(v.Bool()); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				b, err := d.Bool()
				if err != nil {
					return err
				}
				v.SetBool(b)
				return nil
			}}
	case reflect.Int16:
		return &codec{fixed: 2,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint16(uint16(v.Int())); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				n, err := d.Int16()
				if err != nil {
					return err
				}
				v.SetInt(int64(n))
				return nil
			}}
	case reflect.Int32:
		return &codec{fixed: 4,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint32(uint32(v.Int())); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				n, err := d.Int32()
				if err != nil {
					return err
				}
				v.SetInt(int64(n))
				return nil
			}}
	case reflect.Int64, reflect.Int:
		return &codec{fixed: 8,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint64(uint64(v.Int())); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				n, err := d.Int64()
				if err != nil {
					return err
				}
				if v.OverflowInt(n) {
					return fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, v.Type())
				}
				v.SetInt(n)
				return nil
			}}
	case reflect.Uint8:
		return &codec{fixed: 2,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint16(uint16(v.Uint())); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				n, err := d.Uint16()
				if err != nil {
					return err
				}
				if v.OverflowUint(uint64(n)) {
					return fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, v.Type())
				}
				v.SetUint(uint64(n))
				return nil
			}}
	case reflect.Uint16:
		return &codec{fixed: 2,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint16(uint16(v.Uint())); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				n, err := d.Uint16()
				if err != nil {
					return err
				}
				v.SetUint(uint64(n))
				return nil
			}}
	case reflect.Uint32:
		return &codec{fixed: 4,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint32(uint32(v.Uint())); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				n, err := d.Uint32()
				if err != nil {
					return err
				}
				v.SetUint(uint64(n))
				return nil
			}}
	case reflect.Uint64, reflect.Uint:
		return &codec{fixed: 8,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint64(v.Uint()); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				n, err := d.Uint64()
				if err != nil {
					return err
				}
				if v.OverflowUint(n) {
					return fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, v.Type())
				}
				v.SetUint(n)
				return nil
			}}
	case reflect.Float64:
		return &codec{fixed: 8,
			enc: func(e *Encoder, v reflect.Value) error { e.PutUint64(math.Float64bits(v.Float())); return nil },
			dec: func(d *Decoder, v reflect.Value) error {
				f, err := d.Float64()
				if err != nil {
					return err
				}
				v.SetFloat(f)
				return nil
			}}
	case reflect.String:
		return &codec{fixed: 2,
			enc: func(e *Encoder, v reflect.Value) error { return encodeString(e, v.String()) },
			dec: decodeStringInto,
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return &codec{fixed: 4,
				enc: func(e *Encoder, v reflect.Value) error { e.PutBytes(v.Bytes()); return nil },
				dec: decodeBytesInto,
			}
		}
		return compileSlice(t)
	case reflect.Array:
		return compileArray(t)
	case reflect.Map:
		return compileMap(t)
	case reflect.Struct:
		return compileStruct(t)
	case reflect.Pointer:
		return compilePointer(t)
	default:
		// Outside the compiled subset: fall back to the reflection
		// walker, which reports the unsupported kind.
		return &codec{enc: marshalValue, dec: unmarshalValue}
	}
}

// encodeString writes a STRING, diverting long strings to the byte-
// sequence form exactly as the walker does.
func encodeString(e *Encoder, s string) error {
	if len(s) >= 0xffff {
		e.PutUint16(0xffff)
		e.PutUint32(uint32(len(s)))
		e.buf = append(e.buf, s...)
		if len(s)%2 == 1 {
			e.buf = append(e.buf, 0)
		}
		return nil
	}
	return e.PutString(s)
}

// decodeStringInto reads a STRING, keeping the target's existing
// backing store when the decoded content is identical (the comparison
// form string(b) == s does not allocate).
func decodeStringInto(d *Decoder, v reflect.Value) error {
	n16, err := d.Uint16()
	if err != nil {
		return err
	}
	var b []byte
	if n16 == 0xffff {
		n, err := d.Uint32()
		if err != nil {
			return err
		}
		if n > MaxSequence {
			return fmt.Errorf("%w: sequence of %d bytes", ErrBadValue, n)
		}
		if b, err = d.take(int(n)); err != nil {
			return err
		}
		if n%2 == 1 {
			if _, err := d.take(1); err != nil {
				return err
			}
		}
	} else {
		if b, err = d.take(int(n16)); err != nil {
			return err
		}
		if n16%2 == 1 {
			if _, err := d.take(1); err != nil {
				return err
			}
		}
	}
	if v.String() != string(b) {
		v.SetString(string(b))
	}
	return nil
}

// decodeBytesInto reads an opaque byte sequence, reusing the target
// slice's capacity when it suffices. Like the walker it always leaves
// a non-nil slice, so empty round trips stay DeepEqual.
func decodeBytesInto(d *Decoder, v reflect.Value) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > MaxSequence {
		return fmt.Errorf("%w: sequence of %d bytes", ErrBadValue, n)
	}
	b, err := d.take(int(n))
	if err != nil {
		return err
	}
	if n%2 == 1 {
		if _, err := d.take(1); err != nil {
			return err
		}
	}
	dst := v.Bytes()
	if cap(dst) < len(b) || (len(b) == 0 && dst == nil) {
		dst = make([]byte, len(b))
	} else {
		dst = dst[:len(b)]
	}
	copy(dst, b)
	v.SetBytes(dst)
	return nil
}

func compileSlice(t reflect.Type) *codec {
	ec := codecFor(t.Elem())
	return &codec{fixed: 4,
		enc: func(e *Encoder, v reflect.Value) error {
			n := v.Len()
			e.PutCount(n)
			for i := 0; i < n; i++ {
				if err := ec.enc(e, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		},
		dec: func(d *Decoder, v reflect.Value) error {
			n, err := d.Count()
			if err != nil {
				return err
			}
			s := v
			fresh := false
			if v.Cap() >= n && (n > 0 || !v.IsNil()) {
				v.SetLen(n) // reuse the existing backing array in place
			} else {
				s = reflect.MakeSlice(t, n, n)
				fresh = true
			}
			for i := 0; i < n; i++ {
				if err := ec.dec(d, s.Index(i)); err != nil {
					return err
				}
			}
			if fresh {
				v.Set(s)
			}
			return nil
		}}
}

func compileArray(t reflect.Type) *codec {
	n := t.Len()
	ec := codecFor(t.Elem())
	return &codec{fixed: n * ec.fixed,
		enc: func(e *Encoder, v reflect.Value) error {
			for i := 0; i < n; i++ {
				if err := ec.enc(e, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		},
		dec: func(d *Decoder, v reflect.Value) error {
			for i := 0; i < n; i++ {
				if err := ec.dec(d, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		}}
}

func compilePointer(t reflect.Type) *codec {
	ec := codecFor(t.Elem())
	et := t.Elem()
	return &codec{fixed: 2,
		enc: func(e *Encoder, v reflect.Value) error {
			if v.IsNil() {
				e.PutUint16(0)
				return nil
			}
			e.PutUint16(1)
			return ec.enc(e, v.Elem())
		},
		dec: func(d *Decoder, v reflect.Value) error {
			present, err := d.Uint16()
			if err != nil {
				return err
			}
			switch present {
			case 0:
				v.SetZero()
				return nil
			case 1:
				if v.IsNil() {
					v.Set(reflect.New(et))
				}
				return ec.dec(d, v.Elem())
			default:
				return fmt.Errorf("%w: choice designator %d", ErrBadValue, present)
			}
		}}
}

// needsZero reports whether a reused scratch value of type t must be
// zeroed before the next decode/iteration: types holding a slice, map
// or pointer would otherwise alias backing store already handed to a
// previously stored entry.
func needsZero(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Slice, reflect.Map, reflect.Pointer, reflect.Interface:
		return true
	case reflect.Array:
		return needsZero(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if needsZero(t.Field(i).Type) {
				return true
			}
		}
	}
	return false
}

// mapScratch is the pooled per-encode state for one map codec: an off-
// to-the-side encoder holding the (key, value) pairs contiguously, the
// segment bounds of each pair, a permutation sorted by encoded key
// bytes, and reusable key/value holders for iteration and decode.
type mapScratch struct {
	enc     Encoder
	keyEnd  []int // end of entry i's key segment
	pairEnd []int // end of entry i's value segment
	perm    []int
	key     reflect.Value
	val     reflect.Value
}

func (s *mapScratch) keyBytes(i int) []byte {
	start := 0
	if i > 0 {
		start = s.pairEnd[i-1]
	}
	return s.enc.buf[start:s.keyEnd[i]]
}

func (s *mapScratch) Len() int      { return len(s.perm) }
func (s *mapScratch) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }
func (s *mapScratch) Less(i, j int) bool {
	return bytes.Compare(s.keyBytes(s.perm[i]), s.keyBytes(s.perm[j])) < 0
}

func compileMap(t reflect.Type) *codec {
	kc := codecFor(t.Key())
	vc := codecFor(t.Elem())
	kt, vt := t.Key(), t.Elem()
	kz, vz := needsZero(kt), needsZero(vt)
	pool := &sync.Pool{New: func() any {
		return &mapScratch{key: reflect.New(kt).Elem(), val: reflect.New(vt).Elem()}
	}}
	return &codec{fixed: 4,
		enc: func(e *Encoder, v reflect.Value) error {
			n := v.Len()
			e.PutCount(n)
			if n == 0 {
				return nil
			}
			s := pool.Get().(*mapScratch)
			defer func() {
				s.enc.buf = s.enc.buf[:0]
				s.keyEnd = s.keyEnd[:0]
				s.pairEnd = s.pairEnd[:0]
				s.perm = s.perm[:0]
				pool.Put(s)
			}()
			it := v.MapRange()
			for it.Next() {
				s.key.SetIterKey(it)
				if err := kc.enc(&s.enc, s.key); err != nil {
					return err
				}
				s.keyEnd = append(s.keyEnd, s.enc.Len())
				s.val.SetIterValue(it)
				if err := vc.enc(&s.enc, s.val); err != nil {
					return err
				}
				s.pairEnd = append(s.pairEnd, s.enc.Len())
				s.perm = append(s.perm, len(s.perm))
			}
			sort.Sort(s)
			for _, i := range s.perm {
				start := 0
				if i > 0 {
					start = s.pairEnd[i-1]
				}
				e.buf = append(e.buf, s.enc.buf[start:s.pairEnd[i]]...)
			}
			return nil
		},
		dec: func(d *Decoder, v reflect.Value) error {
			n, err := d.Count()
			if err != nil {
				return err
			}
			m := v
			if v.IsNil() {
				m = reflect.MakeMapWithSize(t, n)
			} else {
				m.Clear()
			}
			if n > 0 {
				s := pool.Get().(*mapScratch)
				for i := 0; i < n; i++ {
					if kz {
						s.key.SetZero()
					}
					if err := kc.dec(d, s.key); err != nil {
						pool.Put(s)
						return err
					}
					if vz {
						s.val.SetZero()
					}
					if err := vc.dec(d, s.val); err != nil {
						pool.Put(s)
						return err
					}
					m.SetMapIndex(s.key, s.val)
				}
				if kz {
					s.key.SetZero()
				}
				if vz {
					s.val.SetZero()
				}
				pool.Put(s)
			}
			if v.IsNil() {
				v.Set(m)
			}
			return nil
		}}
}

// Struct programs: one opcode per exported field, with fixed-width
// scalars executed inline and everything else delegated to the field
// type's own codec.
const (
	opBool = iota
	opInt16
	opInt32
	opInt64
	opUint8
	opUint16
	opUint32
	opUint64
	opFloat64
	opString
	opBytes
	opSub
)

type fieldOp struct {
	op   uint8
	idx  int
	name string
	sub  *codec
}

type structProgram struct {
	name string
	ops  []fieldOp
}

func compileStruct(t reflect.Type) *codec {
	p := &structProgram{name: t.Name()}
	fixed := 0
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue
		}
		op := fieldOp{idx: i, name: sf.Name}
		switch sf.Type.Kind() {
		case reflect.Bool:
			op.op, fixed = opBool, fixed+2
		case reflect.Int16:
			op.op, fixed = opInt16, fixed+2
		case reflect.Int32:
			op.op, fixed = opInt32, fixed+4
		case reflect.Int64, reflect.Int:
			op.op, fixed = opInt64, fixed+8
		case reflect.Uint8:
			op.op, fixed = opUint8, fixed+2
		case reflect.Uint16:
			op.op, fixed = opUint16, fixed+2
		case reflect.Uint32:
			op.op, fixed = opUint32, fixed+4
		case reflect.Uint64, reflect.Uint:
			op.op, fixed = opUint64, fixed+8
		case reflect.Float64:
			op.op, fixed = opFloat64, fixed+8
		case reflect.String:
			op.op, fixed = opString, fixed+2
		case reflect.Slice:
			if sf.Type.Elem().Kind() == reflect.Uint8 {
				op.op, fixed = opBytes, fixed+4
				break
			}
			fallthrough
		default:
			op.op = opSub
			op.sub = codecFor(sf.Type)
			fixed += op.sub.fixed
		}
		p.ops = append(p.ops, op)
	}
	return &codec{enc: p.enc, dec: p.dec, fixed: fixed}
}

func (p *structProgram) enc(e *Encoder, v reflect.Value) error {
	for i := range p.ops {
		op := &p.ops[i]
		f := v.Field(op.idx)
		var err error
		switch op.op {
		case opBool:
			e.PutBool(f.Bool())
		case opInt16:
			e.PutUint16(uint16(f.Int()))
		case opInt32:
			e.PutUint32(uint32(f.Int()))
		case opInt64:
			e.PutUint64(uint64(f.Int()))
		case opUint8, opUint16:
			e.PutUint16(uint16(f.Uint()))
		case opUint32:
			e.PutUint32(uint32(f.Uint()))
		case opUint64:
			e.PutUint64(f.Uint())
		case opFloat64:
			e.PutUint64(math.Float64bits(f.Float()))
		case opString:
			err = encodeString(e, f.String())
		case opBytes:
			e.PutBytes(f.Bytes())
		case opSub:
			err = op.sub.enc(e, f)
		}
		if err != nil {
			return fmt.Errorf("field %s.%s: %w", p.name, op.name, err)
		}
	}
	return nil
}

func (p *structProgram) dec(d *Decoder, v reflect.Value) error {
	for i := range p.ops {
		op := &p.ops[i]
		f := v.Field(op.idx)
		var err error
		switch op.op {
		case opBool:
			var b bool
			if b, err = d.Bool(); err == nil {
				f.SetBool(b)
			}
		case opInt16:
			var n int16
			if n, err = d.Int16(); err == nil {
				f.SetInt(int64(n))
			}
		case opInt32:
			var n int32
			if n, err = d.Int32(); err == nil {
				f.SetInt(int64(n))
			}
		case opInt64:
			var n int64
			if n, err = d.Int64(); err == nil {
				if f.OverflowInt(n) {
					err = fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, f.Type())
				} else {
					f.SetInt(n)
				}
			}
		case opUint8:
			var n uint16
			if n, err = d.Uint16(); err == nil {
				if f.OverflowUint(uint64(n)) {
					err = fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, f.Type())
				} else {
					f.SetUint(uint64(n))
				}
			}
		case opUint16:
			var n uint16
			if n, err = d.Uint16(); err == nil {
				f.SetUint(uint64(n))
			}
		case opUint32:
			var n uint32
			if n, err = d.Uint32(); err == nil {
				f.SetUint(uint64(n))
			}
		case opUint64:
			var n uint64
			if n, err = d.Uint64(); err == nil {
				if f.OverflowUint(n) {
					err = fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, f.Type())
				} else {
					f.SetUint(n)
				}
			}
		case opFloat64:
			var x float64
			if x, err = d.Float64(); err == nil {
				f.SetFloat(x)
			}
		case opString:
			err = decodeStringInto(d, f)
		case opBytes:
			err = decodeBytesInto(d, f)
		case opSub:
			err = op.sub.dec(d, f)
		}
		if err != nil {
			return fmt.Errorf("field %s.%s: %w", p.name, op.name, err)
		}
	}
	return nil
}
