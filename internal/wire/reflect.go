package wire

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}
var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// Marshal externalizes v using reflection, covering the constructed
// types of the Courier subset (§7.1.1): records become their fields in
// declaration order, sequences a count plus elements, optional values
// (pointers) a CHOICE between absent and present, and maps a sorted
// sequence of key/value pairs so that deterministic replicas encode
// identical messages (§4.1 requires replicas to produce identical
// results bit-for-bit for the unanimous collator).
//
// Supported kinds: bool, int16/32/64, int, uint16/32/64, uint, float64,
// string, []byte, slices, arrays, maps with ordered keys, structs
// (exported fields), and pointers to any of these. int and uint travel
// as 64-bit. Recursive types are the programmer's responsibility, as
// they were for the Modula-2 stub compiler (§7.1.4).
// Marshaling runs through the compiled codec for v's type (codec.go),
// with the recursive walker below retained as the fallback for kinds
// outside the compiled subset and as the parity oracle for tests.
func Marshal(v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return nil, fmt.Errorf("wire: cannot marshal invalid value")
	}
	c := codecFor(rv.Type())
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	e.Grow(c.fixed)
	err := c.enc(e, rv)
	var out []byte
	if err == nil {
		out = make([]byte, len(e.buf))
		copy(out, e.buf)
	}
	encoderPool.Put(e)
	return out, err
}

// MarshalAppend externalizes v onto buf, growing it as needed, and
// returns the extended slice. It allocates nothing when buf has room.
func MarshalAppend(buf []byte, v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return buf, fmt.Errorf("wire: cannot marshal invalid value")
	}
	c := codecFor(rv.Type())
	// Borrow a pooled Encoder as the execution frame, swapping the
	// caller's buffer in; the pooled scratch is restored before Put so
	// the caller's buffer is never retained by the pool.
	e := encoderPool.Get().(*Encoder)
	scratch := e.buf
	e.buf = buf
	e.Grow(c.fixed)
	err := c.enc(e, rv)
	out := e.buf
	e.buf = scratch
	encoderPool.Put(e)
	if err != nil {
		return buf, err
	}
	return out, nil
}

// Append externalizes v onto an existing encoder.
func Append(e *Encoder, v any) error {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return fmt.Errorf("wire: cannot marshal invalid value")
	}
	return codecFor(rv.Type()).enc(e, rv)
}

// Unmarshal internalizes data into the value pointed to by out,
// rejecting trailing garbage. Decoding reuses the target's existing
// backing store (strings, slices, maps, pointees) when capacity
// allows, so steady-state decodes into a long-lived value allocate
// nothing; as with encoding/json, references previously extracted
// from the target may be overwritten by the next decode into it.
func Unmarshal(data []byte, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("wire: Unmarshal target must be a non-nil pointer, got %T", out)
	}
	elem := rv.Elem()
	c := codecFor(elem.Type())
	d := decoderPool.Get().(*Decoder)
	d.buf, d.off = data, 0
	err := c.dec(d, elem)
	if err == nil && !d.Finished() {
		err = fmt.Errorf("%w: %d trailing bytes", ErrBadValue, d.Remaining())
	}
	d.buf = nil
	decoderPool.Put(d)
	return err
}

// Consume internalizes one value from an existing decoder.
func Consume(d *Decoder, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("wire: Unmarshal target must be a non-nil pointer, got %T", out)
	}
	elem := rv.Elem()
	return codecFor(elem.Type()).dec(d, elem)
}

func marshalValue(e *Encoder, v reflect.Value) error {
	if !v.IsValid() {
		return fmt.Errorf("wire: cannot marshal invalid value")
	}
	switch v.Kind() {
	case reflect.Bool:
		e.PutBool(v.Bool())
	case reflect.Int16:
		e.PutInt16(int16(v.Int()))
	case reflect.Int32:
		e.PutInt32(int32(v.Int()))
	case reflect.Int64, reflect.Int:
		e.PutInt64(v.Int())
	case reflect.Uint16:
		e.PutUint16(uint16(v.Uint()))
	case reflect.Uint32:
		e.PutUint32(uint32(v.Uint()))
	case reflect.Uint64, reflect.Uint:
		e.PutUint64(v.Uint())
	case reflect.Uint8:
		e.PutUint16(uint16(v.Uint()))
	case reflect.Float64:
		e.PutFloat64(v.Float())
	case reflect.String:
		if v.Len() >= 0xffff {
			// Long strings travel as byte sequences.
			e.PutUint16(0xffff)
			e.PutBytes([]byte(v.String()))
			return nil
		}
		return e.PutString(v.String())
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			e.PutBytes(v.Bytes())
			return nil
		}
		e.PutCount(v.Len())
		for i := 0; i < v.Len(); i++ {
			if err := marshalValue(e, v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := marshalValue(e, v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		keys := v.MapKeys()
		ks := make([]string, 0, len(keys))
		byKey := make(map[string]reflect.Value, len(keys))
		for _, k := range keys {
			enc := NewEncoder()
			if err := marshalValue(enc, k); err != nil {
				return err
			}
			s := string(enc.Bytes())
			ks = append(ks, s)
			byKey[s] = k
		}
		sort.Strings(ks)
		e.PutCount(len(ks))
		for _, s := range ks {
			e.buf = append(e.buf, s...)
			if err := marshalValue(e, v.MapIndex(byKey[s])); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if err := marshalValue(e, v.Field(i)); err != nil {
				return fmt.Errorf("field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	case reflect.Pointer:
		// CHOICE { absent(0), present(1) value }.
		if v.IsNil() {
			e.PutUint16(0)
		} else {
			e.PutUint16(1)
			return marshalValue(e, v.Elem())
		}
	default:
		return fmt.Errorf("wire: unsupported kind %s", v.Kind())
	}
	return nil
}

func unmarshalValue(d *Decoder, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b, err := d.Bool()
		if err != nil {
			return err
		}
		v.SetBool(b)
	case reflect.Int16:
		n, err := d.Int16()
		if err != nil {
			return err
		}
		v.SetInt(int64(n))
	case reflect.Int32:
		n, err := d.Int32()
		if err != nil {
			return err
		}
		v.SetInt(int64(n))
	case reflect.Int64, reflect.Int:
		n, err := d.Int64()
		if err != nil {
			return err
		}
		if v.OverflowInt(n) {
			return fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, v.Type())
		}
		v.SetInt(n)
	case reflect.Uint16, reflect.Uint8:
		n, err := d.Uint16()
		if err != nil {
			return err
		}
		if v.OverflowUint(uint64(n)) {
			return fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, v.Type())
		}
		v.SetUint(uint64(n))
	case reflect.Uint32:
		n, err := d.Uint32()
		if err != nil {
			return err
		}
		v.SetUint(uint64(n))
	case reflect.Uint64, reflect.Uint:
		n, err := d.Uint64()
		if err != nil {
			return err
		}
		if v.OverflowUint(n) {
			return fmt.Errorf("%w: %d overflows %s", ErrBadValue, n, v.Type())
		}
		v.SetUint(n)
	case reflect.Float64:
		f, err := d.Float64()
		if err != nil {
			return err
		}
		v.SetFloat(f)
	case reflect.String:
		n, err := d.Uint16()
		if err != nil {
			return err
		}
		if n == 0xffff {
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			v.SetString(string(b))
			return nil
		}
		b, err := d.take(int(n))
		if err != nil {
			return err
		}
		v.SetString(string(b))
		if n%2 == 1 {
			if _, err := d.take(1); err != nil {
				return err
			}
		}
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			v.SetBytes(b)
			return nil
		}
		n, err := d.Count()
		if err != nil {
			return err
		}
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			if err := unmarshalValue(d, s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := unmarshalValue(d, v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		n, err := d.Count()
		if err != nil {
			return err
		}
		m := reflect.MakeMapWithSize(v.Type(), n)
		for i := 0; i < n; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			if err := unmarshalValue(d, k); err != nil {
				return err
			}
			val := reflect.New(v.Type().Elem()).Elem()
			if err := unmarshalValue(d, val); err != nil {
				return err
			}
			m.SetMapIndex(k, val)
		}
		v.Set(m)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if err := unmarshalValue(d, v.Field(i)); err != nil {
				return fmt.Errorf("field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	case reflect.Pointer:
		present, err := d.Uint16()
		if err != nil {
			return err
		}
		switch present {
		case 0:
			v.SetZero()
		case 1:
			p := reflect.New(v.Type().Elem())
			if err := unmarshalValue(d, p.Elem()); err != nil {
				return err
			}
			v.Set(p)
		default:
			return fmt.Errorf("%w: choice designator %d", ErrBadValue, present)
		}
	default:
		return fmt.Errorf("wire: unsupported kind %s", v.Kind())
	}
	return nil
}
