// Package wire implements the standard external representation used
// to pass parameters and results between machines (§7.1): Courier-
// style big-endian encoding built from 16-bit words, extended with the
// wider types a modern Go interface needs.
//
// Externalization translates an object from its internal form to a
// byte sequence; internalization is the inverse (Figure 7.1; Nelson
// calls these marshaling and unmarshaling). The Encoder and Decoder
// are the hand-written substrate; Marshal and Unmarshal add a
// reflection-driven layer for records, sequences and optional values,
// playing the role of the externalization procedures a stub compiler
// would emit for non-copyable types (§7.1.4).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer reports a decode past the end of the message.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrBadValue reports an encoding that no encoder produces (for
// example a BOOLEAN word other than 0 or 1).
var ErrBadValue = errors.New("wire: malformed value")

// MaxSequence bounds decoded sequence and string lengths to keep a
// garbled or hostile length word from exhausting memory.
const MaxSequence = 1 << 24

// Encoder appends external representations to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the encoder, keeping its buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Grow ensures room for at least n more bytes without reallocating.
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) < n {
		buf := make([]byte, len(e.buf), len(e.buf)+n)
		copy(buf, e.buf)
		e.buf = buf
	}
}

// PutBool encodes a BOOLEAN as one 16-bit word, 0 or 1.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint16(1)
	} else {
		e.PutUint16(0)
	}
}

// PutUint16 encodes a CARDINAL.
func (e *Encoder) PutUint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// PutUint32 encodes a LONG CARDINAL.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutUint64 encodes an extended 64-bit cardinal.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutInt16 encodes an INTEGER.
func (e *Encoder) PutInt16(v int16) { e.PutUint16(uint16(v)) }

// PutInt32 encodes a LONG INTEGER.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutInt64 encodes an extended 64-bit integer.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutFloat64 encodes an IEEE 754 double as four UNSPECIFIED words.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutString encodes a STRING: a 16-bit length followed by the bytes,
// padded to a 16-bit boundary as Courier requires.
func (e *Encoder) PutString(s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("wire: string of %d bytes exceeds 16-bit length", len(s))
	}
	e.PutUint16(uint16(len(s)))
	e.buf = append(e.buf, s...)
	if len(s)%2 == 1 {
		e.buf = append(e.buf, 0)
	}
	return nil
}

// PutBytes encodes an opaque byte sequence: a 32-bit length followed
// by the bytes, padded to a 16-bit boundary.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	if len(b)%2 == 1 {
		e.buf = append(e.buf, 0)
	}
}

// PutCount encodes a sequence element count.
func (e *Encoder) PutCount(n int) { e.PutUint32(uint32(n)) }

// Decoder consumes external representations from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder reads from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finished reports whether the whole buffer was consumed; decoders of
// complete messages should check it to reject trailing garbage.
func (d *Decoder) Finished() bool { return d.off == len(d.buf) }

func (d *Decoder) take(n int) ([]byte, error) {
	if d.Remaining() < n {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Bool decodes a BOOLEAN.
func (d *Decoder) Bool() (bool, error) {
	w, err := d.Uint16()
	if err != nil {
		return false, err
	}
	switch w {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: boolean word %d", ErrBadValue, w)
	}
}

// Uint16 decodes a CARDINAL.
func (d *Decoder) Uint16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

// Uint32 decodes a LONG CARDINAL.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Uint64 decodes an extended 64-bit cardinal.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Int16 decodes an INTEGER.
func (d *Decoder) Int16() (int16, error) {
	v, err := d.Uint16()
	return int16(v), err
}

// Int32 decodes a LONG INTEGER.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Int64 decodes an extended 64-bit integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Float64 decodes an IEEE 754 double.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// String decodes a STRING.
func (d *Decoder) String() (string, error) {
	n, err := d.Uint16()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	s := string(b)
	if n%2 == 1 {
		if _, err := d.take(1); err != nil {
			return "", err
		}
	}
	return s, nil
}

// Bytes decodes an opaque byte sequence.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > MaxSequence {
		return nil, fmt.Errorf("%w: sequence of %d bytes", ErrBadValue, n)
	}
	b, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	if n%2 == 1 {
		if _, err := d.take(1); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Count decodes a sequence element count.
func (d *Decoder) Count() (int, error) {
	n, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	if n > MaxSequence {
		return 0, fmt.Errorf("%w: sequence of %d elements", ErrBadValue, n)
	}
	return int(n), nil
}
