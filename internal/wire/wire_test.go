package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodePrimitives(t *testing.T) {
	e := NewEncoder()
	e.PutBool(true)
	e.PutBool(false)
	e.PutUint16(0xbeef)
	e.PutUint32(0xdeadbeef)
	e.PutUint64(0x0123456789abcdef)
	e.PutInt16(-2)
	e.PutInt32(-70000)
	e.PutInt64(-1 << 40)
	e.PutFloat64(3.25)
	if err := e.PutString("hello"); err != nil {
		t.Fatal(err)
	}
	e.PutBytes([]byte{9, 8, 7})

	d := NewDecoder(e.Bytes())
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("Bool: %v %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("Bool: %v %v", v, err)
	}
	if v, err := d.Uint16(); err != nil || v != 0xbeef {
		t.Fatalf("Uint16: %x %v", v, err)
	}
	if v, err := d.Uint32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("Uint32: %x %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 0x0123456789abcdef {
		t.Fatalf("Uint64: %x %v", v, err)
	}
	if v, err := d.Int16(); err != nil || v != -2 {
		t.Fatalf("Int16: %d %v", v, err)
	}
	if v, err := d.Int32(); err != nil || v != -70000 {
		t.Fatalf("Int32: %d %v", v, err)
	}
	if v, err := d.Int64(); err != nil || v != -1<<40 {
		t.Fatalf("Int64: %d %v", v, err)
	}
	if v, err := d.Float64(); err != nil || v != 3.25 {
		t.Fatalf("Float64: %v %v", v, err)
	}
	if v, err := d.String(); err != nil || v != "hello" {
		t.Fatalf("String: %q %v", v, err)
	}
	if v, err := d.Bytes(); err != nil || !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Fatalf("Bytes: %v %v", v, err)
	}
	if !d.Finished() {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestStringPadding(t *testing.T) {
	// Courier pads strings to 16-bit boundaries; an odd-length string
	// must still round-trip and leave the decoder aligned.
	e := NewEncoder()
	e.PutString("odd")
	e.PutUint16(0xabcd)
	if e.Len()%2 != 0 {
		t.Fatalf("encoded length %d not word-aligned", e.Len())
	}
	d := NewDecoder(e.Bytes())
	s, err := d.String()
	if err != nil || s != "odd" {
		t.Fatalf("String: %q %v", s, err)
	}
	v, err := d.Uint16()
	if err != nil || v != 0xabcd {
		t.Fatalf("alignment lost: %x %v", v, err)
	}
}

func TestBadBoolean(t *testing.T) {
	d := NewDecoder([]byte{0, 7})
	if _, err := d.Bool(); err == nil {
		t.Fatal("boolean word 7 accepted")
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0})
	if _, err := d.Uint16(); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestHugeSequenceRejected(t *testing.T) {
	e := NewEncoder()
	e.PutUint32(0xffffffff)
	d := NewDecoder(e.Bytes())
	if _, err := d.Bytes(); err == nil {
		t.Fatal("absurd sequence length accepted")
	}
}

func TestStringTooLong(t *testing.T) {
	e := NewEncoder()
	if err := e.PutString(strings.Repeat("x", 70000)); err == nil {
		t.Fatal("oversized string accepted by PutString")
	}
}

type record struct {
	Name    string
	Count   uint16
	Balance int64
	Tags    []string
	Blob    []byte
	Nested  inner
	Opt     *inner
	Ratio   float64
	Fixed   [3]uint32
	Props   map[string]int32

	hidden int // unexported: must be skipped
}

type inner struct {
	A int32
	B bool
}

func TestMarshalRoundTripStruct(t *testing.T) {
	in := record{
		Name:    "troupe",
		Count:   3,
		Balance: -1234567890123,
		Tags:    []string{"a", "bb", ""},
		Blob:    []byte{1, 2, 3, 4, 5},
		Nested:  inner{A: -9, B: true},
		Opt:     &inner{A: 42},
		Ratio:   math.Pi,
		Fixed:   [3]uint32{7, 8, 9},
		Props:   map[string]int32{"x": 1, "y": -2, "z": 3},
		hidden:  99,
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out record
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	out.hidden = in.hidden // unexported field intentionally not carried
	if out.Name != in.Name || out.Count != in.Count || out.Balance != in.Balance ||
		out.Ratio != in.Ratio || out.Fixed != in.Fixed || out.Nested != in.Nested {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	if len(out.Tags) != 3 || out.Tags[1] != "bb" {
		t.Fatalf("tags: %v", out.Tags)
	}
	if !bytes.Equal(out.Blob, in.Blob) {
		t.Fatalf("blob: %v", out.Blob)
	}
	if out.Opt == nil || out.Opt.A != 42 {
		t.Fatalf("opt: %+v", out.Opt)
	}
	if len(out.Props) != 3 || out.Props["y"] != -2 {
		t.Fatalf("props: %v", out.Props)
	}
}

func TestMarshalNilPointer(t *testing.T) {
	type s struct{ P *int32 }
	data, err := Marshal(s{})
	if err != nil {
		t.Fatal(err)
	}
	var out s
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.P != nil {
		t.Fatalf("P = %v, want nil", out.P)
	}
}

func TestMarshalDeterministicMaps(t *testing.T) {
	// Identical maps must encode identically regardless of insertion
	// order: the unanimous collator compares messages bit-for-bit.
	m1 := map[string]uint32{}
	m2 := map[string]uint32{}
	keys := []string{"e", "a", "d", "b", "c"}
	for i, k := range keys {
		m1[k] = uint32(i)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		m2[keys[i]] = uint32(i)
	}
	b1, err := Marshal(m1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("map encoding depends on insertion order")
	}
}

func TestUnmarshalTrailingGarbage(t *testing.T) {
	data, err := Marshal(uint16(1))
	if err != nil {
		t.Fatal(err)
	}
	var out uint16
	if err := Unmarshal(append(data, 0), &out); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestUnmarshalNonPointer(t *testing.T) {
	if err := Unmarshal([]byte{0, 1}, uint16(0)); err == nil {
		t.Fatal("non-pointer target accepted")
	}
}

func TestUnsupportedKind(t *testing.T) {
	if _, err := Marshal(make(chan int)); err == nil {
		t.Fatal("channel marshaled")
	}
}

func TestLongStringRoundTrip(t *testing.T) {
	for _, n := range []int{0xfffe, 0xffff, 0x10000, 0x20001} {
		s := strings.Repeat("q", n)
		data, err := Marshal(s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var out string
		if err := Unmarshal(data, &out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if out != s {
			t.Fatalf("n=%d: round trip failed", n)
		}
	}
}

// Property: every struct of supported primitive kinds round-trips.
func TestQuickRoundTripRecord(t *testing.T) {
	type qr struct {
		B  bool
		I3 int32
		I6 int64
		U2 uint16
		U6 uint64
		F  float64
		S  string
		By []byte
		Sl []int32
	}
	f := func(in qr) bool {
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out qr
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if in.F != out.F && !(math.IsNaN(in.F) && math.IsNaN(out.F)) {
			return false
		}
		in.F, out.F = 0, 0
		if in.By == nil {
			in.By = []byte{}
		}
		if out.By == nil {
			out.By = []byte{}
		}
		if !bytes.Equal(in.By, out.By) {
			return false
		}
		in.By, out.By = nil, nil
		if len(in.Sl) != len(out.Sl) {
			return false
		}
		for i := range in.Sl {
			if in.Sl[i] != out.Sl[i] {
				return false
			}
		}
		return in.B == out.B && in.I3 == out.I3 && in.I6 == out.I6 &&
			in.U2 == out.U2 && in.U6 == out.U6 && in.S == out.S
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestQuickDecoderRobustness(t *testing.T) {
	type victim struct {
		A string
		B []int64
		C *inner
		D map[uint16]string
	}
	f := func(junk []byte) bool {
		var v victim
		_ = Unmarshal(junk, &v) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshaling is deterministic.
func TestQuickDeterministic(t *testing.T) {
	f := func(a map[int32]string, b []uint16) bool {
		type pair struct {
			M map[int32]string
			S []uint16
		}
		x, err1 := Marshal(pair{a, b})
		y, err2 := Marshal(pair{a, b})
		if err1 != nil || err2 != nil {
			return false
		}
		return bytes.Equal(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
