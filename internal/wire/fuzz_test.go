package wire

import (
	"bytes"
	"testing"
)

// maxDatagram mirrors transport.MaxDatagram: the payload size at which
// a message exactly fills one network MTU. Boundary cases around it
// exercise the encoder's length-prefix and padding arithmetic at the
// sizes the segmentation layer actually produces.
const maxDatagram = 1472

// FuzzUnmarshal: the decoder must never panic on arbitrary bytes, for
// every shape of target the runtime and generated stubs use.
func FuzzUnmarshal(f *testing.F) {
	good, _ := Marshal(struct {
		A string
		B []uint32
		C *int64
	}{A: "x", B: []uint32{1, 2}, C: new(int64)})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		type inner struct {
			M map[uint16]string
			P *inner2
		}
		var a struct {
			S  string
			N  int64
			B  bool
			By []byte
			Sl []int32
			In inner
		}
		_ = Unmarshal(data, &a)

		var hdr struct {
			ThreadHost   uint32
			ThreadProc   uint32
			Path         []uint32
			ClientTroupe uint64
			DestTroupe   uint64
			Module       uint16
			Proc         uint16
			Args         []byte
		}
		_ = Unmarshal(data, &hdr) // the call header shape of internal/core
	})
}

type inner2 struct {
	X float64
	Y [2]uint16
}

// nestedMsg is the deepest shape the runtime marshals: structs inside
// structs, pointer indirection, zero-length arrays, and byte payloads.
type nestedMsg struct {
	Tag   string
	Inner struct {
		Depth  uint32
		Pins   [0]uint32 // zero-length array: encodes to nothing, must still round-trip
		Leaf   *inner2
		Labels []string
	}
	Payload []byte
	Footer  [3]int16
}

// FuzzRoundTripNested: nested structs, zero-length arrays, and
// MTU-boundary payloads round-trip bit-exactly through Marshal and
// Unmarshal.
func FuzzRoundTripNested(f *testing.F) {
	f.Add("t", uint32(1), 3.5, []byte("p"), int16(-1))
	f.Add("", uint32(0), 0.0, []byte{}, int16(0))
	// Payloads straddling the MTU boundary, where a message goes from
	// filling one datagram to needing a second segment.
	for _, n := range []int{maxDatagram - 1, maxDatagram, maxDatagram + 1} {
		f.Add("mtu", uint32(n), 1.0, make([]byte, n), int16(7))
	}
	f.Fuzz(func(t *testing.T, tag string, depth uint32, x float64, payload []byte, foot int16) {
		if x != x { // NaN never compares equal; covered by wire_test's quick checks
			t.Skip()
		}
		in := nestedMsg{Tag: tag, Payload: payload}
		in.Inner.Depth = depth
		in.Inner.Leaf = &inner2{X: x, Y: [2]uint16{uint16(depth), uint16(depth >> 16)}}
		in.Inner.Labels = []string{tag, "", tag + "2"}
		in.Footer = [3]int16{foot, -foot, 0}

		data, err := Marshal(in)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		var out nestedMsg
		if err := Unmarshal(data, &out); err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if out.Tag != in.Tag || out.Inner.Depth != in.Inner.Depth ||
			out.Footer != in.Footer {
			t.Fatalf("scalar fields diverged: %+v vs %+v", out, in)
		}
		if out.Inner.Leaf == nil || *out.Inner.Leaf != *in.Inner.Leaf {
			t.Fatalf("nested pointer leaf diverged: %+v vs %+v", out.Inner.Leaf, in.Inner.Leaf)
		}
		if len(out.Inner.Labels) != len(in.Inner.Labels) {
			t.Fatalf("labels length %d, want %d", len(out.Inner.Labels), len(in.Inner.Labels))
		}
		for i := range in.Inner.Labels {
			if out.Inner.Labels[i] != in.Inner.Labels[i] {
				t.Fatalf("label %d diverged", i)
			}
		}
		if !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("payload diverged: %d vs %d bytes", len(out.Payload), len(in.Payload))
		}
	})
}

// FuzzRoundTripString: strings of every size and content round-trip.
func FuzzRoundTripString(f *testing.F) {
	f.Add("")
	f.Add("odd")
	f.Add(string(make([]byte, 70000)))
	f.Add("\x00\xff\xfe")
	f.Add(string(make([]byte, maxDatagram)))
	f.Add(string(make([]byte, maxDatagram-4))) // exactly fills after the length prefix
	f.Fuzz(func(t *testing.T, s string) {
		data, err := Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%d bytes): %v", len(s), err)
		}
		var out string
		if err := Unmarshal(data, &out); err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if out != s {
			t.Fatalf("round trip lost data: %d vs %d bytes", len(out), len(s))
		}
	})
}
