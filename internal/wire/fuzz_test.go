package wire

import "testing"

// FuzzUnmarshal: the decoder must never panic on arbitrary bytes, for
// every shape of target the runtime and generated stubs use.
func FuzzUnmarshal(f *testing.F) {
	good, _ := Marshal(struct {
		A string
		B []uint32
		C *int64
	}{A: "x", B: []uint32{1, 2}, C: new(int64)})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		type inner struct {
			M map[uint16]string
			P *inner2
		}
		var a struct {
			S  string
			N  int64
			B  bool
			By []byte
			Sl []int32
			In inner
		}
		_ = Unmarshal(data, &a)

		var hdr struct {
			ThreadHost   uint32
			ThreadProc   uint32
			Path         []uint32
			ClientTroupe uint64
			DestTroupe   uint64
			Module       uint16
			Proc         uint16
			Args         []byte
		}
		_ = Unmarshal(data, &hdr) // the call header shape of internal/core
	})
}

type inner2 struct {
	X float64
	Y [2]uint16
}

// FuzzRoundTripString: strings of every size and content round-trip.
func FuzzRoundTripString(f *testing.F) {
	f.Add("")
	f.Add("odd")
	f.Add(string(make([]byte, 70000)))
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, s string) {
		data, err := Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%d bytes): %v", len(s), err)
		}
		var out string
		if err := Unmarshal(data, &out); err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if out != s {
			t.Fatalf("round trip lost data: %d vs %d bytes", len(out), len(s))
		}
	})
}
