package core

import (
	"context"
	"testing"
	"time"

	"circus/internal/netsim"
	"circus/internal/thread"
)

// TestThreeTierManyToMany chains troupes A(2) → B(3) → C(2): one
// driver call must execute exactly once at every member of every tier,
// with thread identity propagating through both hops (§3.4.1, §4.3.3).
func TestThreeTierManyToMany(t *testing.T) {
	net := netsim.New(81)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	build := func(id TroupeID, degree int, mk func(i int) Module) (Troupe, []*Runtime) {
		tr := Troupe{ID: id}
		var rts []*Runtime
		for i := 0; i < degree; i++ {
			rt := newRuntime(t, net, opts)
			addr := rt.Export(mk(i), ExportOptions{})
			rt.SetTroupeID(addr.Module, id)
			tr.Members = append(tr.Members, addr)
			rts = append(rts, rt)
		}
		resolver[id] = tr.Members
		return tr, rts
	}

	// Tier C: leaf echoes.
	var cMods []*echoModule
	troupeC, _ := build(0xc0de, 2, func(i int) Module {
		m := &echoModule{}
		cMods = append(cMods, m)
		return m
	})

	// Tier B: forwards to C.
	var bMods []*nestedModule
	troupeB, _ := build(0xb0de, 3, func(i int) Module {
		m := &nestedModule{downstream: troupeC}
		bMods = append(bMods, m)
		return m
	})

	// Tier A: forwards to B.
	var aMods []*nestedModule
	troupeA, _ := build(0xa0de, 2, func(i int) Module {
		m := &nestedModule{downstream: troupeB}
		aMods = append(aMods, m)
		return m
	})

	driver := newRuntime(t, net, opts)
	got, err := driver.Call(context.Background(), troupeA, 1, []byte("through three tiers"), CallOptions{
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("chained call: %v", err)
	}
	if string(got) != "through three tiers" {
		t.Fatalf("got %q", got)
	}
	for i, m := range aMods {
		if m.execs.Load() != 1 {
			t.Errorf("A[%d] executed %d times", i, m.execs.Load())
		}
	}
	for i, m := range bMods {
		if m.execs.Load() != 1 {
			t.Errorf("B[%d] executed %d times (A's 2 members must collate)", i, m.execs.Load())
		}
	}
	for i, m := range cMods {
		if m.execs.Load() != 1 {
			t.Errorf("C[%d] executed %d times (B's 3 members must collate)", i, m.execs.Load())
		}
	}
}

// TestConcurrentThreadsShareServer: many root threads call the same
// troupe concurrently; every logical call executes exactly once and
// replies route to the right caller.
func TestConcurrentThreadsShareServer(t *testing.T) {
	c := newCluster(t, 82, 2, ExportOptions{})
	const threads = 16
	errs := make(chan error, threads)
	for i := 0; i < threads; i++ {
		i := i
		go func() {
			tc := c.client.NewThread()
			ctx := thread.NewContext(context.Background(), tc)
			arg := []byte{byte(i)}
			got, err := c.client.Call(ctx, c.troupe, 1, arg, CallOptions{})
			if err == nil && (len(got) != 1 || got[0] != byte(i)) {
				err = &AppError{Msg: "cross-wired reply"}
			}
			errs <- err
		}()
	}
	for i := 0; i < threads; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("thread: %v", err)
		}
	}
	if c.totalExecs() != threads*2 {
		t.Fatalf("execs = %d, want %d", c.totalExecs(), threads*2)
	}
}

// TestCallRetentionExpiry: a buffered many-to-one result must be
// purged after CallRetention; a later duplicate-looking call (same
// thread path) then re-executes — the documented bound on replay
// protection.
func TestCallRetentionExpiry(t *testing.T) {
	net := netsim.New(83)
	opts := fastOpts()
	opts.CallRetention = 80 * time.Millisecond
	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	addr := server.Export(mod, ExportOptions{})
	tr := Troupe{Members: []ModuleAddr{addr}}
	client := newRuntime(t, net, opts)

	tid := thread.ID{Host: 9, Proc: 9}
	call := func() error {
		tc := thread.Child(tid, []uint32{4}) // same logical call each time
		_, err := client.Call(context.Background(), tr, 1, []byte("x"), CallOptions{thread: tc})
		return err
	}
	if err := call(); err != nil {
		t.Fatal(err)
	}
	if mod.execs.Load() != 1 {
		t.Fatalf("execs = %d", mod.execs.Load())
	}
	// Immediately replayed: answered from the buffer, no re-execution.
	if err := call(); err != nil {
		t.Fatal(err)
	}
	if mod.execs.Load() != 1 {
		t.Fatalf("buffered reply not used: execs = %d", mod.execs.Load())
	}
	// After the retention window the record is gone and the "call"
	// executes afresh.
	time.Sleep(250 * time.Millisecond)
	if err := call(); err != nil {
		t.Fatal(err)
	}
	if mod.execs.Load() != 2 {
		t.Fatalf("expired record not purged: execs = %d", mod.execs.Load())
	}
}

// TestResolverFailureFallsBackToSingleton: if the client troupe ID
// cannot be resolved, the server proceeds with the callers it has
// (availability over precision).
func TestResolverFailureFallsBackToSingleton(t *testing.T) {
	net := netsim.New(84)
	opts := fastOpts() // resolver knows nothing
	opts.Resolver = StaticResolver{}
	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	addr := server.Export(mod, ExportOptions{})
	tr := Troupe{Members: []ModuleAddr{addr}}
	client := newRuntime(t, net, opts)

	got, err := client.Call(context.Background(), tr, 1, []byte("v"), CallOptions{
		AsTroupe: 0xdead, // unresolvable client troupe
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "v" {
		t.Fatalf("got %q", got)
	}
}

// TestCoLocatedTroupeMembers: two members of one troupe living in the
// same process (distinct module numbers) must each execute a
// replicated call exactly once — the collation key must include the
// module number, not just the thread identity.
func TestCoLocatedTroupeMembers(t *testing.T) {
	net := netsim.New(85)
	opts := fastOpts()
	server := newRuntime(t, net, opts)
	m1, m2 := &echoModule{}, &echoModule{}
	a1 := server.Export(m1, ExportOptions{})
	a2 := server.Export(m2, ExportOptions{})
	tr := Troupe{Members: []ModuleAddr{a1, a2}}

	client := newRuntime(t, net, opts)
	got, err := client.Call(context.Background(), tr, 1, []byte("both"), CallOptions{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "both" {
		t.Fatalf("got %q", got)
	}
	if m1.execs.Load() != 1 || m2.execs.Load() != 1 {
		t.Fatalf("execs = %d, %d; want 1, 1", m1.execs.Load(), m2.execs.Load())
	}
}
