package core

import (
	"context"
	"testing"
	"time"

	"circus/internal/transport"
)

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}.withDefaults()
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := b.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestSuspicionTTLAndForgive(t *testing.T) {
	s := NewSuspicion()
	m := ModuleAddr{Addr: transport.Addr{Host: 1, Port: 1}, Module: 0}
	if s.Suspected(m) {
		t.Fatal("fresh tracker suspects")
	}
	s.Suspect(m, 50*time.Millisecond)
	if !s.Suspected(m) {
		t.Fatal("not suspected after Suspect")
	}
	s.Forgive(m)
	if s.Suspected(m) {
		t.Fatal("suspected after Forgive")
	}
	s.Suspect(m, 30*time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	if s.Suspected(m) {
		t.Fatal("suspicion outlived its TTL")
	}
}

// TestResilientSkipsSuspectedMember: after one call observes a member
// crash, the next call must not wait out crash detection against the
// same member again — it collates over the unsuspected members only.
func TestResilientSkipsSuspectedMember(t *testing.T) {
	c := newCluster(t, 41, 3, ExportOptions{})
	rc := NewResilientCaller(c.client, c.troupe, ResilientOptions{Seed: 1})

	c.net.Crash(c.troupe.Members[2].Addr.Host)

	// First call: the crashed member is still waited on, so this call
	// pays for crash detection; the unanimous collator masks the
	// failure (§4.3.4) and the call succeeds on the two live members.
	start := time.Now()
	res, err := rc.Call(context.Background(), 1, []byte("a"), CallOptions{})
	if err != nil {
		t.Fatalf("first call: %v", err)
	}
	if string(res) != "a" {
		t.Fatalf("first call returned %q", res)
	}
	firstTook := time.Since(start)
	if got := rc.Stats().Suspected; got < 1 {
		t.Fatalf("Suspected = %d after observing a crash, want >= 1", got)
	}

	// Second call: the dead member is suspected and skipped, so the
	// call decides as soon as the live members answer.
	start = time.Now()
	if _, err := rc.Call(context.Background(), 1, []byte("b"), CallOptions{}); err != nil {
		t.Fatalf("second call: %v", err)
	}
	secondTook := time.Since(start)
	if secondTook > 100*time.Millisecond {
		t.Fatalf("second call took %v (first: %v): suspected member not skipped", secondTook, firstTook)
	}
}

// TestResilientRetriesThroughOutage: a call issued while the whole
// server troupe is unreachable must succeed transparently once the
// outage ends, within the retry budget.
func TestResilientRetriesThroughOutage(t *testing.T) {
	c := newCluster(t, 42, 1, ExportOptions{})
	host := c.troupe.Members[0].Addr.Host
	c.net.Crash(host)
	time.AfterFunc(250*time.Millisecond, func() { c.net.Restart(host) })

	rc := NewResilientCaller(c.client, c.troupe, ResilientOptions{
		MaxAttempts:  12,
		Backoff:      Backoff{Initial: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		SuspicionTTL: 10 * time.Millisecond, // keep retrying the sole member promptly
		Seed:         2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := rc.Call(ctx, 1, []byte("through"), CallOptions{Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("call through outage: %v (stats %+v)", err, rc.Stats())
	}
	if string(res) != "through" {
		t.Fatalf("call returned %q", res)
	}
	if rc.Stats().Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1 (outage lasted 250ms)", rc.Stats().Retries)
	}
}

// TestResilientRebindOnStaleBinding: when the troupe is reconfigured
// (its ID changes, §6.2), a call through the old binding must rebind
// via the hook and succeed without surfacing an error.
func TestResilientRebindOnStaleBinding(t *testing.T) {
	c := newCluster(t, 43, 2, ExportOptions{})

	// Reconfigure: same members, new incarnation. The client's cached
	// binding still bears the old ID, which members now reject.
	fresh := Troupe{ID: 0x9999, Members: c.troupe.Members}
	for i, rt := range c.servers {
		rt.SetTroupeID(c.troupe.Members[i].Module, fresh.ID)
	}

	rebinds := 0
	rc := NewResilientCaller(c.client, c.troupe, ResilientOptions{
		Seed: 3,
		Rebind: func(ctx context.Context, stale Troupe) (Troupe, error) {
			rebinds++
			return fresh, nil
		},
	})
	res, err := rc.Call(context.Background(), 1, []byte("hi"), CallOptions{})
	if err != nil {
		t.Fatalf("call across reconfiguration: %v", err)
	}
	if string(res) != "hi" {
		t.Fatalf("call returned %q", res)
	}
	if rebinds != 1 || rc.Stats().Rebinds != 1 {
		t.Fatalf("rebinds = %d, stats.Rebinds = %d, want 1", rebinds, rc.Stats().Rebinds)
	}
	if rc.Troupe().ID != fresh.ID {
		t.Fatalf("binding not refreshed: %v", rc.Troupe().ID)
	}
}

// TestResilientAppErrorNotRetried: an application error proves an
// execution completed, so the resilient caller must surface it
// immediately rather than re-execute the procedure.
func TestResilientAppErrorNotRetried(t *testing.T) {
	c := newCluster(t, 44, 1, ExportOptions{})
	rc := NewResilientCaller(c.client, c.troupe, ResilientOptions{Seed: 4})
	_, err := rc.Call(context.Background(), 2, nil, CallOptions{}) // proc 2 always fails
	if err == nil {
		t.Fatal("expected application error")
	}
	if got := rc.Stats().Attempts; got != 1 {
		t.Fatalf("Attempts = %d, want 1 (app errors must not be retried)", got)
	}
	if got := c.totalExecs(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1", got)
	}
}
