// Package core implements troupes and replicated procedure call — the
// paper's primary contribution (§3.5, §4).
//
// A troupe is a set of replicas of a module executing on machines with
// independent failure modes. Troupe members do not communicate among
// themselves and are unaware of one another's existence; each behaves
// exactly as if it had no replicas (§3.5.1). Control moves between
// troupes by replicated procedure calls whose semantics are
// exactly-once execution at all troupe members (§4.1).
//
// The general many-to-many call factors into two subalgorithms
// (§4.3.3): each client troupe member performs a one-to-many call to
// the entire server troupe (client.go), and each server troupe member
// handles a many-to-one call from the entire client troupe
// (server.go). Nowhere does a troupe member hold information about the
// other members of its own troupe.
package core

import (
	"errors"
	"fmt"

	"circus/internal/transport"
)

// TroupeID identifies a troupe uniquely in the internet (§6.2). It
// also serves as an incarnation number: the ID changes whenever troupe
// membership changes, and servers reject calls bearing a stale
// destination troupe ID, which is how obsolete cached bindings are
// detected (§6.2).
type TroupeID uint64

// ModuleAddr uniquely identifies an instance of a module: a process
// address plus a 16-bit module number selecting among the interfaces
// that process exports (§4.3).
type ModuleAddr struct {
	Addr   transport.Addr
	Module uint16
}

func (m ModuleAddr) String() string { return fmt.Sprintf("%v#%d", m.Addr, m.Module) }

// Troupe is the client-visible representation of a troupe: its ID and
// the module addresses of its members, as returned by the binding
// agent (§6.2).
type Troupe struct {
	ID      TroupeID
	Members []ModuleAddr
}

// Degree returns the degree of replication.
func (t Troupe) Degree() int { return len(t.Members) }

// Return message status codes. The paper's return header distinguishes
// normal from error results (§4.3); the runtime needs a few more kinds
// to signal binding staleness and dispatch failures.
const (
	statusOK         uint16 = 0
	statusAppError   uint16 = 1
	statusBadTroupe  uint16 = 2
	statusNoModule   uint16 = 3
	statusBadMessage uint16 = 4
)

// Errors surfaced to callers.
var (
	// ErrMemberDown reports that a server troupe member was presumed
	// crashed while a call to it was outstanding (§4.3.5).
	ErrMemberDown = errors.New("core: troupe member presumed crashed")
	// ErrTroupeDown reports that every member of the server troupe
	// failed; the replicated program as a whole has suffered a total
	// failure of that troupe (§3.5.1).
	ErrTroupeDown = errors.New("core: all troupe members failed")
	// ErrNoSuchModule reports a call to a module number the server
	// does not export; it signals stale binding case 2 of §6.1.
	ErrNoSuchModule = errors.New("core: no such module at server")
	// ErrNoSuchProc is returned by Dispatch implementations for an
	// unknown procedure number.
	ErrNoSuchProc = errors.New("core: no such procedure")
	// ErrClosed reports use of a closed Runtime.
	ErrClosed = errors.New("core: runtime closed")
)

// StaleBindingError reports that a server member rejected a call
// because the destination troupe ID did not match its current one: the
// client's cached binding is obsolete and it must rebind (§6.2).
type StaleBindingError struct {
	Member ModuleAddr
}

func (e *StaleBindingError) Error() string {
	return fmt.Sprintf("core: stale troupe binding at %v; rebind required", e.Member)
}

// AppError carries an application-level error raised by the remote
// procedure, externalized as a string as the stub compilers of §7.1
// pass exceptions.
type AppError struct {
	Msg string
}

func (e *AppError) Error() string { return e.Msg }

// callHeader is the body of a call message (§4.3): the thread ID of
// the caller (thread ID propagation, §3.4.1), the call path that
// identifies the replicated call (§4.3.2), the client troupe ID (so a
// server can learn how many call messages to expect), the destination
// troupe ID (incarnation check, §6.2), the module and procedure
// numbers, and the externalized parameters.
type callHeader struct {
	ThreadHost   uint32
	ThreadProc   uint32
	Path         []uint32
	ClientTroupe uint64
	DestTroupe   uint64
	Module       uint16
	Proc         uint16
	Args         []byte
}

// returnHeader is the body of a return message: a 16-bit status
// distinguishing normal from error results, plus the externalized
// results (§4.3).
type returnHeader struct {
	Status  uint16
	Payload []byte
}
