package core

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"circus/internal/pairedmsg"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/transport"
	"circus/internal/wire"
)

// serverCall collates the call messages of one replicated call at one
// server troupe member (§4.3.2). Two call messages are part of the
// same replicated call if and only if they bear the same thread ID and
// call path; the client troupe ID tells the member how many call
// messages to expect.
type serverCall struct {
	mu         sync.Mutex
	hdr        callHeader
	tid        thread.ID
	exp        *export
	callers    []transport.Addr
	callNums   map[transport.Addr]uint32
	args       [][]byte
	expected   int // number of client troupe members; 0 until resolved
	started    bool
	startedCh  chan struct{} // closed when started flips true
	finished   bool
	finishedAt time.Time
	result     []byte // encoded returnHeader, buffered for late callers
}

// markStartedLocked flips started and releases the availability
// timeout's timer. Caller holds sc.mu.
func (sc *serverCall) markStartedLocked() {
	sc.started = true
	close(sc.startedCh)
}

// handleCall processes one incoming call message: the entry point of
// the many-to-one algorithm (Figure 4.4).
func (rt *Runtime) handleCall(msg pairedmsg.Message) {
	var hdr callHeader
	if err := wire.Unmarshal(msg.Data, &hdr); err != nil {
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusBadMessage})
		return
	}
	tid := thread.ID{Host: hdr.ThreadHost, Proc: hdr.ThreadProc}

	rt.mu.Lock()
	exp, haveModule := rt.modules[hdr.Module]
	myTroupe := rt.troupeIDs[hdr.Module]
	if !haveModule {
		rt.mu.Unlock()
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusNoModule})
		return
	}
	// Incarnation check (§6.2): a member accepts a call only if it
	// bears the member's current troupe ID, which is the case only if
	// the client knows the correct membership of the troupe. A zero
	// destination ID skips the check (direct addressing); a zero local
	// ID means the member has not yet been registered.
	if hdr.DestTroupe != 0 && myTroupe != 0 && TroupeID(hdr.DestTroupe) != myTroupe {
		rt.mu.Unlock()
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusBadTroupe})
		return
	}

	// The collation key is the thread identity (§4.3.2) plus the
	// module number: two troupe members co-located in one process have
	// distinct module numbers, and a replicated call addressing both
	// must collate separately per member.
	key := thread.PathKey(tid, hdr.Path) + string([]byte{byte(hdr.Module >> 8), byte(hdr.Module)})
	sc, ok := rt.calls[key]
	if !ok {
		sc = &serverCall{
			hdr:       hdr,
			tid:       tid,
			exp:       exp,
			callNums:  make(map[transport.Addr]uint32),
			startedCh: make(chan struct{}),
		}
		rt.calls[key] = sc
	}
	rt.mu.Unlock()

	sc.mu.Lock()
	if sc.finished {
		// A slow client troupe member: execution appears instantaneous
		// to it, because the return message is ready and waiting
		// (§4.3.4).
		result := sc.result
		sc.mu.Unlock()
		if rt.tr.Enabled() {
			rt.tr.Emit(trace.Event{Kind: trace.KindDupCall,
				Peer: msg.From, CallNum: msg.CallNum,
				ThreadHost: hdr.ThreadHost, ThreadProc: hdr.ThreadProc,
				Path: hdr.Path, Troupe: hdr.DestTroupe,
				Module: hdr.Module, Proc: hdr.Proc})
		}
		rt.sendReturn(msg.From, msg.CallNum, decodedReturn(result))
		return
	}
	if _, seen := sc.callNums[msg.From]; !seen {
		sc.callers = append(sc.callers, msg.From)
		sc.args = append(sc.args, hdr.Args)
	}
	sc.callNums[msg.From] = msg.CallNum
	first := len(sc.callers) == 1
	sc.mu.Unlock()

	if first {
		// Resolve the client troupe membership (consulting a local
		// cache or the binding agent, §4.3.2) off the receive loop,
		// and arm the availability timeout.
		rt.background(func() { rt.resolveExpected(sc, TroupeID(hdr.ClientTroupe)) })
		rt.background(func() { rt.armTimeout(sc) })
	}
	rt.maybeStart(sc)
}

// decodedReturn re-wraps a buffered, already-encoded return header.
func decodedReturn(encoded []byte) returnHeader {
	var hdr returnHeader
	if err := wire.Unmarshal(encoded, &hdr); err != nil {
		return returnHeader{Status: statusBadMessage}
	}
	return hdr
}

// resolveExpected learns how many call messages to expect as part of
// the many-to-one call (§4.3.2).
func (rt *Runtime) resolveExpected(sc *serverCall, clientTroupe TroupeID) {
	expected := 1
	if clientTroupe != 0 {
		rt.mu.Lock()
		r := rt.resolver
		rt.mu.Unlock()
		if r != nil {
			if members, err := r.LookupByID(clientTroupe); err == nil && len(members) > 0 {
				expected = len(members)
			}
		}
	}
	sc.mu.Lock()
	sc.expected = expected
	sc.mu.Unlock()
	rt.maybeStart(sc)
}

// armTimeout starts execution after ManyToOneTimeout even if some
// client troupe members' call messages never arrive: the paper's
// server waits for all *available* members (§4.3.2), and a crashed
// member must not stall the call forever.
//
// Under ArgMajority the timeout never overrides the majority
// requirement: a member that has received only a minority of the
// expected messages may be in the smaller half of a partition, and
// §4.3.5's discipline exists precisely to keep it from diverging. Such
// a call stalls until the partition heals or more messages arrive.
func (rt *Runtime) armTimeout(sc *serverCall) {
	t := time.NewTimer(rt.opts.ManyToOneTimeout)
	defer t.Stop()
	select {
	case <-rt.done:
	case <-sc.startedCh:
		// The call started before the availability timeout expired;
		// stop the timer now rather than letting a long campaign
		// accumulate one live timer per completed call.
	case <-t.C:
		sc.mu.Lock()
		floor := 1
		if sc.exp.opts.Policy == ArgMajority {
			if sc.expected == 0 {
				sc.mu.Unlock()
				return // membership unresolved: cannot establish a majority
			}
			floor = sc.expected/2 + 1
		}
		force := !sc.started && len(sc.callers) >= floor
		if force {
			sc.markStartedLocked()
		}
		sc.mu.Unlock()
		if force {
			rt.background(func() { rt.execute(sc) })
		}
	}
}

// maybeStart begins execution once the waiting discipline of the
// module's ArgPolicy is satisfied (§4.3.4, §4.3.5).
func (rt *Runtime) maybeStart(sc *serverCall) {
	sc.mu.Lock()
	var need int
	switch sc.exp.opts.Policy {
	case ArgFirstCome:
		need = 1
	case ArgMajority:
		if sc.expected == 0 {
			sc.mu.Unlock()
			return // not resolved yet
		}
		need = sc.expected/2 + 1
	default: // ArgWaitAll
		if sc.expected == 0 {
			sc.mu.Unlock()
			return // not resolved yet
		}
		need = sc.expected
	}
	start := !sc.started && len(sc.callers) >= need
	if start {
		sc.markStartedLocked()
	}
	sc.mu.Unlock()
	if start {
		rt.background(func() { rt.execute(sc) })
	}
}

// execute performs the requested procedure exactly once and sends a
// return message containing the results to each member of the client
// troupe (§4.3.2). The server adopts the thread ID in the call header
// for the duration of the execution so that further remote calls
// propagate it (§3.4.1).
func (rt *Runtime) execute(sc *serverCall) {
	sc.mu.Lock()
	hdr := sc.hdr
	tid := sc.tid
	exp := sc.exp
	callers := append([]transport.Addr(nil), sc.callers...)
	args := append([][]byte(nil), sc.args...)
	sc.mu.Unlock()

	call := &ServerCall{
		rt:           rt,
		ctx:          rt.ctx,
		thread:       thread.Child(tid, hdr.Path),
		clientTroupe: TroupeID(hdr.ClientTroupe),
		module:       hdr.Module,
		proc:         hdr.Proc,
		callers:      callers,
		args:         args,
	}

	began := time.Now()
	if rt.tr.Enabled() {
		// The at-most-once anchor: exactly one of these per (thread
		// ID, call path, module) per member incarnation (§4.3.4).
		rt.tr.Emit(trace.Event{Kind: trace.KindCallStart,
			ThreadHost: tid.Host, ThreadProc: tid.Proc, Path: hdr.Path,
			Troupe: hdr.DestTroupe, Module: hdr.Module, Proc: hdr.Proc,
			N: len(callers)})
	}

	// Waiting for all messages and checking that they are identical is
	// analogous to providing error detection as well as transparent
	// error correction (§4.3.4): any inconsistency among the client
	// troupe's call messages is detected here.
	if exp.opts.Policy == ArgWaitAll && !exp.opts.AllowDivergentArgs {
		for _, a := range args[1:] {
			if !bytes.Equal(a, args[0]) {
				ret := returnHeader{Status: statusAppError,
					Payload: []byte("core: client troupe members sent different arguments")}
				rt.finishAndReply(sc, ret)
				return
			}
		}
	}

	var ret returnHeader
	res, err := rt.dispatch(exp, call, hdr.Proc, hdr.Args)
	if err != nil {
		ret = returnHeader{Status: statusAppError, Payload: []byte(err.Error())}
	} else {
		ret = returnHeader{Status: statusOK, Payload: res}
	}
	if rt.tr.Enabled() {
		e := trace.Event{Kind: trace.KindCallDone,
			ThreadHost: tid.Host, ThreadProc: tid.Proc, Path: hdr.Path,
			Troupe: hdr.DestTroupe, Module: hdr.Module, Proc: hdr.Proc,
			Dur: time.Since(began)}
		if err != nil {
			e.Err = err.Error()
		}
		rt.tr.Emit(e)
	}
	rt.finishAndReply(sc, ret)
}

// finishAndReply records the buffered return message and sends it to
// every client troupe member whose call message has arrived; later
// arrivals are answered directly from the buffer (§4.3.4).
func (rt *Runtime) finishAndReply(sc *serverCall, ret returnHeader) {
	encoded, merr := wire.Marshal(ret)
	if merr != nil {
		ret = returnHeader{Status: statusAppError, Payload: []byte(merr.Error())}
		encoded, _ = wire.Marshal(ret)
	}

	sc.mu.Lock()
	sc.finished = true
	sc.finishedAt = time.Now()
	sc.result = encoded
	targets := make(map[transport.Addr]uint32, len(sc.callNums))
	for a, cn := range sc.callNums {
		targets[a] = cn
	}
	sc.mu.Unlock()

	for addr, callNum := range targets {
		rt.sendReturn(addr, callNum, ret)
	}
}

// dispatch routes reserved procedure numbers to the runtime's own
// implementations and everything else to the module.
func (rt *Runtime) dispatch(exp *export, call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcPing:
		// The null "are you there?" procedure (§6.1).
		return nil, nil
	case ProcGetState:
		// get_state runs as a read-only operation copying the module
		// state to the caller (§6.4.1).
		sp, ok := exp.mod.(StateProvider)
		if !ok {
			return nil, fmt.Errorf("module %d does not support state transfer", exp.num)
		}
		return sp.GetState()
	case ProcSetTroupeID:
		var id uint64
		if err := wire.Unmarshal(args, &id); err != nil {
			return nil, err
		}
		rt.SetTroupeID(exp.num, TroupeID(id))
		return nil, nil
	default:
		return exp.mod.Dispatch(call, proc, args)
	}
}

// sendReturn transmits one return message; delivery reliability is the
// paired message layer's job, so failures here only mean the runtime
// is shutting down.
func (rt *Runtime) sendReturn(to transport.Addr, callNum uint32, ret returnHeader) {
	data, err := wire.Marshal(ret)
	if err != nil {
		return
	}
	if rt.tr.Enabled() {
		e := trace.Event{Kind: trace.KindReplySent,
			Peer: to, CallNum: callNum, N: int(ret.Status)}
		rt.tr.Emit(e)
	}
	if _, err := rt.conn.StartSend(to, pairedmsg.Return, callNum, data); err != nil {
		return
	}
}
