package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"circus/internal/pairedmsg"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/transport"
	"circus/internal/wire"
)

// serverCall collates the call messages of one replicated call at one
// server troupe member (§4.3.2). Two call messages are part of the
// same replicated call if and only if they bear the same thread ID and
// call path; the client troupe ID tells the member how many call
// messages to expect.
type serverCall struct {
	mu       sync.Mutex
	hdr      callHeader
	tid      thread.ID
	exp      *export
	callers  []transport.Addr
	callNums []uint32 // parallel to callers (troupes are small: linear scan)
	args     [][]byte
	// In-place backing for the three slices above, covering typical
	// troupe degrees without heap growth.
	callersArr  [4]transport.Addr
	callNumsArr [4]uint32
	argsArr     [4][]byte
	expected    int // number of client troupe members; 0 until resolved
	started     bool
	timer       *time.Timer // availability timeout; stopped when started flips
	finished    bool
	finishedAt  time.Time
	result      []byte // encoded returnHeader, buffered for late callers
	status      uint16 // status word of result, for tracing late replies
}

// markStartedLocked flips started and releases the availability
// timeout's timer. Caller holds sc.mu.
func (sc *serverCall) markStartedLocked() {
	sc.started = true
	if sc.timer != nil {
		sc.timer.Stop()
		sc.timer = nil
	}
}

// callKey renders the collation key — thread identity (§4.3.2), call
// path, and module number — in a single allocation. Two troupe members
// co-located in one process have distinct module numbers, and a
// replicated call addressing both must collate separately per member.
func callKey(tid thread.ID, path []uint32, module uint16) string {
	var arr [64]byte
	buf := arr[:0]
	if n := 10 + 4*len(path); n > len(arr) {
		buf = make([]byte, 0, n)
	}
	buf = binary.BigEndian.AppendUint32(buf, tid.Host)
	buf = binary.BigEndian.AppendUint32(buf, tid.Proc)
	for _, p := range path {
		buf = binary.BigEndian.AppendUint32(buf, p)
	}
	buf = binary.BigEndian.AppendUint16(buf, module)
	return string(buf)
}

// handleCall processes one incoming call message: the entry point of
// the many-to-one algorithm (Figure 4.4).
func (rt *Runtime) handleCall(msg pairedmsg.Message) {
	var hdr callHeader
	if err := wire.Unmarshal(msg.Data, &hdr); err != nil {
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusBadMessage})
		return
	}
	tid := thread.ID{Host: hdr.ThreadHost, Proc: hdr.ThreadProc}

	// Module and troupe lookups are read-mostly: every incoming call
	// takes this path, possibly on many dispatch workers at once, while
	// writes happen only at export/registration time.
	rt.mu.RLock()
	exp, haveModule := rt.modules[hdr.Module]
	myTroupe := rt.troupeIDs[hdr.Module]
	rt.mu.RUnlock()
	if !haveModule {
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusNoModule})
		return
	}
	// Incarnation check (§6.2): a member accepts a call only if it
	// bears the member's current troupe ID, which is the case only if
	// the client knows the correct membership of the troupe. A zero
	// destination ID skips the check (direct addressing); a zero local
	// ID means the member has not yet been registered.
	if hdr.DestTroupe != 0 && myTroupe != 0 && TroupeID(hdr.DestTroupe) != myTroupe {
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusBadTroupe})
		return
	}

	key := callKey(tid, hdr.Path, hdr.Module)
	rt.callMu.Lock()
	sc, ok := rt.calls[key]
	if !ok {
		sc = &serverCall{hdr: hdr, tid: tid, exp: exp}
		sc.callers = sc.callersArr[:0]
		sc.callNums = sc.callNumsArr[:0]
		sc.args = sc.argsArr[:0]
		rt.calls[key] = sc
	}
	rt.callMu.Unlock()

	sc.mu.Lock()
	if sc.finished {
		// A slow client troupe member: execution appears instantaneous
		// to it, because the return message is ready and waiting
		// (§4.3.4) — already encoded, so replay the stored bytes.
		result, status := sc.result, sc.status
		sc.mu.Unlock()
		if rt.tr.EnabledFor(trace.KindDupCall) {
			rt.tr.Emit(trace.Event{Kind: trace.KindDupCall,
				Peer: msg.From, CallNum: msg.CallNum,
				ThreadHost: hdr.ThreadHost, ThreadProc: hdr.ThreadProc,
				Path: hdr.Path, Troupe: hdr.DestTroupe,
				Module: hdr.Module, Proc: hdr.Proc})
		}
		rt.sendReturnEncoded(msg.From, msg.CallNum, status, result)
		return
	}
	seen := -1
	for i, a := range sc.callers {
		if a == msg.From {
			seen = i
			break
		}
	}
	if seen < 0 {
		sc.callers = append(sc.callers, msg.From)
		sc.callNums = append(sc.callNums, msg.CallNum)
		sc.args = append(sc.args, hdr.Args)
	} else {
		sc.callNums[seen] = msg.CallNum
	}
	first := len(sc.callers) == 1
	if first && hdr.ClientTroupe == 0 {
		// An unreplicated client sends exactly one call message; no
		// membership lookup is needed.
		sc.expected = 1
	}
	sc.mu.Unlock()

	if first {
		rt.armTimeout(sc)
		if hdr.ClientTroupe != 0 {
			// Resolve the client troupe membership (consulting a local
			// cache or the binding agent, §4.3.2) off the receive loop.
			rt.background(func() { rt.resolveExpected(sc, TroupeID(hdr.ClientTroupe)) })
		}
	}
	rt.maybeStart(sc)
}

// resolveExpected learns how many call messages to expect as part of
// the many-to-one call (§4.3.2).
func (rt *Runtime) resolveExpected(sc *serverCall, clientTroupe TroupeID) {
	expected := 1
	if clientTroupe != 0 {
		rt.mu.RLock()
		r := rt.resolver
		rt.mu.RUnlock()
		if r != nil {
			if members, err := r.LookupByID(clientTroupe); err == nil && len(members) > 0 {
				expected = len(members)
			}
		}
	}
	sc.mu.Lock()
	sc.expected = expected
	sc.mu.Unlock()
	rt.maybeStart(sc)
}

// armTimeout starts execution after ManyToOneTimeout even if some
// client troupe members' call messages never arrive: the paper's
// server waits for all *available* members (§4.3.2), and a crashed
// member must not stall the call forever.
//
// Under ArgMajority the timeout never overrides the majority
// requirement: a member that has received only a minority of the
// expected messages may be in the smaller half of a partition, and
// §4.3.5's discipline exists precisely to keep it from diverging. Such
// a call stalls until the partition heals or more messages arrive.
func (rt *Runtime) armTimeout(sc *serverCall) {
	// One AfterFunc timer instead of a goroutine parked on a
	// NewTimer: markStartedLocked stops it when the call starts, so a
	// long campaign does not accumulate one live timer per completed
	// call, and the common case costs no goroutine at all.
	t := time.AfterFunc(rt.opts.ManyToOneTimeout, func() { rt.timeoutFire(sc) })
	sc.mu.Lock()
	if sc.started {
		sc.mu.Unlock()
		t.Stop()
		return
	}
	sc.timer = t
	sc.mu.Unlock()
}

// timeoutFire runs on the availability timer's goroutine when the
// timeout expires before the call starts.
func (rt *Runtime) timeoutFire(sc *serverCall) {
	// Register with the shutdown WaitGroup under a read lock: after
	// Close flips rt.closed (under the write lock) the timer fire is a
	// no-op, and because closed is still false while we hold the read
	// lock, Close cannot have reached its bg.Wait yet — the Add is
	// safely ordered before it.
	rt.mu.RLock()
	if rt.closed {
		rt.mu.RUnlock()
		return
	}
	rt.bg.Add(1)
	rt.mu.RUnlock()
	defer rt.bg.Done()

	sc.mu.Lock()
	floor := 1
	if sc.exp.opts.Policy == ArgMajority {
		if sc.expected == 0 {
			sc.mu.Unlock()
			return // membership unresolved: cannot establish a majority
		}
		floor = sc.expected/2 + 1
	}
	force := !sc.started && len(sc.callers) >= floor
	if force {
		sc.markStartedLocked()
	}
	sc.mu.Unlock()
	if force {
		rt.execute(sc)
	}
}

// maybeStart begins execution once the waiting discipline of the
// module's ArgPolicy is satisfied (§4.3.4, §4.3.5).
func (rt *Runtime) maybeStart(sc *serverCall) {
	sc.mu.Lock()
	var need int
	switch sc.exp.opts.Policy {
	case ArgFirstCome:
		need = 1
	case ArgMajority:
		if sc.expected == 0 {
			sc.mu.Unlock()
			return // not resolved yet
		}
		need = sc.expected/2 + 1
	default: // ArgWaitAll
		if sc.expected == 0 {
			sc.mu.Unlock()
			return // not resolved yet
		}
		need = sc.expected
	}
	start := !sc.started && len(sc.callers) >= need
	if start {
		sc.markStartedLocked()
	}
	sc.mu.Unlock()
	if start {
		rt.bg.Add(1)
		go rt.executeBG(sc)
	}
}

// executeBG is the tracked-goroutine wrapper of execute, spawned
// directly rather than through background() to spare the closure
// allocations on the per-call path.
func (rt *Runtime) executeBG(sc *serverCall) {
	defer rt.bg.Done()
	rt.execute(sc)
}

// execute performs the requested procedure exactly once and sends a
// return message containing the results to each member of the client
// troupe (§4.3.2). The server adopts the thread ID in the call header
// for the duration of the execution so that further remote calls
// propagate it (§3.4.1).
func (rt *Runtime) execute(sc *serverCall) {
	sc.mu.Lock()
	hdr := sc.hdr
	tid := sc.tid
	exp := sc.exp
	// The slice headers are snapshot under the lock without copying:
	// elements below the snapshot length are never rewritten (late
	// call messages only append), so later growth is invisible here.
	callers := sc.callers
	args := sc.args
	sc.mu.Unlock()

	call := &ServerCall{
		rt:           rt,
		ctx:          rt.ctx,
		thread:       thread.Child(tid, hdr.Path),
		clientTroupe: TroupeID(hdr.ClientTroupe),
		module:       hdr.Module,
		proc:         hdr.Proc,
		callers:      callers,
		args:         args,
	}

	began := time.Now()
	if rt.tr.EnabledFor(trace.KindCallStart) {
		// The at-most-once anchor: exactly one of these per (thread
		// ID, call path, module) per member incarnation (§4.3.4).
		rt.tr.Emit(trace.Event{Kind: trace.KindCallStart,
			ThreadHost: tid.Host, ThreadProc: tid.Proc, Path: hdr.Path,
			Troupe: hdr.DestTroupe, Module: hdr.Module, Proc: hdr.Proc,
			N: len(callers)})
	}

	// Waiting for all messages and checking that they are identical is
	// analogous to providing error detection as well as transparent
	// error correction (§4.3.4): any inconsistency among the client
	// troupe's call messages is detected here.
	if exp.opts.Policy == ArgWaitAll && !exp.opts.AllowDivergentArgs {
		for _, a := range args[1:] {
			if !bytes.Equal(a, args[0]) {
				ret := returnHeader{Status: statusAppError,
					Payload: []byte("core: client troupe members sent different arguments")}
				rt.finishAndReply(sc, ret)
				return
			}
		}
	}

	var ret returnHeader
	res, err := rt.dispatch(exp, call, hdr.Proc, hdr.Args)
	if err != nil {
		ret = returnHeader{Status: statusAppError, Payload: []byte(err.Error())}
	} else {
		ret = returnHeader{Status: statusOK, Payload: res}
	}
	if rt.tr.EnabledFor(trace.KindCallDone) {
		e := trace.Event{Kind: trace.KindCallDone,
			ThreadHost: tid.Host, ThreadProc: tid.Proc, Path: hdr.Path,
			Troupe: hdr.DestTroupe, Module: hdr.Module, Proc: hdr.Proc,
			Dur: time.Since(began)}
		if err != nil {
			e.Err = err.Error()
		}
		rt.tr.Emit(e)
	}
	rt.finishAndReply(sc, ret)
}

// finishAndReply records the buffered return message and sends it to
// every client troupe member whose call message has arrived; later
// arrivals are answered directly from the buffer (§4.3.4).
func (rt *Runtime) finishAndReply(sc *serverCall, ret returnHeader) {
	encoded, merr := wire.Marshal(ret)
	if merr != nil {
		ret = returnHeader{Status: statusAppError, Payload: []byte(merr.Error())}
		encoded, _ = wire.Marshal(ret)
	}

	sc.mu.Lock()
	sc.finished = true
	sc.finishedAt = time.Now()
	sc.result = encoded
	sc.status = ret.Status
	callers := sc.callers // append-only: the header snapshot suffices
	// callNums entries are rewritten in place when a client member
	// retransmits with a fresh call number, so these must be copied.
	callNums := append([]uint32(nil), sc.callNums...)
	sc.mu.Unlock()

	// One encode serves every client troupe member (and any late
	// arrival, via the buffer stored above).
	for i, addr := range callers {
		rt.sendReturnEncoded(addr, callNums[i], ret.Status, encoded)
	}
}

// dispatch routes reserved procedure numbers to the runtime's own
// implementations and everything else to the module.
func (rt *Runtime) dispatch(exp *export, call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcPing:
		// The null "are you there?" procedure (§6.1).
		return nil, nil
	case ProcGetState:
		// get_state runs as a read-only operation copying the module
		// state to the caller (§6.4.1).
		sp, ok := exp.mod.(StateProvider)
		if !ok {
			return nil, fmt.Errorf("module %d does not support state transfer", exp.num)
		}
		return sp.GetState()
	case ProcSetTroupeID:
		var id uint64
		if err := wire.Unmarshal(args, &id); err != nil {
			return nil, err
		}
		rt.SetTroupeID(exp.num, TroupeID(id))
		return nil, nil
	default:
		return exp.mod.Dispatch(call, proc, args)
	}
}

// sendReturn transmits one return message; delivery reliability is the
// paired message layer's job, so failures here only mean the runtime
// is shutting down.
func (rt *Runtime) sendReturn(to transport.Addr, callNum uint32, ret returnHeader) {
	data, err := wire.Marshal(ret)
	if err != nil {
		return
	}
	rt.sendReturnEncoded(to, callNum, ret.Status, data)
}

// sendReturnEncoded transmits an already-encoded return message, so
// the reply fan-out and duplicate replay reuse one encoding.
func (rt *Runtime) sendReturnEncoded(to transport.Addr, callNum uint32, status uint16, data []byte) {
	if rt.tr.EnabledFor(trace.KindReplySent) {
		e := trace.Event{Kind: trace.KindReplySent,
			Peer: to, CallNum: callNum, N: int(status)}
		rt.tr.Emit(e)
	}
	if _, err := rt.conn.StartSend(to, pairedmsg.Return, callNum, data); err != nil {
		return
	}
}
