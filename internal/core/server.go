package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"circus/internal/pairedmsg"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/transport"
	"circus/internal/wire"
)

// serverCall collates the call messages of one replicated call at one
// server troupe member (§4.3.2). Two call messages are part of the
// same replicated call if and only if they bear the same thread ID and
// call path; the client troupe ID tells the member how many call
// messages to expect.
type serverCall struct {
	mu       sync.Mutex
	hdr      callHeader
	tid      thread.ID
	exp      *export
	callers  []transport.Addr
	callNums []uint32 // parallel to callers (troupes are small: linear scan)
	args     [][]byte
	// In-place backing for the three slices above, covering typical
	// troupe degrees without heap growth.
	callersArr  [4]transport.Addr
	callNumsArr [4]uint32
	argsArr     [4][]byte
	expected    int // number of client troupe members; 0 until resolved
	started     bool
	timer       *time.Timer // availability timeout; stopped when started flips
	finished    bool
	finishedAt  time.Time
	result      []byte // encoded returnHeader, buffered for late callers
	status      uint16 // status word of result, for tracing late replies
	// call is the ServerCall handed to the module's Dispatch, embedded
	// here so execute need not heap-allocate one per call. The record
	// outlives the dispatch (retained for CallRetention), so a module
	// that stashes the pointer stays safe.
	call ServerCall
}

// markStartedLocked flips started and releases the availability
// timeout's timer. Caller holds sc.mu.
func (sc *serverCall) markStartedLocked() {
	sc.started = true
	if sc.timer != nil {
		sc.timer.Stop()
		sc.timer = nil
	}
}

// appendCallKey renders the collation key — thread identity (§4.3.2),
// call path, and module number — onto buf. Two troupe members
// co-located in one process have distinct module numbers, and a
// replicated call addressing both must collate separately per member.
// Returning bytes (rather than a string) lets handleCall look the key
// up via the map's string-conversion fast path without materializing a
// string; only an insert pays the allocation.
func appendCallKey(buf []byte, tid thread.ID, path []uint32, module uint16) []byte {
	buf = binary.BigEndian.AppendUint32(buf, tid.Host)
	buf = binary.BigEndian.AppendUint32(buf, tid.Proc)
	for _, p := range path {
		buf = binary.BigEndian.AppendUint32(buf, p)
	}
	return binary.BigEndian.AppendUint16(buf, module)
}

// handleCall processes one incoming call message: the entry point of
// the many-to-one algorithm (Figure 4.4). hdr is the worker's decode
// scratch (see msgScratch); everything stored past this call is copied
// out of it.
func (rt *Runtime) handleCall(msg pairedmsg.Message, hdr *callHeader) {
	// The arguments escape into the call record, so they must land in
	// fresh storage; the path is only read (and copied if stored), so
	// its scratch backing is reused across messages.
	hdr.Args = nil
	if err := wire.Unmarshal(msg.Data, hdr); err != nil {
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusBadMessage})
		return
	}
	tid := thread.ID{Host: hdr.ThreadHost, Proc: hdr.ThreadProc}

	// Module and troupe lookups are read-mostly: every incoming call
	// takes this path, possibly on many dispatch workers at once, while
	// writes happen only at export/registration time.
	rt.mu.RLock()
	exp, haveModule := rt.modules[hdr.Module]
	myTroupe := rt.troupeIDs[hdr.Module]
	rt.mu.RUnlock()
	if !haveModule {
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusNoModule})
		return
	}
	// Incarnation check (§6.2): a member accepts a call only if it
	// bears the member's current troupe ID, which is the case only if
	// the client knows the correct membership of the troupe. A zero
	// destination ID skips the check (direct addressing); a zero local
	// ID means the member has not yet been registered.
	if hdr.DestTroupe != 0 && myTroupe != 0 && TroupeID(hdr.DestTroupe) != myTroupe {
		rt.sendReturn(msg.From, msg.CallNum, returnHeader{Status: statusBadTroupe})
		return
	}

	var keyArr [64]byte
	key := appendCallKey(keyArr[:0], tid, hdr.Path, hdr.Module)
	rt.callMu.Lock()
	sc, ok := rt.calls[string(key)] // no-alloc lookup (string-conversion fast path)
	if !ok {
		sc = &serverCall{hdr: *hdr, tid: tid, exp: exp}
		// The stored header must not alias the decode scratch.
		sc.hdr.Path = append([]uint32(nil), hdr.Path...)
		sc.callers = sc.callersArr[:0]
		sc.callNums = sc.callNumsArr[:0]
		sc.args = sc.argsArr[:0]
		rt.calls[string(key)] = sc
	}
	rt.callMu.Unlock()

	sc.mu.Lock()
	if sc.finished {
		// A slow client troupe member: execution appears instantaneous
		// to it, because the return message is ready and waiting
		// (§4.3.4) — already encoded, so replay the stored bytes.
		result, status := sc.result, sc.status
		sc.mu.Unlock()
		if rt.tr.EnabledFor(trace.KindDupCall) {
			// Sinks may retain events: never hand them the scratch path.
			rt.tr.Emit(trace.Event{Kind: trace.KindDupCall,
				Peer: msg.From, CallNum: msg.CallNum,
				ThreadHost: hdr.ThreadHost, ThreadProc: hdr.ThreadProc,
				Path: append([]uint32(nil), hdr.Path...), Troupe: hdr.DestTroupe,
				Module: hdr.Module, Proc: hdr.Proc})
		}
		rt.sendReturnEncoded(msg.From, msg.CallNum, status, result)
		return
	}
	seen := -1
	for i, a := range sc.callers {
		if a == msg.From {
			seen = i
			break
		}
	}
	if seen < 0 {
		sc.callers = append(sc.callers, msg.From)
		sc.callNums = append(sc.callNums, msg.CallNum)
		sc.args = append(sc.args, hdr.Args)
	} else {
		sc.callNums[seen] = msg.CallNum
	}
	first := len(sc.callers) == 1
	if first && hdr.ClientTroupe == 0 {
		// An unreplicated client sends exactly one call message; no
		// membership lookup is needed.
		sc.expected = 1
	}
	sc.mu.Unlock()

	// Try to start before spending a timer on the call: the common case
	// — an unreplicated client, or the last expected member arriving —
	// starts right here, and a started call needs no availability
	// timeout at all.
	if rt.maybeStart(sc) {
		return
	}
	if first {
		rt.armTimeout(sc)
		if hdr.ClientTroupe != 0 {
			// Resolve the client troupe membership (consulting a local
			// cache or the binding agent, §4.3.2) off the receive loop.
			ct := TroupeID(hdr.ClientTroupe) // hoisted: the closure must not read the scratch
			rt.background(func() { rt.resolveExpected(sc, ct) })
		}
	}
}

// resolveExpected learns how many call messages to expect as part of
// the many-to-one call (§4.3.2).
func (rt *Runtime) resolveExpected(sc *serverCall, clientTroupe TroupeID) {
	expected := 1
	if clientTroupe != 0 {
		rt.mu.RLock()
		r := rt.resolver
		rt.mu.RUnlock()
		if r != nil {
			if members, err := r.LookupByID(clientTroupe); err == nil && len(members) > 0 {
				expected = len(members)
			}
		}
	}
	sc.mu.Lock()
	sc.expected = expected
	sc.mu.Unlock()
	rt.maybeStart(sc)
}

// armTimeout starts execution after ManyToOneTimeout even if some
// client troupe members' call messages never arrive: the paper's
// server waits for all *available* members (§4.3.2), and a crashed
// member must not stall the call forever.
//
// Under ArgMajority the timeout never overrides the majority
// requirement: a member that has received only a minority of the
// expected messages may be in the smaller half of a partition, and
// §4.3.5's discipline exists precisely to keep it from diverging. Such
// a call stalls until the partition heals or more messages arrive.
func (rt *Runtime) armTimeout(sc *serverCall) {
	// One AfterFunc timer instead of a goroutine parked on a
	// NewTimer: markStartedLocked stops it when the call starts, so a
	// long campaign does not accumulate one live timer per completed
	// call, and the common case costs no goroutine at all.
	t := time.AfterFunc(rt.opts.ManyToOneTimeout, func() { rt.timeoutFire(sc) })
	sc.mu.Lock()
	if sc.started {
		sc.mu.Unlock()
		t.Stop()
		return
	}
	sc.timer = t
	sc.mu.Unlock()
}

// timeoutFire runs on the availability timer's goroutine when the
// timeout expires before the call starts.
func (rt *Runtime) timeoutFire(sc *serverCall) {
	// Register with the shutdown WaitGroup under a read lock: after
	// Close flips rt.closed (under the write lock) the timer fire is a
	// no-op, and because closed is still false while we hold the read
	// lock, Close cannot have reached its bg.Wait yet — the Add is
	// safely ordered before it.
	rt.mu.RLock()
	if rt.closed {
		rt.mu.RUnlock()
		return
	}
	rt.bg.Add(1)
	rt.mu.RUnlock()
	defer rt.bg.Done()

	sc.mu.Lock()
	floor := 1
	if sc.exp.opts.Policy == ArgMajority {
		if sc.expected == 0 {
			sc.mu.Unlock()
			return // membership unresolved: cannot establish a majority
		}
		floor = sc.expected/2 + 1
	}
	force := !sc.started && len(sc.callers) >= floor
	if force {
		sc.markStartedLocked()
	}
	sc.mu.Unlock()
	if force {
		rt.execute(sc)
	}
}

// maybeStart begins execution once the waiting discipline of the
// module's ArgPolicy is satisfied (§4.3.4, §4.3.5). It reports whether
// the call has started (now or earlier), so handleCall can skip arming
// an availability timeout the call no longer needs.
func (rt *Runtime) maybeStart(sc *serverCall) bool {
	sc.mu.Lock()
	var need int
	switch sc.exp.opts.Policy {
	case ArgFirstCome:
		need = 1
	case ArgMajority:
		if sc.expected == 0 {
			sc.mu.Unlock()
			return false // not resolved yet
		}
		need = sc.expected/2 + 1
	default: // ArgWaitAll
		if sc.expected == 0 {
			sc.mu.Unlock()
			return false // not resolved yet
		}
		need = sc.expected
	}
	start := !sc.started && len(sc.callers) >= need
	if start {
		sc.markStartedLocked()
	}
	started := sc.started
	sc.mu.Unlock()
	if start {
		rt.bg.Add(1)
		// Hand the call to a parked execute worker when one is free —
		// reusing its goroutine — and spawn a fresh one otherwise, so
		// blocking module code can never starve unrelated calls. A
		// popped worker is exclusively ours and its channel has one
		// slot, so the send never blocks.
		if w := rt.popIdleExecWorker(); w != nil {
			w.ch <- sc
			return true
		}
		go rt.executeBGWorker(sc)
	}
	return started
}

// execIdleTTL is how long a finished execute worker stays parked for
// another call before retiring.
const execIdleTTL = 100 * time.Millisecond

// execWorker is one parked execute goroutine. Its one-slot channel
// makes the hand-off non-blocking for whoever pops it off the idle
// stack.
type execWorker struct {
	ch chan *serverCall
}

// popIdleExecWorker claims a parked execute worker, or nil. Removal
// from the stack is the ownership transfer: only the claimant may
// send on the worker's channel, and a worker absent from the stack
// knows a hand-off is in flight.
func (rt *Runtime) popIdleExecWorker() *execWorker {
	rt.execMu.Lock()
	defer rt.execMu.Unlock()
	n := len(rt.execIdlers)
	if n == 0 {
		return nil
	}
	w := rt.execIdlers[n-1]
	rt.execIdlers[n-1] = nil
	rt.execIdlers = rt.execIdlers[:n-1]
	return w
}

// removeIdleExecWorker takes w off the idle stack, reporting false if
// a producer already popped it (a call is about to land on w.ch).
func (rt *Runtime) removeIdleExecWorker(w *execWorker) bool {
	rt.execMu.Lock()
	defer rt.execMu.Unlock()
	for i, o := range rt.execIdlers {
		if o == w {
			n := len(rt.execIdlers)
			rt.execIdlers[i] = rt.execIdlers[n-1]
			rt.execIdlers[n-1] = nil
			rt.execIdlers = rt.execIdlers[:n-1]
			return true
		}
	}
	return false
}

// executeBGWorker executes sc, then parks briefly as a reusable
// execute worker. Each executed call carries its own bg token (added
// by maybeStart, released here), so a parked worker never delays
// Close; it exits on rt.done or after execIdleTTL without work. The
// worker pushes itself onto the idle stack before parking — a mutex
// op right after the reply send, so on the serial path it is visibly
// idle long before the next call can arrive.
func (rt *Runtime) executeBGWorker(sc *serverCall) {
	w := &execWorker{ch: make(chan *serverCall, 1)}
	var idle *time.Timer
	for {
		rt.execute(sc)
		rt.execMu.Lock()
		rt.execIdlers = append(rt.execIdlers, w)
		rt.execMu.Unlock()
		rt.bg.Done()
		if idle == nil {
			idle = time.NewTimer(execIdleTTL)
		} else {
			idle.Reset(execIdleTTL)
		}
		select {
		case sc = <-w.ch:
			if !idle.Stop() {
				<-idle.C
			}
		case <-idle.C:
			if rt.removeIdleExecWorker(w) {
				return
			}
			// Popped concurrently: the hand-off is committed, so the
			// call is (or is about to be) in the one-slot channel.
			sc = <-w.ch
		case <-rt.done:
			if !idle.Stop() {
				<-idle.C
			}
			if rt.removeIdleExecWorker(w) {
				return
			}
			// A hand-off is in flight even though we are shutting
			// down; execute it so its bg token is released, then the
			// next pass of the select observes rt.done again.
			sc = <-w.ch
		}
	}
}

// execute performs the requested procedure exactly once and sends a
// return message containing the results to each member of the client
// troupe (§4.3.2). The server adopts the thread ID in the call header
// for the duration of the execution so that further remote calls
// propagate it (§3.4.1).
func (rt *Runtime) execute(sc *serverCall) {
	sc.mu.Lock()
	hdr := sc.hdr
	tid := sc.tid
	exp := sc.exp
	// The slice headers are snapshot under the lock without copying:
	// elements below the snapshot length are never rewritten (late
	// call messages only append), so later growth is invisible here.
	callers := sc.callers
	args := sc.args
	sc.mu.Unlock()

	call := &sc.call
	*call = ServerCall{
		rt:           rt,
		ctx:          rt.ctx,
		thread:       thread.Child(tid, hdr.Path),
		clientTroupe: TroupeID(hdr.ClientTroupe),
		module:       hdr.Module,
		proc:         hdr.Proc,
		callers:      callers,
		args:         args,
	}

	began := time.Now()
	if rt.tr.EnabledFor(trace.KindCallStart) {
		// The at-most-once anchor: exactly one of these per (thread
		// ID, call path, module) per member incarnation (§4.3.4).
		rt.tr.Emit(trace.Event{Kind: trace.KindCallStart,
			ThreadHost: tid.Host, ThreadProc: tid.Proc, Path: hdr.Path,
			Troupe: hdr.DestTroupe, Module: hdr.Module, Proc: hdr.Proc,
			N: len(callers)})
	}

	// Waiting for all messages and checking that they are identical is
	// analogous to providing error detection as well as transparent
	// error correction (§4.3.4): any inconsistency among the client
	// troupe's call messages is detected here.
	if exp.opts.Policy == ArgWaitAll && !exp.opts.AllowDivergentArgs {
		for _, a := range args[1:] {
			if !bytes.Equal(a, args[0]) {
				ret := returnHeader{Status: statusAppError,
					Payload: []byte("core: client troupe members sent different arguments")}
				rt.finishAndReply(sc, ret)
				return
			}
		}
	}

	var ret returnHeader
	res, err := rt.dispatch(exp, call, hdr.Proc, hdr.Args)
	if err != nil {
		ret = returnHeader{Status: statusAppError, Payload: []byte(err.Error())}
	} else {
		ret = returnHeader{Status: statusOK, Payload: res}
	}
	if rt.tr.EnabledFor(trace.KindCallDone) {
		e := trace.Event{Kind: trace.KindCallDone,
			ThreadHost: tid.Host, ThreadProc: tid.Proc, Path: hdr.Path,
			Troupe: hdr.DestTroupe, Module: hdr.Module, Proc: hdr.Proc,
			Dur: time.Since(began)}
		if err != nil {
			e.Err = err.Error()
		}
		rt.tr.Emit(e)
	}
	rt.finishAndReply(sc, ret)
}

// finishAndReply records the buffered return message and sends it to
// every client troupe member whose call message has arrived; later
// arrivals are answered directly from the buffer (§4.3.4).
func (rt *Runtime) finishAndReply(sc *serverCall, ret returnHeader) {
	encoded, merr := wire.Marshal(ret)
	if merr != nil {
		ret = returnHeader{Status: statusAppError, Payload: []byte(merr.Error())}
		encoded, _ = wire.Marshal(ret)
	}

	sc.mu.Lock()
	sc.finished = true
	sc.finishedAt = time.Now()
	sc.result = encoded
	sc.status = ret.Status
	callers := sc.callers // append-only: the header snapshot suffices
	// callNums entries are rewritten in place when a client member
	// retransmits with a fresh call number, so these must be copied.
	var cnArr [4]uint32
	callNums := append(cnArr[:0], sc.callNums...)
	sc.mu.Unlock()

	// One encode serves every client troupe member (and any late
	// arrival, via the buffer stored above).
	for i, addr := range callers {
		rt.sendReturnEncoded(addr, callNums[i], ret.Status, encoded)
	}
}

// dispatch routes reserved procedure numbers to the runtime's own
// implementations and everything else to the module.
func (rt *Runtime) dispatch(exp *export, call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcPing:
		// The null "are you there?" procedure (§6.1).
		return nil, nil
	case ProcGetState:
		// get_state runs as a read-only operation copying the module
		// state to the caller (§6.4.1).
		sp, ok := exp.mod.(StateProvider)
		if !ok {
			return nil, fmt.Errorf("module %d does not support state transfer", exp.num)
		}
		return sp.GetState()
	case ProcSetTroupeID:
		var id uint64
		if err := wire.Unmarshal(args, &id); err != nil {
			return nil, err
		}
		rt.SetTroupeID(exp.num, TroupeID(id))
		return nil, nil
	default:
		return exp.mod.Dispatch(call, proc, args)
	}
}

// sendReturn transmits one return message; delivery reliability is the
// paired message layer's job, so failures here only mean the runtime
// is shutting down.
func (rt *Runtime) sendReturn(to transport.Addr, callNum uint32, ret returnHeader) {
	data, err := wire.Marshal(ret)
	if err != nil {
		return
	}
	rt.sendReturnEncoded(to, callNum, ret.Status, data)
}

// sendReturnEncoded transmits an already-encoded return message, so
// the reply fan-out and duplicate replay reuse one encoding.
func (rt *Runtime) sendReturnEncoded(to transport.Addr, callNum uint32, status uint16, data []byte) {
	if rt.tr.EnabledFor(trace.KindReplySent) {
		e := trace.Event{Kind: trace.KindReplySent,
			Peer: to, CallNum: callNum, N: int(status)}
		rt.tr.Emit(e)
	}
	if _, err := rt.conn.StartSend(to, pairedmsg.Return, callNum, data); err != nil {
		return
	}
}
