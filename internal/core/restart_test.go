package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"circus/internal/trace"
)

// TestCrashRestartRoundTrip: a client machine crashes and restarts; the
// restarted process (a fresh Runtime on the same address, so its call
// numbers reset) must be able to call the same server again. The
// predecessor's completed exchanges are still inside the server's
// CompletedTTL replay-suppression window, so this fails if fresh call
// numbers can collide with completed ones.
func TestCrashRestartRoundTrip(t *testing.T) {
	c, rec := newClusterTraced(t, 31, 1, ExportOptions{})

	// A client on a dedicated host and fixed port, so the restarted
	// process lands on the same address.
	host := c.net.NewHost()
	ep, err := c.net.Listen(host, 4321)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.Resolver = StaticResolver{c.troupe.ID: c.troupe.Members}
	opts.Trace = rec
	client := NewRuntime(ep, opts)

	for i := 0; i < 3; i++ {
		if _, err := client.Call(context.Background(), c.troupe, 1, []byte("before"), CallOptions{}); err != nil {
			t.Fatalf("call %d before crash: %v", i, err)
		}
	}

	// Fail-stop the machine, then bring it back (§2.1.1); the process
	// restarts from scratch: new Runtime, call state gone.
	c.net.Crash(host)
	if err := client.Close(); err != nil {
		t.Fatalf("closing crashed client: %v", err)
	}
	c.net.Restart(host)

	ep2, err := c.net.Listen(host, 4321)
	if err != nil {
		t.Fatalf("rebinding restarted client: %v", err)
	}
	client2 := NewRuntime(ep2, opts)
	t.Cleanup(func() { client2.Close() })

	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		res, err := client2.Call(ctx, c.troupe, 1, []byte("after"), CallOptions{})
		cancel()
		if err != nil {
			t.Fatalf("call %d after restart: %v (fresh call suppressed by predecessor's replay records?)", i, err)
		}
		if string(res) != "after" {
			t.Fatalf("call %d after restart returned %q", i, res)
		}
	}
	// All six executions are visible in the trace before the counters
	// are asserted: three before the crash, three after, and no
	// seventh (a replay would emit an extra exec.start).
	if _, ok := rec.WaitN(2*time.Second, 6, trace.ByKind(trace.KindCallStart)); !ok {
		t.Fatalf("observed %d exec.start events in the trace, want 6",
			rec.Count(trace.ByKind(trace.KindCallStart)))
	}
	if got := c.totalExecs(); got != 6 {
		t.Fatalf("executions = %d, want 6 (3 before + 3 after)", got)
	}
}

// slowModule sleeps before answering.
type slowModule struct{ d time.Duration }

func (m *slowModule) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	time.Sleep(m.d)
	return []byte("done"), nil
}

// TestDefaultCallTimeout: a zero CallOptions.Timeout now falls back to
// the runtime's DefaultCallTimeout instead of meaning "unbounded";
// NoTimeout restores the unbounded behaviour.
func TestDefaultCallTimeout(t *testing.T) {
	c := newCluster(t, 32, 1, ExportOptions{})

	opts := fastOpts()
	opts.Resolver = StaticResolver{c.troupe.ID: c.troupe.Members}
	opts.DefaultCallTimeout = 100 * time.Millisecond
	client := newRuntime(t, c.net, opts)

	slow := Troupe{ID: 0x2222}
	srv := newRuntime(t, c.net, opts)
	addr := srv.Export(&slowModule{d: 400 * time.Millisecond}, ExportOptions{})
	srv.SetTroupeID(addr.Module, slow.ID)
	slow.Members = []ModuleAddr{addr}

	// Zero timeout: bounded by the default.
	start := time.Now()
	_, err := client.Call(context.Background(), slow, 1, nil, CallOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("zero-timeout call: err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 300*time.Millisecond {
		t.Fatalf("default timeout fired after %v, want ~100ms", el)
	}

	// NoTimeout: unbounded, survives past the default.
	res, err := client.Call(context.Background(), slow, 1, nil, CallOptions{Timeout: NoTimeout})
	if err != nil {
		t.Fatalf("NoTimeout call: %v", err)
	}
	if string(res) != "done" {
		t.Fatalf("NoTimeout call returned %q", res)
	}
}
