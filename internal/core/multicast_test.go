package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"circus/internal/netsim"
	"circus/internal/thread"
)

// newMulticastCluster builds a troupe whose client runtime has the
// multicast implementation of §4.3.3 enabled.
func newMulticastCluster(t *testing.T, seed int64, n int) *cluster {
	t.Helper()
	c := &cluster{t: t, net: netsim.New(seed)}
	c.troupe = Troupe{ID: 0x3333}
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver
	opts.Multicast = true
	for i := 0; i < n; i++ {
		rt := newRuntime(t, c.net, opts)
		mod := &echoModule{}
		// ExportAt pins the module number so all members share it —
		// the precondition for a single multicast call message.
		addr := rt.ExportAt(5, mod, ExportOptions{})
		rt.SetTroupeID(addr.Module, c.troupe.ID)
		c.servers = append(c.servers, rt)
		c.mods = append(c.mods, mod)
		c.troupe.Members = append(c.troupe.Members, addr)
	}
	resolver[c.troupe.ID] = c.troupe.Members
	c.client = newRuntime(t, c.net, opts)
	return c
}

func TestMulticastCallExecutesAtAllMembers(t *testing.T) {
	c := newMulticastCluster(t, 51, 3)
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("mc"), CallOptions{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "mc" {
		t.Fatalf("got %q", got)
	}
	for i, m := range c.mods {
		if m.execs.Load() != 1 {
			t.Errorf("member %d executed %d times", i, m.execs.Load())
		}
	}
}

func TestMulticastUsesOneSendOp(t *testing.T) {
	c := newMulticastCluster(t, 52, 3)
	// Warm-up (nothing to warm, but symmetric with the counted call).
	if _, err := c.client.Call(context.Background(), c.troupe, 1, []byte("w"), CallOptions{}); err != nil {
		t.Fatal(err)
	}
	c.net.ResetStats()
	if _, err := c.client.Call(context.Background(), c.troupe, 1, []byte("x"), CallOptions{}); err != nil {
		t.Fatal(err)
	}
	st := c.net.Stats()
	// The call leg is one multicast op carrying 3 datagrams; returns
	// and acks are per-member unicast. Without multicast the same call
	// takes 3 send ops on the call leg — so strictly fewer ops here.
	if st.SendOps >= st.Datagrams {
		t.Fatalf("sendops %d !< datagrams %d; multicast not exercised", st.SendOps, st.Datagrams)
	}
}

func TestMulticastExactlyOnceUnderLoss(t *testing.T) {
	c := newMulticastCluster(t, 53, 3)
	c.net.SetLink(netsim.LinkConfig{LossRate: 0.15, DupRate: 0.1})
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("lossy"), CallOptions{
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "lossy" {
		t.Fatalf("got %q", got)
	}
	if c.totalExecs() != 3 {
		t.Fatalf("execs = %d, want 3 (per-member retransmission must back up the multicast)", c.totalExecs())
	}
}

func TestMulticastMemberCrashMasked(t *testing.T) {
	c := newMulticastCluster(t, 54, 3)
	c.net.Crash(c.troupe.Members[2].Addr.Host)
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("v"), CallOptions{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "v" {
		t.Fatalf("got %q", got)
	}
}

func TestMulticastFallsBackOnMixedModuleNumbers(t *testing.T) {
	// Members at different module numbers cannot share one call
	// message; the runtime must silently use unicast.
	net := netsim.New(55)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver
	opts.Multicast = true

	troupe := Troupe{ID: 0x44}
	var mods []*echoModule
	for i := 0; i < 2; i++ {
		rt := newRuntime(t, net, opts)
		mod := &echoModule{}
		addr := rt.ExportAt(uint16(10+i), mod, ExportOptions{})
		rt.SetTroupeID(addr.Module, troupe.ID)
		troupe.Members = append(troupe.Members, addr)
		mods = append(mods, mod)
	}
	resolver[troupe.ID] = troupe.Members
	client := newRuntime(t, net, opts)

	got, err := client.Call(context.Background(), troupe, 1, []byte("mixed"), CallOptions{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "mixed" {
		t.Fatalf("got %q", got)
	}
	for i, m := range mods {
		if m.execs.Load() != 1 {
			t.Errorf("member %d executed %d times", i, m.execs.Load())
		}
	}
}

func TestMulticastSequentialCallNumbersDistinct(t *testing.T) {
	c := newMulticastCluster(t, 56, 2)
	tc := c.client.NewThread()
	ctx := thread.NewContext(context.Background(), tc)
	for i := 0; i < 5; i++ {
		arg := []byte{byte(i)}
		got, err := c.client.Call(ctx, c.troupe, 1, arg, CallOptions{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(got, arg) {
			t.Fatalf("call %d: got %v", i, got)
		}
	}
	if c.totalExecs() != 10 {
		t.Fatalf("execs = %d, want 10", c.totalExecs())
	}
}

// TestArgMajorityBlocksMinority: §4.3.5 — a server member that has
// received only a minority of the expected call messages must not
// proceed, even past the availability timeout.
func TestArgMajorityBlocksMinority(t *testing.T) {
	net := netsim.New(57)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	saddr := server.Export(mod, ExportOptions{Policy: ArgMajority})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	// A client troupe of 3, of which only one member ever calls.
	clientTroupeID := TroupeID(0xc200)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts)
	c3 := newRuntime(t, net, opts)
	resolver[clientTroupeID] = []ModuleAddr{
		{Addr: c1.Addr()}, {Addr: c2.Addr()}, {Addr: c3.Addr()},
	}

	tc := thread.Child(thread.ID{Host: 91, Proc: 1}, []uint32{1})
	done := make(chan error, 1)
	go func() {
		_, err := c1.Call(context.Background(), serverTroupe, 1, []byte("solo"), CallOptions{
			thread:       tc,
			clientTroupe: clientTroupeID,
			Timeout:      800 * time.Millisecond,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("minority call executed under ArgMajority")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("caller did not time out")
	}
	if mod.execs.Load() != 0 {
		t.Fatalf("server executed %d times with a minority of call messages", mod.execs.Load())
	}
}

// TestArgMajorityProceedsWithMajority: two of three client members
// suffice.
func TestArgMajorityProceedsWithMajority(t *testing.T) {
	net := netsim.New(58)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	saddr := server.Export(mod, ExportOptions{Policy: ArgMajority})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	clientTroupeID := TroupeID(0xc201)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts)
	c3 := newRuntime(t, net, opts) // never calls
	resolver[clientTroupeID] = []ModuleAddr{
		{Addr: c1.Addr()}, {Addr: c2.Addr()}, {Addr: c3.Addr()},
	}

	tid := thread.ID{Host: 92, Proc: 1}
	done := make(chan error, 2)
	for _, rt := range []*Runtime{c1, c2} {
		rt := rt
		go func() {
			tc := thread.Child(tid, []uint32{2})
			_, err := rt.Call(context.Background(), serverTroupe, 1, []byte("duo"), CallOptions{
				thread:       tc,
				clientTroupe: clientTroupeID,
			})
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("majority call failed: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("majority call stalled")
		}
	}
	if mod.execs.Load() != 1 {
		t.Fatalf("execs = %d, want 1", mod.execs.Load())
	}
}

// TestArgWaitAllDetectsDivergentArgs: the §4.3.4 error detection on
// the server side (without AllowDivergentArgs).
func TestArgWaitAllDetectsDivergentArgs(t *testing.T) {
	net := netsim.New(59)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	saddr := server.Export(mod, ExportOptions{Policy: ArgWaitAll})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	clientTroupeID := TroupeID(0xc202)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts)
	resolver[clientTroupeID] = []ModuleAddr{{Addr: c1.Addr()}, {Addr: c2.Addr()}}

	tid := thread.ID{Host: 93, Proc: 1}
	done := make(chan error, 2)
	for i, rt := range []*Runtime{c1, c2} {
		i, rt := i, rt
		go func() {
			tc := thread.Child(tid, []uint32{3})
			_, err := rt.Call(context.Background(), serverTroupe, 1, []byte{byte(i)}, CallOptions{
				thread:       tc,
				clientTroupe: clientTroupeID,
			})
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		err := <-done
		var app *AppError
		if !errors.As(err, &app) {
			t.Fatalf("err = %v, want AppError about divergent arguments", err)
		}
	}
	if mod.execs.Load() != 0 {
		t.Fatalf("module executed despite divergent client arguments")
	}
}
