package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/collate"
	"circus/internal/pairedmsg"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/transport"
	"circus/internal/wire"
)

// NoTimeout, as a CallOptions.Timeout or Options.DefaultCallTimeout,
// selects an unbounded call whose termination relies entirely on
// crash detection (§4.2.3) — the historical meaning of a zero
// timeout, which now falls back to the runtime's default bound.
const NoTimeout time.Duration = -1

// CallOptions tunes one replicated procedure call.
type CallOptions struct {
	// Collator constructs the collator applied to the set of return
	// messages; nil means the unanimous default of Circus (§4.3.4).
	Collator func(n int) collate.Collator
	// Timeout bounds the whole call. Zero applies the runtime's
	// DefaultCallTimeout; NoTimeout removes the bound, relying on
	// crash detection (§4.2.3) for termination.
	Timeout time.Duration
	// AsTroupe identifies the calling module's own troupe when the
	// call is not made from inside a ServerCall (whose nested calls
	// attach it automatically). Servers use it to collate the call
	// messages of all members of that troupe (§4.3.2).
	AsTroupe TroupeID
	// Thread supplies the thread context explicitly when the call is
	// not made from inside a ServerCall and the context.Context does
	// not carry one. Replicated callers must supply equal thread IDs
	// and call paths for their calls to collate as one (§4.3.2).
	Thread *thread.Context

	// clientTroupe and thread are filled by ServerCall.Call when a
	// troupe member makes a nested call on behalf of a propagated
	// thread.
	clientTroupe TroupeID
	thread       *thread.Context
}

// CallEach performs the one-to-many half of a replicated procedure
// call (§4.3.1): the same call message goes to every member of the
// server troupe, and the returned channel yields one item per member —
// its return message, or the error that befell it. The channel is the
// "generator of messages from a troupe" of Figure 7.11, the basis of
// explicit replication (§7.4).
//
// Regardless of how many items the caller consumes, every server
// troupe member receives the call: exactly-once execution at all
// members does not depend on the client's collation policy.
func (rt *Runtime) CallEach(ctx context.Context, dest Troupe, proc uint16, args []byte, opts CallOptions) <-chan collate.Item {
	items := make(chan collate.Item, len(dest.Members))
	tc := opts.thread
	if tc == nil {
		tc = opts.Thread
	}
	if tc == nil {
		tc = thread.FromContext(ctx)
	}
	if tc == nil {
		tc = rt.NewThread()
	}
	if opts.clientTroupe == 0 {
		opts.clientTroupe = opts.AsTroupe
	}
	path := tc.NextCallPath()
	if rt.tr.EnabledFor(trace.KindCallIssued) {
		rt.tr.Emit(trace.Event{Kind: trace.KindCallIssued,
			Troupe: uint64(dest.ID), Proc: proc,
			ThreadHost: tc.ID().Host, ThreadProc: tc.ID().Proc, Path: path,
			N: len(dest.Members)})
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = rt.opts.DefaultCallTimeout
	}
	callCtx := ctx
	var cancel context.CancelFunc
	if timeout > 0 {
		callCtx, cancel = context.WithTimeout(ctx, timeout)
	}
	if len(dest.Members) == 0 {
		if cancel != nil {
			cancel()
		}
		return items
	}
	f := newFanout(cancel, len(dest.Members))
	if !rt.multicastEach(callCtx, dest, tc.ID(), path, proc, args, opts, items, f) {
		// Unicast fan-out. The call message is identical for every
		// member that shares a module number — the common case, since
		// troupe members are replicas of one module — so marshal the
		// header once and hand all members the same bytes.
		hdr := callHeader{
			ThreadHost:   tc.ID().Host,
			ThreadProc:   tc.ID().Proc,
			Path:         path,
			ClientTroupe: uint64(opts.clientTroupe),
			DestTroupe:   uint64(dest.ID),
			Proc:         proc,
			Args:         args,
		}
		var shared []byte
		mod := dest.Members[0].Module
		same := true
		for _, m := range dest.Members[1:] {
			if m.Module != mod {
				same = false
				break
			}
		}
		if same {
			hdr.Module = mod
			var err error
			if shared, err = wire.Marshal(hdr); err != nil {
				for i := range dest.Members {
					items <- collate.Item{Member: i, Err: err}
					f.done()
				}
				return items
			}
		}
		for i, m := range dest.Members {
			data := shared
			if data == nil {
				hdr.Module = m.Module
				var err error
				if data, err = wire.Marshal(hdr); err != nil {
					items <- collate.Item{Member: i, Err: err}
					f.done()
					continue
				}
			}
			go rt.callMemberF(callCtx, f, i, m, data, items)
		}
	}
	return items
}

// fanout tracks one replicated call's outstanding member legs: the
// last leg to finish cancels the call context (releasing its timer)
// and recycles the struct. It replaces a WaitGroup plus a dedicated
// wait-then-cancel goroutine on the per-call hot path.
type fanout struct {
	remaining atomic.Int32
	cancel    context.CancelFunc
}

var fanoutPool = sync.Pool{New: func() any { return new(fanout) }}

func newFanout(cancel context.CancelFunc, n int) *fanout {
	f := fanoutPool.Get().(*fanout)
	f.cancel = cancel
	f.remaining.Store(int32(n))
	return f
}

// done marks one member leg finished.
func (f *fanout) done() {
	if f.remaining.Add(-1) == 0 {
		if f.cancel != nil {
			f.cancel()
			f.cancel = nil
		}
		fanoutPool.Put(f)
	}
}

// callMemberF is the goroutine body of one unicast member leg.
func (rt *Runtime) callMemberF(ctx context.Context, f *fanout, idx int, m ModuleAddr, data []byte, items chan<- collate.Item) {
	defer f.done()
	rt.callMember(ctx, idx, m, data, items)
}

// awaitReplyF is the goroutine body of one multicast member leg.
func (rt *Runtime) awaitReplyF(ctx context.Context, f *fanout, idx int, m ModuleAddr, callNum uint32,
	t pairedmsg.Transfer, ch chan returnHeader, items chan<- collate.Item) {
	defer f.done()
	rt.awaitReply(ctx, idx, m, callNum, t, ch, items)
}

// multicastEach attempts the multicast implementation of the
// one-to-many call (§4.3.3): when the runtime has multicast enabled,
// the endpoint supports it, and every member shares a module number
// (so the call message is identical for all), the call message is
// transmitted to the whole troupe in one network operation — m+n
// messages instead of m·n. It reports whether it took responsibility
// for the call.
func (rt *Runtime) multicastEach(ctx context.Context, dest Troupe, tid thread.ID, path []uint32,
	proc uint16, args []byte, opts CallOptions, items chan<- collate.Item, f *fanout) bool {

	if !rt.opts.Multicast || len(dest.Members) < 2 {
		return false
	}
	mod := dest.Members[0].Module
	for _, m := range dest.Members[1:] {
		if m.Module != mod {
			return false
		}
	}

	hdr := callHeader{
		ThreadHost:   tid.Host,
		ThreadProc:   tid.Proc,
		Path:         path,
		ClientTroupe: uint64(opts.clientTroupe),
		DestTroupe:   uint64(dest.ID),
		Module:       mod,
		Proc:         proc,
		Args:         args,
	}
	data, err := wire.Marshal(hdr)
	if err != nil {
		return false
	}

	group := make([]transport.Addr, len(dest.Members))
	for i, m := range dest.Members {
		group[i] = m.Addr
	}
	// Two-phase send: BeginCallMulticast allocates the call number and
	// registers the transfers without transmitting, so the return
	// routing below is installed before any call message is on the
	// wire — a reply can never race its own pending entry.
	transfers, callNum, err := rt.conn.BeginCallMulticast(group, data)
	if err != nil {
		return false // no multicast support (or closing): fall back to unicast
	}
	chans := make([]chan returnHeader, len(dest.Members))
	rt.pendMu.Lock()
	for i, m := range dest.Members {
		ch := retChanPool.Get().(chan returnHeader)
		chans[i] = ch
		rt.pending[retKey{peer: m.Addr, callNum: callNum}] = ch
	}
	rt.pendMu.Unlock()
	rt.conn.TransmitMulticast(group, transfers)

	for i, m := range dest.Members {
		go rt.awaitReplyF(ctx, f, i, m, callNum, transfers[i], chans[i], items)
	}
	return true
}

// retChanPool recycles the single-slot reply channels that route
// return messages to their awaiting member leg. A channel may be
// recycled only when no sender can still hold it: either the awaiter
// received the reply (handleReturn removes the pending entry before
// sending, so receipt proves the entry is gone), or releasePending
// itself removed the entry before any sender saw it.
var retChanPool = sync.Pool{New: func() any { return make(chan returnHeader, 1) }}

// releasePending retires a reply route that will not be awaited
// further, recycling its channel once no in-flight sender can touch
// it. If handleReturn already claimed the entry its send is
// unconditional and imminent — drain it, then recycle.
func (rt *Runtime) releasePending(k retKey, ch chan returnHeader) {
	rt.pendMu.Lock()
	cur, ok := rt.pending[k]
	if ok && cur == ch {
		delete(rt.pending, k)
		rt.pendMu.Unlock()
		retChanPool.Put(ch)
		return
	}
	rt.pendMu.Unlock()
	<-ch
	retChanPool.Put(ch)
}

// traceReply records one member's contribution to a replicated call
// as it is handed to the collator.
func (rt *Runtime) traceReply(m ModuleAddr, it collate.Item) {
	if !rt.tr.EnabledFor(trace.KindMemberReply) {
		return
	}
	e := trace.Event{Kind: trace.KindMemberReply,
		Peer: m.Addr, Module: m.Module, Member: it.Member}
	if it.Err != nil {
		e.Err = it.Err.Error()
	}
	rt.tr.Emit(e)
}

// awaitReply waits for one member's return message after its call
// transfer is in flight.
func (rt *Runtime) awaitReply(ctx context.Context, idx int, m ModuleAddr, callNum uint32,
	t pairedmsg.Transfer, ch chan returnHeader, items chan<- collate.Item) {

	k := retKey{peer: m.Addr, callNum: callNum}

	// Phase 1: until the call message is acknowledged (the return may
	// arrive first — it implicitly acknowledges the call, §4.2.2).
	select {
	case ret := <-ch:
		retChanPool.Put(ch) // receipt proves no sender holds ch
		rt.pushItem(m, items, decodeReturn(idx, m, ret))
		return
	case <-t.Done():
		if err := t.Err(); err != nil {
			rt.releasePending(k, ch)
			rt.pushItem(m, items, collate.Item{Member: idx, Err: memberErr(err)})
			return
		}
	case <-ctx.Done():
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ctx.Err()})
		return
	case <-rt.done:
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ErrClosed})
		return
	}

	// Phase 2: the member is computing; probe for liveness (§4.2.3).
	w := rt.conn.WatchPeer(m.Addr, callNum)
	defer w.Stop()
	select {
	case ret := <-ch:
		retChanPool.Put(ch)
		rt.pushItem(m, items, decodeReturn(idx, m, ret))
	case <-w.Down():
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ErrMemberDown})
	case <-ctx.Done():
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ctx.Err()})
	case <-rt.done:
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ErrClosed})
	}
}

// pushItem records one member's contribution and hands it to the
// collator's channel — the body of the former per-leg push closures.
func (rt *Runtime) pushItem(m ModuleAddr, items chan<- collate.Item, it collate.Item) {
	rt.traceReply(m, it)
	items <- it
}

// Call performs a replicated procedure call and collates the results.
// With the default unanimous collator it waits for all members,
// demands identical return messages, and so detects any inconsistency
// among the troupe (§4.3.4); other collators trade that error
// detection for latency.
func (rt *Runtime) Call(ctx context.Context, dest Troupe, proc uint16, args []byte, opts CallOptions) ([]byte, error) {
	n := dest.Degree()
	if n == 0 {
		return nil, ErrTroupeDown
	}
	mk := opts.Collator
	if mk == nil {
		mk = collate.Unanimous
	}
	c := mk(n)
	started := time.Now()
	items := rt.CallEach(ctx, dest, proc, args, opts)

	var gotArr [8]collate.Item // typical troupe degrees, no heap growth
	got := gotArr[:0]
	for i := 0; i < n; i++ {
		it, ok := <-items
		if !ok {
			break
		}
		got = append(got, it)
		if c.Add(it) {
			break
		}
	}
	res, err := c.Result()
	if err != nil && errors.Is(err, collate.ErrAllFailed) {
		err = summarizeFailure(got)
	}
	if rt.tr.EnabledFor(trace.KindCollateDone) {
		e := trace.Event{Kind: trace.KindCollateDone,
			Troupe: uint64(dest.ID), Proc: proc,
			N: len(got), Dur: time.Since(started)}
		if err != nil {
			e.Err = err.Error()
		}
		rt.tr.Emit(e)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CallMember performs a one-member procedure call: the call message
// goes to a single troupe member and that member's lone reply is
// returned directly, bypassing collation entirely — no collator, no
// fan-out goroutine, no reply channel beyond the one leg. It is the
// client half of a spread read (mesh routing a read to one replica):
// the member still deduplicates by thread ID and call path, so
// exactly-once execution holds per attempt, but none of the error
// detection of the replicated call applies — the caller has chosen to
// trust one member, and must bring its own staleness defense (the
// mesh layer's position token).
func (rt *Runtime) CallMember(ctx context.Context, dest Troupe, member int, proc uint16, args []byte, opts CallOptions) ([]byte, error) {
	if member < 0 || member >= len(dest.Members) {
		return nil, errors.New("core: member index out of range")
	}
	m := dest.Members[member]
	tc := opts.thread
	if tc == nil {
		tc = opts.Thread
	}
	if tc == nil {
		tc = thread.FromContext(ctx)
	}
	if tc == nil {
		tc = rt.NewThread()
	}
	if opts.clientTroupe == 0 {
		opts.clientTroupe = opts.AsTroupe
	}
	path := tc.NextCallPath()
	if rt.tr.EnabledFor(trace.KindCallIssued) {
		rt.tr.Emit(trace.Event{Kind: trace.KindCallIssued,
			Troupe: uint64(dest.ID), Proc: proc,
			ThreadHost: tc.ID().Host, ThreadProc: tc.ID().Proc, Path: path,
			N: 1})
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = rt.opts.DefaultCallTimeout
	}
	callCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		callCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	hdr := callHeader{
		ThreadHost:   tc.ID().Host,
		ThreadProc:   tc.ID().Proc,
		Path:         path,
		ClientTroupe: uint64(opts.clientTroupe),
		DestTroupe:   uint64(dest.ID), // incarnation check still applies (§6.2)
		Module:       m.Module,
		Proc:         proc,
		Args:         args,
	}
	data, err := wire.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	// The one leg runs synchronously on the caller's goroutine; the
	// buffered channel means callMember's push never blocks.
	items := make(chan collate.Item, 1)
	rt.callMember(callCtx, member, m, data, items)
	it := <-items
	if it.Err != nil {
		return nil, it.Err
	}
	return it.Data, nil
}

// summarizeFailure turns a set of all-failed items into the most
// actionable error: a stale binding beats a crash report, because the
// client can recover from it by rebinding (§6.1); a unanimous
// application error is the procedure's own verdict; otherwise the
// troupe is down.
func summarizeFailure(items []collate.Item) error {
	var stale *StaleBindingError
	var app *AppError
	appUnanimous := true
	allDown := len(items) > 0
	for _, it := range items {
		var s *StaleBindingError
		if errors.As(it.Err, &s) {
			stale = s
		}
		var a *AppError
		if errors.As(it.Err, &a) {
			if app != nil && app.Msg != a.Msg {
				appUnanimous = false
			}
			app = a
		} else {
			appUnanimous = false
		}
		if !errors.Is(it.Err, ErrMemberDown) {
			allDown = false
		}
	}
	switch {
	case app != nil && appUnanimous:
		return app
	case stale != nil:
		return stale
	case allDown:
		return ErrTroupeDown
	case len(items) > 0:
		return items[0].Err
	default:
		return ErrTroupeDown
	}
}

// callMember sends one pre-marshaled call message and awaits the
// return, the client's half of one leg of Figure 4.3. The header is
// encoded by CallEach — once for the whole fan-out when the members
// share a module number.
func (rt *Runtime) callMember(ctx context.Context, idx int, m ModuleAddr, data []byte, items chan<- collate.Item) {
	// Two-phase send: BeginCall allocates the member's call number and
	// registers the transfer atomically (so concurrent callers' trace
	// events stay in call-number order), the pending entry is installed
	// under the allocated number, and only then does the call message
	// go on the wire — the return can never beat its routing. A closed
	// runtime surfaces as ErrClosed from BeginCall.
	t, err := rt.conn.BeginCall(m.Addr, data)
	if err != nil {
		rt.pushItem(m, items, collate.Item{Member: idx, Err: memberErr(err)})
		return
	}
	callNum := t.CallNum()
	k := retKey{peer: m.Addr, callNum: callNum}
	ch := retChanPool.Get().(chan returnHeader)
	rt.pendMu.Lock()
	rt.pending[k] = ch
	rt.pendMu.Unlock()

	rt.conn.Transmit(t)
	if err := rt.conn.Await(ctx, t); err != nil {
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: memberErr(err)})
		return
	}

	// The call message is acknowledged; the member may now compute for
	// an arbitrarily long time, so probe it for liveness (§4.2.3).
	w := rt.conn.WatchPeer(m.Addr, callNum)
	defer w.Stop()

	select {
	case ret := <-ch:
		retChanPool.Put(ch) // receipt proves no sender holds ch
		rt.pushItem(m, items, decodeReturn(idx, m, ret))
	case <-w.Down():
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ErrMemberDown})
	case <-ctx.Done():
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ctx.Err()})
	case <-rt.done:
		rt.releasePending(k, ch)
		rt.pushItem(m, items, collate.Item{Member: idx, Err: ErrClosed})
	}
}

func memberErr(err error) error {
	if errors.Is(err, pairedmsg.ErrPeerDown) {
		return ErrMemberDown
	}
	if errors.Is(err, pairedmsg.ErrClosed) {
		return ErrClosed
	}
	return err
}

func decodeReturn(idx int, m ModuleAddr, ret returnHeader) collate.Item {
	switch ret.Status {
	case statusOK:
		return collate.Item{Member: idx, Data: ret.Payload}
	case statusAppError:
		return collate.Item{Member: idx, Err: &AppError{Msg: string(ret.Payload)}}
	case statusBadTroupe:
		return collate.Item{Member: idx, Err: &StaleBindingError{Member: m}}
	case statusNoModule:
		return collate.Item{Member: idx, Err: ErrNoSuchModule}
	default:
		return collate.Item{Member: idx, Err: errors.New("core: malformed call rejected by server")}
	}
}
