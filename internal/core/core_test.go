package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"circus/internal/collate"
	"circus/internal/netsim"
	"circus/internal/pairedmsg"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/wire"
)

func fastMsgOpts() pairedmsg.Options {
	return pairedmsg.Options{
		RetransmitInterval: 10 * time.Millisecond,
		MaxRetries:         15,
		ProbeInterval:      15 * time.Millisecond,
		ProbeMissLimit:     4,
	}
}

func fastOpts() Options {
	return Options{
		Message:          fastMsgOpts(),
		ManyToOneTimeout: 300 * time.Millisecond,
		CallRetention:    5 * time.Second,
	}
}

// echoModule counts executions and echoes its argument.
type echoModule struct {
	execs atomic.Int64
	tag   string // appended to replies; lets tests fake divergent replicas
}

func (m *echoModule) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case 1: // echo
		m.execs.Add(1)
		return append(append([]byte(nil), args...), m.tag...), nil
	case 2: // fail
		m.execs.Add(1)
		return nil, errors.New("deliberate failure")
	default:
		return nil, ErrNoSuchProc
	}
}

type cluster struct {
	t       *testing.T
	net     *netsim.Network
	servers []*Runtime
	mods    []*echoModule
	troupe  Troupe
	client  *Runtime
}

func newRuntime(t *testing.T, n *netsim.Network, opts Options) *Runtime {
	t.Helper()
	ep, err := n.Listen(n.NewHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(ep, opts)
	t.Cleanup(func() { rt.Close() })
	return rt
}

// newCluster builds a server troupe of degree n plus one unreplicated
// client, with troupe IDs assigned and a static resolver everywhere.
func newCluster(t *testing.T, seed int64, n int, exportOpts ExportOptions) *cluster {
	t.Helper()
	c, _ := newClusterTraced(t, seed, n, exportOpts)
	return c
}

// newClusterTraced is newCluster with a shared in-memory trace
// recorder attached to every runtime, so tests can wait for specific
// protocol events instead of polling or sleeping.
func newClusterTraced(t *testing.T, seed int64, n int, exportOpts ExportOptions) (*cluster, *trace.Recorder) {
	t.Helper()
	return newClusterWith(t, seed, n, exportOpts, nil)
}

// newClusterWith is newClusterTraced with a hook to mutate the runtime
// options (dispatch worker count, message-layer tuning) before the
// runtimes are built.
func newClusterWith(t *testing.T, seed int64, n int, exportOpts ExportOptions, mutate func(*Options)) (*cluster, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder()
	c := &cluster{t: t, net: netsim.New(seed)}
	c.troupe = Troupe{ID: 0x1111}
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver
	opts.Trace = rec
	if mutate != nil {
		mutate(&opts)
	}
	for i := 0; i < n; i++ {
		rt := newRuntime(t, c.net, opts)
		mod := &echoModule{}
		addr := rt.Export(mod, exportOpts)
		rt.SetTroupeID(addr.Module, c.troupe.ID)
		c.servers = append(c.servers, rt)
		c.mods = append(c.mods, mod)
		c.troupe.Members = append(c.troupe.Members, addr)
	}
	resolver[c.troupe.ID] = c.troupe.Members
	c.client = newRuntime(t, c.net, opts)
	return c, rec
}

func (c *cluster) totalExecs() int64 {
	var total int64
	for _, m := range c.mods {
		total += m.execs.Load()
	}
	return total
}

func TestUnreplicatedCall(t *testing.T) {
	c := newCluster(t, 1, 1, ExportOptions{})
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("hi"), CallOptions{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "hi" {
		t.Fatalf("got %q", got)
	}
	if c.totalExecs() != 1 {
		t.Fatalf("executions = %d, want 1", c.totalExecs())
	}
}

func TestOneToManyExecutesAtAllMembers(t *testing.T) {
	c := newCluster(t, 2, 3, ExportOptions{})
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("v"), CallOptions{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "v" {
		t.Fatalf("got %q", got)
	}
	for i, m := range c.mods {
		if m.execs.Load() != 1 {
			t.Errorf("member %d executed %d times, want exactly once", i, m.execs.Load())
		}
	}
}

func TestSequentialCallsExactlyOnce(t *testing.T) {
	c := newCluster(t, 3, 3, ExportOptions{})
	tc := c.client.NewThread()
	ctx := thread.NewContext(context.Background(), tc)
	for i := 0; i < 5; i++ {
		arg := []byte{byte(i)}
		got, err := c.client.Call(ctx, c.troupe, 1, arg, CallOptions{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(got, arg) {
			t.Fatalf("call %d echoed %v", i, got)
		}
	}
	if c.totalExecs() != 15 {
		t.Fatalf("total executions = %d, want 15", c.totalExecs())
	}
}

func TestExactlyOnceUnderLossAndDuplication(t *testing.T) {
	c := newCluster(t, 4, 3, ExportOptions{})
	c.net.SetLink(netsim.LinkConfig{LossRate: 0.15, DupRate: 0.15})
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("x"), CallOptions{
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "x" {
		t.Fatalf("got %q", got)
	}
	if c.totalExecs() != 3 {
		t.Fatalf("executions = %d, want 3 despite loss and duplication", c.totalExecs())
	}
}

func TestUnanimousDetectsDivergedReplica(t *testing.T) {
	c := newCluster(t, 5, 3, ExportOptions{})
	c.mods[1].tag = "DIVERGED" // simulate a nondeterministic member
	_, err := c.client.Call(context.Background(), c.troupe, 1, []byte("v"), CallOptions{})
	if !errors.Is(err, collate.ErrDisagreement) {
		t.Fatalf("err = %v, want ErrDisagreement", err)
	}
}

func TestMajorityMasksDivergedReplica(t *testing.T) {
	c := newCluster(t, 6, 3, ExportOptions{})
	c.mods[2].tag = "DIVERGED"
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("v"), CallOptions{
		Collator: collate.Majority,
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "v" {
		t.Fatalf("majority = %q, want %q", got, "v")
	}
}

func TestFirstComeCollator(t *testing.T) {
	c := newCluster(t, 7, 3, ExportOptions{})
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("quick"), CallOptions{
		Collator: collate.FirstCome,
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "quick" {
		t.Fatalf("got %q", got)
	}
	// Exactly-once at all members must hold even though the client
	// proceeded after the first reply.
	deadline := time.Now().Add(2 * time.Second)
	for c.totalExecs() != 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.totalExecs() != 3 {
		t.Fatalf("executions = %d, want 3", c.totalExecs())
	}
}

func TestMemberCrashMasked(t *testing.T) {
	c := newCluster(t, 8, 3, ExportOptions{})
	c.net.Crash(c.troupe.Members[1].Addr.Host)
	got, err := c.client.Call(context.Background(), c.troupe, 1, []byte("v"), CallOptions{})
	if err != nil {
		t.Fatalf("Call with one crashed member: %v", err)
	}
	if string(got) != "v" {
		t.Fatalf("got %q", got)
	}
}

func TestTotalFailure(t *testing.T) {
	c := newCluster(t, 9, 2, ExportOptions{})
	for _, m := range c.troupe.Members {
		c.net.Crash(m.Addr.Host)
	}
	_, err := c.client.Call(context.Background(), c.troupe, 1, []byte("v"), CallOptions{})
	if !errors.Is(err, ErrTroupeDown) {
		t.Fatalf("err = %v, want ErrTroupeDown", err)
	}
}

func TestEmptyTroupe(t *testing.T) {
	c := newCluster(t, 10, 1, ExportOptions{})
	_, err := c.client.Call(context.Background(), Troupe{}, 1, nil, CallOptions{})
	if !errors.Is(err, ErrTroupeDown) {
		t.Fatalf("err = %v, want ErrTroupeDown", err)
	}
}

func TestAppErrorPropagates(t *testing.T) {
	c := newCluster(t, 11, 3, ExportOptions{})
	_, err := c.client.Call(context.Background(), c.troupe, 2, nil, CallOptions{})
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("err = %v, want AppError", err)
	}
	if app.Msg != "deliberate failure" {
		t.Fatalf("msg = %q", app.Msg)
	}
}

func TestStaleBindingRejected(t *testing.T) {
	c := newCluster(t, 12, 2, ExportOptions{})
	stale := Troupe{ID: 0x9999, Members: c.troupe.Members}
	_, err := c.client.Call(context.Background(), stale, 1, []byte("v"), CallOptions{})
	var sbe *StaleBindingError
	if !errors.As(err, &sbe) {
		t.Fatalf("err = %v, want StaleBindingError", err)
	}
	if c.totalExecs() != 0 {
		t.Fatalf("stale call executed %d times", c.totalExecs())
	}
}

func TestNoSuchModule(t *testing.T) {
	c := newCluster(t, 13, 1, ExportOptions{})
	bad := c.troupe
	bad.ID = 0
	bad.Members = []ModuleAddr{{Addr: c.troupe.Members[0].Addr, Module: 77}}
	_, err := c.client.Call(context.Background(), bad, 1, nil, CallOptions{})
	if !errors.Is(err, ErrNoSuchModule) {
		t.Fatalf("err = %v, want ErrNoSuchModule", err)
	}
}

func TestNoSuchProc(t *testing.T) {
	c := newCluster(t, 14, 1, ExportOptions{})
	_, err := c.client.Call(context.Background(), c.troupe, 99, nil, CallOptions{})
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("err = %v, want AppError wrapping ErrNoSuchProc", err)
	}
}

func TestPingReservedProc(t *testing.T) {
	c := newCluster(t, 15, 2, ExportOptions{})
	if _, err := c.client.Call(context.Background(), c.troupe, ProcPing, nil, CallOptions{}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if c.totalExecs() != 0 {
		t.Fatal("ping reached the module")
	}
}

func TestSetTroupeIDReservedProc(t *testing.T) {
	c := newCluster(t, 16, 2, ExportOptions{})
	arg, _ := wire.Marshal(uint64(0x2222))
	if _, err := c.client.Call(context.Background(), c.troupe, ProcSetTroupeID, arg, CallOptions{}); err != nil {
		t.Fatalf("set_troupe_id: %v", err)
	}
	for i, rt := range c.servers {
		if got := rt.TroupeIDOf(c.troupe.Members[i].Module); got != 0x2222 {
			t.Errorf("member %d troupe ID = %v, want 0x2222", i, got)
		}
	}
	// Old ID now stale.
	_, err := c.client.Call(context.Background(), c.troupe, 1, nil, CallOptions{})
	var sbe *StaleBindingError
	if !errors.As(err, &sbe) {
		t.Fatalf("err = %v, want StaleBindingError after ID change", err)
	}
}

// stateModule supports state transfer.
type stateModule struct {
	state atomic.Int64
}

func (m *stateModule) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case 1: // add
		var delta int64
		if err := wire.Unmarshal(args, &delta); err != nil {
			return nil, err
		}
		return wire.Marshal(m.state.Add(delta))
	default:
		return nil, ErrNoSuchProc
	}
}

func (m *stateModule) GetState() ([]byte, error) { return wire.Marshal(m.state.Load()) }
func (m *stateModule) SetState(b []byte) error {
	var v int64
	if err := wire.Unmarshal(b, &v); err != nil {
		return err
	}
	m.state.Store(v)
	return nil
}

func TestGetStateReservedProc(t *testing.T) {
	net := netsim.New(17)
	opts := fastOpts()
	server := newRuntime(t, net, opts)
	mod := &stateModule{}
	mod.state.Store(42)
	addr := server.Export(mod, ExportOptions{})
	client := newRuntime(t, net, opts)
	tr := Troupe{Members: []ModuleAddr{addr}}
	got, err := client.Call(context.Background(), tr, ProcGetState, nil, CallOptions{})
	if err != nil {
		t.Fatalf("get_state: %v", err)
	}
	var v int64
	if err := wire.Unmarshal(got, &v); err != nil || v != 42 {
		t.Fatalf("state = %d, %v", v, err)
	}
}

func TestGetStateUnsupported(t *testing.T) {
	c := newCluster(t, 18, 1, ExportOptions{})
	_, err := c.client.Call(context.Background(), c.troupe, ProcGetState, nil, CallOptions{})
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("err = %v, want AppError", err)
	}
}

// TestManyToOneCollation is the heart of §4.3.2: two client troupe
// members make the same logical call; the server must execute exactly
// once and return the result to both.
func TestManyToOneCollation(t *testing.T) {
	net := netsim.New(19)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	saddr := server.Export(mod, ExportOptions{})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	// Client troupe of two members sharing one logical thread.
	clientTroupeID := TroupeID(0xc11e)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts)
	resolver[clientTroupeID] = []ModuleAddr{
		{Addr: c1.Addr(), Module: 0},
		{Addr: c2.Addr(), Module: 0},
	}

	tid := thread.ID{Host: 77, Proc: 1}
	run := func(rt *Runtime) ([]byte, error) {
		tc := thread.Child(tid, []uint32{5}) // identical logical frame
		return rt.Call(context.Background(), serverTroupe, 1, []byte("from-troupe"), CallOptions{
			thread:       tc,
			clientTroupe: clientTroupeID,
		})
	}

	type res struct {
		data []byte
		err  error
	}
	r1 := make(chan res, 1)
	r2 := make(chan res, 1)
	go func() { d, e := run(c1); r1 <- res{d, e} }()
	go func() { d, e := run(c2); r2 <- res{d, e} }()

	for i, ch := range []chan res{r1, r2} {
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("client %d: %v", i+1, r.err)
			}
			if string(r.data) != "from-troupe" {
				t.Fatalf("client %d got %q", i+1, r.data)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("client %d timed out", i+1)
		}
	}
	if mod.execs.Load() != 1 {
		t.Fatalf("server executed %d times, want exactly once", mod.execs.Load())
	}
}

// TestManyToOneSlowMemberGetsBufferedReply: the second client member
// sends its call message long after execution; it must receive the
// buffered return without re-execution (§4.3.4).
func TestManyToOneSlowMemberGetsBufferedReply(t *testing.T) {
	net := netsim.New(20)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	saddr := server.Export(mod, ExportOptions{Policy: ArgFirstCome})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	clientTroupeID := TroupeID(0xc11f)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts)
	resolver[clientTroupeID] = []ModuleAddr{
		{Addr: c1.Addr(), Module: 0},
		{Addr: c2.Addr(), Module: 0},
	}

	tid := thread.ID{Host: 78, Proc: 1}
	call := func(rt *Runtime) ([]byte, error) {
		tc := thread.Child(tid, []uint32{9})
		return rt.Call(context.Background(), serverTroupe, 1, []byte("fc"), CallOptions{
			thread:       tc,
			clientTroupe: clientTroupeID,
		})
	}

	if got, err := call(c1); err != nil || string(got) != "fc" {
		t.Fatalf("fast member: %q, %v", got, err)
	}
	if mod.execs.Load() != 1 {
		t.Fatalf("executions after first member = %d", mod.execs.Load())
	}
	time.Sleep(100 * time.Millisecond)
	if got, err := call(c2); err != nil || string(got) != "fc" {
		t.Fatalf("slow member: %q, %v", got, err)
	}
	if mod.execs.Load() != 1 {
		t.Fatalf("slow member caused re-execution: %d", mod.execs.Load())
	}
}

// TestManyToOneTimeoutOnCrashedClientMember: with one client member
// crashed, the ArgWaitAll server must proceed after its availability
// timeout rather than stalling forever.
func TestManyToOneTimeoutOnCrashedClientMember(t *testing.T) {
	net := netsim.New(21)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	mod := &echoModule{}
	saddr := server.Export(mod, ExportOptions{Policy: ArgWaitAll})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	clientTroupeID := TroupeID(0xc120)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts) // will never call
	resolver[clientTroupeID] = []ModuleAddr{
		{Addr: c1.Addr(), Module: 0},
		{Addr: c2.Addr(), Module: 0},
	}

	tc := thread.Child(thread.ID{Host: 79, Proc: 1}, []uint32{1})
	start := time.Now()
	got, err := c1.Call(context.Background(), serverTroupe, 1, []byte("solo"), CallOptions{
		thread:       tc,
		clientTroupe: clientTroupeID,
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "solo" {
		t.Fatalf("got %q", got)
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Errorf("server proceeded after %v, before the availability timeout", d)
	}
}

// avgModule averages the temperature arguments of all client troupe
// members — Figure 7.7's explicit replication on the server side.
type avgModule struct{}

func (avgModule) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	var vals []float64
	for _, a := range call.Args() {
		var v float64
		if err := wire.Unmarshal(a, &v); err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return wire.Marshal(collate.MeanFloat64(vals))
}

// TestServerSideArgumentCollation: explicit replication on the server
// side (Figure 7.7). Each "sensor" client member sends its own
// reading; the module averages all of them.
func TestServerSideArgumentCollation(t *testing.T) {
	net := netsim.New(22)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	saddr := server.Export(avgModule{}, ExportOptions{Policy: ArgWaitAll, AllowDivergentArgs: true})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	clientTroupeID := TroupeID(0xc121)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts)
	resolver[clientTroupeID] = []ModuleAddr{
		{Addr: c1.Addr(), Module: 0},
		{Addr: c2.Addr(), Module: 0},
	}

	tid := thread.ID{Host: 80, Proc: 1}
	results := make(chan float64, 2)
	errc := make(chan error, 2)
	call := func(rt *Runtime, temp float64) {
		tc := thread.Child(tid, []uint32{3})
		arg, _ := wire.Marshal(temp)
		got, err := rt.Call(context.Background(), serverTroupe, 1, arg, CallOptions{
			thread:       tc,
			clientTroupe: clientTroupeID,
		})
		if err != nil {
			errc <- err
			return
		}
		var v float64
		if err := wire.Unmarshal(got, &v); err != nil {
			errc <- err
			return
		}
		results <- v
	}
	go call(c1, 10)
	go call(c2, 30)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			t.Fatalf("call: %v", err)
		case v := <-results:
			if v != 20 {
				t.Fatalf("average = %v, want 20", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out")
		}
	}
}

// explicitModule records how many argument messages were visible.
type explicitModule struct {
	nArgs atomic.Int64
}

func (m *explicitModule) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	m.nArgs.Store(int64(len(call.Args())))
	return args, nil
}

func TestServerArgsVisibleUnderWaitAll(t *testing.T) {
	net := netsim.New(23)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	server := newRuntime(t, net, opts)
	mod := &explicitModule{}
	saddr := server.Export(mod, ExportOptions{Policy: ArgWaitAll})
	serverTroupe := Troupe{Members: []ModuleAddr{saddr}}

	clientTroupeID := TroupeID(0xc122)
	c1 := newRuntime(t, net, opts)
	c2 := newRuntime(t, net, opts)
	resolver[clientTroupeID] = []ModuleAddr{
		{Addr: c1.Addr(), Module: 0},
		{Addr: c2.Addr(), Module: 0},
	}

	tid := thread.ID{Host: 81, Proc: 1}
	done := make(chan error, 2)
	for _, rt := range []*Runtime{c1, c2} {
		rt := rt
		go func() {
			tc := thread.Child(tid, []uint32{4})
			_, err := rt.Call(context.Background(), serverTroupe, 1, []byte("same"), CallOptions{
				thread:       tc,
				clientTroupe: clientTroupeID,
			})
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("call: %v", err)
		}
	}
	if n := mod.nArgs.Load(); n != 2 {
		t.Fatalf("server saw %d argument messages, want 2", n)
	}
}

// nestedModule calls a downstream troupe when dispatched — the setup
// for the full many-to-many test.
type nestedModule struct {
	downstream Troupe
	execs      atomic.Int64
}

func (m *nestedModule) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	m.execs.Add(1)
	return call.Call(m.downstream, 1, args, CallOptions{})
}

// TestManyToManyCall builds client troupe A (degree 2) calling server
// troupe B (degree 2) and checks Figure 4.1's contract: every A member
// gets results from every B member; every B member executes exactly
// once.
func TestManyToManyCall(t *testing.T) {
	net := netsim.New(24)
	resolver := StaticResolver{}
	opts := fastOpts()
	opts.Resolver = resolver

	// Troupe B: the ultimate servers.
	troupeB := Troupe{ID: 0xb}
	var bMods []*echoModule
	for i := 0; i < 2; i++ {
		rt := newRuntime(t, net, opts)
		mod := &echoModule{}
		addr := rt.Export(mod, ExportOptions{})
		rt.SetTroupeID(addr.Module, troupeB.ID)
		troupeB.Members = append(troupeB.Members, addr)
		bMods = append(bMods, mod)
	}
	resolver[troupeB.ID] = troupeB.Members

	// Troupe A: middle tier; its members call B.
	troupeA := Troupe{ID: 0xa}
	var aMods []*nestedModule
	for i := 0; i < 2; i++ {
		rt := newRuntime(t, net, opts)
		mod := &nestedModule{downstream: troupeB}
		addr := rt.Export(mod, ExportOptions{})
		rt.SetTroupeID(addr.Module, troupeA.ID)
		troupeA.Members = append(troupeA.Members, addr)
		aMods = append(aMods, mod)
	}
	resolver[troupeA.ID] = troupeA.Members

	driver := newRuntime(t, net, opts)
	got, err := driver.Call(context.Background(), troupeA, 1, []byte("deep"), CallOptions{})
	if err != nil {
		t.Fatalf("driver call: %v", err)
	}
	if string(got) != "deep" {
		t.Fatalf("got %q", got)
	}
	for i, m := range aMods {
		if m.execs.Load() != 1 {
			t.Errorf("A member %d executed %d times", i, m.execs.Load())
		}
	}
	for i, m := range bMods {
		if m.execs.Load() != 1 {
			t.Errorf("B member %d executed %d times, want exactly once (many-to-one collation)", i, m.execs.Load())
		}
	}
}

// TestThreadIDPropagation checks §3.4.1: the thread ID seen by the
// server equals the client's, and nested calls extend the path.
func TestThreadIDPropagation(t *testing.T) {
	net := netsim.New(25)
	opts := fastOpts()
	server := newRuntime(t, net, opts)
	var seen thread.ID
	mod := ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
		seen = call.Thread().ID()
		return nil, nil
	})
	addr := server.Export(mod, ExportOptions{})
	client := newRuntime(t, net, opts)
	tc := client.NewThread()
	ctx := thread.NewContext(context.Background(), tc)
	if _, err := client.Call(ctx, Troupe{Members: []ModuleAddr{addr}}, 1, nil, CallOptions{}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if seen != tc.ID() {
		t.Fatalf("server saw thread %v, want %v", seen, tc.ID())
	}
}

func TestCallEachGenerator(t *testing.T) {
	c := newCluster(t, 26, 3, ExportOptions{})
	items := c.client.CallEach(context.Background(), c.troupe, 1, []byte("g"), CallOptions{})
	seen := 0
	for i := 0; i < 3; i++ {
		select {
		case it := <-items:
			if it.Err != nil {
				t.Fatalf("item %d: %v", i, it.Err)
			}
			if string(it.Data) != "g" {
				t.Fatalf("item %d = %q", i, it.Data)
			}
			seen++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d items", seen)
		}
	}
}

func TestCallTimeout(t *testing.T) {
	c := newCluster(t, 27, 1, ExportOptions{})
	slow := ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
		time.Sleep(2 * time.Second)
		return nil, nil
	})
	addr := c.servers[0].Export(slow, ExportOptions{})
	tr := Troupe{Members: []ModuleAddr{addr}}
	start := time.Now()
	_, err := c.client.Call(context.Background(), tr, 1, nil, CallOptions{Timeout: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

func TestCloseFailsCalls(t *testing.T) {
	c := newCluster(t, 28, 1, ExportOptions{})
	c.client.Close()
	_, err := c.client.Call(context.Background(), c.troupe, 1, nil, CallOptions{})
	if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTroupeDown) {
		t.Fatalf("err = %v, want ErrClosed-ish", err)
	}
}

func TestTroupeIDString(t *testing.T) {
	s := TroupeID(0xabc).String()
	if s != "troupe:0000000000000abc" {
		t.Fatalf("String() = %q", s)
	}
}

func TestModuleAddrString(t *testing.T) {
	m := ModuleAddr{Module: 3}
	if got := fmt.Sprint(m); got != "0.0.0.0:0#3" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDegree(t *testing.T) {
	tr := Troupe{Members: make([]ModuleAddr, 4)}
	if tr.Degree() != 4 {
		t.Fatal("Degree broken")
	}
}
