package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/collate"
	"circus/internal/trace"
)

// This file implements the self-healing call layer: a bounded-retry
// wrapper around the replicated procedure call of client.go that
// recovers from the failures a troupe survives by design — member
// crashes, stale bindings after a binder-driven reconfiguration
// (§6.2), and transient partitions — without surfacing them to the
// application.
//
// Retry safety. A retried call is a NEW replicated call: each attempt
// draws a fresh call path, so the exactly-once guarantee of §4.1
// applies per attempt, not per logical operation. The caller must
// therefore ensure that re-executing the procedure is acceptable —
// either the procedure is idempotent, or the failure mode provably
// precluded execution. An AppError is never retried: it is the
// procedure's own verdict, proof that an execution completed.

// Backoff shapes the delay between retry attempts: exponential growth
// with multiplicative jitter, the standard defense against retry
// storms synchronizing across clients.
type Backoff struct {
	// Initial is the delay before the first retry. Zero means 25ms.
	Initial time.Duration
	// Max caps the delay. Zero means 1 second.
	Max time.Duration
	// Factor multiplies the delay each attempt. Zero means 2.
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter of its nominal
	// value. Zero means 0.2; negative disables jitter.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial == 0 {
		b.Initial = 25 * time.Millisecond
	}
	if b.Max == 0 {
		b.Max = time.Second
	}
	if b.Factor == 0 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	return b
}

// delay returns the nominal delay before retry attempt n (n ≥ 1).
func (b Backoff) delay(n int) time.Duration {
	d := float64(b.Initial)
	for i := 1; i < n; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	return time.Duration(d)
}

// Suspicion tracks members recently presumed crashed, so that a
// resilient caller does not wait out a fresh crash-detection timeout
// against the same dead member on every attempt. Suspicion is a
// hint, never a verdict: suspected members still receive every call
// message (preserving exactly-once execution at all live members);
// they are merely excluded from the set the caller waits on. An entry
// expires after its TTL, or immediately when the member answers.
type Suspicion struct {
	mu    sync.Mutex
	until map[ModuleAddr]time.Time
}

// NewSuspicion returns an empty tracker, shareable among callers.
func NewSuspicion() *Suspicion {
	return &Suspicion{until: make(map[ModuleAddr]time.Time)}
}

// Suspect records m as presumed crashed for the next ttl.
func (s *Suspicion) Suspect(m ModuleAddr, ttl time.Duration) {
	s.mu.Lock()
	s.until[m] = time.Now().Add(ttl)
	s.mu.Unlock()
}

// Forgive clears any suspicion of m.
func (s *Suspicion) Forgive(m ModuleAddr) {
	s.mu.Lock()
	delete(s.until, m)
	s.mu.Unlock()
}

// Suspected reports whether m is currently suspected.
func (s *Suspicion) Suspected(m ModuleAddr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.until[m]
	if !ok {
		return false
	}
	if time.Now().After(t) {
		delete(s.until, m)
		return false
	}
	return true
}

// ResilientOptions configures a ResilientCaller.
type ResilientOptions struct {
	// MaxAttempts bounds the retry budget, counting the first attempt.
	// Zero means 8.
	MaxAttempts int
	// Backoff shapes inter-attempt delays.
	Backoff Backoff
	// SuspicionTTL is how long a member presumed crashed is skipped
	// before being given another chance. Zero means 2 seconds.
	SuspicionTTL time.Duration
	// Seed seeds the jitter source, for reproducible campaigns. Zero
	// draws from the clock.
	Seed int64
	// Rebind, when set, is invoked on a StaleBindingError with the
	// stale troupe; it returns the fresh binding (typically from the
	// binding agent, §6.2). A successful rebind retries immediately —
	// staleness is not congestion, so it is not backed off.
	Rebind func(ctx context.Context, stale Troupe) (Troupe, error)
	// RebindOnTotalFailure, when set (and Rebind is set), also consults
	// the binder after an attempt in which every member failed. The
	// default rebinds only on StaleBindingError — a member's explicit
	// verdict — because total silence usually means a partition, where
	// the binding is fine and re-looking it up is wasted load. A troupe
	// that can be REPLACED wholesale (every member swapped, as mesh
	// rebalancing does) never produces a stale verdict: the old members
	// are simply gone, so total failure is the only staleness signal
	// there is.
	RebindOnTotalFailure bool
	// Suspicion, when set, is a tracker shared with other callers of
	// the same process, so one caller's crash evidence benefits all.
	// Nil means a private tracker.
	Suspicion *Suspicion
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	o.Backoff = o.Backoff.withDefaults()
	if o.SuspicionTTL == 0 {
		o.SuspicionTTL = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	if o.Suspicion == nil {
		o.Suspicion = NewSuspicion()
	}
	return o
}

// ResilientStats counts a caller's recovery actions.
type ResilientStats struct {
	// Attempts is the total number of call attempts issued.
	Attempts int64
	// Retries is the number of attempts after the first.
	Retries int64
	// Rebinds is the number of successful rebinds after a stale
	// binding was detected.
	Rebinds int64
	// Suspected is the number of member-down observations recorded.
	Suspected int64
}

// ResilientCaller wraps a Runtime's replicated call with a bounded
// retry budget, exponential backoff with seeded jitter, automatic
// rebinding on stale-binding errors, and per-member suspicion so
// known-dead members are skipped instead of re-timed-out.
type ResilientCaller struct {
	rt   *Runtime
	opts ResilientOptions
	sus  *Suspicion

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	troupe Troupe

	attempts  atomic.Int64
	retries   atomic.Int64
	rebinds   atomic.Int64
	suspected atomic.Int64
}

// NewResilientCaller wraps rt for calls to t.
func NewResilientCaller(rt *Runtime, t Troupe, opts ResilientOptions) *ResilientCaller {
	opts = opts.withDefaults()
	return &ResilientCaller{
		rt:     rt,
		opts:   opts,
		sus:    opts.Suspicion,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		troupe: t,
	}
}

// Troupe returns the current binding.
func (c *ResilientCaller) Troupe() Troupe {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.troupe
}

// SetTroupe installs a fresh binding and forgives its members: a new
// binding is fresh evidence of membership, so stale suspicion must
// not linger against members the binder just vouched for.
func (c *ResilientCaller) SetTroupe(t Troupe) {
	c.mu.Lock()
	c.troupe = t
	c.mu.Unlock()
	for _, m := range t.Members {
		c.sus.Forgive(m)
	}
}

// Stats returns a snapshot of the recovery counters.
func (c *ResilientCaller) Stats() ResilientStats {
	return ResilientStats{
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Rebinds:   c.rebinds.Load(),
		Suspected: c.suspected.Load(),
	}
}

// Call performs a replicated procedure call, transparently retrying
// member crashes and partitions within the retry budget and rebinding
// on stale bindings. See the file comment for retry safety: args may
// be executed once per attempt.
func (c *ResilientCaller) Call(ctx context.Context, proc uint16, args []byte, opts CallOptions) ([]byte, error) {
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
		}
		c.attempts.Add(1)
		res, staleSeen, err := c.attempt(ctx, proc, args, opts)
		if err == nil {
			// The call succeeded, but some member rejected the binding
			// as stale: members that already left the troupe may still
			// answer under the old ID (§6.2 only informs the current
			// membership), so refresh the binding now rather than keep
			// calling a stale configuration.
			if staleSeen {
				c.rebind(ctx)
			}
			return res, nil
		}
		lastErr = err

		// The procedure itself raised the error: an execution
		// completed, so retrying would re-execute. Surface it.
		var app *AppError
		if errors.As(err, &app) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
		if attempt == c.opts.MaxAttempts {
			break
		}

		// Stale binding: ask the binder for the fresh troupe and retry
		// immediately (§6.2's recovery path).
		var stale *StaleBindingError
		if errors.As(err, &stale) && c.opts.Rebind != nil {
			if rerr := c.rebind(ctx); rerr == nil {
				continue
			} else {
				lastErr = rerr
			}
		} else if c.opts.RebindOnTotalFailure && c.opts.Rebind != nil {
			// No member produced a verdict; the troupe may have been
			// replaced wholesale. Best effort: a fresh binding (if the
			// binder has one) is installed before the backed-off retry; a
			// failed lookup leaves the old binding in place.
			_ = c.rebind(ctx)
		}

		if serr := c.sleep(ctx, c.backoffDelay(attempt)); serr != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// rebind asks the binder for the fresh troupe and installs it.
func (c *ResilientCaller) rebind(ctx context.Context) error {
	if c.opts.Rebind == nil {
		return errors.New("core: no rebind hook configured")
	}
	fresh, err := c.opts.Rebind(ctx, c.Troupe())
	if err != nil {
		return err
	}
	c.SetTroupe(fresh)
	c.rebinds.Add(1)
	if c.rt.tr.Enabled() {
		c.rt.tr.Emit(trace.Event{Kind: trace.KindRebind,
			Troupe: uint64(fresh.ID), N: fresh.Degree()})
	}
	return nil
}

// backoffDelay applies seeded jitter to the nominal delay before the
// retry following attempt n.
func (c *ResilientCaller) backoffDelay(n int) time.Duration {
	d := c.opts.Backoff.delay(n)
	j := c.opts.Backoff.Jitter
	if j <= 0 {
		return d
	}
	c.rngMu.Lock()
	f := 1 + j*(2*c.rng.Float64()-1)
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *ResilientCaller) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attempt performs one replicated call over the current binding. The
// call message still goes to EVERY member — suspected ones included,
// so that every live member executes the call and troupe state does
// not diverge — but collation waits only for the unsuspected members.
// Replies from suspected members are drained in the background and
// feed the tracker: answering clears suspicion, silence sustains it.
func (c *ResilientCaller) attempt(ctx context.Context, proc uint16, args []byte, opts CallOptions) ([]byte, bool, error) {
	t := c.Troupe()
	n := t.Degree()
	if n == 0 {
		return nil, false, ErrTroupeDown
	}

	waited := make([]bool, n)
	active := 0
	for i, m := range t.Members {
		if !c.sus.Suspected(m) {
			waited[i] = true
			active++
		}
	}
	// Everyone suspected: suspicion is only a hint, so fall back to
	// waiting on the whole troupe rather than failing outright.
	if active == 0 {
		for i := range waited {
			waited[i] = true
		}
		active = n
	}

	mk := opts.Collator
	if mk == nil {
		mk = collate.Unanimous
	}
	col := mk(active)

	items := c.rt.CallEach(ctx, t, proc, args, opts)
	var got []collate.Item
	received, pending := 0, active
	decided, staleSeen := false, false
	for received < n && pending > 0 && !decided {
		it, ok := <-items
		if !ok {
			break
		}
		received++
		c.observe(t.Members[it.Member], it.Err)
		var stale *StaleBindingError
		if errors.As(it.Err, &stale) {
			staleSeen = true
		}
		if !waited[it.Member] {
			continue // a suspected member's reply: evidence, not input
		}
		pending--
		got = append(got, it)
		decided = col.Add(it)
	}
	if received < n {
		c.drainLater(items, t, n-received)
	}

	res, err := col.Result()
	if err == nil {
		return res, staleSeen, nil
	}
	if errors.Is(err, collate.ErrAllFailed) {
		return nil, staleSeen, summarizeFailure(got)
	}
	return nil, staleSeen, err
}

// observe updates the suspicion tracker with one member's outcome.
func (c *ResilientCaller) observe(m ModuleAddr, err error) {
	switch {
	case err == nil:
		c.sus.Forgive(m)
	case errors.Is(err, ErrMemberDown):
		c.sus.Suspect(m, c.opts.SuspicionTTL)
		c.suspected.Add(1)
	}
}

// drainLater consumes the remaining items off the call's channel so
// late evidence still reaches the suspicion tracker. Each member
// contributes exactly one item, so the count bounds the goroutine.
func (c *ResilientCaller) drainLater(items <-chan collate.Item, t Troupe, remaining int) {
	go func() {
		for i := 0; i < remaining; i++ {
			it, ok := <-items
			if !ok {
				return
			}
			c.observe(t.Members[it.Member], it.Err)
		}
	}()
}
