package core

import (
	"context"
	"sync"

	"circus/internal/thread"
	"circus/internal/transport"
)

// Module is the server side of an exported interface. Dispatch is
// invoked with the procedure number and externalized arguments and
// returns externalized results; the stub compiler's server skeletons
// implement it (§7.1), as does the reflection adapter in package
// circus. Dispatch must be deterministic for the module to be safely
// replicated (§3.3.2); returning ErrNoSuchProc signals an unknown
// procedure number.
type Module interface {
	Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error)
}

// ModuleFunc adapts a function to the Module interface.
type ModuleFunc func(call *ServerCall, proc uint16, args []byte) ([]byte, error)

// Dispatch implements Module.
func (f ModuleFunc) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	return f(call, proc, args)
}

// StateProvider is implemented by modules that support the state
// transfer used when a new member joins a troupe (§6.4.1): GetState
// externalizes the module state; SetState internalizes it into a fresh
// replica. The runtime exposes them as the automatically generated
// get_state procedure of the paper.
type StateProvider interface {
	GetState() ([]byte, error)
	SetState(state []byte) error
}

// ArgPolicy selects when a server troupe member starts executing a
// many-to-one call (§4.3.4).
type ArgPolicy int

const (
	// ArgWaitAll waits for call messages from all members of the
	// client troupe — the unanimous default of Circus, providing
	// error detection at the cost of running at the speed of the
	// slowest client member.
	ArgWaitAll ArgPolicy = iota
	// ArgFirstCome executes as soon as the first call message
	// arrives; the return message is buffered and handed to the
	// remaining client members as their call messages arrive, making
	// execution appear instantaneous to slow members (§4.3.4).
	ArgFirstCome
	// ArgMajority waits for call messages from a majority of the
	// client troupe, the discipline §4.3.5 proposes to keep troupe
	// members in different network partitions from diverging.
	ArgMajority
)

// ExportOptions configures one exported module.
type ExportOptions struct {
	// Policy selects the many-to-one waiting discipline.
	Policy ArgPolicy
	// AllowDivergentArgs disables the error detection that rejects a
	// replicated call whose client troupe members sent different
	// argument messages. Modules using explicit replication set it:
	// their members legitimately send distinct values, which the
	// module collates itself via ServerCall.Args (§7.4, Figure 7.7).
	AllowDivergentArgs bool
}

// ServerCall is the context of one replicated procedure execution at
// one server troupe member.
type ServerCall struct {
	rt           *Runtime
	ctx          context.Context
	thread       *thread.Context
	clientTroupe TroupeID
	module       uint16
	proc         uint16

	mu      sync.Mutex
	callers []transport.Addr
	args    [][]byte
}

// Context returns the context governing the execution; it is cancelled
// when the runtime shuts down.
func (sc *ServerCall) Context() context.Context { return sc.ctx }

// Thread returns the propagated thread context (§3.4.1); nested
// replicated calls made with Call extend its call path.
func (sc *ServerCall) Thread() *thread.Context { return sc.thread }

// ClientTroupe returns the troupe ID of the calling troupe, zero for
// an unreplicated caller.
func (sc *ServerCall) ClientTroupe() TroupeID { return sc.clientTroupe }

// Module returns the module number the call addressed.
func (sc *ServerCall) Module() uint16 { return sc.module }

// Proc returns the procedure number of the call.
func (sc *ServerCall) Proc() uint16 { return sc.proc }

// Callers returns the process addresses whose call messages had
// arrived when execution began, in arrival order.
func (sc *ServerCall) Callers() []transport.Addr {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]transport.Addr(nil), sc.callers...)
}

// Args returns the argument messages received from the client troupe
// members, in arrival order. Under ArgWaitAll these are the arguments
// of every available client member; a module exported with explicit
// replication collates them itself — the argument generator of Figure
// 7.7. Under transparent replication, all entries are identical and
// Dispatch receives the first.
func (sc *ServerCall) Args() [][]byte {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([][]byte(nil), sc.args...)
}

// Runtime returns the runtime executing the call.
func (sc *ServerCall) Runtime() *Runtime { return sc.rt }

// Call makes a nested replicated procedure call on behalf of this
// execution: the thread ID and call path propagate (§3.4.1), and the
// client troupe ID of this member's own troupe is attached so the
// callee can collate the calls of this troupe's members (§4.3.2).
func (sc *ServerCall) Call(dest Troupe, proc uint16, args []byte, opts CallOptions) ([]byte, error) {
	opts.clientTroupe = sc.rt.TroupeIDOf(sc.module)
	opts.thread = sc.thread
	return sc.rt.Call(sc.ctx, dest, proc, args, opts)
}
