package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"circus/internal/trace/check"
)

// TestConcurrentCallersConformance drives 16 concurrent caller
// goroutines through one client runtime against a degree-3 troupe and
// then replays the full trace through the protocol conformance
// checker. It pins the properties the sharded message layer and the
// parallel dispatcher must preserve under contention: per-sender
// monotone call numbers, at-most-once execution at every member, and
// correct replies for every caller. Run with -race; must stay stable
// at -count=5.
func TestConcurrentCallersConformance(t *testing.T) {
	c, rec := newClusterTraced(t, 41, 3, ExportOptions{})

	const callers, perCaller = 16, 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				arg := []byte{byte(g), byte(i)}
				got, err := c.client.Call(context.Background(), c.troupe, 1, arg, CallOptions{})
				if err != nil {
					errs <- fmt.Errorf("caller %d call %d: %v", g, i, err)
					return
				}
				if !bytes.Equal(got, arg) {
					errs <- fmt.Errorf("caller %d call %d echoed %v, want %v", g, i, got, arg)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// At-most-once (and in fact exactly-once): every member ran every
	// call exactly one time, with no cross-caller duplication.
	want := int64(3 * callers * perCaller)
	if got := c.totalExecs(); got != want {
		t.Fatalf("total executions = %d, want %d", got, want)
	}

	vs := check.Check(rec.Events(), check.Config{
		RetransmitInterval: fastMsgOpts().RetransmitInterval,
	})
	if len(vs) != 0 {
		t.Fatalf("conformance violations under 16-caller load:\n%v", check.Strings(vs))
	}
}

// TestSerialDispatchAblation runs the same concurrent workload with
// DispatchWorkers < 0, the serial-dispatch ablation: correctness must
// not depend on the worker pool.
func TestSerialDispatchAblation(t *testing.T) {
	c, _ := newClusterWith(t, 42, 2, ExportOptions{}, func(o *Options) {
		o.DispatchWorkers = -1
	})

	const callers, perCaller = 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				arg := []byte{byte(g), byte(i)}
				got, err := c.client.Call(context.Background(), c.troupe, 1, arg, CallOptions{})
				if err != nil {
					errs <- fmt.Errorf("caller %d call %d: %v", g, i, err)
					return
				}
				if !bytes.Equal(got, arg) {
					errs <- fmt.Errorf("caller %d call %d echoed %v, want %v", g, i, got, arg)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := c.totalExecs(), int64(2*callers*perCaller); got != want {
		t.Fatalf("total executions = %d, want %d", got, want)
	}
}
