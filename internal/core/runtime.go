package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/pairedmsg"
	"circus/internal/thread"
	"circus/internal/trace"
	"circus/internal/transport"
	"circus/internal/wire"
)

// Reserved procedure numbers handled by the runtime itself rather than
// the module. They implement the automatically generated procedures of
// the paper: the null "are you there?" probe used for binding-agent
// garbage collection (§6.1), get_state for initializing a new troupe
// member (§6.4.1), and set_troupe_id for atomic troupe ID changes
// (§6.2).
const (
	ProcPing        uint16 = 0xFFFF
	ProcGetState    uint16 = 0xFFFE
	ProcSetTroupeID uint16 = 0xFFFD
)

// Resolver maps a client troupe ID to the module addresses of its
// members, which tells a server handling a many-to-one call how many
// call messages to expect (§4.3.2). It is implemented by the binding
// agent client with a local cache, and by static tables in tests.
type Resolver interface {
	LookupByID(id TroupeID) ([]ModuleAddr, error)
}

// StaticResolver is a fixed troupe table.
type StaticResolver map[TroupeID][]ModuleAddr

// LookupByID implements Resolver.
func (s StaticResolver) LookupByID(id TroupeID) ([]ModuleAddr, error) {
	members, ok := s[id]
	if !ok {
		return nil, &UnknownTroupeError{ID: id}
	}
	return members, nil
}

// UnknownTroupeError reports a troupe ID the resolver has no record
// of.
type UnknownTroupeError struct{ ID TroupeID }

func (e *UnknownTroupeError) Error() string {
	return "core: unknown troupe " + TroupeID(e.ID).String()
}

// String renders a troupe ID.
func (id TroupeID) String() string {
	const hexdigits = "0123456789abcdef"
	buf := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return "troupe:" + string(buf)
}

// Options configures a Runtime.
type Options struct {
	// Message tunes the paired message protocol.
	Message pairedmsg.Options
	// Resolver resolves client troupe IDs for many-to-one calls. Nil
	// means only unreplicated clients are supported until SetResolver.
	Resolver Resolver
	// ManyToOneTimeout bounds how long a server waits for the
	// remaining call messages of a replicated call after the first
	// arrives; crashed client members would otherwise stall the call
	// forever. Zero means 2 seconds.
	ManyToOneTimeout time.Duration
	// CallRetention is how long a completed execution's buffered
	// return message is kept for late client troupe members (§4.3.4).
	// Zero means 60 seconds.
	CallRetention time.Duration
	// DefaultCallTimeout bounds calls whose CallOptions.Timeout is
	// zero, instead of letting them run unbounded and rely solely on
	// crash detection (§4.2.3) for termination. Zero means 60
	// seconds; NoTimeout restores the historical unbounded default.
	// Individual calls override it with CallOptions.Timeout, and opt
	// out with CallOptions.Timeout = NoTimeout.
	DefaultCallTimeout time.Duration
	// Multicast enables the multicast implementation of one-to-many
	// calls (§4.3.3) when the transport supports it: one send
	// operation reaches the whole server troupe, m+n messages instead
	// of m·n.
	Multicast bool
	// DispatchWorkers sizes the worker pool that executes incoming
	// message handling off the receive loop: messages are distributed
	// to workers by sender address, so different senders' calls are
	// parsed, collated, and answered concurrently while each sender's
	// message stream is still handled in arrival order (the ordering
	// the paired message layer's per-peer FIFO guarantees end-to-end).
	// Zero means max(4, GOMAXPROCS). A negative value restores the
	// serial pre-pool behavior — every message handled inline on the
	// receive loop — kept for ablation comparisons.
	DispatchWorkers int
	// Trace, when set, receives structured events from both the
	// message layer and the call layer (call issued, member replies,
	// collation, execution, duplicate suppression). It is installed
	// into Message.Trace so one process's events share one identity.
	Trace trace.Sink
}

func (o Options) withDefaults() Options {
	if o.ManyToOneTimeout == 0 {
		o.ManyToOneTimeout = 2 * time.Second
	}
	if o.CallRetention == 0 {
		o.CallRetention = 60 * time.Second
	}
	if o.DefaultCallTimeout == 0 {
		o.DefaultCallTimeout = 60 * time.Second
	}
	return o
}

// Runtime is the replicated procedure call run-time system linked with
// each user program (§4.3): it owns the paired message connection,
// dispatches incoming calls to exported modules, and implements the
// one-to-many and many-to-one algorithms.
type Runtime struct {
	conn *pairedmsg.Conn
	opts Options
	tr   *trace.Local // shared with conn; nil when tracing is disabled

	// mu guards the read-mostly configuration state: the module table,
	// troupe IDs, and resolver are written at setup/reconfiguration
	// time and read on every incoming call, so readers take RLock.
	mu        sync.RWMutex
	modules   map[uint16]*export
	troupeIDs map[uint16]TroupeID
	resolver  Resolver
	nextMod   uint16
	closed    bool

	// pendMu guards the client-side return routing table; it is touched
	// once to register and once to consume per member call, never held
	// across I/O.
	pendMu  sync.Mutex
	pending map[retKey]chan returnHeader // client calls awaiting returns

	// callMu guards the server-side many-to-one collation table; the
	// per-call state behind each entry has its own lock (serverCall.mu).
	callMu sync.Mutex
	calls  map[string]*serverCall

	// workers are the dispatch pool's per-worker queues, indexed by a
	// hash of the sender address; nil in serial (DispatchWorkers < 0)
	// mode.
	workers []chan pairedmsg.Message

	// execIdlers is the stack of parked execute workers; popping one
	// under execMu transfers ownership of its one-slot channel to the
	// caller (see maybeStart / executeBGWorker).
	execMu     sync.Mutex
	execIdlers []*execWorker

	nextThread uint32
	done       chan struct{}
	ctx        context.Context
	cancel     context.CancelFunc
	bg         sync.WaitGroup
}

type export struct {
	num  uint16
	mod  Module
	opts ExportOptions
}

type retKey struct {
	peer    transport.Addr
	callNum uint32
}

// NewRuntime starts a runtime over ep.
func NewRuntime(ep transport.Endpoint, opts Options) *Runtime {
	if opts.Trace != nil && opts.Message.Trace == nil {
		opts.Message.Trace = opts.Trace
	}
	rt := &Runtime{
		conn:      pairedmsg.New(ep, opts.Message),
		opts:      opts.withDefaults(),
		modules:   make(map[uint16]*export),
		troupeIDs: make(map[uint16]TroupeID),
		resolver:  opts.Resolver,
		pending:   make(map[retKey]chan returnHeader),
		calls:     make(map[string]*serverCall),
		done:      make(chan struct{}),
	}
	rt.tr = rt.conn.Tracer() // same node identity and incarnation
	rt.nextThread = (threadSeq.Add(1) * 0x9E3779B1) ^
		(uint32(ep.Addr().Port) * 0x85EBCA6B) ^ threadSalt
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	if n := dispatchWorkers(opts.DispatchWorkers); n > 0 {
		rt.workers = make([]chan pairedmsg.Message, n)
		for i := range rt.workers {
			ch := make(chan pairedmsg.Message, workerQueueLen)
			rt.workers[i] = ch
			rt.bg.Add(1)
			go rt.dispatchLoop(ch)
		}
	}
	rt.bg.Add(2)
	go rt.recvLoop()
	go rt.sweepLoop()
	return rt
}

// workerQueueLen is the per-worker dispatch queue depth. The receive
// loop blocks when one sender's queue fills, which is fine: the
// paired message layer's incoming queue above it applies its own
// backpressure policy, and a worker drains its queue continuously.
const workerQueueLen = 128

func dispatchWorkers(n int) int {
	if n < 0 {
		return 0 // serial ablation mode
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n < 4 {
			n = 4
		}
	}
	return n
}

// Addr returns the process address of this runtime.
func (rt *Runtime) Addr() transport.Addr { return rt.conn.Addr() }

// SetResolver installs the troupe resolver (typically the binding
// agent client) after construction.
func (rt *Runtime) SetResolver(r Resolver) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.resolver = r
}

// Export registers a module under the next free module number and
// returns its module address. The module number is an index into the
// table of exported interfaces managed by the export procedure (§4.3).
func (rt *Runtime) Export(m Module, opts ExportOptions) ModuleAddr {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	num := rt.nextMod
	for {
		if _, used := rt.modules[num]; !used {
			break
		}
		num++
	}
	rt.nextMod = num + 1
	rt.modules[num] = &export{num: num, mod: m, opts: opts}
	return ModuleAddr{Addr: rt.conn.Addr(), Module: num}
}

// ExportAt registers a module under a specific module number,
// replacing any previous export at that number.
func (rt *Runtime) ExportAt(num uint16, m Module, opts ExportOptions) ModuleAddr {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.modules[num] = &export{num: num, mod: m, opts: opts}
	return ModuleAddr{Addr: rt.conn.Addr(), Module: num}
}

// Unexport removes a module; subsequent calls to it report
// ErrNoSuchModule, stale-binding case 2 of §6.1.
func (rt *Runtime) Unexport(num uint16) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.modules, num)
	delete(rt.troupeIDs, num)
}

// PlantedRebindBug, when true, makes SetTroupeID additionally discard
// the runtime's many-to-one collation records — a deliberately wrong
// "a rebind invalidates in-flight call state" change, kept behind this
// flag as the known defect the schedule-exploration regression test
// must rediscover. With a record gone, a replicated client member's
// call message arriving after a rebind no longer collates with its
// sibling's: the server executes the call a second time, breaking the
// at-most-once guarantee of §4.3.2. Never set outside tests.
var PlantedRebindBug = false

// SetTroupeID records the current troupe ID of an exported module; the
// member rejects calls bearing any other destination troupe ID (§6.2).
func (rt *Runtime) SetTroupeID(module uint16, id TroupeID) {
	rt.mu.Lock()
	rt.troupeIDs[module] = id
	rt.mu.Unlock()
	if PlantedRebindBug {
		rt.callMu.Lock()
		rt.calls = make(map[string]*serverCall)
		rt.callMu.Unlock()
	}
}

// TroupeIDOf returns the module's current troupe ID, zero if none was
// set.
func (rt *Runtime) TroupeIDOf(module uint16) TroupeID {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.troupeIDs[module]
}

// threadSeq and threadSalt scramble each Runtime's thread ID base.
// Thread IDs must be unique per (machine, base process) — §3.4.1 —
// including across process incarnations: a restarted process that
// reused a predecessor's thread IDs and call paths would have its
// fresh calls answered from the servers' buffered return messages
// (the CallRetention window of §4.3.4) instead of executed.
var (
	threadSeq  atomic.Uint32
	threadSalt = uint32(time.Now().UnixNano())
)

// NewThread creates a fresh distributed thread rooted at this process
// (§3.4.1: the base process ID plus machine ID form the thread ID).
// The base process ID is drawn from a per-incarnation scrambled
// range, so threads of a restarted process never collide with its
// predecessor's.
func (rt *Runtime) NewThread() *thread.Context {
	n := atomic.AddUint32(&rt.nextThread, 1)
	id := thread.ID{
		Host: rt.conn.Addr().Host,
		Proc: n,
	}
	return thread.NewRoot(id)
}

// Close shuts the runtime down: pending calls fail, the connection and
// endpoint close.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	close(rt.done)
	rt.cancel()
	rt.mu.Unlock()
	err := rt.conn.Close()
	rt.bg.Wait()
	return err
}

// MessageStats exposes the paired message counters for the benchmark
// harness.
func (rt *Runtime) MessageStats() pairedmsg.Stats { return rt.conn.Stats() }

// Tracer returns the runtime's trace emitter (nil when tracing is
// disabled). The ringmaster client and public Node use it so their
// events carry the same node identity and incarnation as the
// message-layer events.
func (rt *Runtime) Tracer() *trace.Local { return rt.tr }

func (rt *Runtime) recvLoop() {
	defer rt.bg.Done()
	if rt.workers == nil {
		// Serial ablation mode: every message handled inline.
		var scr msgScratch
		for msg := range rt.conn.Incoming() {
			rt.handleMsg(msg, &scr)
		}
		return
	}
	// Distribute by sender so one sender's messages are handled in
	// arrival order by one worker, while different senders proceed in
	// parallel. The per-(sender, thread) execution order the collation
	// layer depends on is therefore preserved: a sender's messages
	// never overtake each other.
	n := uint32(len(rt.workers))
	for msg := range rt.conn.Incoming() {
		h := msg.From.Host*0x9E3779B1 ^ uint32(msg.From.Port)*0x85EBCA6B
		rt.workers[h%n] <- msg
	}
	for _, ch := range rt.workers {
		close(ch)
	}
}

// dispatchLoop is one dispatch worker: it applies the same handling
// the receive loop would, for the subset of senders hashed to it.
func (rt *Runtime) dispatchLoop(ch <-chan pairedmsg.Message) {
	defer rt.bg.Done()
	var scr msgScratch
	for msg := range ch {
		rt.handleMsg(msg, &scr)
	}
}

// msgScratch is one dispatch worker's long-lived decode target. The
// wire codec reuses a target's backing store when capacity allows, so
// decoding into a per-worker scratch keeps header structs and the call
// path slice off the heap entirely. Fields that escape the handler
// (argument and payload bytes, a first caller's stored path) are nilled
// before decode or copied at the store, never shared with the scratch.
type msgScratch struct {
	call callHeader
	ret  returnHeader
}

func (rt *Runtime) handleMsg(msg pairedmsg.Message, scr *msgScratch) {
	switch msg.Type {
	case pairedmsg.Call:
		rt.handleCall(msg, &scr.call)
	case pairedmsg.Return:
		rt.handleReturn(msg, &scr.ret)
	}
	// The wire codec copies every decoded field, so nothing above
	// retains msg.Data: recycle its pooled backing (no-op when the
	// transport delivered a fresh buffer).
	msg.Release()
}

// handleReturn routes a return message to the client call awaiting it.
func (rt *Runtime) handleReturn(msg pairedmsg.Message, hdr *returnHeader) {
	// The payload escapes to the awaiting caller: it must be decoded
	// into fresh storage, never the scratch's previous backing.
	hdr.Payload = nil
	if err := wire.Unmarshal(msg.Data, hdr); err != nil {
		return // garbled application payload: drop
	}
	k := retKey{peer: msg.From, callNum: msg.CallNum}
	rt.pendMu.Lock()
	ch := rt.pending[k]
	delete(rt.pending, k)
	rt.pendMu.Unlock()
	if ch != nil {
		ch <- *hdr
	}
}

// sweepLoop expires completed many-to-one call records (§4.3.4: the
// server buffers return messages for slow client members, bounded by
// the retention window).
func (rt *Runtime) sweepLoop() {
	defer rt.bg.Done()
	ticker := time.NewTicker(rt.opts.CallRetention / 4)
	defer ticker.Stop()
	for {
		select {
		case <-rt.done:
			return
		case now := <-ticker.C:
			rt.callMu.Lock()
			for k, sc := range rt.calls {
				sc.mu.Lock()
				expired := sc.finished && now.Sub(sc.finishedAt) > rt.opts.CallRetention
				sc.mu.Unlock()
				if expired {
					delete(rt.calls, k)
				}
			}
			rt.callMu.Unlock()
		}
	}
}

// background runs f on a tracked goroutine so Close can wait for it.
func (rt *Runtime) background(f func()) {
	rt.bg.Add(1)
	go func() {
		defer rt.bg.Done()
		f()
	}()
}
