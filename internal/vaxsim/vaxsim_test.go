package vaxsim

import (
	"math"
	"math/rand"
	"testing"

	"circus/internal/probmodel"
)

// paper41 is Table 4.1 as printed: real, total CPU, user CPU, kernel
// CPU milliseconds per call.
var paper41 = map[string][4]float64{
	"(UDP)": {26.5, 13.3, 0.8, 12.4},
	"(TCP)": {23.2, 8.3, 0.5, 7.8},
	"1":     {48.0, 24.1, 5.9, 18.2},
	"2":     {58.0, 45.2, 10.0, 35.2},
	"3":     {69.4, 66.8, 13.0, 53.8},
	"4":     {90.2, 87.2, 16.8, 70.4},
	"5":     {109.5, 107.2, 21.0, 86.1},
}

func within(t *testing.T, label string, got, want, tolFrac float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if math.Abs(got-want)/want > tolFrac {
		t.Errorf("%s: model %.1f vs paper %.1f (more than %.0f%% off)", label, got, want, tolFrac*100)
	}
}

func TestTable41MatchesPaper(t *testing.T) {
	m := Default1985()
	for _, row := range m.Table41() {
		p, ok := paper41[row.Label]
		if !ok {
			t.Fatalf("unexpected row %q", row.Label)
		}
		within(t, row.Label+" real", row.Real, p[0], 0.10)
		within(t, row.Label+" cpu", row.TotalCPU, p[1], 0.10)
		within(t, row.Label+" user", row.UserCPU, p[2], 0.10)
		within(t, row.Label+" kernel", row.KernelCPU, p[3], 0.10)
	}
}

func TestTable41RowCount(t *testing.T) {
	if rows := Default1985().Table41(); len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
}

func TestShapeTCPBeatsUDP(t *testing.T) {
	// §4.4.1's "somewhat surprising result": the TCP echo is faster
	// than the UDP echo.
	m := Default1985()
	if m.TCPEcho().Real >= m.UDPEcho().Real {
		t.Fatal("model lost the TCP < UDP inversion")
	}
}

func TestShapeCircusTwiceUDP(t *testing.T) {
	// An unreplicated Circus call requires almost twice the time of a
	// simple UDP exchange (§4.4.1).
	m := Default1985()
	ratio := m.CircusCall(1).Real / m.UDPEcho().Real
	if ratio < 1.5 || ratio > 2.3 {
		t.Fatalf("Circus(1)/UDP = %.2f, want ≈2", ratio)
	}
}

func TestShapeLinearGrowth(t *testing.T) {
	// Figure 4.8: each component of the time per call increases
	// linearly with troupe size; the paper reports 10–20 ms of real
	// time per additional member.
	m := Default1985()
	xs := []int{1, 2, 3, 4, 5}
	var real, cpu []float64
	for _, n := range xs {
		r := m.CircusCall(n)
		real = append(real, r.Real)
		cpu = append(cpu, r.TotalCPU)
	}
	slope, _ := probmodel.LinearFit(xs, real)
	if slope < 10 || slope > 20.9 {
		t.Errorf("real-time slope %.1f ms/member, paper reports 10–20", slope)
	}
	cpuSlope, _ := probmodel.LinearFit(xs, cpu)
	if cpuSlope < 18 || cpuSlope < 0 || cpuSlope > 24 {
		t.Errorf("cpu slope %.1f ms/member, paper shows ≈21", cpuSlope)
	}
	// Residuals from the linear fit must be small (truly linear).
	for i, n := range xs {
		fit := cpuSlope*float64(n) + (cpu[0] - cpuSlope)
		if math.Abs(cpu[i]-fit) > 3 {
			t.Errorf("cpu at n=%d deviates %.1f ms from linearity", n, cpu[i]-fit)
		}
	}
}

func TestShapeSendmsgDominates(t *testing.T) {
	// §4.4.1: sendmsg is the most expensive primitive and most of the
	// time goes to the simulation of multicasting by successive
	// sendmsg operations.
	m := Default1985()
	for _, row := range m.Table43() {
		max := ""
		for name, pct := range row.Percent {
			if max == "" || pct > row.Percent[max] {
				max = name
			}
		}
		if max != Sendmsg {
			t.Errorf("n=%d: %s dominates, want sendmsg", row.Degree, max)
		}
	}
}

func TestShapeSixCallsOverHalf(t *testing.T) {
	// §4.4.1: six system calls account for more than half the CPU
	// time of a replicated call.
	for _, row := range Default1985().Table43() {
		if row.SixCallTotal < 50 {
			t.Errorf("n=%d: six syscalls only %.1f%%", row.Degree, row.SixCallTotal)
		}
	}
}

func TestShapeSendmsgShareRises(t *testing.T) {
	// Table 4.3: the sendmsg share grows with the degree of
	// replication (27% → 33% in the paper).
	rows := Default1985().Table43()
	if rows[0].Percent[Sendmsg] >= rows[4].Percent[Sendmsg] {
		t.Fatal("sendmsg share does not rise with n")
	}
}

func TestShapeRealConvergesToCPU(t *testing.T) {
	// Table 4.1: at small n the client idles awaiting returns (real >>
	// cpu); by n=4..5 the client CPU is the bottleneck and real ≈ cpu.
	m := Default1985()
	r1 := m.CircusCall(1)
	r5 := m.CircusCall(5)
	gap1 := r1.Real - r1.TotalCPU
	gap5 := r5.Real - r5.TotalCPU
	if gap1 < 15 {
		t.Errorf("n=1 gap %.1f, want ≈24 (client mostly waiting)", gap1)
	}
	if gap5 > 5 {
		t.Errorf("n=5 gap %.1f, want ≈2 (client saturated)", gap5)
	}
}

func TestMulticastLogarithmic(t *testing.T) {
	// §4.4.2: with multicast, expected time grows only logarithmically
	// (E[T] = H_n·r + per-member receive cost). Compare growth from
	// n=1 to n=8 against the unicast model.
	m := Default1985()
	uni1, uni8 := m.CircusCall(1).Real, m.CircusCall(8).Real
	mc1, mc8 := m.ExpectedMulticastReal(1), m.ExpectedMulticastReal(8)
	if (mc8 - mc1) >= (uni8-uni1)/2 {
		t.Fatalf("multicast growth %.1f not much below unicast growth %.1f", mc8-mc1, uni8-uni1)
	}
}

func TestMulticastMonteCarloMatchesExpectation(t *testing.T) {
	m := Default1985()
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 3, 5} {
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += m.CircusCallMulticast(n, rng).Real
		}
		got := sum / trials
		want := m.ExpectedMulticastReal(n)
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("n=%d: sampled %.1f vs analytic %.1f", n, got, want)
		}
	}
}

func TestSortedProfileDescending(t *testing.T) {
	p := Default1985().CircusCall(3).Profile
	sorted := SortedProfile(p)
	for i := 1; i < len(sorted); i++ {
		if sorted[i].MS > sorted[i-1].MS {
			t.Fatal("profile not sorted")
		}
	}
	if sorted[0].Name != Sendmsg {
		t.Fatalf("top syscall %s, want sendmsg", sorted[0].Name)
	}
}

func TestSyscallNames(t *testing.T) {
	if len(SyscallNames()) != 6 {
		t.Fatal("want the six profiled syscalls")
	}
}

func TestItoa(t *testing.T) {
	if itoa(0) != "0" || itoa(5) != "5" || itoa(42) != "42" {
		t.Fatal("itoa broken")
	}
}
