// Package vaxsim is a discrete-event cost model of the 1985 testbed of
// §4.4.1: identically configured VAX-11/750s on a 10 Mb/s Ethernet
// running Berkeley 4.2BSD, with the Circus protocol implemented
// entirely in user mode.
//
// We cannot measure a VAX, so we replay the syscall schedule of a
// Circus replicated procedure call against the per-syscall CPU costs
// the paper measured (Table 4.2), plus a small set of calibrated
// constants documented on Model. The model regenerates Table 4.1
// (UDP/TCP/Circus times per call vs degree of replication), Table 4.3
// (the execution profile), and Figure 4.8 (the linear growth of call
// time with troupe size under repeated point-to-point sendmsg), and —
// following §4.4.2 — predicts the logarithmic behaviour of a
// multicast implementation.
package vaxsim

import (
	"math/rand"
	"sort"

	"circus/internal/probmodel"
)

// Syscall names profiled by the paper (Table 4.2).
const (
	Sendmsg      = "sendmsg"
	Recvmsg      = "recvmsg"
	Select       = "select"
	Setitimer    = "setitimer"
	Gettimeofday = "gettimeofday"
	Sigblock     = "sigblock"
)

// Model holds the cost constants, in milliseconds.
type Model struct {
	// Measured per-call CPU costs of the six Berkeley 4.2BSD system
	// calls (Table 4.2).
	Cost map[string]float64

	// TCPWrite and TCPRead are the streamlined byte-stream
	// equivalents of sendmsg/recvmsg (§4.4.1 explains why they are
	// cheaper: no scatter/gather copying); calibrated so the TCP echo
	// row of Table 4.1 is reproduced.
	TCPWrite, TCPRead float64

	// UserPerMember and UserFixed model the user-mode protocol code
	// (externalization, segment bookkeeping) per server troupe member
	// and per call; calibrated against the user-CPU column of Table
	// 4.1.
	UserPerMember, UserFixed float64

	// KernelExtraPerMember is unprofiled kernel time per member
	// (buffer copying, interrupt dispatch) beyond the six syscalls;
	// calibrated against the kernel-CPU column of Table 4.1.
	KernelExtraPerMember float64

	// SigblockPerMember and SigblockFixed count critical-region
	// entries (§4.2.4: substantial traffic with the software
	// interrupt facilities).
	SigblockPerMember, SigblockFixed int

	// Wire is the one-way network latency plus interrupt service, and
	// ServerTurnaround the CPU time a Circus server spends from call
	// arrival to return departure (it runs the same user-mode
	// protocol, so it is of the same order as the client's per-call
	// cost).
	Wire, ServerTurnaround float64

	// EchoServerTurnaround is the turnaround of the trivial UDP/TCP
	// echo servers of Figures 4.5–4.6.
	EchoServerTurnaround float64
}

// Default1985 returns the model calibrated to the dissertation's
// measurements.
func Default1985() Model {
	return Model{
		Cost: map[string]float64{
			Sendmsg:      8.1,
			Recvmsg:      2.8,
			Select:       1.8,
			Setitimer:    1.2,
			Gettimeofday: 0.7,
			Sigblock:     0.4,
		},
		TCPWrite:             5.3,
		TCPRead:              3.0,
		UserPerMember:        3.8,
		UserFixed:            2.1,
		KernelExtraPerMember: 2.8,
		SigblockPerMember:    2,
		SigblockFixed:        0,
		Wire:                 1.1,
		ServerTurnaround:     19.5,
		EchoServerTurnaround: 10.0,
	}
}

// Result is one row of Table 4.1: times per call in milliseconds.
type Result struct {
	Label     string
	Real      float64
	TotalCPU  float64
	UserCPU   float64
	KernelCPU float64
	// Profile maps syscall name to client CPU milliseconds spent in
	// it, feeding Table 4.3.
	Profile map[string]float64
}

// UDPEcho models the test client of Figure 4.5: sendmsg, alarm
// (setitimer), recvmsg, alarm(0) per exchange.
func (m Model) UDPEcho() Result {
	prof := map[string]float64{
		Sendmsg:   m.Cost[Sendmsg],
		Recvmsg:   m.Cost[Recvmsg],
		Setitimer: 2 * m.Cost[Setitimer],
	}
	kernel := prof[Sendmsg] + prof[Recvmsg] + prof[Setitimer]
	user := 0.8 // trivial loop body
	cpu := kernel + user
	real := cpu + 2*m.Wire + m.EchoServerTurnaround
	return Result{Label: "(UDP)", Real: real, TotalCPU: cpu, UserCPU: user, KernelCPU: kernel, Profile: prof}
}

// TCPEcho models the client of Figure 4.6: read and write on an
// established byte stream; kernel-managed timers (§4.4.1).
func (m Model) TCPEcho() Result {
	kernel := m.TCPWrite + m.TCPRead
	user := 0.5
	cpu := kernel + user
	real := cpu + 2*m.Wire + m.EchoServerTurnaround + 2.5 // stream bookkeeping
	return Result{Label: "(TCP)", Real: real, TotalCPU: cpu, UserCPU: user, KernelCPU: kernel, Profile: map[string]float64{}}
}

// CircusCall models one Circus replicated procedure call from an
// unreplicated client to a server troupe of degree n, with multicast
// simulated by successive sendmsg operations (§4.4.1).
//
// Client schedule per call: marshal and send the call message to each
// member (user + sendmsg each); then collect n return messages, each
// via select + recvmsg plus user-mode processing; fixed overhead of
// two setitimer (retransmission timer on and off), two gettimeofday
// (§4.4.1 instrumentation and timeouts) and sigblock-protected
// critical regions throughout.
func (m Model) CircusCall(n int) Result {
	prof := map[string]float64{
		Sendmsg:      float64(n) * m.Cost[Sendmsg],
		Recvmsg:      float64(n) * m.Cost[Recvmsg],
		Select:       float64(n) * m.Cost[Select],
		Setitimer:    2 * m.Cost[Setitimer],
		Gettimeofday: float64(n) * m.Cost[Gettimeofday],
		Sigblock:     float64(m.SigblockPerMember*n+m.SigblockFixed) * m.Cost[Sigblock],
	}
	kernel := float64(n) * m.KernelExtraPerMember
	for _, v := range prof {
		kernel += v
	}
	user := m.UserFixed + float64(n)*m.UserPerMember
	cpu := kernel + user

	real := m.realTime(n, cpu)
	return Result{
		Label:     itoa(n),
		Real:      real,
		TotalCPU:  cpu,
		UserCPU:   user,
		KernelCPU: kernel,
		Profile:   prof,
	}
}

// realTime runs the discrete-event portion: the client's send phase is
// serial (one sendmsg per member); servers turn calls around in
// parallel; the client then drains returns, idling only when none has
// arrived yet. This reproduces the observation of §4.4.1 that the
// protocol achieves some parallelism among the message exchanges —
// the real-time increment per member (10–20 ms) is below a full UDP
// exchange — while every component still grows linearly.
func (m Model) realTime(n int, cpu float64) float64 {
	sendCost := m.Cost[Sendmsg] + m.UserPerMember/2
	prologue := 2*m.Cost[Setitimer] + m.Cost[Gettimeofday]

	// Return message i becomes receivable at:
	ready := make([]float64, n)
	for i := 0; i < n; i++ {
		sent := prologue + float64(i+1)*sendCost
		ready[i] = sent + m.Wire + m.ServerTurnaround + m.Wire
	}
	// Receive phase: process returns in arrival order.
	recvCost := m.Cost[Select] + m.Cost[Recvmsg] + m.UserPerMember/2 +
		float64(m.SigblockPerMember)*m.Cost[Sigblock] + m.Cost[Gettimeofday]
	t := prologue + float64(n)*sendCost
	for i := 0; i < n; i++ {
		if ready[i] > t {
			t = ready[i] // idle until the next return arrives
		}
		t += recvCost
	}
	epilogue := cpu - (prologue + float64(n)*sendCost + float64(n)*recvCost)
	if epilogue > 0 {
		t += epilogue
	}
	return t
}

// CircusCallMulticast models the more efficient implementation of
// §4.4.2: one multicast sendmsg reaches the whole troupe, and the
// total time is dominated by waiting for the slowest of n
// exponentially distributed server round trips — E[T] = H_n·r.
func (m Model) CircusCallMulticast(n int, rng *rand.Rand) Result {
	prof := map[string]float64{
		Sendmsg:      m.Cost[Sendmsg],
		Recvmsg:      float64(n) * m.Cost[Recvmsg],
		Select:       float64(n+1) * m.Cost[Select],
		Setitimer:    2 * m.Cost[Setitimer],
		Gettimeofday: 2 * m.Cost[Gettimeofday],
		Sigblock:     float64(m.SigblockPerMember*n+m.SigblockFixed) * m.Cost[Sigblock],
	}
	kernel := float64(n) * m.KernelExtraPerMember
	for _, v := range prof {
		kernel += v
	}
	user := m.UserFixed + float64(n)*m.UserPerMember/2
	cpu := kernel + user

	// Round trips are exponential with mean r (the paper's analysis);
	// the call completes when the slowest return is in.
	// The §4.4.2 analysis idealizes receive processing as overlapped
	// with waiting: total time is one send plus the slowest of n
	// exponential round trips.
	r := 2*m.Wire + m.ServerTurnaround
	slowest := probmodel.SampleMaxExponential(n, r, rng)
	real := m.Cost[Sendmsg] + slowest
	return Result{Label: itoa(n), Real: real, TotalCPU: cpu, UserCPU: user, KernelCPU: kernel, Profile: prof}
}

// ExpectedMulticastReal returns the analytic expectation of the
// multicast call time for averaging in benchmarks.
func (m Model) ExpectedMulticastReal(n int) float64 {
	r := 2*m.Wire + m.ServerTurnaround
	return m.Cost[Sendmsg] + probmodel.ExpectedMaxExponential(n, r)
}

// Table41 regenerates Table 4.1: UDP, TCP, and Circus at degrees 1–5.
func (m Model) Table41() []Result {
	rows := []Result{m.UDPEcho(), m.TCPEcho()}
	for n := 1; n <= 5; n++ {
		rows = append(rows, m.CircusCall(n))
	}
	return rows
}

// ProfileRow is one row of Table 4.3: the percentage of total client
// CPU time per syscall.
type ProfileRow struct {
	Degree  int
	Percent map[string]float64
	// SixCallTotal is the share of CPU accounted for by all six
	// syscalls together — the paper's "more than half" observation.
	SixCallTotal float64
}

// Table43 regenerates Table 4.3 from the same schedules as Table 4.1.
func (m Model) Table43() []ProfileRow {
	var rows []ProfileRow
	for n := 1; n <= 5; n++ {
		res := m.CircusCall(n)
		row := ProfileRow{Degree: n, Percent: map[string]float64{}}
		for name, ms := range res.Profile {
			row.Percent[name] = 100 * ms / res.TotalCPU
			row.SixCallTotal += row.Percent[name]
		}
		rows = append(rows, row)
	}
	return rows
}

// SyscallNames returns the profiled syscall names in Table 4.2 order.
func SyscallNames() []string {
	return []string{Sendmsg, Recvmsg, Select, Setitimer, Gettimeofday, Sigblock}
}

// SortedProfile renders a profile as (name, ms) pairs in descending
// cost order.
func SortedProfile(p map[string]float64) []struct {
	Name string
	MS   float64
} {
	type kv = struct {
		Name string
		MS   float64
	}
	var out []kv
	for k, v := range p {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MS > out[j].MS })
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
