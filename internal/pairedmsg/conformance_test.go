package pairedmsg

import (
	"bytes"
	"context"
	"testing"
	"time"

	"circus/internal/netsim"
	"circus/internal/trace"
	"circus/internal/trace/check"
)

// These tests drive the paired message protocol against adverse
// networks, record its trace, and replay the trace through the offline
// conformance checker: the retransmission schedule itself — not just
// the end-to-end outcome — must respect the configured bounds.

// TestFixedRetransmitScheduleConformance blackholes the peer and
// verifies that every retransmission pass is spaced at least the
// configured interval apart, for the full MaxRetries budget.
func TestFixedRetransmitScheduleConformance(t *testing.T) {
	opts := fastOpts()
	p, rec := newPairTraced(t, 21, netsim.LinkConfig{}, opts)
	p.net.Crash(p.b.Addr().Host)

	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("void")); err != ErrPeerDown {
		t.Fatalf("send to blackholed peer: err = %v, want ErrPeerDown", err)
	}

	isRetx := func(e trace.Event) bool {
		return e.Kind == trace.KindSegRetransmit && e.CallNum == cn
	}
	if got := rec.Count(isRetx); got != opts.MaxRetries {
		t.Fatalf("retransmit passes = %d, want the full budget %d", got, opts.MaxRetries)
	}
	vs := check.Check(rec.Events(), check.Config{
		RetransmitInterval: opts.RetransmitInterval,
	})
	if len(vs) != 0 {
		t.Fatalf("conformance violations:\n%v", check.Strings(vs))
	}
}

// TestAdaptiveRetransmitScheduleConformance warms the RTT estimator
// with clean round trips, then blackholes the peer: the retransmission
// gaps must start at or above MinRTO and grow monotonically (doubling
// until the MaxRTO clamp), and — Karn's rule — no RTT sample may be
// taken from a retransmitted exchange.
func TestAdaptiveRetransmitScheduleConformance(t *testing.T) {
	opts := fastOpts()
	opts.Adaptive = true
	p, rec := newPairTraced(t, 22, netsim.LinkConfig{}, opts)

	go func() {
		for m := range p.b.Incoming() {
			if m.Type == Call {
				p.b.StartSend(m.From, Return, m.CallNum, m.Data)
			}
		}
	}()
	for i := 0; i < 3; i++ {
		cn := p.a.NextCallNum(p.b.Addr())
		if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("warm")); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
		recvMsg(t, p.a, time.Second)
	}
	if rec.Count(trace.ByKind(trace.KindRTTSample)) == 0 {
		t.Fatal("warmup produced no RTT samples")
	}

	p.net.Crash(p.b.Addr().Host)
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("void")); err != ErrPeerDown {
		t.Fatalf("send to blackholed peer: err = %v, want ErrPeerDown", err)
	}
	if rec.Count(func(e trace.Event) bool {
		return e.Kind == trace.KindSegRetransmit && e.CallNum == cn
	}) == 0 {
		t.Fatal("no retransmissions before the crash declaration")
	}

	vs := check.Check(rec.Events(), check.Config{
		Adaptive: true,
		MinRTO:   2 * time.Millisecond, // the layer's default clamp
	})
	if len(vs) != 0 {
		t.Fatalf("conformance violations:\n%v", check.Strings(vs))
	}
}

// TestKarnRuleUnderLoss runs a lossy echo workload and verifies, from
// the trace, that no exchange that needed a retransmission contributed
// an RTT sample (its round-trip time is ambiguous, §4.2.4 / Karn).
func TestKarnRuleUnderLoss(t *testing.T) {
	opts := fastOpts()
	opts.Adaptive = true
	p, rec := newPairTraced(t, 23, netsim.LinkConfig{LossRate: 0.3}, opts)

	go func() {
		for m := range p.b.Incoming() {
			if m.Type == Call {
				p.b.StartSend(m.From, Return, m.CallNum, m.Data)
			}
		}
	}()
	payload := bytes.Repeat([]byte("k"), 3*maxSegPayload)
	for i := 0; i < 20; i++ {
		cn := p.a.NextCallNum(p.b.Addr())
		// At 30% loss an exchange can exhaust its retry budget and be
		// declared down; that is fine here — the schedule of the
		// retransmissions it did make is still checked.
		if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, payload); err != nil {
			continue
		}
		recvMsg(t, p.a, 2*time.Second)
	}

	if rec.Count(trace.ByKind(trace.KindSegRetransmit)) == 0 {
		t.Skip("lossy link produced no retransmissions; Karn check vacuous")
	}
	vs := check.Check(rec.Events(), check.Config{
		Adaptive: true,
		MinRTO:   2 * time.Millisecond,
	})
	for _, v := range vs {
		if v.Invariant == "karn-rule" {
			t.Errorf("Karn violation: %s", v)
		}
	}
}
