package pairedmsg

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"circus/internal/udptrans"
)

// newUDPPair wires two Conns over real sharded UDP sockets. The
// Sharded endpoint implements transport.Dispatcher, so this exercises
// the handler-mode delivery path (pooled buffers, SPSC ring, no recv
// channel) end to end, including the io_uring batch sender when the
// kernel grants it.
func newUDPPair(t *testing.T, shards int, opts Options) (a, b *Conn) {
	t.Helper()
	epA, err := udptrans.ListenSharded(0, shards)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	epB, err := udptrans.ListenSharded(0, shards)
	if err != nil {
		t.Fatalf("ListenSharded: %v", err)
	}
	a, b = New(epA, opts), New(epB, opts)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestUDPShardedExchange(t *testing.T) {
	a, b := newUDPPair(t, 2, fastOpts())
	cn := a.NextCallNum(b.Addr())
	if err := a.Send(context.Background(), b.Addr(), Call, cn, []byte("over real sockets")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, ok := recvMsg(t, b, 2*time.Second)
	if !ok {
		t.Fatal("call not delivered over UDP")
	}
	if string(m.Data) != "over real sockets" {
		t.Fatalf("data = %q", m.Data)
	}
	m.Release()
	if err := b.Send(context.Background(), a.Addr(), Return, m.CallNum, []byte("ack")); err != nil {
		t.Fatalf("Return: %v", err)
	}
	r, ok := recvMsg(t, a, 2*time.Second)
	if !ok {
		t.Fatal("return not delivered over UDP")
	}
	if string(r.Data) != "ack" {
		t.Fatalf("return data = %q", r.Data)
	}
	r.Release()
}

func TestUDPShardedMultiSegment(t *testing.T) {
	a, b := newUDPPair(t, 2, fastOpts())
	// Larger than one segment: exercises reassembly from pooled
	// buffers delivered by different recvmmsg bursts.
	big := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB
	cn := a.NextCallNum(b.Addr())
	if err := a.Send(context.Background(), b.Addr(), Call, cn, big); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, ok := recvMsg(t, b, 2*time.Second)
	if !ok {
		t.Fatal("multi-segment message not delivered over UDP")
	}
	if !bytes.Equal(m.Data, big) {
		t.Fatalf("reassembled %d bytes, want %d (corrupt=%v)",
			len(m.Data), len(big), !bytes.Equal(m.Data, big))
	}
	m.Release()
}

func TestUDPShardedManyExchanges(t *testing.T) {
	a, b := newUDPPair(t, 2, fastOpts())
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			m, ok := recvMsg(t, b, 2*time.Second)
			if !ok {
				done <- fmt.Errorf("message %d not delivered", i)
				return
			}
			err := b.Send(context.Background(), a.Addr(), Return, m.CallNum, m.Data)
			m.Release()
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 50; i++ {
		payload := []byte(fmt.Sprintf("call-%02d", i))
		cn := a.NextCallNum(b.Addr())
		if err := a.Send(context.Background(), b.Addr(), Call, cn, payload); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		r, ok := recvMsg(t, a, 2*time.Second)
		if !ok {
			t.Fatalf("return %d not delivered", i)
		}
		if !bytes.Equal(r.Data, payload) {
			t.Fatalf("return %d = %q, want %q", i, r.Data, payload)
		}
		r.Release()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
