package pairedmsg

import (
	"context"
	"testing"
	"time"

	"circus/internal/netsim"
)

// TestDelayedAckIsCumulativeStandalone: a completed return whose
// receiver has nothing else to say still gets acknowledged — by the
// delayed-ack timer, in one standalone datagram — and the delay stays
// far enough below the sender's RTO that no spurious retransmission
// fires.
func TestDelayedAckIsCumulativeStandalone(t *testing.T) {
	p := newPair(t, 11, netsim.LinkConfig{}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("q")); err != nil {
		t.Fatalf("Send call: %v", err)
	}
	m, ok := recvMsg(t, p.b, time.Second)
	if !ok {
		t.Fatal("call not delivered")
	}
	// The client goes quiet after this: the return's ack cannot
	// piggyback and must fire from the delayed-ack timer.
	if err := p.b.Send(context.Background(), p.a.Addr(), Return, m.CallNum, []byte("r")); err != nil {
		t.Fatalf("Send return: %v", err)
	}
	if got := p.b.Stats().Retransmits; got != 0 {
		t.Errorf("server retransmitted %d times; delayed ack exceeded the RTO", got)
	}
	if got := p.a.Stats().AcksSent; got < 1 {
		t.Errorf("client sent %d acks, want >= 1", got)
	}
}

// TestAckPiggybacksOnNextCall: in a serial request/response loop the
// acknowledgment of return n rides in the same datagram as call n+1,
// so the steady-state exchange costs two datagrams, not three.
func TestAckPiggybacksOnNextCall(t *testing.T) {
	const rounds = 30
	p := newPair(t, 12, netsim.LinkConfig{}, fastOpts())
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		for i := 0; i < rounds; i++ {
			m, ok := recvMsg(t, p.b, 5*time.Second)
			if !ok {
				return
			}
			// Reply without blocking on the ack, the way a real server
			// turns around: the ack arrives later, piggybacked on the
			// client's next call.
			if _, err := p.b.StartSend(p.a.Addr(), Return, m.CallNum, []byte("reply")); err != nil {
				t.Errorf("StartSend return: %v", err)
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		cn := p.a.NextCallNum(p.b.Addr())
		if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("request")); err != nil {
			t.Fatalf("Send call %d: %v", i, err)
		}
	}
	<-serverDone

	if got := p.a.Stats().AcksPiggybacked; got < 1 {
		t.Errorf("AcksPiggybacked = %d, want >= 1", got)
	}
	if got := p.a.Stats().BundlesSent; got < 1 {
		t.Errorf("BundlesSent = %d, want >= 1", got)
	}
	// Naive accounting is three datagrams per exchange (call, return,
	// standalone ack). Piggybacking must do visibly better, even
	// allowing some timer-fired standalone acks.
	if dgrams := p.net.Stats().Datagrams; dgrams >= 3*rounds {
		t.Errorf("%d datagrams for %d exchanges, want < %d", dgrams, rounds, 3*rounds)
	}
}

// TestRetransmitTickCoalesces: a timer pass that retransmits several
// transfers to one peer packs them into bundles instead of paying one
// datagram per segment.
func TestRetransmitTickCoalesces(t *testing.T) {
	const transfers = 5
	p := newPair(t, 13, netsim.LinkConfig{}, fastOpts())
	p.net.SetLink(netsim.LinkConfig{LossRate: 1}) // black hole: everything retransmits
	for i := 0; i < transfers; i++ {
		cn := p.a.NextCallNum(p.b.Addr())
		if _, err := p.a.StartSend(p.b.Addr(), Call, cn, []byte("lost")); err != nil {
			t.Fatalf("StartSend %d: %v", i, err)
		}
	}
	// Let a few retransmission passes fire.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := p.a.Stats()
		if st.Retransmits >= transfers && st.BundlesSent >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats after 2s: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := p.a.Stats()
	if st.BundledFrames < 2 {
		t.Errorf("BundledFrames = %d, want >= 2 (a tick's retransmits share datagrams)", st.BundledFrames)
	}
	// The wire must carry fewer datagrams than segments sent, or
	// coalescing did nothing.
	if d, s := p.net.Stats().Datagrams, st.SegmentsSent+st.Retransmits; d >= s {
		t.Errorf("%d datagrams for %d transmitted segments; no coalescing", d, s)
	}
}

// TestCloseWithPendingDelayedAck: closing a conn with a delayed ack
// armed and transfers in flight must stop the timers without panics,
// deadlocks, or races (run with -race -count=20 in CI).
func TestCloseWithPendingDelayedAck(t *testing.T) {
	for i := 0; i < 10; i++ {
		p := newPair(t, int64(20+i), netsim.LinkConfig{}, fastOpts())
		cn := p.a.NextCallNum(p.b.Addr())
		if _, err := p.a.StartSend(p.b.Addr(), Call, cn, []byte("x")); err != nil {
			t.Fatalf("StartSend call: %v", err)
		}
		m, ok := recvMsg(t, p.b, time.Second)
		if !ok {
			t.Fatal("call not delivered")
		}
		if _, err := p.b.StartSend(p.a.Addr(), Return, m.CallNum, []byte("y")); err != nil {
			t.Fatalf("StartSend return: %v", err)
		}
		if _, ok := recvMsg(t, p.a, time.Second); !ok {
			t.Fatal("return not delivered")
		}
		// The return's delayed ack is now pending at a. Close both
		// ends before (and while) the timer fires.
		p.a.Close()
		p.b.Close()
	}
}

// TestAckDelayDisabled: AckDelay < 0 restores eager acknowledgment —
// every completed return is acked immediately, no timers involved.
func TestAckDelayDisabled(t *testing.T) {
	opts := fastOpts()
	opts.AckDelay = -1
	p := newPair(t, 14, netsim.LinkConfig{}, opts)
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("q")); err != nil {
		t.Fatalf("Send call: %v", err)
	}
	m, ok := recvMsg(t, p.b, time.Second)
	if !ok {
		t.Fatal("call not delivered")
	}
	start := time.Now()
	if err := p.b.Send(context.Background(), p.a.Addr(), Return, m.CallNum, []byte("r")); err != nil {
		t.Fatalf("Send return: %v", err)
	}
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Errorf("eager ack took %v; looks delayed", d)
	}
	if got := p.a.Stats().AcksSent; got < 1 {
		t.Errorf("AcksSent = %d, want >= 1", got)
	}
}
