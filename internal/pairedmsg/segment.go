package pairedmsg

import (
	"encoding/binary"
	"errors"

	"circus/internal/transport"
)

// MsgType distinguishes the two halves of a paired message exchange
// (§4.2.1).
type MsgType uint8

const (
	// Call is a call message (message type byte 0).
	Call MsgType = 0
	// Return is a return message (message type byte 1).
	Return MsgType = 1
)

func (t MsgType) String() string {
	if t == Call {
		return "call"
	}
	return "return"
}

// Control bits (§4.2.1): the least significant bit is the please-ack
// flag, the next is the ack flag; the six most significant bits are
// unused.
const (
	ctlPleaseAck = 1 << 0
	ctlAck       = 1 << 1
)

// headerLen is the fixed segment header size of Figure 4.2: message
// type (1), control bits (1), total segments (1), segment number (1),
// call number (4).
const headerLen = 8

// callNumOff is the byte offset of the call number within the header;
// BeginCall stamps a late-allocated call number into prepared segments
// at this offset.
const callNumOff = 4

// maxSegPayload is the data carried per segment; segments must fit in
// one datagram (§4.2.4).
const maxSegPayload = transport.MaxDatagram - headerLen

// maxSegments is the limit imposed by the one-byte total segments
// field (§4.2.1: 1 to 255 inclusive).
const maxSegments = 255

// MaxMessage is the largest message the protocol can carry.
const MaxMessage = maxSegments * maxSegPayload

// ErrMessageTooLarge is returned by Send for messages over MaxMessage.
var ErrMessageTooLarge = errors.New("pairedmsg: message exceeds 255 segments")

// segHeader is the decoded form of the Figure 4.2 segment header.
type segHeader struct {
	typ       MsgType
	pleaseAck bool
	ack       bool
	totalSegs uint8 // 0 means a probe/control segment with no message body
	segNum    uint8 // data: 1..totalSegs; ack: acknowledgment number 0..totalSegs
	callNum   uint32
}

// put writes the header into buf[:headerLen], which the caller has
// already sized; it is the allocation-free core of encode, also used
// to stamp headers into pooled control buffers and the contiguous
// segment backing of segmentMessage.
func (h segHeader) put(buf []byte) {
	buf[0] = byte(h.typ)
	var ctl byte
	if h.pleaseAck {
		ctl |= ctlPleaseAck
	}
	if h.ack {
		ctl |= ctlAck
	}
	buf[1] = ctl
	buf[2] = h.totalSegs
	buf[3] = h.segNum
	binary.BigEndian.PutUint32(buf[4:8], h.callNum)
}

func (h segHeader) encode(payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	h.put(buf)
	copy(buf[headerLen:], payload)
	return buf
}

var errShortSegment = errors.New("pairedmsg: segment shorter than header")

func decodeSegment(data []byte) (segHeader, []byte, error) {
	if len(data) < headerLen {
		return segHeader{}, nil, errShortSegment
	}
	h := segHeader{
		typ:       MsgType(data[0] & 1),
		pleaseAck: data[1]&ctlPleaseAck != 0,
		ack:       data[1]&ctlAck != 0,
		totalSegs: data[2],
		segNum:    data[3],
		callNum:   binary.BigEndian.Uint32(data[4:8]),
	}
	return h, data[headerLen:], nil
}

// segmentMessage splits msg into datagram-sized segments with headers,
// numbered starting at 1 (§4.2.2).
func segmentMessage(typ MsgType, callNum uint32, msg []byte) ([][]byte, error) {
	n := (len(msg) + maxSegPayload - 1) / maxSegPayload
	if n == 0 {
		n = 1 // an empty message still occupies one segment
	}
	if n > maxSegments {
		return nil, ErrMessageTooLarge
	}
	// One contiguous backing array holds every segment: two
	// allocations per message instead of one per segment.
	backing := make([]byte, n*headerLen+len(msg))
	segs := make([][]byte, n)
	off := 0
	for i := 0; i < n; i++ {
		lo := i * maxSegPayload
		hi := lo + maxSegPayload
		if hi > len(msg) {
			hi = len(msg)
		}
		h := segHeader{
			typ:       typ,
			totalSegs: uint8(n),
			segNum:    uint8(i + 1),
			callNum:   callNum,
		}
		segLen := headerLen + (hi - lo)
		seg := backing[off : off+segLen : off+segLen]
		h.put(seg)
		copy(seg[headerLen:], msg[lo:hi])
		segs[i] = seg
		off += segLen
	}
	return segs, nil
}
