package pairedmsg

import (
	"encoding/binary"
	"sync"

	"circus/internal/transport"
)

// Segment coalescing (DESIGN.md "Wire economy"): several small
// segments bound for the same peer — acknowledgments, probes, short
// call/return messages, retransmissions due in the same timer tick —
// are packed into one datagram, so a tick that retransmits k transfers
// to one peer costs one sendmsg instead of k. The paper's cost
// breakdown (Table 4.2) charges every datagram a full send operation,
// which is exactly the cost this amortizes.
//
// A bundle is a framing wrapper, not a new segment type:
//
//	byte 0      bundleMagic (0xC5)
//	byte 1      frame count (1..255)
//	then per frame:
//	  2 bytes   big-endian frame length
//	  n bytes   one ordinary Figure 4.2 segment
//
// The magic can never collide with a plain segment: byte 0 of a real
// segment is its message type, always 0 or 1 (§4.2.1). A receiver that
// sees anything else treats the datagram by the usual rule — garbled
// means lost (§2.2) — so a bundle is decoded only deliberately.

// bundleMagic marks a coalesced datagram. Plain segments begin with
// the message type byte (0 or 1), so any other value is free.
const bundleMagic = 0xC5

// bundleHdrLen is the fixed bundle prefix: magic + frame count.
const bundleHdrLen = 2

// bundleFrameHdrLen is the per-frame length prefix.
const bundleFrameHdrLen = 2

// bundleBufs pools full-MTU staging buffers for outgoing bundles.
var bundleBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, transport.MaxDatagram)
	return &b
}}

// bundleFits reports whether a frame of n payload bytes can ever ride
// in a bundle (alone or with company). Full-size segments cannot — the
// four bytes of framing overhead would push them past the MTU — and
// are always sent raw.
func bundleFits(n int) bool {
	return bundleHdrLen+bundleFrameHdrLen+n <= transport.MaxDatagram
}

// appendBundleFrame appends one length-prefixed frame to a bundle
// under construction and bumps the count byte. The caller has checked
// capacity with room >= bundleFrameHdrLen+len(seg).
func appendBundleFrame(buf []byte, seg []byte) []byte {
	var lenb [bundleFrameHdrLen]byte
	binary.BigEndian.PutUint16(lenb[:], uint16(len(seg)))
	buf = append(buf, lenb[:]...)
	buf = append(buf, seg...)
	buf[1]++ // frame count
	return buf
}

// decodeBundle walks a coalesced datagram, yielding each contained
// segment in order. It is deliberately tolerant: a truncated,
// oversized, or otherwise inconsistent frame ends the walk — the
// remaining frames are treated as lost, which the retransmission
// machinery already masks (§2.2: garbled means lost). It never
// panics on arbitrary input (see FuzzBundleDecode).
func decodeBundle(data []byte, yield func(frame []byte)) {
	if len(data) < bundleHdrLen || data[0] != bundleMagic {
		return
	}
	count := int(data[1])
	off := bundleHdrLen
	for i := 0; i < count; i++ {
		if off+bundleFrameHdrLen > len(data) {
			return // truncated length prefix
		}
		flen := int(binary.BigEndian.Uint16(data[off : off+bundleFrameHdrLen]))
		off += bundleFrameHdrLen
		if flen < headerLen || off+flen > len(data) {
			return // frame shorter than a segment header, or overruns
		}
		yield(data[off : off+flen])
		off += flen
	}
}
