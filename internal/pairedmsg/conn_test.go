package pairedmsg

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"circus/internal/netsim"
	"circus/internal/trace"
	"circus/internal/transport"
)

// fastOpts keeps test wall time low.
func fastOpts() Options {
	return Options{
		RetransmitInterval: 10 * time.Millisecond,
		MaxRetries:         15,
		ProbeInterval:      15 * time.Millisecond,
		ProbeMissLimit:     4,
		CompletedTTL:       time.Second,
	}
}

type pair struct {
	net  *netsim.Network
	a, b *Conn
}

func newPair(t *testing.T, seed int64, link netsim.LinkConfig, opts Options) pair {
	t.Helper()
	n := netsim.New(seed)
	n.SetLink(link)
	epA, err := n.Listen(n.NewHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := n.Listen(n.NewHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(epA, opts), New(epB, opts)
	t.Cleanup(func() { a.Close(); b.Close() })
	return pair{net: n, a: a, b: b}
}

// newPairTraced is newPair with a shared in-memory trace recorder
// attached to both connections, so tests can wait for specific
// protocol events instead of sleeping for fixed intervals.
func newPairTraced(t *testing.T, seed int64, link netsim.LinkConfig, opts Options) (pair, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder()
	opts.Trace = rec
	return newPair(t, seed, link, opts), rec
}

func recvMsg(t *testing.T, c *Conn, timeout time.Duration) (Message, bool) {
	t.Helper()
	select {
	case m, ok := <-c.Incoming():
		return m, ok
	case <-time.After(timeout):
		return Message{}, false
	}
}

func TestSimpleExchange(t *testing.T) {
	p := newPair(t, 1, netsim.LinkConfig{}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("echo me")); err != nil {
		t.Fatalf("Send call: %v", err)
	}
	m, ok := recvMsg(t, p.b, time.Second)
	if !ok {
		t.Fatal("call not delivered")
	}
	if m.Type != Call || m.CallNum != cn || string(m.Data) != "echo me" {
		t.Fatalf("got %+v", m)
	}
	if err := p.b.Send(context.Background(), p.a.Addr(), Return, cn, []byte("result")); err != nil {
		t.Fatalf("Send return: %v", err)
	}
	r, ok := recvMsg(t, p.a, time.Second)
	if !ok {
		t.Fatal("return not delivered")
	}
	if r.Type != Return || string(r.Data) != "result" {
		t.Fatalf("got %+v", r)
	}
}

func TestEmptyMessage(t *testing.T) {
	p := newPair(t, 1, netsim.LinkConfig{}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, ok := recvMsg(t, p.b, time.Second)
	if !ok {
		t.Fatal("empty message not delivered")
	}
	if len(m.Data) != 0 {
		t.Fatalf("data = %q, want empty", m.Data)
	}
}

func TestMultiSegmentMessage(t *testing.T) {
	p := newPair(t, 2, netsim.LinkConfig{}, fastOpts())
	msg := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16000 bytes, ~11 segments
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, ok := recvMsg(t, p.b, 2*time.Second)
	if !ok {
		t.Fatal("message not delivered")
	}
	if !bytes.Equal(m.Data, msg) {
		t.Fatalf("reassembled %d bytes incorrectly", len(m.Data))
	}
}

func TestMessageTooLarge(t *testing.T) {
	p := newPair(t, 1, netsim.LinkConfig{}, fastOpts())
	_, err := p.a.StartSend(p.b.Addr(), Call, 1, make([]byte, MaxMessage+1))
	if err != ErrMessageTooLarge {
		t.Fatalf("err = %v, want ErrMessageTooLarge", err)
	}
}

func TestLossRecovery(t *testing.T) {
	p := newPair(t, 3, netsim.LinkConfig{LossRate: 0.3}, fastOpts())
	msg := bytes.Repeat([]byte("x"), 10*maxSegPayload)
	cn := p.a.NextCallNum(p.b.Addr())
	errc := make(chan error, 1)
	go func() { errc <- p.a.Send(context.Background(), p.b.Addr(), Call, cn, msg) }()
	m, ok := recvMsg(t, p.b, 5*time.Second)
	if !ok {
		t.Fatal("message not delivered under 30% loss")
	}
	if !bytes.Equal(m.Data, msg) {
		t.Fatal("corrupted reassembly under loss")
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
	if st := p.a.Stats(); st.Retransmits == 0 {
		t.Error("expected retransmissions under loss")
	}
}

func TestDuplicationSuppressed(t *testing.T) {
	// DupRate 1: every datagram arrives twice, so the receiver is
	// guaranteed to see (and must suppress) a duplicate call segment.
	p, rec := newPairTraced(t, 4, netsim.LinkConfig{DupRate: 1}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("once")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvMsg(t, p.b, time.Second); !ok {
		t.Fatal("message not delivered")
	}
	// Wait until the receiver has demonstrably suppressed the
	// duplicate, then verify no second delivery surfaced.
	if _, ok := rec.Wait(2*time.Second, func(e trace.Event) bool {
		return e.Kind == trace.KindDupSegment && e.Node == p.b.Addr() && e.CallNum == cn
	}); !ok {
		t.Fatal("duplicate segment never reached the receiver")
	}
	select {
	case m := <-p.b.Incoming():
		t.Fatalf("duplicate delivery: %+v", m)
	default:
	}
}

func TestRetransmitReplayIgnoredAfterDelivery(t *testing.T) {
	// A replayed call segment after completion must be acked but not
	// redelivered (§4.2.4 replay prevention).
	p, rec := newPairTraced(t, 5, netsim.LinkConfig{}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, p.b, time.Second); !ok {
		t.Fatal("not delivered")
	}
	// Replay the completed call from the original sender: the exchange
	// is still inside b's CompletedTTL window, so the segment must be
	// re-acked and suppressed rather than redelivered.
	if _, err := p.a.StartSend(p.b.Addr(), Call, cn, []byte("m")); err != nil {
		t.Fatalf("replaying completed call: %v", err)
	}
	if _, ok := rec.Wait(2*time.Second, func(e trace.Event) bool {
		return e.Kind == trace.KindDupSegment && e.Node == p.b.Addr() && e.CallNum == cn
	}); !ok {
		t.Fatal("replayed segment was not suppressed as a duplicate")
	}
	select {
	case m := <-p.b.Incoming():
		t.Fatalf("unexpected delivery %+v", m)
	default:
	}
}

func TestImplicitAckByReturn(t *testing.T) {
	// With no loss, the return message should implicitly acknowledge
	// the call: the client's Send completes without explicit acks
	// having been required from the server beyond the return itself.
	p := newPair(t, 6, netsim.LinkConfig{}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())

	done := make(chan error, 1)
	go func() { done <- p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("q")) }()

	m, ok := recvMsg(t, p.b, time.Second)
	if !ok {
		t.Fatal("call not delivered")
	}
	if err := p.b.Send(context.Background(), p.a.Addr(), Return, m.CallNum, []byte("a")); err != nil {
		t.Fatalf("return send: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("call send: %v", err)
	}
	if _, ok := recvMsg(t, p.a, time.Second); !ok {
		t.Fatal("return not delivered")
	}
}

func TestSendToCrashedPeerReportsDown(t *testing.T) {
	p := newPair(t, 7, netsim.LinkConfig{}, fastOpts())
	p.net.Crash(p.b.Addr().Host)
	cn := p.a.NextCallNum(p.b.Addr())
	err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("x"))
	if err != ErrPeerDown {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
}

func TestSendContextCancel(t *testing.T) {
	p := newPair(t, 8, netsim.LinkConfig{LossRate: 1}, fastOpts())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	cn := p.a.NextCallNum(p.b.Addr())
	err := p.a.Send(ctx, p.b.Addr(), Call, cn, []byte("x"))
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestWatchDetectsCrash(t *testing.T) {
	p := newPair(t, 9, netsim.LinkConfig{}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("work")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, p.b, time.Second); !ok {
		t.Fatal("call not delivered")
	}
	w := p.a.WatchPeer(p.b.Addr(), cn)
	defer w.Stop()
	p.net.Crash(p.b.Addr().Host)
	select {
	case <-w.Down():
	case <-time.After(3 * time.Second):
		t.Fatal("crash not detected by probing")
	}
}

func TestWatchStaysUpWhileServerAlive(t *testing.T) {
	p, rec := newPairTraced(t, 10, netsim.LinkConfig{}, fastOpts())
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("long work")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, p.b, time.Second); !ok {
		t.Fatal("call not delivered")
	}
	w := p.a.WatchPeer(p.b.Addr(), cn)
	defer w.Stop()
	// Wait for two probe rounds to demonstrably go out (the live peer
	// answers each, so the miss counter never reaches the limit); the
	// watch must still consider the peer alive.
	if _, ok := rec.WaitN(2*time.Second, 2, func(e trace.Event) bool {
		return e.Kind == trace.KindProbeSend && e.Node == p.a.Addr()
	}); !ok {
		t.Fatal("no probes sent while watching the long execution")
	}
	select {
	case <-w.Down():
		t.Fatal("live peer declared down")
	default:
	}
	if st := p.a.Stats(); st.ProbesSent == 0 {
		t.Error("no probes were sent during the long execution")
	}
}

func TestNextCallNumMonotonicPerPeer(t *testing.T) {
	p := newPair(t, 11, netsim.LinkConfig{}, fastOpts())
	x := p.a.NextCallNum(p.b.Addr())
	y := p.a.NextCallNum(p.b.Addr())
	if y != x+1 {
		t.Fatalf("call numbers not sequential: %d then %d", x, y)
	}
	// A fresh peer restarts the sequence from the connection's base —
	// randomized per incarnation so a restarted process cannot collide
	// with its predecessor's completed-exchange records.
	other := transport.Addr{Host: 99, Port: 1}
	z1 := p.a.NextCallNum(other)
	z2 := p.a.NextCallNum(other)
	if z2 != z1+1 {
		t.Fatalf("per-peer numbering broken: %d then %d for fresh peer", z1, z2)
	}
	if z1 == y+1 {
		t.Fatalf("fresh peer continued another peer's sequence at %d", z1)
	}
}

// TestRestartedConnAvoidsPredecessorCallNums: a new Conn on the same
// address (a restarted process, call state gone) must pick call
// numbers that do not land in the range its predecessor completed, or
// its fresh calls would be suppressed as duplicate replays for
// CompletedTTL (§4.2.4).
func TestRestartedConnAvoidsPredecessorCallNums(t *testing.T) {
	n := netsim.New(77)
	epA, err := n.Listen(n.NewHost(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := n.Listen(n.NewHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(epA, fastOpts()), New(epB, fastOpts())
	t.Cleanup(func() { b.Close() })

	// Server echoes every call.
	go func() {
		for m := range b.Incoming() {
			if m.Type == Call {
				b.StartSend(m.From, Return, m.CallNum, m.Data)
			}
		}
	}()

	first := a.NextCallNum(b.Addr())
	if err := a.Send(context.Background(), b.Addr(), Call, first, []byte("one")); err != nil {
		t.Fatalf("first incarnation send: %v", err)
	}
	if _, ok := recvMsg(t, a, time.Second); !ok {
		t.Fatal("first incarnation got no return")
	}
	a.Close()

	// Restart: same address, fresh protocol state.
	epA2, err := n.Listen(epA.Addr().Host, epA.Addr().Port)
	if err != nil {
		t.Fatal(err)
	}
	a2 := New(epA2, fastOpts())
	t.Cleanup(func() { a2.Close() })
	cn := a2.NextCallNum(b.Addr())
	if cn == first {
		t.Fatalf("restarted conn reused completed call number %d", cn)
	}
	if err := a2.Send(context.Background(), b.Addr(), Call, cn, []byte("two")); err != nil {
		t.Fatalf("restarted incarnation send: %v", err)
	}
	m, ok := recvMsg(t, a2, time.Second)
	if !ok {
		t.Fatal("restarted incarnation got no return: fresh call suppressed as replay")
	}
	if string(m.Data) != "two" {
		t.Fatalf("restarted incarnation got %q", m.Data)
	}
}

// TestAdaptiveRetransmitBackoff: in adaptive mode, retransmission
// passes to an unresponsive peer back off exponentially, so far fewer
// duplicate segments are sent than fixed mode's budget, while crash
// detection still fires within the MaxRetryTime budget.
func TestAdaptiveRetransmitBackoff(t *testing.T) {
	opts := fastOpts()
	opts.Adaptive = true
	p := newPair(t, 13, netsim.LinkConfig{}, opts)

	// Warm the estimator with one clean round trip.
	go func() {
		for m := range p.b.Incoming() {
			if m.Type == Call {
				p.b.StartSend(m.From, Return, m.CallNum, m.Data)
			}
		}
	}()
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	recvMsg(t, p.a, time.Second)

	// Now crash the peer's host and time the failure of the next send.
	p.net.Crash(p.b.Addr().Host)
	start := time.Now()
	cn = p.a.NextCallNum(p.b.Addr())
	err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("void"))
	elapsed := time.Since(start)
	if err != ErrPeerDown {
		t.Fatalf("send to crashed peer: err = %v, want ErrPeerDown", err)
	}
	budget := time.Duration(opts.MaxRetries) * opts.RetransmitInterval
	if elapsed > 4*budget {
		t.Fatalf("crash detection took %v, over 4x the fixed-mode budget %v", elapsed, budget)
	}
	st := p.a.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if st.Retransmits >= int64(opts.MaxRetries) {
		t.Fatalf("adaptive mode sent %d retransmits, want fewer than the fixed budget %d",
			st.Retransmits, opts.MaxRetries)
	}
}

func TestConcurrentExchanges(t *testing.T) {
	p := newPair(t, 12, netsim.LinkConfig{LossRate: 0.1}, fastOpts())
	const threads = 8

	// Server: echo every call.
	go func() {
		for m := range p.b.Incoming() {
			if m.Type != Call {
				continue
			}
			m := m
			go p.b.Send(context.Background(), m.From, Return, m.CallNum, m.Data)
		}
	}()

	var wg sync.WaitGroup
	results := make(map[uint32][]byte)
	var mu sync.Mutex
	got := make(chan Message, threads)
	go func() {
		for m := range p.a.Incoming() {
			if m.Type == Return {
				got <- m
			}
		}
	}()

	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cn := p.a.NextCallNum(p.b.Addr())
			body := []byte{byte(i), byte(i + 1)}
			mu.Lock()
			results[cn] = body
			mu.Unlock()
			if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, body); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	seen := 0
	deadline := time.After(5 * time.Second)
	for seen < threads {
		select {
		case m := <-got:
			mu.Lock()
			want := results[m.CallNum]
			mu.Unlock()
			if !bytes.Equal(m.Data, want) {
				t.Fatalf("call %d: echoed %v, want %v", m.CallNum, m.Data, want)
			}
			seen++
		case <-deadline:
			t.Fatalf("only %d of %d returns arrived", seen, threads)
		}
	}
}

func TestDuplicateCallNumberRejected(t *testing.T) {
	p := newPair(t, 13, netsim.LinkConfig{LossRate: 1}, fastOpts())
	if _, err := p.a.StartSend(p.b.Addr(), Call, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.a.StartSend(p.b.Addr(), Call, 7, []byte("y")); err == nil {
		t.Fatal("duplicate in-flight call number accepted")
	}
}

func TestCloseFailsPendingSends(t *testing.T) {
	p, rec := newPairTraced(t, 14, netsim.LinkConfig{LossRate: 1}, fastOpts())
	errc := make(chan error, 1)
	go func() {
		errc <- p.a.Send(context.Background(), p.b.Addr(), Call, 1, []byte("x"))
	}()
	// The transfer is demonstrably in flight once its initial send is
	// traced; Close must then fail it.
	if _, ok := rec.Wait(2*time.Second, func(e trace.Event) bool {
		return e.Kind == trace.KindMsgSend && e.Node == p.a.Addr() && e.CallNum == 1
	}); !ok {
		t.Fatal("pending send never started")
	}
	p.a.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending send not failed by Close")
	}
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, 2, []byte("x")); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
}

func TestRetransmitAllStrategy(t *testing.T) {
	opts := fastOpts()
	opts.Strategy = RetransmitAll
	p := newPair(t, 15, netsim.LinkConfig{LossRate: 0.4}, opts)
	msg := bytes.Repeat([]byte("y"), 6*maxSegPayload)
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, msg); err != nil {
		t.Fatalf("Send under loss with RetransmitAll: %v", err)
	}
	if m, ok := recvMsg(t, p.b, 5*time.Second); !ok || !bytes.Equal(m.Data, msg) {
		t.Fatal("message not delivered intact")
	}
}

func TestGarbledSegmentIgnored(t *testing.T) {
	p := newPair(t, 16, netsim.LinkConfig{}, fastOpts())
	// Short junk datagram straight to b's endpoint address.
	ep, err := p.net.Listen(p.net.NewHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.Send(p.b.Addr(), []byte{1, 2, 3})
	if _, ok := recvMsg(t, p.b, 50*time.Millisecond); ok {
		t.Fatal("garbled segment produced a delivery")
	}
	// Normal traffic still works afterwards.
	cn := p.a.NextCallNum(p.b.Addr())
	if err := p.a.Send(context.Background(), p.b.Addr(), Call, cn, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, p.b, time.Second); !ok {
		t.Fatal("delivery broken after garbled segment")
	}
}

func TestSegmentHeaderRoundTrip(t *testing.T) {
	h := segHeader{typ: Return, pleaseAck: true, totalSegs: 9, segNum: 3, callNum: 0xdeadbeef}
	enc := h.encode([]byte("payload"))
	got, payload, err := decodeSegment(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
	if string(payload) != "payload" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestSegmentMessageSizes(t *testing.T) {
	cases := []struct {
		size int
		want int
	}{
		{0, 1},
		{1, 1},
		{maxSegPayload, 1},
		{maxSegPayload + 1, 2},
		{5 * maxSegPayload, 5},
		{MaxMessage, 255},
	}
	for _, c := range cases {
		segs, err := segmentMessage(Call, 1, make([]byte, c.size))
		if err != nil {
			t.Fatalf("size %d: %v", c.size, err)
		}
		if len(segs) != c.want {
			t.Errorf("size %d: %d segments, want %d", c.size, len(segs), c.want)
		}
		total := 0
		for _, s := range segs {
			total += len(s) - headerLen
		}
		if total != c.size {
			t.Errorf("size %d: segments carry %d bytes", c.size, total)
		}
	}
}
