// Package pairedmsg implements the paired message protocol of §4.2: a
// connectionless, datagram-based layer that exchanges reliably
// delivered, variable-length call and return messages, identified by
// call numbers that are unique among all exchanges between a given
// pair of processes.
//
// The protocol segments messages larger than one datagram, numbers the
// segments, and uses acknowledgment and retransmission to mask loss
// and duplication (§4.2.2). Acknowledgments are explicit (a control
// segment with the ack bit) or implicit (a return segment acknowledges
// the call segments bearing the same call number). Crash detection
// uses probes — please-ack control segments — with a retry bound
// (§4.2.3): too low risks false crash reports, too high delays
// detection; both knobs are in Options.
//
// One deliberate deviation from the 1985 implementation is documented
// in DESIGN.md: because a Go process multiplexes many threads over one
// endpoint (Circus ran one heavyweight process per thread), the
// "later call number implicitly acknowledges the previous return"
// rule is unsound here — exchanges no longer strictly alternate.
// Instead, a completed return message is explicitly acknowledged at
// once, and the exact-match implicit acknowledgment (return n acks
// call n) is kept. The wire format of Figure 4.2 is unchanged.
package pairedmsg

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/trace"
	"circus/internal/transport"
)

// RetransmitStrategy selects which unacknowledged segments each
// retransmission pass resends (§4.2.4 discusses both).
type RetransmitStrategy int

const (
	// RetransmitFirst resends only the first unacknowledged segment,
	// as the Circus protocol does by default.
	RetransmitFirst RetransmitStrategy = iota
	// RetransmitAll resends every unacknowledged segment, appropriate
	// for lossier links (§4.2.4).
	RetransmitAll
)

// Options tunes the protocol timers. The zero value is replaced by
// defaults suitable for tests and the simulated network.
type Options struct {
	// RetransmitInterval is the pause between retransmission passes
	// for an unacknowledged message. In adaptive mode it is only the
	// initial estimate used before any round trip has been measured.
	RetransmitInterval time.Duration
	// MaxRetries bounds retransmission passes with no progress before
	// the peer is declared crashed (§4.2.3). In adaptive mode the
	// crash bound is MaxRetryTime instead, so that backoff does not
	// delay crash detection.
	MaxRetries int
	// Adaptive replaces the fixed retransmission interval with a
	// per-peer RTT estimate (the smoothed mean plus four times the
	// mean deviation, sampled only from exchanges that were never
	// retransmitted) and exponential backoff between passes, the
	// other side of the tradeoff §4.2.4 discusses: fewer duplicate
	// segments on slow or congested links, faster recovery on fast
	// ones. The fixed mode remains for the vaxsim ablations.
	Adaptive bool
	// MinRTO and MaxRTO clamp the adaptive retransmission interval.
	// Zero means 2ms and 25x RetransmitInterval respectively.
	MinRTO time.Duration
	MaxRTO time.Duration
	// MaxRetryTime bounds, in adaptive mode, how long retransmission
	// proceeds with no progress before the peer is declared crashed.
	// Zero means MaxRetries x RetransmitInterval — the same crash
	// detection budget as fixed mode.
	MaxRetryTime time.Duration
	// ProbeInterval is the pause between crash-detection probes while
	// awaiting a return message (§4.2.3).
	ProbeInterval time.Duration
	// ProbeMissLimit is the number of consecutive unanswered probes
	// after which the peer is declared crashed.
	ProbeMissLimit int
	// Strategy selects the retransmission strategy.
	Strategy RetransmitStrategy
	// CompletedTTL is how long the record of a completed exchange is
	// retained to suppress replay of delayed duplicate segments
	// (§4.2.4).
	CompletedTTL time.Duration
	// CallBase, when nonzero, sets the starting call number for fresh
	// peers (and the multicast counter). Zero derives a base from the
	// process-wide connection creation order and a per-launch salt, so
	// that a restarted process (whose call numbers would otherwise
	// reset to 1) does not reuse numbers its predecessor completed
	// within CompletedTTL — reused numbers would be suppressed as
	// duplicate replays. Call numbers are content the seeded
	// simulation's fault injection never inspects, so campaign
	// reproducibility is unaffected.
	CallBase uint32
	// Trace, when set, receives a structured event for every
	// protocol action: sends, retransmissions, acks, probes, crash
	// suspicions, RTT samples, duplicate suppressions, deliveries.
	// Nil disables tracing at near-zero cost.
	Trace trace.Sink
}

func (o Options) withDefaults() Options {
	if o.RetransmitInterval == 0 {
		o.RetransmitInterval = 40 * time.Millisecond
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 25
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 100 * time.Millisecond
	}
	if o.ProbeMissLimit == 0 {
		o.ProbeMissLimit = 8
	}
	if o.CompletedTTL == 0 {
		o.CompletedTTL = 30 * time.Second
	}
	if o.MinRTO == 0 {
		o.MinRTO = 2 * time.Millisecond
	}
	if o.MaxRTO == 0 {
		o.MaxRTO = 25 * o.RetransmitInterval
	}
	if o.MaxRetryTime == 0 {
		o.MaxRetryTime = time.Duration(o.MaxRetries) * o.RetransmitInterval
	}
	return o
}

// ErrPeerDown reports that retransmissions or probes to a peer went
// unanswered past the configured bound; the peer is presumed crashed
// (or unreachable — the protocol cannot tell a crash from a partition,
// §4.3.5).
var ErrPeerDown = errors.New("pairedmsg: peer presumed crashed")

// ErrClosed reports use of a closed Conn.
var ErrClosed = errors.New("pairedmsg: connection closed")

// Message is one fully reassembled incoming message.
type Message struct {
	From    transport.Addr
	Type    MsgType
	CallNum uint32
	Data    []byte
}

// Stats counts protocol activity, used by the ablation benchmarks.
type Stats struct {
	SegmentsSent      int64
	Retransmits       int64
	AcksSent          int64
	ProbesSent        int64
	DupSegments       int64
	MessagesDelivered int64
}

type key struct {
	peer    transport.Addr
	typ     MsgType
	callNum uint32
}

type outTransfer struct {
	k        key
	segs     [][]byte
	segsArr  [1][]byte // in-place backing of segs for single-segment sends
	acked    int       // highest consecutive segment acknowledged
	attempts int       // retransmission passes since last progress
	nextSend time.Time
	done     chan struct{}
	err      error

	// Adaptive-mode state (§4.2.4 tradeoff).
	firstSent time.Time     // when the initial transmission left
	deadline  time.Time     // no-progress crash deadline
	rto       time.Duration // current backoff interval
	retx      bool          // retransmitted at least once (Karn's rule)
}

// rttEstimator keeps the per-peer smoothed round-trip time and mean
// deviation (Jacobson/Karels), from which the retransmission timeout
// is derived as srtt + 4*rttvar.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	valid  bool
}

func (e *rttEstimator) sample(rtt time.Duration) {
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
		return
	}
	delta := rtt - e.srtt
	if delta < 0 {
		delta = -delta
	}
	e.rttvar = (3*e.rttvar + delta) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

func (e *rttEstimator) rto() time.Duration { return e.srtt + 4*e.rttvar }

type inTransfer struct {
	total     int
	segs      [][]byte  // segs[1..total]; nil marks a missing segment
	segArr    [4][]byte // in-place backing of segs for small messages
	have      int
	ackNum    int // highest consecutive segment received
	delivered bool
	doneAt    time.Time
}

// Watch monitors a peer for liveness while a return message is
// awaited (§4.2.3). Down is signalled if probes go unanswered.
type Watch struct {
	conn      *Conn
	k         key
	missed    int
	nextProbe time.Time
	down      chan struct{}
	stopped   bool
}

// rtoForLocked returns the retransmission interval for a fresh
// transfer to peer. Caller holds c.mu.
func (c *Conn) rtoForLocked(peer transport.Addr) time.Duration {
	if !c.opts.Adaptive {
		return c.opts.RetransmitInterval
	}
	if e, ok := c.rtt[peer]; ok && e.valid {
		rto := e.rto()
		if rto < c.opts.MinRTO {
			rto = c.opts.MinRTO
		}
		if rto > c.opts.MaxRTO {
			rto = c.opts.MaxRTO
		}
		return rto
	}
	return c.opts.RetransmitInterval
}

// initTransferLocked stamps the adaptive-mode schedule onto a transfer
// about to make its initial transmission. Caller holds c.mu.
func (c *Conn) initTransferLocked(t *outTransfer, peer transport.Addr, now time.Time) {
	t.firstSent = now
	t.deadline = now.Add(c.opts.MaxRetryTime)
	t.rto = c.rtoForLocked(peer)
	t.nextSend = now.Add(t.rto)
}

// Down returns a channel closed when the peer is presumed crashed.
func (w *Watch) Down() <-chan struct{} { return w.down }

// Stop cancels the watch.
func (w *Watch) Stop() {
	w.conn.mu.Lock()
	defer w.conn.mu.Unlock()
	w.stopLocked()
}

func (w *Watch) stopLocked() {
	if !w.stopped {
		w.stopped = true
		delete(w.conn.watches, w.k)
	}
}

// Conn runs the paired message protocol over one transport endpoint.
type Conn struct {
	ep   transport.Endpoint
	opts Options
	tr   *trace.Local // nil when tracing is disabled

	mu        sync.Mutex
	out       map[key]*outTransfer
	in        map[key]*inTransfer
	watches   map[key]*Watch
	nextCall  map[transport.Addr]uint32
	nextMulti uint32
	callBase  uint32
	rtt       map[transport.Addr]*rttEstimator
	stats     Stats
	closed    bool

	incoming chan Message
	stop     chan struct{}
	wg       sync.WaitGroup
}

// ctlBufs pools the fixed 8-byte buffers of ack and probe control
// segments. The transport contract (transport.Endpoint.Send) is that
// the datagram is not retained after Send returns, so a buffer can go
// straight back to the pool.
var ctlBufs = sync.Pool{New: func() any { return new([headerLen]byte) }}

// sendControl transmits one header-only control segment from a pooled
// buffer.
func (c *Conn) sendControl(to transport.Addr, h segHeader) {
	buf := ctlBufs.Get().(*[headerLen]byte)
	h.put(buf[:])
	c.ep.Send(to, buf[:])
	ctlBufs.Put(buf)
}

// segScratch pools retransmission staging buffers. Retransmitted
// segments need the please-ack bit set, but the stored originals must
// not be flipped in place: the initial transmission loop may still be
// reading them outside the connection lock.
var segScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, transport.MaxDatagram)
	return &b
}}

// connSeq and connSalt seed the default call number base so
// successive incarnations on one address cannot collide (see
// Options.CallBase) — the salt covers restarts of the whole OS
// process, the sequence covers restarts within it.
var (
	connSeq  atomic.Uint32
	connSalt = uint32(time.Now().UnixNano())
)

// New starts the protocol over ep. The caller must eventually Close
// the Conn, which also closes ep.
func New(ep transport.Endpoint, opts Options) *Conn {
	base := opts.CallBase
	if base == 0 {
		// Scatter successive incarnations across the 30-bit unicast
		// call number space (the top bit marks multicast numbers).
		base = ((connSeq.Add(1) * 0x9E3779B1) ^ connSalt) & 0x3FFF_FFFF
	}
	c := &Conn{
		ep:       ep,
		opts:     opts.withDefaults(),
		out:      make(map[key]*outTransfer),
		in:       make(map[key]*inTransfer),
		watches:  make(map[key]*Watch),
		nextCall: make(map[transport.Addr]uint32),
		callBase: base,
		rtt:      make(map[transport.Addr]*rttEstimator),
		incoming: make(chan Message, 256),
		stop:     make(chan struct{}),
	}
	c.tr = trace.NewLocal(c.opts.Trace, ep.Addr(), trace.NextIncarnation())
	c.wg.Add(2)
	go c.recvLoop()
	go c.timerLoop()
	return c
}

// Addr returns the local transport address.
func (c *Conn) Addr() transport.Addr { return c.ep.Addr() }

// Tracer returns the connection's trace emitter (nil when tracing is
// disabled), stamped with this connection's address and incarnation.
// Higher layers share it so one process's events carry one identity.
func (c *Conn) Tracer() *trace.Local { return c.tr }

// Incoming returns the stream of reassembled messages. The channel is
// closed by Close.
func (c *Conn) Incoming() <-chan Message { return c.incoming }

// Stats returns a snapshot of the protocol counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// NextCallNum allocates a call number unique among exchanges between
// this process and peer (§4.2: call numbers identify each pair of
// messages among all those exchanged by a given pair of processes).
func (c *Conn) NextCallNum(peer transport.Addr) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nextCall[peer]; !ok {
		c.nextCall[peer] = c.callBase
	}
	c.nextCall[peer]++
	return c.nextCall[peer]
}

// Close shuts the protocol down, failing pending sends with ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for k, t := range c.out {
		t.err = ErrClosed
		close(t.done)
		delete(c.out, k)
	}
	for _, w := range c.watches {
		w.stopped = true
	}
	c.watches = map[key]*Watch{}
	close(c.stop)
	c.mu.Unlock()

	err := c.ep.Close()
	c.wg.Wait()
	close(c.incoming)
	return err
}

// Send reliably transmits one message to peer, blocking until every
// segment is acknowledged (explicitly or implicitly), the context is
// cancelled, or the peer is presumed crashed.
func (c *Conn) Send(ctx context.Context, to transport.Addr, typ MsgType, callNum uint32, msg []byte) error {
	t, err := c.StartSend(to, typ, callNum, msg)
	if err != nil {
		return err
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		c.mu.Lock()
		if _, active := c.out[t.k]; active {
			delete(c.out, t.k)
		}
		c.mu.Unlock()
		return ctx.Err()
	}
}

// ErrNoMulticast reports that the underlying endpoint cannot
// multicast.
var ErrNoMulticast = errors.New("pairedmsg: endpoint does not support multicast")

// Transfer is the caller-visible handle of an asynchronous reliable
// send: Done is closed when every segment is acknowledged or the
// transfer fails, after which Err reports the outcome.
type Transfer interface {
	Done() <-chan struct{}
	Err() error
}

// NextMulticastCallNum allocates a call number for a multicast
// exchange. Multicast numbers live in the upper half of the call
// number space so they can never collide with the per-peer unicast
// counters; within one pair of processes every exchange still bears a
// unique number, as §4.2 requires.
func (c *Conn) NextMulticastCallNum() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nextMulti == 0 {
		c.nextMulti = c.callBase
	}
	c.nextMulti++
	return 0x8000_0000 | (c.nextMulti & 0x7FFF_FFFF)
}

// StartSendMulticast begins one reliable transfer to every member of
// group, transmitting the initial copy of each segment with a single
// multicast operation (§4.3.3: call messages are sent to the entire
// troupe, so this step needs one send instead of n). Retransmission
// and acknowledgment remain per-recipient, because delivery
// reliability varies from recipient to recipient (§2.2). The returned
// transfers parallel group.
func (c *Conn) StartSendMulticast(group []transport.Addr, typ MsgType, callNum uint32, msg []byte) ([]Transfer, error) {
	mc, ok := c.ep.(transport.Multicaster)
	if !ok {
		return nil, ErrNoMulticast
	}
	segs, err := segmentMessage(typ, callNum, msg)
	if err != nil {
		return nil, err
	}

	raw := make([]*outTransfer, len(group))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	for i, to := range group {
		k := key{peer: to, typ: typ, callNum: callNum}
		if _, dup := c.out[k]; dup {
			// Roll back the ones we registered.
			for j := 0; j < i; j++ {
				delete(c.out, raw[j].k)
			}
			c.mu.Unlock()
			return nil, errors.New("pairedmsg: duplicate call number in flight")
		}
		t := &outTransfer{
			k:    k,
			segs: segs,
			done: make(chan struct{}),
		}
		c.initTransferLocked(t, to, time.Now())
		c.out[k] = t
		raw[i] = t
	}
	c.stats.SegmentsSent += int64(len(segs)) // one multicast op per segment
	c.mu.Unlock()

	if c.tr.EnabledFor(trace.KindMsgSend) {
		for _, to := range group {
			c.tr.Emit(trace.Event{Kind: trace.KindMsgSend, Peer: to,
				MsgType: uint8(typ), CallNum: callNum, N: len(segs)})
		}
	}
	for _, s := range segs {
		mc.Multicast(group, s)
	}
	transfers := make([]Transfer, len(raw))
	for i, t := range raw {
		transfers[i] = t
	}
	return transfers, nil
}

// StartSend begins a reliable transfer without blocking; servers use
// it to send return messages while continuing to serve (§4.3.2).
func (c *Conn) StartSend(to transport.Addr, typ MsgType, callNum uint32, msg []byte) (*outTransfer, error) {
	k := key{peer: to, typ: typ, callNum: callNum}
	t := &outTransfer{
		k:    k,
		done: make(chan struct{}),
	}
	if len(msg) <= maxSegPayload {
		// Single-segment fast path: the segment vector lives in the
		// transfer itself.
		backing := make([]byte, headerLen+len(msg))
		segHeader{typ: typ, totalSegs: 1, segNum: 1, callNum: callNum}.put(backing)
		copy(backing[headerLen:], msg)
		t.segsArr[0] = backing
		t.segs = t.segsArr[:1]
	} else {
		segs, err := segmentMessage(typ, callNum, msg)
		if err != nil {
			return nil, err
		}
		t.segs = segs
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := c.out[k]; dup {
		c.mu.Unlock()
		return nil, errors.New("pairedmsg: duplicate call number in flight")
	}
	c.out[k] = t
	c.initTransferLocked(t, to, time.Now())
	c.stats.SegmentsSent += int64(len(t.segs))
	c.mu.Unlock()

	if c.tr.EnabledFor(trace.KindMsgSend) {
		c.tr.Emit(trace.Event{Kind: trace.KindMsgSend, Peer: to,
			MsgType: uint8(typ), CallNum: callNum, N: len(t.segs)})
	}
	// Initial transmission of all segments with no control bits set
	// (§4.2.2).
	for _, s := range t.segs {
		c.ep.Send(to, s)
	}
	return t, nil
}

// Done exposes the completion channel for use with select.
func (t *outTransfer) Done() <-chan struct{} { return t.done }

// Err reports the transfer outcome; valid only after Done is closed.
func (t *outTransfer) Err() error { return t.err }

// WatchPeer starts crash-detection probing of the exchange identified
// by (to, typ=Call, callNum): the client calls it after its call
// message is fully acknowledged and while the return is pending
// (§4.2.3).
func (c *Conn) WatchPeer(to transport.Addr, callNum uint32) *Watch {
	k := key{peer: to, typ: Call, callNum: callNum}
	w := &Watch{
		conn:      c,
		k:         k,
		down:      make(chan struct{}),
		nextProbe: time.Now().Add(c.opts.ProbeInterval),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		w.stopped = true
		return w
	}
	c.watches[k] = w
	return w
}

func (c *Conn) recvLoop() {
	defer c.wg.Done()
	for pkt := range c.ep.Recv() {
		h, payload, err := decodeSegment(pkt.Data)
		if err != nil {
			continue // garbled: treated as lost (§2.2)
		}
		switch {
		case h.ack:
			c.handleAck(pkt.From, h)
		case h.totalSegs == 0:
			c.handleProbe(pkt.From, h)
		default:
			c.handleData(pkt.From, h, payload)
		}
	}
}

// handleAck processes an explicit acknowledgment: all segments with
// numbers <= the acknowledgment number have been received (§4.2.2).
func (c *Conn) handleAck(from transport.Addr, h segHeader) {
	k := key{peer: from, typ: h.typ, callNum: h.callNum}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peerAliveLocked(from, h.callNum)
	t, ok := c.out[k]
	if !ok {
		return
	}
	if int(h.segNum) > t.acked {
		t.acked = int(h.segNum)
		t.attempts = 0 // progress resets the crash countdown
		t.deadline = time.Now().Add(c.opts.MaxRetryTime)
	}
	if t.acked >= len(t.segs) {
		c.completeOutLocked(t, nil)
	}
}

// handleProbe answers a please-ack control segment with the current
// acknowledgment state for that exchange, telling the prober both
// "alive" and "here is how much I have" (§4.2.3).
func (c *Conn) handleProbe(from transport.Addr, h segHeader) {
	if !h.pleaseAck {
		return
	}
	k := key{peer: from, typ: h.typ, callNum: h.callNum}
	c.mu.Lock()
	in := c.in[k]
	ackNum, total := 0, int(h.totalSegs)
	if in != nil {
		ackNum, total = in.ackNum, in.total
	}
	c.mu.Unlock()
	c.sendAck(from, h.typ, h.callNum, ackNum, total)
}

func (c *Conn) handleData(from transport.Addr, h segHeader, payload []byte) {
	k := key{peer: from, typ: h.typ, callNum: h.callNum}

	c.mu.Lock()
	c.peerAliveLocked(from, h.callNum)

	// A return segment implicitly acknowledges all segments of the
	// call bearing the same call number (§4.2.2).
	if h.typ == Return {
		ck := key{peer: from, typ: Call, callNum: h.callNum}
		if t, ok := c.out[ck]; ok {
			c.completeOutLocked(t, nil)
		}
	}

	in, ok := c.in[k]
	if !ok {
		in = &inTransfer{total: int(h.totalSegs)}
		if n := in.total + 1; n <= len(in.segArr) {
			in.segs = in.segArr[:n]
		} else {
			in.segs = make([][]byte, n)
		}
		c.in[k] = in
	}

	var (
		completedNow bool
		gap          bool
		dup          bool
	)
	switch {
	case in.delivered:
		dup = true // replayed segment of a finished exchange
	case int(h.segNum) < 1 || int(h.segNum) > in.total:
		c.mu.Unlock()
		return // malformed
	case in.segs[h.segNum] != nil:
		dup = true
	default:
		// Each received packet arrives in a fresh buffer the receiver
		// owns (see transport.Packet), so the payload is kept without
		// copying. It is non-nil even when empty — the datagram had a
		// header prefix — which matters because nil marks "missing".
		in.segs[h.segNum] = payload
		in.have++
		for in.ackNum < in.total && in.segs[in.ackNum+1] != nil {
			in.ackNum++
		}
		// An out-of-order arrival reveals a loss: acknowledge at once
		// so the sender retransmits the first missing segment rather
		// than waiting out its timer (§4.2.4).
		gap = int(h.segNum) > in.ackNum+1
		if in.have == in.total {
			in.delivered = true
			in.doneAt = time.Now()
			completedNow = true
		}
	}
	if dup {
		c.stats.DupSegments++
	}

	var msg Message
	if completedNow {
		var buf []byte
		if in.total == 1 {
			buf = in.segs[1] // single segment: hand the payload up as-is
		} else {
			size := 0
			for i := 1; i <= in.total; i++ {
				size += len(in.segs[i])
			}
			buf = make([]byte, 0, size)
			for i := 1; i <= in.total; i++ {
				buf = append(buf, in.segs[i]...)
			}
		}
		for i := 1; i <= in.total; i++ {
			in.segs[i] = []byte{} // free the payload, keep "seen"
		}
		msg = Message{From: from, Type: h.typ, CallNum: h.callNum, Data: buf}
		c.stats.MessagesDelivered++
	}
	ackNum, total := in.ackNum, in.total
	c.mu.Unlock()

	if dup && c.tr.EnabledFor(trace.KindDupSegment) {
		c.tr.Emit(trace.Event{Kind: trace.KindDupSegment, Peer: from,
			MsgType: uint8(h.typ), CallNum: h.callNum, N: int(h.segNum)})
	}
	if completedNow && c.tr.EnabledFor(trace.KindMsgDelivered) {
		// Emitted before the message is handed upward, so the
		// delivery is recorded strictly before anything the
		// receiver does in response (e.g. sending a reply).
		c.tr.Emit(trace.Event{Kind: trace.KindMsgDelivered, Peer: from,
			MsgType: uint8(h.typ), CallNum: h.callNum, N: total})
	}

	// Acknowledgment policy: answer please-ack and gaps immediately;
	// acknowledge a completed return message at once (its sender is
	// blocked on it); let a completed call message be acknowledged
	// implicitly by the forthcoming return (§4.2.4's postponement),
	// unless the sender asked.
	if h.pleaseAck || gap || (completedNow && h.typ == Return) {
		c.sendAck(from, h.typ, h.callNum, ackNum, total)
	}

	if completedNow {
		select {
		case c.incoming <- msg:
		case <-c.stop:
		}
	}
}

// peerAliveLocked resets the probe miss counters of any watches on
// this peer and call number.
func (c *Conn) peerAliveLocked(from transport.Addr, callNum uint32) {
	if w, ok := c.watches[key{peer: from, typ: Call, callNum: callNum}]; ok {
		w.missed = 0
	}
}

func (c *Conn) sendAck(to transport.Addr, typ MsgType, callNum uint32, ackNum, total int) {
	h := segHeader{
		typ:       typ,
		ack:       true,
		totalSegs: uint8(total),
		segNum:    uint8(ackNum),
		callNum:   callNum,
	}
	c.mu.Lock()
	c.stats.AcksSent++
	c.mu.Unlock()
	if c.tr.EnabledFor(trace.KindAckSend) {
		c.tr.Emit(trace.Event{Kind: trace.KindAckSend, Peer: to,
			MsgType: uint8(typ), CallNum: callNum, N: ackNum})
	}
	c.sendControl(to, h)
}

func (c *Conn) completeOutLocked(t *outTransfer, err error) {
	if _, active := c.out[t.k]; !active {
		return
	}
	delete(c.out, t.k)
	if err == nil && c.opts.Adaptive && !t.retx && !t.firstSent.IsZero() {
		// Karn's rule: only exchanges that were never retransmitted
		// yield an unambiguous round-trip sample.
		e, ok := c.rtt[t.k.peer]
		if !ok {
			e = &rttEstimator{}
			c.rtt[t.k.peer] = e
		}
		rtt := time.Since(t.firstSent)
		e.sample(rtt)
		if c.tr.EnabledFor(trace.KindRTTSample) {
			c.tr.Emit(trace.Event{Kind: trace.KindRTTSample, Peer: t.k.peer,
				MsgType: uint8(t.k.typ), CallNum: t.k.callNum, Dur: rtt})
		}
	}
	if err == ErrPeerDown && c.tr.EnabledFor(trace.KindCrashSuspect) {
		c.tr.Emit(trace.Event{Kind: trace.KindCrashSuspect, Peer: t.k.peer,
			MsgType: uint8(t.k.typ), CallNum: t.k.callNum,
			Attempt: t.attempts, Err: err.Error(), Detail: "retry exhaustion"})
	}
	t.err = err
	close(t.done)
}

// timerLoop drives retransmission, probing, and replay-record expiry.
func (c *Conn) timerLoop() {
	defer c.wg.Done()
	tick := c.opts.RetransmitInterval / 4
	if p := c.opts.ProbeInterval / 4; p < tick {
		tick = p
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-ticker.C:
			c.timerPass(now)
		}
	}
}

func (c *Conn) timerPass(now time.Time) {
	type resend struct {
		to      transport.Addr
		segs    [][]byte
		typ     MsgType
		callNum uint32
		attempt int
	}
	type probe struct {
		to transport.Addr
		h  segHeader
	}
	var resends []resend
	var probes []probe

	c.mu.Lock()
	for _, t := range c.out {
		if now.Before(t.nextSend) {
			continue
		}
		t.attempts++
		if c.opts.Adaptive {
			// Crash declaration is bounded by wall time, not pass
			// count, so exponential backoff cannot delay detection.
			if now.After(t.deadline) {
				c.completeOutLocked(t, ErrPeerDown)
				continue
			}
			t.retx = true
			t.rto *= 2
			if t.rto > c.opts.MaxRTO {
				t.rto = c.opts.MaxRTO
			}
			t.nextSend = now.Add(t.rto)
		} else {
			if t.attempts > c.opts.MaxRetries {
				c.completeOutLocked(t, ErrPeerDown)
				continue
			}
			t.nextSend = now.Add(c.opts.RetransmitInterval)
		}
		// Retransmit the first unacknowledged segment with please-ack
		// set (§4.2.2), or all of them under RetransmitAll (§4.2.4).
		// Only references to the stored originals are collected here;
		// they are never mutated after creation, so they can be read
		// outside the lock, where the send loop stamps the please-ack
		// bit onto a pooled copy.
		last := t.acked + 1
		if c.opts.Strategy == RetransmitAll {
			last = len(t.segs)
		}
		var segs [][]byte
		for i := t.acked + 1; i <= last && i <= len(t.segs); i++ {
			segs = append(segs, t.segs[i-1])
		}
		c.stats.Retransmits += int64(len(segs))
		c.stats.SegmentsSent += int64(len(segs))
		resends = append(resends, resend{to: t.k.peer, segs: segs,
			typ: t.k.typ, callNum: t.k.callNum, attempt: t.attempts})
	}
	for _, w := range c.watches {
		if now.Before(w.nextProbe) {
			continue
		}
		w.nextProbe = now.Add(c.opts.ProbeInterval)
		w.missed++
		if w.missed > c.opts.ProbeMissLimit {
			if c.tr.Enabled() {
				c.tr.Emit(trace.Event{Kind: trace.KindCrashSuspect,
					Peer: w.k.peer, MsgType: uint8(w.k.typ), CallNum: w.k.callNum,
					Attempt: w.missed - 1, Detail: "probe misses"})
			}
			close(w.down)
			w.stopLocked()
			continue
		}
		c.stats.ProbesSent++
		probes = append(probes, probe{
			to: w.k.peer,
			h: segHeader{
				typ:       w.k.typ,
				pleaseAck: true,
				callNum:   w.k.callNum,
			},
		})
	}
	// Expire completed-exchange records once delayed duplicates can no
	// longer arrive (§4.2.4).
	for k, in := range c.in {
		if in.delivered && now.Sub(in.doneAt) > c.opts.CompletedTTL {
			delete(c.in, k)
		}
	}
	c.mu.Unlock()

	for _, r := range resends {
		if c.tr.EnabledFor(trace.KindSegRetransmit) {
			c.tr.Emit(trace.Event{Kind: trace.KindSegRetransmit, Peer: r.to,
				MsgType: uint8(r.typ), CallNum: r.callNum,
				Attempt: r.attempt, N: len(r.segs)})
		}
		for _, s := range r.segs {
			bp := segScratch.Get().(*[]byte)
			b := append((*bp)[:0], s...)
			b[1] |= ctlPleaseAck
			c.ep.Send(r.to, b)
			*bp = b
			segScratch.Put(bp)
		}
	}
	for _, p := range probes {
		if c.tr.EnabledFor(trace.KindProbeSend) {
			c.tr.Emit(trace.Event{Kind: trace.KindProbeSend, Peer: p.to,
				MsgType: uint8(p.h.typ), CallNum: p.h.callNum})
		}
		c.sendControl(p.to, p.h)
	}
}
